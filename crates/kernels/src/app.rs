//! Built benchmark applications: linked images plus platform wiring.

use std::error::Error;
use std::fmt;

use wbsn_core::{MappingError, MappingPlan};
use wbsn_isa::{IsaError, LinkError, LinkedImage};
use wbsn_sim::{Platform, PlatformConfig, SimError};

use crate::layout::{SHARED_WORDS, SYNC_BASE, SYNC_POINTS};

/// Which architecture a build targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Arch {
    /// The single-core baseline (decoders, flat memory).
    SingleCore,
    /// The 8-core target platform (crossbars, ATU, synchronizer).
    MultiCore,
}

/// How the multi-core build synchronizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SyncApproach {
    /// The paper's HW/SW approach: sync points + clock gating.
    Hardware,
    /// Active waiting on shared memory (Fig. 6's "no synch" bars).
    BusyWait,
}

/// How lock-step barriers are realized (extension, DESIGN.md §5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BarrierStyle {
    /// The paper's protocol: `SINC` on entry, `SDEC` + `SLEEP` on exit.
    SincSdec,
    /// A building-directive preloaded barrier: the point is configured
    /// with the group size and participants at load time and
    /// auto-reloads; cores only `SDEC` + `SLEEP` at the barrier.
    Preloaded,
}

/// Build-time options.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BuildOptions {
    /// Synchronization style of multi-core builds.
    pub approach: SyncApproach,
    /// Whether the crossbars merge same-address reads.
    pub broadcast: bool,
    /// Whether lock-step groups insert the branch-recovery barrier
    /// (`SINC`/`SDEC` + `SLEEP`); disabling it is the ablation that
    /// quantifies how much broadcast survives without re-alignment.
    pub lockstep: bool,
    /// How lock-step barriers are realized.
    pub barrier: BarrierStyle,
    /// Whether the load-latency-aware scheduler
    /// ([`wbsn_isa::schedule_program`]) runs over every emitted section,
    /// filling load-use slots with later independent instructions.
    pub schedule: bool,
    /// ADC sampling period in cycles (at the simulated clock).
    pub adc_period_cycles: u64,
}

impl Default for BuildOptions {
    fn default() -> Self {
        BuildOptions {
            approach: SyncApproach::Hardware,
            broadcast: true,
            lockstep: true,
            barrier: BarrierStyle::SincSdec,
            schedule: false,
            adc_period_cycles: 4000, // 250 Hz at 1 MHz
        }
    }
}

/// A fully built benchmark: image, configuration and mapping metadata.
#[derive(Debug, Clone)]
pub struct BuiltApp {
    /// Benchmark name (`3L-MF`, `3L-MMD`, `RP-CLASS`).
    pub name: &'static str,
    /// Target architecture.
    pub arch: Arch,
    /// Synchronization approach (multi-core only).
    pub approach: SyncApproach,
    /// The linked instruction/data image.
    pub image: LinkedImage,
    /// The platform configuration to instantiate.
    pub config: PlatformConfig,
    /// Cores participating in the workload.
    pub active_cores: usize,
    /// The mapping plan (multi-core builds).
    pub plan: Option<MappingPlan>,
    /// Preloaded-barrier directives to apply at load time:
    /// `(point, count, participants)`.
    pub preloads: Vec<(u16, u8, wbsn_core::CoreSet)>,
}

impl BuiltApp {
    /// Instantiates a fresh platform loaded with this application and the
    /// given per-channel ADC sample streams.
    ///
    /// # Errors
    ///
    /// Propagates platform construction errors.
    pub fn platform(&self, streams: Vec<Vec<i16>>) -> Result<Platform, SimError> {
        let mut platform = Platform::new(self.config.clone(), &self.image)?;
        for &(point, count, participants) in &self.preloads {
            platform.preload_barrier(point, count, participants)?;
        }
        platform.set_adc_streams(streams);
        Ok(platform)
    }

    /// Static code overhead of the synchronization ISE in percent
    /// (Table I's "Code Overhead").
    pub fn code_overhead_percent(&self) -> f64 {
        self.image.code_overhead_percent()
    }

    /// Instruction banks containing code (Table I's "Active IM banks").
    pub fn active_im_banks(&self) -> usize {
        self.image.active_im_banks()
    }

    /// A human-readable disassembly of every placed section, annotated
    /// with the cores that enter it.
    pub fn disassembly(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for section in self.image.sections() {
            let entries: Vec<String> = self
                .image
                .entries()
                .filter(|(_, addr)| *addr == section.base)
                .map(|(core, _)| format!("core {core}"))
                .collect();
            let _ = writeln!(
                out,
                "section {} @ {:#06x} ({}):",
                section.name,
                section.base,
                if entries.is_empty() {
                    "no entry".to_string()
                } else {
                    entries.join(", ")
                }
            );
            let words: Vec<u32> = (0..section.len)
                .map(|offset| self.image.instr_word(section.base + offset as u32))
                .collect();
            for line in wbsn_isa::disasm::disassemble(&words, section.base) {
                let _ = writeln!(out, "  {line}");
            }
        }
        out
    }
}

/// The platform configuration used by every benchmark build.
pub fn benchmark_config(arch: Arch, options: &BuildOptions) -> PlatformConfig {
    let mut config = match arch {
        Arch::SingleCore => PlatformConfig::single_core(),
        Arch::MultiCore => PlatformConfig::multi_core(),
    };
    config.shared_words = match arch {
        Arch::SingleCore => 0, // flat space, no ATU
        Arch::MultiCore => SHARED_WORDS,
    };
    config.sync_base = SYNC_BASE;
    config.sync_points = SYNC_POINTS;
    config.broadcast = arch == Arch::MultiCore && options.broadcast;
    config.adc.channels = 3;
    config.adc.period_cycles = options.adc_period_cycles;
    config.adc.start_cycle = options.adc_period_cycles / 2;
    config
}

/// Errors surfaced while building a benchmark application.
#[derive(Debug)]
pub enum BuildError {
    /// Code generation failed.
    Isa(IsaError),
    /// Linking failed.
    Link(LinkError),
    /// Mapping failed.
    Mapping(MappingError),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::Isa(e) => write!(f, "code generation failed: {e}"),
            BuildError::Link(e) => write!(f, "linking failed: {e}"),
            BuildError::Mapping(e) => write!(f, "mapping failed: {e}"),
        }
    }
}

impl Error for BuildError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            BuildError::Isa(e) => Some(e),
            BuildError::Link(e) => Some(e),
            BuildError::Mapping(e) => Some(e),
        }
    }
}

impl From<IsaError> for BuildError {
    fn from(e: IsaError) -> Self {
        BuildError::Isa(e)
    }
}

impl From<LinkError> for BuildError {
    fn from(e: LinkError) -> Self {
        BuildError::Link(e)
    }
}

impl From<MappingError> for BuildError {
    fn from(e: MappingError) -> Self {
        BuildError::Mapping(e)
    }
}

impl From<wbsn_core::TaskGraphError> for BuildError {
    fn from(e: wbsn_core::TaskGraphError) -> Self {
        BuildError::Mapping(MappingError::Graph(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configs_match_architectures() {
        let options = BuildOptions::default();
        let sc = benchmark_config(Arch::SingleCore, &options);
        assert_eq!(sc.cores, 1);
        assert!(!sc.broadcast);
        sc.validate().unwrap();
        let mc = benchmark_config(Arch::MultiCore, &options);
        assert_eq!(mc.cores, 8);
        assert!(mc.broadcast);
        mc.validate().unwrap();
    }

    #[test]
    fn broadcast_ablation_flag() {
        let options = BuildOptions {
            broadcast: false,
            ..BuildOptions::default()
        };
        let mc = benchmark_config(Arch::MultiCore, &options);
        assert!(!mc.broadcast);
    }

    #[test]
    fn disassembly_lists_sections_and_entries() {
        let app = crate::build_mf(Arch::MultiCore, &BuildOptions::default()).expect("builds");
        let text = app.disassembly();
        assert!(text.contains("section cond"));
        assert!(text.contains("core 0, core 1, core 2"));
        assert!(text.contains("sinc"));
        assert!(text.contains("sleep"));
    }

    #[test]
    fn build_error_displays() {
        let e = BuildError::Link(LinkError::DuplicateSection("x".into()));
        assert!(e.to_string().contains("linking"));
        assert!(e.source().is_some());
    }
}
