//! The three benchmark applications, assembled for both architectures.
//!
//! Each `build_*` function performs the paper's complete flow: partition
//! the application into a task graph, map it with
//! [`wbsn_core::Mapper`] (cores, instruction banks, synchronization
//! points), generate the phase programs with the insertion rules applied,
//! and link everything into a loadable image.

use wbsn_core::{Mapper, Phase, TaskGraph};
use wbsn_isa::{Linker, Section};

use crate::app::{
    benchmark_config, Arch, BarrierStyle, BuildError, BuildOptions, BuiltApp, SyncApproach,
};
use crate::emit::maybe_schedule;
use crate::layout::SYNC_POINTS;
use crate::phases::{
    build_classifier_phase, build_combiner_phase, build_delineator_phase, build_filter_phase,
    build_triggered_filter_phase, StreamMode, SyncWiring, WaitStyle,
};
use crate::single::{build_mf_single, build_mmd_single, build_rpclass_single};
use crate::train::ClassifierParams;

fn wait_style(arch: Arch, approach: SyncApproach) -> WaitStyle {
    match (arch, approach) {
        (Arch::SingleCore, _) => WaitStyle::Sleep,
        (Arch::MultiCore, SyncApproach::Hardware) => WaitStyle::Sleep,
        (Arch::MultiCore, SyncApproach::BusyWait) => WaitStyle::BusyWait,
    }
}

/// Builds the three-lead morphological filtering benchmark (3L-MF).
///
/// Multi-core mapping: three conditioning phases, one per lead, forming
/// a single lock-step group in one instruction bank (Fig. 5-a).
///
/// # Errors
///
/// Returns a [`BuildError`] on code-generation, mapping or link failure.
pub fn build_mf(arch: Arch, options: &BuildOptions) -> Result<BuiltApp, BuildError> {
    let config = benchmark_config(arch, options);
    let mut linker = Linker::new();
    let mut preloads = Vec::new();
    let (active_cores, plan) = match arch {
        Arch::SingleCore => {
            linker.add_section(Section::new(
                "mf",
                maybe_schedule(build_mf_single()?, options.schedule),
            ));
            linker.set_entry(0, "mf");
            (1, None)
        }
        Arch::MultiCore => {
            let mut graph = TaskGraph::new();
            let conds: Vec<_> = (0..3)
                .map(|l| graph.add_phase(Phase::acquire(format!("cond{l}"), l)))
                .collect::<Result<_, _>>()?;
            graph.add_lockstep_group(&conds)?;
            let plan = Mapper::new(config.cores, 8, SYNC_POINTS).map(&graph)?;

            let hw = options.approach == SyncApproach::Hardware;
            let lockstep = hw && options.lockstep;
            let preloaded = options.barrier == BarrierStyle::Preloaded;
            let wiring = SyncWiring {
                produce_point: None,
                lockstep_point: if lockstep {
                    plan.lockstep_point(conds[0])
                } else {
                    None
                },
                lockstep_preloaded: preloaded,
            };
            if lockstep && preloaded {
                let participants = conds.iter().map(|&c| plan.core_of(c)).collect();
                preloads.push((
                    plan.lockstep_point(conds[0]).expect("group has a point"),
                    conds.len() as u8,
                    participants,
                ));
            }
            let program = build_filter_phase(
                plan.core_of(conds[0]).index() as u16,
                0,
                wait_style(arch, options.approach),
                wiring,
            )?;
            let program = maybe_schedule(program, options.schedule);
            linker.add_section(Section::in_bank("cond", program, plan.bank_of(conds[0])));
            for &c in &conds {
                linker.set_entry(plan.core_of(c).index(), "cond");
            }
            (3, Some(plan))
        }
    };
    let image = linker.link()?;
    Ok(BuiltApp {
        name: "3L-MF",
        arch,
        approach: options.approach,
        image,
        config,
        active_cores,
        plan,
        preloads,
    })
}

/// Builds the three-lead filtering + delineation benchmark (3L-MMD).
///
/// Multi-core mapping: three conditioning phases (lock-step group,
/// shared bank) producing for a combining phase, which produces for the
/// delineation phase (Fig. 5-b) — five cores, both producer-consumer and
/// lock-step synchronization.
///
/// # Errors
///
/// Returns a [`BuildError`] on code-generation, mapping or link failure.
pub fn build_mmd(arch: Arch, options: &BuildOptions) -> Result<BuiltApp, BuildError> {
    let config = benchmark_config(arch, options);
    let mut linker = Linker::new();
    let mut preloads = Vec::new();
    let (active_cores, plan) = match arch {
        Arch::SingleCore => {
            linker.add_section(Section::new(
                "mmd",
                maybe_schedule(build_mmd_single()?, options.schedule),
            ));
            linker.set_entry(0, "mmd");
            (1, None)
        }
        Arch::MultiCore => {
            let mut graph = TaskGraph::new();
            let conds: Vec<_> = (0..3)
                .map(|l| graph.add_phase(Phase::acquire(format!("cond{l}"), l)))
                .collect::<Result<_, _>>()?;
            let comb = graph.add_phase(Phase::compute("combine"))?;
            let delin = graph.add_phase(Phase::compute("delineate"))?;
            for &c in &conds {
                graph.add_edge(c, comb)?;
            }
            graph.add_edge(comb, delin)?;
            graph.add_lockstep_group(&conds)?;
            let plan = Mapper::new(config.cores, 8, SYNC_POINTS).map(&graph)?;

            let hw = options.approach == SyncApproach::Hardware;
            let style = wait_style(arch, options.approach);
            let cpt1 = plan.consume_point(comb).expect("combiner has producers");
            let cpt2 = plan.consume_point(delin).expect("delineator has producers");
            let lockstep = hw && options.lockstep;
            let preloaded = options.barrier == BarrierStyle::Preloaded;
            if lockstep && preloaded {
                let participants = conds.iter().map(|&c| plan.core_of(c)).collect();
                preloads.push((
                    plan.lockstep_point(conds[0]).expect("group has a point"),
                    conds.len() as u8,
                    participants,
                ));
            }
            let filter = build_filter_phase(
                plan.core_of(conds[0]).index() as u16,
                0,
                style,
                SyncWiring {
                    produce_point: hw.then_some(cpt1),
                    lockstep_point: if lockstep {
                        plan.lockstep_point(conds[0])
                    } else {
                        None
                    },
                    lockstep_preloaded: preloaded,
                },
            )?;
            let combiner = build_combiner_phase(
                style,
                StreamMode::Contiguous,
                hw.then_some(cpt1),
                hw.then_some(cpt2),
            )?;
            let delineator =
                build_delineator_phase(style, StreamMode::Contiguous, hw.then_some(cpt2))?;
            let filter = maybe_schedule(filter, options.schedule);
            let combiner = maybe_schedule(combiner, options.schedule);
            let delineator = maybe_schedule(delineator, options.schedule);
            linker.add_section(Section::in_bank("cond", filter, plan.bank_of(conds[0])));
            linker.add_section(Section::in_bank("combine", combiner, plan.bank_of(comb)));
            linker.add_section(Section::in_bank(
                "delineate",
                delineator,
                plan.bank_of(delin),
            ));
            for &c in &conds {
                linker.set_entry(plan.core_of(c).index(), "cond");
            }
            linker.set_entry(plan.core_of(comb).index(), "combine");
            linker.set_entry(plan.core_of(delin).index(), "delineate");
            (5, Some(plan))
        }
    };
    let image = linker.link()?;
    Ok(BuiltApp {
        name: "3L-MMD",
        arch,
        approach: options.approach,
        image,
        config,
        active_cores,
        plan,
        preloads,
    })
}

/// Builds the heartbeat-classification benchmark (RP-CLASS).
///
/// Multi-core mapping (Fig. 5-c): lead 0 is conditioned continuously
/// and feeds the classification phase; a lock-step pair of buffered
/// conditioning phases (leads 1 and 2), the combiner and the delineator
/// form the four-core chain that is activated only for pathological
/// beats — six cores, non-uniform workload.
///
/// # Errors
///
/// Returns a [`BuildError`] on code-generation, mapping or link failure.
pub fn build_rpclass(
    arch: Arch,
    options: &BuildOptions,
    params: &ClassifierParams,
) -> Result<BuiltApp, BuildError> {
    let config = benchmark_config(arch, options);
    let mut linker = Linker::new();
    let mut preloads = Vec::new();
    for segment in params.data_segments() {
        linker.add_data(segment);
    }
    let (active_cores, plan) = match arch {
        Arch::SingleCore => {
            linker.add_section(Section::new(
                "rpclass",
                maybe_schedule(build_rpclass_single()?, options.schedule),
            ));
            linker.set_entry(0, "rpclass");
            (1, None)
        }
        Arch::MultiCore => {
            // Fig. 5-c: lead 0 is conditioned continuously and feeds the
            // classification phase; the four-core delineation chain (two
            // triggered conditioners, combiner, delineator) is activated
            // only for pathological beats.
            let mut graph = TaskGraph::new();
            let classify = graph.add_phase(Phase::compute("classify"))?;
            let cond0 = graph.add_phase(Phase::acquire("cond0", 0))?;
            let cond1 = graph.add_phase(Phase::acquire("cond1", 1))?;
            let cond2 = graph.add_phase(Phase::acquire("cond2", 2))?;
            let comb = graph.add_phase(Phase::compute("combine"))?;
            let delin = graph.add_phase(Phase::compute("delineate"))?;
            graph.add_edge(cond0, classify)?;
            graph.add_edge(cond0, comb)?;
            graph.add_edge(cond1, comb)?;
            graph.add_edge(cond2, comb)?;
            graph.add_edge(comb, delin)?;
            graph.add_lockstep_group(&[cond1, cond2])?;
            let plan = Mapper::new(config.cores, 8, SYNC_POINTS).map(&graph)?;

            let hw = options.approach == SyncApproach::Hardware;
            let style = wait_style(arch, options.approach);
            let cpt0 = plan
                .consume_point(classify)
                .expect("classifier has a producer");
            let cpt1 = plan.consume_point(comb).expect("combiner has producers");
            let cpt2 = plan.consume_point(delin).expect("delineator has producers");
            let classifier = build_classifier_phase(style, hw.then_some(cpt0))?;
            let cond0_prog = build_filter_phase(
                plan.core_of(cond0).index() as u16,
                0,
                style,
                SyncWiring {
                    produce_point: hw.then_some(cpt0),
                    lockstep_point: None,
                    lockstep_preloaded: false,
                },
            )?;
            let lockstep = hw && options.lockstep;
            let preloaded = options.barrier == BarrierStyle::Preloaded;
            if lockstep && preloaded {
                let participants = [cond1, cond2].iter().map(|&c| plan.core_of(c)).collect();
                preloads.push((
                    plan.lockstep_point(cond1).expect("group has a point"),
                    2,
                    participants,
                ));
            }
            let filter = build_triggered_filter_phase(
                plan.core_of(cond1).index() as u16,
                1,
                style,
                SyncWiring {
                    produce_point: hw.then_some(cpt1),
                    lockstep_point: if lockstep {
                        plan.lockstep_point(cond1)
                    } else {
                        None
                    },
                    lockstep_preloaded: preloaded,
                },
            )?;
            let combiner = build_combiner_phase(
                style,
                StreamMode::Burst,
                hw.then_some(cpt1),
                hw.then_some(cpt2),
            )?;
            let delineator = build_delineator_phase(style, StreamMode::Burst, hw.then_some(cpt2))?;
            let classifier = maybe_schedule(classifier, options.schedule);
            let cond0_prog = maybe_schedule(cond0_prog, options.schedule);
            let filter = maybe_schedule(filter, options.schedule);
            let combiner = maybe_schedule(combiner, options.schedule);
            let delineator = maybe_schedule(delineator, options.schedule);
            linker.add_section(Section::in_bank(
                "classify",
                classifier,
                plan.bank_of(classify),
            ));
            linker.add_section(Section::in_bank("cond0", cond0_prog, plan.bank_of(cond0)));
            linker.add_section(Section::in_bank("cond", filter, plan.bank_of(cond1)));
            linker.add_section(Section::in_bank("combine", combiner, plan.bank_of(comb)));
            linker.add_section(Section::in_bank(
                "delineate",
                delineator,
                plan.bank_of(delin),
            ));
            linker.set_entry(plan.core_of(classify).index(), "classify");
            linker.set_entry(plan.core_of(cond0).index(), "cond0");
            linker.set_entry(plan.core_of(cond1).index(), "cond");
            linker.set_entry(plan.core_of(cond2).index(), "cond");
            linker.set_entry(plan.core_of(comb).index(), "combine");
            linker.set_entry(plan.core_of(delin).index(), "delineate");
            (6, Some(plan))
        }
    };
    let image = linker.link()?;
    Ok(BuiltApp {
        name: "RP-CLASS",
        arch,
        approach: options.approach,
        image,
        config,
        active_cores,
        plan,
        preloads,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train::ClassifierParams;

    #[test]
    fn mf_builds_for_both_architectures() {
        let options = BuildOptions::default();
        let sc = build_mf(Arch::SingleCore, &options).unwrap();
        assert_eq!(sc.active_cores, 1);
        // The baseline's only ISE use is the single WFI-style SLEEP.
        assert!(sc.code_overhead_percent() < 1.0);
        let mc = build_mf(Arch::MultiCore, &options).unwrap();
        assert_eq!(mc.active_cores, 3);
        assert_eq!(mc.active_im_banks(), 1, "lock-step group shares a bank");
        assert!(mc.code_overhead_percent() > 0.0);
        assert!(mc.code_overhead_percent() < 10.0);
    }

    #[test]
    fn mmd_mapping_matches_fig5b() {
        let mc = build_mmd(Arch::MultiCore, &BuildOptions::default()).unwrap();
        assert_eq!(mc.active_cores, 5);
        assert_eq!(mc.active_im_banks(), 3);
        let plan = mc.plan.as_ref().unwrap();
        assert_eq!(plan.points_used(), 3); // CPT1, CPT2, lock-step
    }

    #[test]
    fn rpclass_mapping_matches_fig5c() {
        let params = ClassifierParams::default_trained();
        let mc = build_rpclass(Arch::MultiCore, &BuildOptions::default(), &params).unwrap();
        assert_eq!(mc.active_cores, 6);
        // classify / cond0 / lock-step pair / combine / delineate.
        assert_eq!(mc.active_im_banks(), 5);
    }

    #[test]
    fn busy_wait_builds_have_zero_sync_overhead() {
        let options = BuildOptions {
            approach: SyncApproach::BusyWait,
            ..BuildOptions::default()
        };
        let mc = build_mf(Arch::MultiCore, &options).unwrap();
        assert_eq!(mc.image.sync_words(), 0);
        let mmd = build_mmd(Arch::MultiCore, &options).unwrap();
        assert_eq!(mmd.image.sync_words(), 0);
    }
}
