//! Classifier training for RP-CLASS.
//!
//! The paper's ref \[22\] trains the random-projection classifier offline
//! and ships the projection matrix and class centroids to the node. We do
//! the same: detect beats on a labelled synthetic training recording,
//! project their windows and average per class.

use wbsn_dsp::ecg::{synthesize, BeatClass, EcgConfig, EcgRecording};
use wbsn_dsp::mmd::MmdDelineator;
use wbsn_dsp::rproj::{NearestCentroid, RandomProjection, RpClassifier};
use wbsn_isa::DataSegment;

use crate::layout::{self, RP_CENTROID_NORMAL, RP_CENTROID_PATH, RP_DIMS, WINDOW_LEN};

/// Seed of the deterministic projection matrix baked into the kernels.
pub const RP_SEED: u64 = 0x5EED_1234;

/// The trained classifier constants loaded into shared memory.
#[derive(Debug, Clone)]
pub struct ClassifierParams {
    projection: RandomProjection,
    decision: NearestCentroid,
}

impl ClassifierParams {
    /// Creates parameters from explicit stages.
    pub fn new(projection: RandomProjection, decision: NearestCentroid) -> ClassifierParams {
        ClassifierParams {
            projection,
            decision,
        }
    }

    /// Trains on a labelled recording through the *deployed* front end:
    /// lead 0 is conditioned with the benchmark filter, beats are
    /// detected on the conditioned stream with the kernel's detector,
    /// and the conditioned windows are projected; the two centroids are
    /// per-class means. Beats whose window would reach before the start
    /// of the recording are skipped.
    ///
    /// # Panics
    ///
    /// Panics if the recording lacks examples of either class.
    pub fn train(recording: &EcgRecording) -> ClassifierParams {
        let projection =
            RandomProjection::new_seeded(RP_DIMS as usize, WINDOW_LEN as usize, RP_SEED);
        let cond0 = wbsn_dsp::morphology::MorphFilter::new(
            layout::MF_OPEN_W as usize,
            layout::MF_CLOSE_W as usize,
            layout::MF_NOISE_W as usize,
        )
        .filter(&recording.leads[0]);
        let mut detector = MmdDelineator::new(
            layout::MMD_SMALL_W as usize,
            layout::MMD_LARGE_W as usize,
            layout::DET_THRESHOLD,
            layout::DET_REFRACTORY as usize,
        );
        let mut normals = Vec::new();
        let mut paths = Vec::new();
        for point in detector.delineate(&cond0) {
            if point.sample + 1 < WINDOW_LEN as usize {
                continue;
            }
            let window = &cond0[point.sample + 1 - WINDOW_LEN as usize..=point.sample];
            let projected = projection.project(window);
            // Label by the nearest ground-truth beat.
            let label = recording
                .beats
                .iter()
                .min_by_key(|b| b.peak.abs_diff(point.sample))
                .map(|b| b.class);
            match label {
                Some(BeatClass::Normal) => normals.push(projected),
                Some(BeatClass::Pathological) => paths.push(projected),
                None => {}
            }
        }
        let decision = NearestCentroid::train(&normals, &paths);
        ClassifierParams {
            projection,
            decision,
        }
    }

    /// Trains on the standard synthetic training recording (500 Hz like
    /// the evaluation inputs, balanced classes, a seed distinct from
    /// every evaluation input).
    pub fn default_trained() -> ClassifierParams {
        let config = EcgConfig {
            fs: 500,
            duration_s: 90.0,
            pathological_fraction: 0.5,
            seed: 0x7EA1_0001,
            ..EcgConfig::healthy_60s()
        };
        ClassifierParams::train(&synthesize(&config))
    }

    /// The golden classifier equivalent to the kernel constants.
    pub fn classifier(&self) -> RpClassifier {
        RpClassifier::new(self.projection.clone(), self.decision.clone())
    }

    /// The data segments to preload: ±1 projection rows and the two
    /// centroids, at the layout's constant area.
    pub fn data_segments(&self) -> Vec<DataSegment> {
        let mut segments = Vec::new();
        for k in 0..RP_DIMS as usize {
            let words: Vec<u16> = (0..WINDOW_LEN as usize)
                .map(|i| {
                    if self.projection.sign(k, i) {
                        1u16
                    } else {
                        (-1i16) as u16
                    }
                })
                .collect();
            segments.push(DataSegment::new(layout::rp_row(k), words));
        }
        let (normal, path) = self.decision.centroids();
        segments.push(DataSegment::new(
            RP_CENTROID_NORMAL,
            normal.iter().map(|&v| v as u16).collect(),
        ));
        segments.push(DataSegment::new(
            RP_CENTROID_PATH,
            path.iter().map(|&v| v as u16).collect(),
        ));
        segments
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wbsn_dsp::rproj::BeatLabel;

    #[test]
    fn default_training_produces_usable_classifier() {
        let params = ClassifierParams::default_trained();
        let clf = params.classifier();
        // Evaluate on a held-out 500 Hz recording with known beats,
        // through the same conditioned front end as the kernels.
        let eval = synthesize(&EcgConfig {
            fs: 500,
            duration_s: 60.0,
            pathological_fraction: 0.5,
            seed: 0xBEEF,
            ..EcgConfig::healthy_60s()
        });
        let beats = crate::golden::golden_beats(&eval, &clf);
        let mut correct = 0usize;
        let mut total = 0usize;
        for (sample, predicted) in beats {
            let truth = eval
                .beats
                .iter()
                .min_by_key(|b| b.peak.abs_diff(sample))
                .map(|b| b.class)
                .expect("recording has beats");
            let expected = match truth {
                wbsn_dsp::ecg::BeatClass::Normal => BeatLabel::Normal,
                wbsn_dsp::ecg::BeatClass::Pathological => BeatLabel::Pathological,
            };
            total += 1;
            if predicted == expected {
                correct += 1;
            }
        }
        assert!(total > 30, "detector found {total} beats");
        let accuracy = correct as f64 / total as f64;
        assert!(
            accuracy > 0.8,
            "classification accuracy {accuracy:.2} over {total} beats"
        );
    }

    #[test]
    fn data_segments_cover_rows_and_centroids() {
        let params = ClassifierParams::default_trained();
        let segments = params.data_segments();
        assert_eq!(segments.len(), RP_DIMS as usize + 2);
        for (k, seg) in segments.iter().take(RP_DIMS as usize).enumerate() {
            assert_eq!(seg.base, layout::rp_row(k));
            assert_eq!(seg.words.len(), WINDOW_LEN as usize);
            assert!(seg.words.iter().all(|&w| w == 1 || w == (-1i16) as u16));
        }
        assert_eq!(segments[RP_DIMS as usize].base, RP_CENTROID_NORMAL);
        assert_eq!(segments[RP_DIMS as usize + 1].base, RP_CENTROID_PATH);
    }
}
