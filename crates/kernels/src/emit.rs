//! Code-emission helpers shared by the benchmark generators.
//!
//! [`Emit`] wraps a [`ProgramBuilder`] with unique-label generation and
//! the recurring code shapes of the kernels: ring-buffered morphological
//! stages, ADC register access, ring stores and synchronization-point
//! pairs.
//!
//! Register conventions inside generated kernels:
//!
//! * `r0` — always zero (initialised once, never written again),
//! * `r6` — the core's private-section base address,
//! * `r1..r5`, `r7` — scratch (no subroutines are generated, so the link
//!   register is free).

use wbsn_isa::{AluImmOp, AluOp, BranchCond, Instr, IsaError, Program, ProgramBuilder, Reg};
use wbsn_sim::mmio::{ADC_DATA_BASE, ADC_SEQ_BASE, CORE_ID, SYNC_SUBSCRIBE};

/// One morphological stage's parameters.
#[derive(Debug, Clone, Copy)]
pub struct Stage {
    /// Private offset of the position word.
    pub pos_off: i16,
    /// Private offset of the ring buffer.
    pub ring_off: i16,
    /// Window length.
    pub w: u16,
    /// `true` for erosion (minimum), `false` for dilation (maximum).
    pub is_min: bool,
}

/// Label-generating wrapper over [`ProgramBuilder`].
#[derive(Debug, Default)]
pub struct Emit {
    /// The underlying builder (accessible for ad-hoc instructions).
    pub b: ProgramBuilder,
    counter: usize,
}

impl Emit {
    /// Creates an empty emitter.
    pub fn new() -> Emit {
        Emit::default()
    }

    /// Returns a fresh unique label with the given prefix.
    pub fn fresh(&mut self, prefix: &str) -> String {
        self.counter += 1;
        format!("{prefix}_{}", self.counter)
    }

    /// Defines a label at the current position.
    ///
    /// # Panics
    ///
    /// Panics on duplicate labels (generator bug).
    pub fn label(&mut self, name: &str) {
        self.b.label(name).expect("generated labels are unique");
    }

    /// Finalises the program.
    ///
    /// # Errors
    ///
    /// Propagates label-resolution and encoding errors.
    pub fn assemble(self) -> Result<Program, IsaError> {
        self.b.assemble()
    }

    /// Emits the common prologue: `r0 = 0`, `r6 = private base`.
    pub fn prologue(&mut self, private_base: u32) {
        self.b.load_const(Reg::R0, 0);
        self.b.load_const(Reg::R6, private_base as u16);
    }

    /// Subscribes the issuing core to the interrupt sources in `mask`
    /// (clobbers `r1`, `r2`).
    pub fn subscribe(&mut self, mask: u16) {
        self.b.load_const(Reg::R2, SYNC_SUBSCRIBE as u16);
        self.b.load_const(Reg::R1, mask);
        self.b.push(Instr::sw(Reg::R1, Reg::R2, 0));
    }

    /// Loads ADC channel `ch`'s sequence register into `rd`
    /// (clobbers `rd` and `r2`).
    pub fn read_adc_seq(&mut self, rd: Reg, ch: usize) {
        self.b
            .load_const(Reg::R2, (ADC_SEQ_BASE + ch as u32) as u16);
        self.b.push(Instr::lw(rd, Reg::R2, 0));
    }

    /// Loads ADC channel `ch`'s data register into `rd`
    /// (clobbers `rd` and `r2`).
    pub fn read_adc_data(&mut self, rd: Reg, ch: usize) {
        self.b
            .load_const(Reg::R2, (ADC_DATA_BASE + ch as u32) as u16);
        self.b.push(Instr::lw(rd, Reg::R2, 0));
    }

    /// Emits one morphological min/max stage: consumes the sample in
    /// `r1`, leaves the stage output in `r1`. Clobbers `r2..r5`.
    ///
    /// This is the exact streaming algorithm of
    /// `wbsn_dsp::morphology::{Erosion, Dilation}`: store into the ring,
    /// advance the position modulo `w`, then scan the ring.
    pub fn morph_stage(&mut self, stage: Stage) {
        let nowrap = self.fresh("nowrap");
        let scan = self.fresh("scan");
        let b = &mut self.b;
        // ring[pos] = x; pos = (pos + 1) % w
        b.push(Instr::lw(Reg::R2, Reg::R6, stage.pos_off));
        b.push(Instr::addi(Reg::R3, Reg::R2, stage.ring_off));
        b.push(Instr::add(Reg::R3, Reg::R3, Reg::R6));
        b.push(Instr::sw(Reg::R1, Reg::R3, 0));
        b.push(Instr::addi(Reg::R2, Reg::R2, 1));
        b.load_const(Reg::R4, stage.w);
        b.bne_to(Reg::R2, Reg::R4, &nowrap);
        b.load_const(Reg::R2, 0);
        self.label(&nowrap);
        let b = &mut self.b;
        b.push(Instr::sw(Reg::R2, Reg::R6, stage.pos_off));
        // acc = scan(ring)
        b.load_const(Reg::R3, stage.w);
        b.load_const(
            Reg::R5,
            if stage.is_min {
                i16::MAX as u16
            } else {
                i16::MIN as u16
            },
        );
        b.push(Instr::addi(Reg::R4, Reg::R6, stage.ring_off));
        self.label(&scan);
        let b = &mut self.b;
        b.push(Instr::lw(Reg::R2, Reg::R4, 0));
        b.push(Instr::Alu {
            op: if stage.is_min { AluOp::Min } else { AluOp::Max },
            rd: Reg::R5,
            ra: Reg::R5,
            rb: Reg::R2,
        });
        b.push(Instr::addi(Reg::R4, Reg::R4, 1));
        b.push(Instr::addi(Reg::R3, Reg::R3, -1));
        b.bne_to(Reg::R3, Reg::R0, &scan);
        b.push(Instr::Mov {
            rd: Reg::R1,
            ra: Reg::R5,
        });
    }

    /// Emits the full 8-stage conditioning filter: baseline correction
    /// (`x1 = x - close(open(x))`) followed by noise suppression
    /// (`y = (open_s(x1) + close_s(x1)) >> 1`). Sample in `r1`, filtered
    /// value out in `r1`. Uses the three private scratch words of
    /// `scratch`. Clobbers `r2..r5`.
    ///
    /// Mirrors `wbsn_dsp::morphology::MorphFilter::push` exactly.
    pub fn morph_filter(&mut self, stages: &[Stage; 8], scratch: [i16; 3]) {
        let [sx, sx1, sns] = scratch;
        // Baseline correction.
        self.b.push(Instr::sw(Reg::R1, Reg::R6, sx)); // x
        for stage in &stages[..4] {
            self.morph_stage(*stage);
        }
        self.b.push(Instr::lw(Reg::R2, Reg::R6, sx));
        self.b.push(Instr::sub(Reg::R1, Reg::R2, Reg::R1)); // x1 = x - baseline
                                                            // Noise suppression: average of small opening and closing.
        self.b.push(Instr::sw(Reg::R1, Reg::R6, sx1));
        self.morph_stage(stages[4]);
        self.morph_stage(stages[5]);
        self.b.push(Instr::sw(Reg::R1, Reg::R6, sns)); // ns_open
        self.b.push(Instr::lw(Reg::R1, Reg::R6, sx1));
        self.morph_stage(stages[6]);
        self.morph_stage(stages[7]);
        let b = &mut self.b;
        b.push(Instr::lw(Reg::R2, Reg::R6, sns));
        b.push(Instr::add(Reg::R1, Reg::R1, Reg::R2));
        b.push(Instr::srai(Reg::R1, Reg::R1, 1));
    }

    /// Stores `r1` into the shared ring at `ring_base` using the counter
    /// word at shared `count_addr`: `ring[count & mask] = r1; count += 1`.
    ///
    /// The value is written *before* the counter is published so that a
    /// concurrently woken consumer never observes a counter covering an
    /// unwritten slot. Clobbers `r2`, `r3`.
    pub fn ring_store(&mut self, ring_base: u32, mask: u16, count_addr: u32) {
        let b = &mut self.b;
        b.load_const(Reg::R3, count_addr as u16);
        b.push(Instr::lw(Reg::R2, Reg::R3, 0));
        b.push(Instr::AluImm {
            op: AluImmOp::Andi,
            rd: Reg::R2,
            ra: Reg::R2,
            imm: mask as i16,
        });
        b.load_const(Reg::R3, ring_base as u16);
        b.push(Instr::add(Reg::R3, Reg::R3, Reg::R2));
        b.push(Instr::sw(Reg::R1, Reg::R3, 0)); // value first
        b.load_const(Reg::R3, count_addr as u16);
        b.push(Instr::lw(Reg::R2, Reg::R3, 0));
        b.push(Instr::addi(Reg::R2, Reg::R2, 1));
        b.push(Instr::sw(Reg::R2, Reg::R3, 0)); // then publish
    }

    /// Loads `ring[index_reg & mask]` from the shared ring at `ring_base`
    /// into `rd`. `index_reg` must not be `r2`/`r3`. Clobbers `r2`, `r3`.
    pub fn ring_load(&mut self, rd: Reg, ring_base: u32, mask: u16, index_reg: Reg) {
        let b = &mut self.b;
        b.push(Instr::AluImm {
            op: AluImmOp::Andi,
            rd: Reg::R2,
            ra: index_reg,
            imm: mask as i16,
        });
        b.load_const(Reg::R3, ring_base as u16);
        b.push(Instr::add(Reg::R3, Reg::R3, Reg::R2));
        b.push(Instr::lw(rd, Reg::R3, 0));
    }

    /// Emits a conditional branch to a label on `cond(ra, rb)`.
    pub fn branch(&mut self, cond: BranchCond, ra: Reg, rb: Reg, label: &str) {
        self.b.branch_to(cond, ra, rb, label);
    }

    /// Emits the lock-step-group start-up sequence: derive the lead
    /// index from the `CORE_ID` register
    /// (`lead = core_id - first_core + lead_base`) and precompute the
    /// per-lead pointers into the private words of `ptrs`, optionally
    /// subscribing to the lead's ADC interrupt.
    ///
    /// Every member of the group executes this *identical* code; only
    /// the computed private values differ, which is what lets the whole
    /// group share one instruction bank and broadcast its fetches.
    /// Clobbers `r2`, `r3`, `r5`.
    pub fn lead_init(&mut self, first_core: u16, lead_base: u16, ptrs: &LeadPtrs, subscribe: bool) {
        let b = &mut self.b;
        b.load_const(Reg::R2, CORE_ID as u16);
        b.push(Instr::lw(Reg::R5, Reg::R2, 0));
        let delta = lead_base as i16 - first_core as i16;
        if delta != 0 {
            b.push(Instr::addi(Reg::R5, Reg::R5, delta));
        }
        // &ADC_SEQ[lead], &ADC_DATA[lead]
        b.load_const(Reg::R2, ADC_SEQ_BASE as u16);
        b.push(Instr::add(Reg::R2, Reg::R2, Reg::R5));
        b.push(Instr::sw(Reg::R2, Reg::R6, ptrs.seq_addr));
        b.load_const(Reg::R2, ADC_DATA_BASE as u16);
        b.push(Instr::add(Reg::R2, Reg::R2, Reg::R5));
        b.push(Instr::sw(Reg::R2, Reg::R6, ptrs.data_addr));
        // &count[lead]
        b.load_const(Reg::R2, crate::layout::LEAD_COUNT_BASE as u16);
        b.push(Instr::add(Reg::R2, Reg::R2, Reg::R5));
        b.push(Instr::sw(Reg::R2, Reg::R6, ptrs.count_addr));
        // ring base = OUT_RING_BASE * (lead + 1)
        b.load_const(Reg::R2, crate::layout::OUT_RING_BASE as u16);
        b.push(Instr::addi(Reg::R3, Reg::R5, 1));
        b.push(Instr::Alu {
            op: AluOp::Mul,
            rd: Reg::R2,
            ra: Reg::R2,
            rb: Reg::R3,
        });
        b.push(Instr::sw(Reg::R2, Reg::R6, ptrs.ring_base));
        if subscribe {
            b.load_const(Reg::R2, 1);
            b.push(Instr::Alu {
                op: AluOp::Sll,
                rd: Reg::R2,
                ra: Reg::R2,
                rb: Reg::R5,
            });
            b.load_const(Reg::R3, SYNC_SUBSCRIBE as u16);
            b.push(Instr::sw(Reg::R2, Reg::R3, 0));
        }
    }

    /// Loads the lead's ADC sequence register through the precomputed
    /// pointer. Clobbers `rd`, `r2`.
    pub fn read_adc_seq_ind(&mut self, rd: Reg, ptrs: &LeadPtrs) {
        self.b.push(Instr::lw(Reg::R2, Reg::R6, ptrs.seq_addr));
        self.b.push(Instr::lw(rd, Reg::R2, 0));
    }

    /// Loads the lead's ADC data register through the precomputed
    /// pointer. Clobbers `rd`, `r2`.
    pub fn read_adc_data_ind(&mut self, rd: Reg, ptrs: &LeadPtrs) {
        self.b.push(Instr::lw(Reg::R2, Reg::R6, ptrs.data_addr));
        self.b.push(Instr::lw(rd, Reg::R2, 0));
    }

    /// Stores `r1` into the lead's output ring through the precomputed
    /// pointers: `ring[count & mask] = r1; count += 1`. The value is
    /// written before the counter is published (see
    /// [`Emit::ring_store`]). Clobbers `r2`, `r3`, `r4`.
    pub fn ring_store_ind(&mut self, ptrs: &LeadPtrs, mask: u16) {
        let b = &mut self.b;
        b.push(Instr::lw(Reg::R3, Reg::R6, ptrs.count_addr));
        b.push(Instr::lw(Reg::R2, Reg::R3, 0));
        b.push(Instr::AluImm {
            op: AluImmOp::Andi,
            rd: Reg::R2,
            ra: Reg::R2,
            imm: mask as i16,
        });
        b.push(Instr::lw(Reg::R3, Reg::R6, ptrs.ring_base));
        b.push(Instr::add(Reg::R3, Reg::R3, Reg::R2));
        b.push(Instr::sw(Reg::R1, Reg::R3, 0)); // value first
        b.push(Instr::lw(Reg::R3, Reg::R6, ptrs.count_addr));
        b.push(Instr::lw(Reg::R2, Reg::R3, 0));
        b.push(Instr::addi(Reg::R2, Reg::R2, 1));
        b.push(Instr::sw(Reg::R2, Reg::R3, 0)); // then publish
    }
}

/// Private-word offsets of a lead-parameterized phase's precomputed
/// pointers (filled in by [`Emit::lead_init`]).
#[derive(Debug, Clone, Copy)]
pub struct LeadPtrs {
    /// Private offset holding `&ADC_SEQ[lead]`.
    pub seq_addr: i16,
    /// Private offset holding `&ADC_DATA[lead]`.
    pub data_addr: i16,
    /// Private offset holding the lead's output-ring base.
    pub ring_base: i16,
    /// Private offset holding `&count[lead]`.
    pub count_addr: i16,
}

impl LeadPtrs {
    /// Allocates the four pointer words.
    pub fn alloc(a: &mut crate::layout::PrivAlloc) -> LeadPtrs {
        LeadPtrs {
            seq_addr: a.alloc(1),
            data_addr: a.alloc(1),
            ring_base: a.alloc(1),
            count_addr: a.alloc(1),
        }
    }
}

/// Runs the load-latency-aware scheduler
/// ([`wbsn_isa::schedule_program`]) over `program` when `schedule` is
/// on, returning it untouched otherwise.
///
/// Every generated section passes through here on its way to the
/// linker, so `BuildOptions::schedule` flips all of a benchmark's
/// kernels at once and golden listings can diff the two forms.
pub fn maybe_schedule(program: Program, schedule: bool) -> Program {
    if schedule {
        wbsn_isa::schedule_program(&program).0
    } else {
        program
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wbsn_isa::{Linker, Section};
    use wbsn_sim::{Platform, PlatformConfig, RunExit};

    /// Runs a generated snippet on the single-core platform.
    fn run(emit: Emit) -> Platform {
        let program = emit.assemble().expect("snippet assembles");
        let mut linker = Linker::new();
        linker.add_section(Section::new("main", program));
        linker.set_entry(0, "main");
        let image = linker.link().expect("snippet links");
        let mut config = PlatformConfig::single_core();
        config.shared_words = crate::layout::SHARED_WORDS;
        let mut p = Platform::new(config, &image).expect("platform builds");
        assert_eq!(p.run(1_000_000).expect("runs"), RunExit::AllHalted);
        p
    }

    #[test]
    fn morph_stage_matches_golden_erosion() {
        use wbsn_dsp::morphology::Erosion;
        // Push a fixed sequence through one generated erosion stage,
        // storing each output to shared memory.
        let inputs: [i16; 10] = [5, 3, 8, -2, 7, 7, 0, -9, 4, 1];
        let stage = Stage {
            pos_off: 0x10,
            ring_off: 0x20,
            w: 3,
            is_min: true,
        };
        let mut e = Emit::new();
        e.prologue(crate::layout::SHARED_WORDS);
        for (i, &x) in inputs.iter().enumerate() {
            e.b.load_const_i16(Reg::R1, x);
            e.morph_stage(stage);
            e.b.load_const(Reg::R3, 0x400 + i as u16);
            e.b.push(Instr::sw(Reg::R1, Reg::R3, 0));
        }
        e.b.push(Instr::Halt);
        let p = run(e);

        let mut golden = Erosion::new(3);
        for (i, &x) in inputs.iter().enumerate() {
            let expected = golden.push(x);
            let got = p.peek_dm(0x400 + i as u32).unwrap() as i16;
            assert_eq!(got, expected, "sample {i}");
        }
    }

    #[test]
    fn morph_filter_matches_golden_filter() {
        use crate::layout::PrivAlloc;
        use crate::phases::alloc_filter_stages;
        use wbsn_dsp::morphology::MorphFilter;
        // Fully unrolled (one 8-stage filter emission per sample), so
        // keep the input short enough to fit the instruction memory.
        let inputs: Vec<i16> = (0..14).map(|i| (i * 13 % 47 - 20) as i16).collect();
        let mut a = PrivAlloc::new();
        let scratch = [a.alloc(1), a.alloc(1), a.alloc(1)];
        let stages = alloc_filter_stages(&mut a, 4, 6, 2);
        let mut e = Emit::new();
        e.prologue(crate::layout::SHARED_WORDS);
        for (i, &x) in inputs.iter().enumerate() {
            e.b.load_const_i16(Reg::R1, x);
            e.morph_filter(&stages, scratch);
            e.b.load_const(Reg::R3, 0x400 + i as u16);
            e.b.push(Instr::sw(Reg::R1, Reg::R3, 0));
        }
        e.b.push(Instr::Halt);
        let p = run(e);

        let mut golden = MorphFilter::new(4, 6, 2);
        for (i, &x) in inputs.iter().enumerate() {
            let expected = golden.push(x);
            let got = p.peek_dm(0x400 + i as u32).unwrap() as i16;
            assert_eq!(got, expected, "sample {i}");
        }
    }

    #[test]
    fn ring_store_and_load_round_trip() {
        let mut e = Emit::new();
        e.prologue(crate::layout::SHARED_WORDS);
        // Store 5 values into a ring of 4: the last 4 survive.
        for v in [10i16, 20, 30, 40, 50] {
            e.b.load_const_i16(Reg::R1, v);
            e.ring_store(0x500, 3, 0x30);
        }
        // Load index 4 (= slot 0, holding 50) into r1 and park it.
        e.b.load_const(Reg::R5, 4);
        e.ring_load(Reg::R1, 0x500, 3, Reg::R5);
        e.b.load_const(Reg::R3, 0x600);
        e.b.push(Instr::sw(Reg::R1, Reg::R3, 0));
        e.b.push(Instr::Halt);
        let p = run(e);
        assert_eq!(p.peek_dm(0x30).unwrap(), 5, "count");
        assert_eq!(p.peek_dm(0x500).unwrap(), 50, "slot 0 overwritten");
        assert_eq!(p.peek_dm(0x501).unwrap(), 20);
        assert_eq!(p.peek_dm(0x600).unwrap(), 50, "ring_load");
    }

    #[test]
    fn fresh_labels_are_unique() {
        let mut e = Emit::new();
        let a = e.fresh("x");
        let b = e.fresh("x");
        assert_ne!(a, b);
    }
}
