//! The paper's benchmark applications as generated WBSN ISA programs.
//!
//! Three embedded ECG applications (paper §IV-D) are built from scratch
//! for both the single-core baseline and the 8-core target platform, and
//! — on the multi-core side — in both the proposed HW/SW synchronization
//! style and the busy-wait style of Fig. 6's middle bars:
//!
//! * **3L-MF** — three-lead morphological filtering: three lock-step
//!   conditioning phases, no producer-consumer edges.
//! * **3L-MMD** — three-lead delineation: conditioning + combining +
//!   multi-scale morphological-derivative delineation, using both kinds
//!   of synchronization.
//! * **RP-CLASS** — random-projection heartbeat classification with a
//!   rarely activated four-core delineation chain.
//!
//! Every generated kernel is validated bit-for-bit against the golden
//! models in [`wbsn_dsp`] (see [`golden`] and the crate's integration
//! tests).
//!
//! # Example
//!
//! ```no_run
//! use wbsn_kernels::{build_mf, Arch, BuildOptions};
//! use wbsn_dsp::ecg::{synthesize, EcgConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let app = build_mf(Arch::MultiCore, &BuildOptions::default())?;
//! let rec = synthesize(&EcgConfig::short_test());
//! let mut platform = app.platform(rec.leads.clone())?;
//! platform.run(10_000_000)?;
//! # Ok(())
//! # }
//! ```

pub mod app;
pub mod apps;
pub mod emit;
pub mod golden;
pub mod layout;
pub mod phases;
pub mod single;
pub mod train;

pub use app::{Arch, BuildError, BuildOptions, BuiltApp, SyncApproach};
pub use apps::{build_mf, build_mmd, build_rpclass};
pub use train::ClassifierParams;
