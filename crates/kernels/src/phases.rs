//! Phase builders: generated code for the application phases of the
//! three benchmarks.
//!
//! Each builder emits one phase as a self-contained program following the
//! paper's insertion rules (§III-B step 2): `SNOP` on consumers, `SINC`/
//! `SDEC` pairs on producers and around variable-timing segments of
//! lock-step groups, `SLEEP` wherever a core waits. Busy-wait variants
//! emit the same data path with polling loops instead of the
//! synchronization ISE — the "without the proposed approach"
//! configuration of Fig. 6.

use wbsn_isa::{BranchCond, Instr, IsaError, Program, Reg};

use crate::emit::{Emit, LeadPtrs, Stage};
use crate::layout::{
    self, PrivAlloc, BUF_RING_LEN, COMBINED_COUNT, COMBINED_RING, COMBINED_RING_LEN, EVENT_COUNT,
    EVENT_RING, EVENT_RING_LEN, LABEL_RING, LABEL_RING_LEN, LEAD_COUNT_BASE, OUT_RING_LEN, RP_DIMS,
    SHARED_WORDS, WINDOW_LEN,
};

/// How a phase waits for work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitStyle {
    /// The proposed approach: subscribe/`SNOP`, then `SLEEP`.
    Sleep,
    /// Active waiting on memory-mapped registers / shared words.
    BusyWait,
}

/// Whether a consuming phase sees a contiguous stream (3L-MMD) or the
/// gapped, absolutely-indexed burst stream of RP-CLASS's triggered
/// delineation chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamMode {
    /// Every stream index is produced in order.
    Contiguous,
    /// Only `[TRIG_SEQ, TRIG_SEQ + BURST_LEN)` windows are produced;
    /// consumers jump over the gaps.
    Burst,
}

/// Synchronization-point wiring of a producer/lock-step phase.
#[derive(Debug, Clone, Copy, Default)]
pub struct SyncWiring {
    /// Consume point this phase produces into (`SINC` at start, `SDEC`
    /// when data is ready).
    pub produce_point: Option<u16>,
    /// Branch-recovery point of the phase's lock-step group.
    pub lockstep_point: Option<u16>,
    /// The lock-step point is a preloaded auto-reload barrier: skip the
    /// entry `SINC` (the participants are configured at load time).
    pub lockstep_preloaded: bool,
}

/// Allocates the eight conditioning-filter stages (baseline correction
/// plus noise suppression) in a phase's private space.
pub fn alloc_filter_stages(
    a: &mut PrivAlloc,
    w_open: u16,
    w_close: u16,
    w_noise: u16,
) -> [Stage; 8] {
    let mut stage = |w: u16, is_min: bool| {
        let pos_off = a.alloc(1);
        let ring_off = a.alloc(w);
        Stage {
            pos_off,
            ring_off,
            w,
            is_min,
        }
    };
    [
        stage(w_open, true),   // opening: erode
        stage(w_open, false),  // opening: dilate
        stage(w_close, false), // closing: dilate
        stage(w_close, true),  // closing: erode
        stage(w_noise, true),  // noise opening: erode
        stage(w_noise, false), // noise opening: dilate
        stage(w_noise, false), // noise closing: dilate
        stage(w_noise, true),  // noise closing: erode
    ]
}

/// Private state of a morphological-derivative detector/delineator.
#[derive(Debug, Clone, Copy)]
pub struct MmdState {
    /// Small-scale dilation stage.
    pub sd: Stage,
    /// Small-scale erosion stage.
    pub se: Stage,
    /// Large-scale dilation stage.
    pub ld: Stage,
    /// Large-scale erosion stage.
    pub le: Stage,
    /// Scratch: current input sample.
    pub scx: i16,
    /// Scratch: dilation output / strength stash.
    pub scd: i16,
    /// Scratch: small-scale derivative.
    pub scds: i16,
    /// Hold-off (refractory) counter.
    pub holdoff: i16,
    /// Tracked onset index (sentinel -1 = none); must be initialised
    /// with [`emit_mmd_init`] before the first step.
    pub onset: i16,
    /// Detection threshold.
    pub threshold: i16,
    /// Refractory length in samples.
    pub refractory: u16,
}

/// Allocates an MMD detector's private state.
pub fn alloc_mmd(
    a: &mut PrivAlloc,
    small: u16,
    large: u16,
    threshold: i16,
    refractory: u16,
) -> MmdState {
    let mut stage = |w: u16, is_min: bool| {
        let pos_off = a.alloc(1);
        let ring_off = a.alloc(w);
        Stage {
            pos_off,
            ring_off,
            w,
            is_min,
        }
    };
    let sd = stage(small, false);
    let se = stage(small, true);
    let ld = stage(large, false);
    let le = stage(large, true);
    MmdState {
        sd,
        se,
        ld,
        le,
        scx: a.alloc(1),
        scd: a.alloc(1),
        scds: a.alloc(1),
        holdoff: a.alloc(1),
        onset: a.alloc(1),
        threshold,
        refractory,
    }
}

/// Emits the detector's start-up initialisation (the onset sentinel).
/// Clobbers `r2`.
pub fn emit_mmd_init(e: &mut Emit, st: &MmdState) {
    e.b.load_const_i16(Reg::R2, -1);
    e.b.push(Instr::sw(Reg::R2, Reg::R6, st.onset));
}

/// Emits one MMD step: sample in `r1`, the current stream index in the
/// private word `idx_off`; on detection, `r1` holds the response
/// strength, `st.onset` the wave-onset index, and `fire` is emitted.
/// Clobbers `r1..r5`.
///
/// Mirrors `wbsn_dsp::mmd::MmdDelineator::push` exactly, including the
/// onset tracking against the half-threshold.
pub fn emit_mmd_step<F: FnOnce(&mut Emit)>(e: &mut Emit, st: &MmdState, idx_off: i16, fire: F) {
    let chk = e.fresh("mmd_chk");
    let done = e.fresh("mmd_done");
    let clear_onset = e.fresh("mmd_clear_onset");
    let have_onset = e.fresh("mmd_have_onset");
    // Small-scale derivative ds = dil_s + ero_s - 2x.
    e.b.push(Instr::sw(Reg::R1, Reg::R6, st.scx));
    e.morph_stage(st.sd);
    e.b.push(Instr::sw(Reg::R1, Reg::R6, st.scd));
    e.b.push(Instr::lw(Reg::R1, Reg::R6, st.scx));
    e.morph_stage(st.se);
    e.b.push(Instr::lw(Reg::R2, Reg::R6, st.scd));
    e.b.push(Instr::add(Reg::R1, Reg::R1, Reg::R2));
    e.b.push(Instr::lw(Reg::R2, Reg::R6, st.scx));
    e.b.push(Instr::add(Reg::R2, Reg::R2, Reg::R2));
    e.b.push(Instr::sub(Reg::R1, Reg::R1, Reg::R2));
    e.b.push(Instr::sw(Reg::R1, Reg::R6, st.scds));
    // Large-scale derivative dl.
    e.b.push(Instr::lw(Reg::R1, Reg::R6, st.scx));
    e.morph_stage(st.ld);
    e.b.push(Instr::sw(Reg::R1, Reg::R6, st.scd));
    e.b.push(Instr::lw(Reg::R1, Reg::R6, st.scx));
    e.morph_stage(st.le);
    e.b.push(Instr::lw(Reg::R2, Reg::R6, st.scd));
    e.b.push(Instr::add(Reg::R1, Reg::R1, Reg::R2));
    e.b.push(Instr::lw(Reg::R2, Reg::R6, st.scx));
    e.b.push(Instr::add(Reg::R2, Reg::R2, Reg::R2));
    e.b.push(Instr::sub(Reg::R1, Reg::R1, Reg::R2));
    // response = dl - ds.
    e.b.push(Instr::lw(Reg::R2, Reg::R6, st.scds));
    e.b.push(Instr::sub(Reg::R1, Reg::R1, Reg::R2));
    // Hold-off gate.
    e.b.push(Instr::lw(Reg::R2, Reg::R6, st.holdoff));
    e.branch(BranchCond::Eq, Reg::R2, Reg::R0, &chk);
    e.b.push(Instr::addi(Reg::R2, Reg::R2, -1));
    e.b.push(Instr::sw(Reg::R2, Reg::R6, st.holdoff));
    e.b.jmp_to(&done);
    e.label(&chk);
    // Onset tracking against the half-threshold.
    e.b.load_const_i16(Reg::R2, st.threshold >> 1);
    e.branch(BranchCond::Ge, Reg::R2, Reg::R1, &clear_onset); // resp <= th_low
    e.b.push(Instr::lw(Reg::R2, Reg::R6, st.onset));
    e.branch(BranchCond::Ge, Reg::R2, Reg::R0, &have_onset); // already tracked
    e.b.push(Instr::lw(Reg::R2, Reg::R6, idx_off));
    e.b.push(Instr::sw(Reg::R2, Reg::R6, st.onset));
    e.label(&have_onset);
    e.b.load_const_i16(Reg::R2, st.threshold);
    e.branch(BranchCond::Ge, Reg::R2, Reg::R1, &done); // resp <= th
    e.b.load_const(Reg::R2, st.refractory);
    e.b.push(Instr::sw(Reg::R2, Reg::R6, st.holdoff));
    fire(e);
    e.b.load_const_i16(Reg::R2, -1);
    e.b.push(Instr::sw(Reg::R2, Reg::R6, st.onset));
    e.b.jmp_to(&done);
    e.label(&clear_onset);
    e.b.load_const_i16(Reg::R2, -1);
    e.b.push(Instr::sw(Reg::R2, Reg::R6, st.onset));
    e.label(&done);
}

/// Emits the fiducial-event store used by delineator phases: appends
/// `(onset, index, strength)` to the shared event ring (four-word
/// stride). Expects the response strength in `r1`, the stream index in
/// the private word `idx_off` and the tracked onset in `st.onset`.
/// Clobbers `r2..r5`.
pub fn emit_event_store(e: &mut Emit, st: &MmdState, idx_off: i16) {
    e.b.push(Instr::sw(Reg::R1, Reg::R6, st.scd)); // stash strength
    e.b.load_const(Reg::R3, EVENT_COUNT as u16);
    e.b.push(Instr::lw(Reg::R2, Reg::R3, 0));
    e.b.push(Instr::addi(Reg::R5, Reg::R2, 1));
    e.b.push(Instr::AluImm {
        op: wbsn_isa::AluImmOp::Andi,
        rd: Reg::R2,
        ra: Reg::R2,
        imm: (EVENT_RING_LEN - 1) as i16,
    });
    e.b.push(Instr::AluImm {
        op: wbsn_isa::AluImmOp::Slli,
        rd: Reg::R2,
        ra: Reg::R2,
        imm: 2,
    });
    e.b.load_const(Reg::R3, EVENT_RING as u16);
    e.b.push(Instr::add(Reg::R3, Reg::R3, Reg::R2));
    e.b.push(Instr::lw(Reg::R4, Reg::R6, st.onset));
    e.b.push(Instr::sw(Reg::R4, Reg::R3, 0));
    e.b.push(Instr::lw(Reg::R4, Reg::R6, idx_off));
    e.b.push(Instr::sw(Reg::R4, Reg::R3, 1));
    e.b.push(Instr::lw(Reg::R4, Reg::R6, st.scd));
    e.b.push(Instr::sw(Reg::R4, Reg::R3, 2));
    // Publish the event only after every word is written.
    e.b.load_const(Reg::R3, EVENT_COUNT as u16);
    e.b.push(Instr::sw(Reg::R5, Reg::R3, 0));
}

/// Builds the shared conditioning (acquire + filter) phase of a
/// lock-step group.
///
/// Every core of the group executes this *same* binary: at start-up the
/// phase reads the `CORE_ID` register, derives its lead index
/// (`core_id - first_core`) and precomputes its ADC and output-ring
/// pointers, so the group's instruction fetches stay identical and
/// broadcast. Per sample it runs the 4-stage morphological filter and
/// appends the result to the lead's shared output ring. With
/// [`WaitStyle::Sleep`] the phase sleeps between samples; the optional
/// [`SyncWiring`] adds producer signaling and the lock-step barrier of
/// the paper's insertion step.
///
/// # Errors
///
/// Propagates assembly errors (a generator bug).
pub fn build_filter_phase(
    first_core: u16,
    lead_base: u16,
    wait: WaitStyle,
    wiring: SyncWiring,
) -> Result<Program, IsaError> {
    let mut a = PrivAlloc::new();
    let last_seq = a.alloc(1);
    let scratch = [a.alloc(1), a.alloc(1), a.alloc(1)];
    let ptrs = LeadPtrs::alloc(&mut a);
    let stages = alloc_filter_stages(
        &mut a,
        layout::MF_OPEN_W,
        layout::MF_CLOSE_W,
        layout::MF_NOISE_W,
    );

    let mut e = Emit::new();
    e.prologue(SHARED_WORDS);
    e.lead_init(first_core, lead_base, &ptrs, wait == WaitStyle::Sleep);
    let top = e.fresh("loop");
    e.label(&top);
    if wait == WaitStyle::Sleep {
        e.b.push(Instr::Sleep);
    }
    // Fresh-sample check.
    e.read_adc_seq_ind(Reg::R1, &ptrs);
    e.b.push(Instr::lw(Reg::R3, Reg::R6, last_seq));
    e.branch(BranchCond::Eq, Reg::R1, Reg::R3, &top);
    e.b.push(Instr::sw(Reg::R1, Reg::R6, last_seq));
    if let Some(p) = wiring.produce_point {
        e.b.push(Instr::sinc(p));
    }
    if let Some(p) = wiring.lockstep_point {
        if !wiring.lockstep_preloaded {
            e.b.push(Instr::sinc(p));
        }
    }
    e.read_adc_data_ind(Reg::R1, &ptrs);
    e.morph_filter(&stages, scratch);
    e.ring_store_ind(&ptrs, (OUT_RING_LEN - 1) as u16);
    if let Some(p) = wiring.lockstep_point {
        e.b.push(Instr::sdec(p));
        e.b.push(Instr::Sleep); // barrier: resume in lock-step
    }
    if let Some(p) = wiring.produce_point {
        e.b.push(Instr::sdec(p));
    }
    e.b.jmp_to(&top);
    e.assemble()
}

/// Builds the combining phase of 3L-MMD / RP-CLASS: consumes the three
/// lead rings, emits `(|y0| + |y1| + |y2|) >> 2` per sample into the
/// combined ring.
///
/// `consume_point` is the point the three producers signal
/// (`SNOP` + `SLEEP` here); `produce_point` the point toward the
/// delineator. Busy-wait variants poll the lead counters instead.
///
/// # Errors
///
/// Propagates assembly errors (a generator bug).
pub fn build_combiner_phase(
    wait: WaitStyle,
    mode: StreamMode,
    consume_point: Option<u16>,
    produce_point: Option<u16>,
) -> Result<Program, IsaError> {
    let mut a = PrivAlloc::new();
    let rd_idx = a.alloc(1);

    let mut e = Emit::new();
    e.prologue(SHARED_WORDS);
    let top = e.fresh("loop");
    let work = e.fresh("work");
    let per_sample = e.fresh("per_sample");
    e.label(&top);
    if wait == WaitStyle::Sleep {
        if let Some(p) = consume_point {
            e.b.push(Instr::snop(p));
        }
        e.b.push(Instr::Sleep);
    }
    // avail into r7: the minimum of the producing leads' counters.
    match mode {
        StreamMode::Contiguous => {
            // All three leads produce continuously.
            e.b.load_const(Reg::R3, LEAD_COUNT_BASE as u16);
            e.b.push(Instr::lw(Reg::R7, Reg::R3, 0));
            e.b.push(Instr::lw(Reg::R2, Reg::R3, 1));
            e.b.push(Instr::min(Reg::R7, Reg::R7, Reg::R2));
            e.b.push(Instr::lw(Reg::R2, Reg::R3, 2));
            e.b.push(Instr::min(Reg::R7, Reg::R7, Reg::R2));
        }
        StreamMode::Burst => {
            // Lead 0 is produced continuously by the classifier's
            // conditioner; leads 1 and 2 only during bursts, whose
            // counters carry absolute stream indices.
            e.b.load_const(Reg::R3, LEAD_COUNT_BASE as u16);
            e.b.push(Instr::lw(Reg::R7, Reg::R3, 1));
            e.b.push(Instr::lw(Reg::R2, Reg::R3, 2));
            e.b.push(Instr::min(Reg::R7, Reg::R7, Reg::R2));
        }
    }
    e.b.push(Instr::lw(Reg::R5, Reg::R6, rd_idx));
    if mode == StreamMode::Burst {
        // Jump over the gap to the current burst's start index.
        e.b.load_const(Reg::R3, layout::TRIG_SEQ as u16);
        e.b.push(Instr::lw(Reg::R2, Reg::R3, 0));
        e.b.push(Instr::max(Reg::R5, Reg::R5, Reg::R2));
        e.b.push(Instr::sw(Reg::R5, Reg::R6, rd_idx));
    }
    e.branch(BranchCond::Lt, Reg::R5, Reg::R7, &work);
    e.b.jmp_to(&top);
    e.label(&work);
    if let Some(p) = produce_point {
        e.b.push(Instr::sinc(p));
    }
    e.label(&per_sample);
    // acc = (|ring0[rd]| >> 2) + (|ring1[rd]| >> 2) + (|ring2[rd]| >> 2)
    let mask = (OUT_RING_LEN - 1) as u16;
    e.ring_load(Reg::R4, layout::out_ring(0), mask, Reg::R5);
    e.b.push(Instr::Abs {
        rd: Reg::R4,
        ra: Reg::R4,
    });
    e.b.push(Instr::srai(Reg::R1, Reg::R4, 2));
    for lead in 1..3 {
        e.ring_load(Reg::R4, layout::out_ring(lead), mask, Reg::R5);
        e.b.push(Instr::Abs {
            rd: Reg::R4,
            ra: Reg::R4,
        });
        e.b.push(Instr::srai(Reg::R4, Reg::R4, 2));
        e.b.push(Instr::add(Reg::R1, Reg::R1, Reg::R4));
    }
    // combined[rd & mask] = acc; COMBINED_COUNT = rd + 1 (the counter
    // carries the absolute index so burst gaps propagate downstream).
    e.b.push(Instr::AluImm {
        op: wbsn_isa::AluImmOp::Andi,
        rd: Reg::R2,
        ra: Reg::R5,
        imm: (COMBINED_RING_LEN - 1) as i16,
    });
    e.b.load_const(Reg::R3, COMBINED_RING as u16);
    e.b.push(Instr::add(Reg::R3, Reg::R3, Reg::R2));
    e.b.push(Instr::sw(Reg::R1, Reg::R3, 0));
    e.b.push(Instr::addi(Reg::R2, Reg::R5, 1));
    e.b.load_const(Reg::R3, COMBINED_COUNT as u16);
    e.b.push(Instr::sw(Reg::R2, Reg::R3, 0));
    e.b.push(Instr::addi(Reg::R5, Reg::R5, 1));
    e.b.push(Instr::sw(Reg::R5, Reg::R6, rd_idx));
    e.branch(BranchCond::Lt, Reg::R5, Reg::R7, &per_sample);
    if let Some(p) = produce_point {
        e.b.push(Instr::sdec(p));
    }
    e.b.jmp_to(&top);
    e.assemble()
}

/// Builds the delineation phase: consumes the combined ring through a
/// multi-scale morphological-derivative detector and appends fiducial
/// events to the shared event ring.
///
/// # Errors
///
/// Propagates assembly errors (a generator bug).
pub fn build_delineator_phase(
    wait: WaitStyle,
    mode: StreamMode,
    consume_point: Option<u16>,
) -> Result<Program, IsaError> {
    let mut a = PrivAlloc::new();
    let rd_idx = a.alloc(1);
    let st = alloc_mmd(
        &mut a,
        layout::MMD_SMALL_W,
        layout::MMD_LARGE_W,
        layout::MMD_THRESHOLD,
        layout::MMD_REFRACTORY,
    );

    let mut e = Emit::new();
    e.prologue(SHARED_WORDS);
    emit_mmd_init(&mut e, &st);
    let top = e.fresh("loop");
    let work = e.fresh("work");
    e.label(&top);
    if wait == WaitStyle::Sleep {
        if let Some(p) = consume_point {
            e.b.push(Instr::snop(p));
        }
        e.b.push(Instr::Sleep);
    }
    e.b.load_const(Reg::R3, COMBINED_COUNT as u16);
    e.b.push(Instr::lw(Reg::R7, Reg::R3, 0));
    e.b.push(Instr::lw(Reg::R5, Reg::R6, rd_idx));
    if mode == StreamMode::Burst {
        // Jump over the gap to the current burst's start index; the
        // detector's window state persists across bursts.
        e.b.load_const(Reg::R3, layout::TRIG_SEQ as u16);
        e.b.push(Instr::lw(Reg::R2, Reg::R3, 0));
        e.b.push(Instr::max(Reg::R5, Reg::R5, Reg::R2));
        e.b.push(Instr::sw(Reg::R5, Reg::R6, rd_idx));
    }
    e.branch(BranchCond::Lt, Reg::R5, Reg::R7, &work);
    e.b.jmp_to(&top);
    e.label(&work);
    e.ring_load(
        Reg::R1,
        COMBINED_RING,
        (COMBINED_RING_LEN - 1) as u16,
        Reg::R5,
    );
    emit_mmd_step(&mut e, &st, rd_idx, |e| emit_event_store(e, &st, rd_idx));
    e.b.push(Instr::lw(Reg::R5, Reg::R6, rd_idx));
    e.b.push(Instr::addi(Reg::R5, Reg::R5, 1));
    e.b.push(Instr::sw(Reg::R5, Reg::R6, rd_idx));
    e.branch(BranchCond::Lt, Reg::R5, Reg::R7, &work);
    e.b.jmp_to(&top);
    e.assemble()
}

/// Private state of the RP-CLASS classifier's beat front end.
#[derive(Debug, Clone, Copy)]
pub struct ClassifierState {
    /// Private word holding the current conditioned-stream index (used
    /// for trigger publication).
    pub idx_off: i16,
    /// Window ring offset (32 samples).
    pub window_ring: i16,
    /// Window ring position word.
    pub window_pos: i16,
    /// Projection output vector (`RP_DIMS` words).
    pub proj: i16,
    /// Scratch for the normal-centroid distance.
    pub dist_n: i16,
    /// The beat detector.
    pub det: MmdState,
}

/// Allocates the classifier's private state.
pub fn alloc_classifier(a: &mut PrivAlloc) -> ClassifierState {
    let idx_off = a.alloc(1);
    let window_ring = a.alloc(WINDOW_LEN);
    let window_pos = a.alloc(1);
    let proj = a.alloc(RP_DIMS);
    let dist_n = a.alloc(1);
    let det = alloc_mmd(
        a,
        layout::MMD_SMALL_W,
        layout::MMD_LARGE_W,
        layout::DET_THRESHOLD,
        layout::DET_REFRACTORY,
    );
    ClassifierState {
        idx_off,
        window_ring,
        window_pos,
        proj,
        dist_n,
        det,
    }
}

/// Emits the window-ring push: raw sample in `r1` (preserved).
/// Clobbers `r2`, `r3`.
pub fn emit_window_push(e: &mut Emit, st: &ClassifierState) {
    e.b.push(Instr::lw(Reg::R2, Reg::R6, st.window_pos));
    e.b.push(Instr::addi(Reg::R3, Reg::R2, st.window_ring));
    e.b.push(Instr::add(Reg::R3, Reg::R3, Reg::R6));
    e.b.push(Instr::sw(Reg::R1, Reg::R3, 0));
    e.b.push(Instr::addi(Reg::R2, Reg::R2, 1));
    e.b.push(Instr::AluImm {
        op: wbsn_isa::AluImmOp::Andi,
        rd: Reg::R2,
        ra: Reg::R2,
        imm: (WINDOW_LEN - 1) as i16,
    });
    e.b.push(Instr::sw(Reg::R2, Reg::R6, st.window_pos));
}

/// Emits the projection + nearest-centroid classification + trigger
/// sequence (the fire action of the classifier's detector). Reads the
/// window ring, writes the label ring and counters, bumps the trigger
/// counter for pathological beats. Clobbers every scratch register.
pub fn emit_classify(e: &mut Emit, st: &ClassifierState) {
    // Projection: proj[k] = Σ_i sign[k][i] · (window[(pos + i) & 31] >> 3)
    for k in 0..RP_DIMS as usize {
        let inner = e.fresh("proj_inner");
        e.b.load_const(Reg::R7, layout::rp_row(k) as u16);
        e.b.load_const(Reg::R4, 0); // i
        e.b.load_const(Reg::R5, 0); // acc
        e.label(&inner);
        e.b.push(Instr::lw(Reg::R2, Reg::R6, st.window_pos));
        e.b.push(Instr::add(Reg::R2, Reg::R2, Reg::R4));
        e.b.push(Instr::AluImm {
            op: wbsn_isa::AluImmOp::Andi,
            rd: Reg::R2,
            ra: Reg::R2,
            imm: (WINDOW_LEN - 1) as i16,
        });
        e.b.push(Instr::addi(Reg::R2, Reg::R2, st.window_ring));
        e.b.push(Instr::add(Reg::R2, Reg::R2, Reg::R6));
        e.b.push(Instr::lw(Reg::R3, Reg::R2, 0)); // x
        e.b.push(Instr::srai(Reg::R3, Reg::R3, layout::RP_PRE_SHIFT as i16));
        e.b.push(Instr::lw(Reg::R2, Reg::R7, 0)); // sign (+1/-1)
        e.b.push(Instr::Alu {
            op: wbsn_isa::AluOp::Mul,
            rd: Reg::R2,
            ra: Reg::R2,
            rb: Reg::R3,
        });
        e.b.push(Instr::add(Reg::R5, Reg::R5, Reg::R2));
        e.b.push(Instr::addi(Reg::R7, Reg::R7, 1));
        e.b.push(Instr::addi(Reg::R4, Reg::R4, 1));
        e.b.load_const(Reg::R3, WINDOW_LEN);
        e.branch(BranchCond::Ne, Reg::R4, Reg::R3, &inner);
        e.b.push(Instr::sw(Reg::R5, Reg::R6, st.proj + k as i16));
    }
    // L1 distances to the two centroids (unrolled).
    for (centroid, out) in [
        (layout::RP_CENTROID_NORMAL, Some(st.dist_n)),
        (layout::RP_CENTROID_PATH, None),
    ] {
        e.b.load_const(Reg::R5, 0); // acc
        for d in 0..RP_DIMS as usize {
            e.b.push(Instr::lw(Reg::R1, Reg::R6, st.proj + d as i16));
            e.b.load_const(Reg::R3, (centroid + d as u32) as u16);
            e.b.push(Instr::lw(Reg::R2, Reg::R3, 0));
            e.b.push(Instr::sub(Reg::R1, Reg::R1, Reg::R2));
            e.b.push(Instr::Abs {
                rd: Reg::R1,
                ra: Reg::R1,
            });
            e.b.push(Instr::add(Reg::R5, Reg::R5, Reg::R1));
        }
        if let Some(off) = out {
            e.b.push(Instr::sw(Reg::R5, Reg::R6, off));
        }
    }
    // label = (dist_path < dist_normal) — r5 holds dist_path.
    let normal = e.fresh("clf_normal");
    let store = e.fresh("clf_store");
    e.b.push(Instr::lw(Reg::R2, Reg::R6, st.dist_n));
    e.b.load_const(Reg::R1, 0);
    e.branch(BranchCond::Ge, Reg::R5, Reg::R2, &normal); // dp >= dn → normal
    e.b.load_const(Reg::R1, 1);
    // pathological: bump PATH_COUNT and publish the delineation trigger
    // (burst start index first, then the counter the chain polls).
    e.b.load_const(Reg::R3, layout::PATH_COUNT as u16);
    e.b.push(Instr::lw(Reg::R2, Reg::R3, 0));
    e.b.push(Instr::addi(Reg::R2, Reg::R2, 1));
    e.b.push(Instr::sw(Reg::R2, Reg::R3, 0));
    let skip_trig = e.fresh("skip_trig");
    e.b.push(Instr::lw(Reg::R2, Reg::R6, st.idx_off));
    e.b.load_const(Reg::R3, layout::BURST_LEN - 1);
    e.branch(BranchCond::Lt, Reg::R2, Reg::R3, &skip_trig); // too early
    e.b.push(Instr::sub(Reg::R2, Reg::R2, Reg::R3)); // S = idx - (BURST_LEN - 1)
    e.b.load_const(Reg::R3, layout::TRIG_SEQ as u16);
    e.b.push(Instr::sw(Reg::R2, Reg::R3, 0));
    e.b.load_const(Reg::R3, layout::TRIG_FLAG as u16);
    e.b.push(Instr::lw(Reg::R2, Reg::R3, 0));
    e.b.push(Instr::addi(Reg::R2, Reg::R2, 1));
    e.b.push(Instr::sw(Reg::R2, Reg::R3, 0));
    e.label(&skip_trig);
    e.b.load_const(Reg::R1, 1); // the label value (untouched by the trigger path)
    e.b.jmp_to(&store);
    e.label(&normal);
    e.label(&store);
    // Label ring: ring[BEAT_COUNT & mask] = label; BEAT_COUNT += 1.
    e.ring_store(LABEL_RING, (LABEL_RING_LEN - 1) as u16, layout::BEAT_COUNT);
}

/// Private state of a buffered (triggered) conditioning phase.
#[derive(Debug, Clone, Copy)]
pub struct BufferedFilterState {
    last_seq: i16,
    ptrs: LeadPtrs,
    buf_ring: i16,
    buf_wr: i16,
    last_trig: i16,
    burst_rem: i16,
    burst_src: i16,
    cur_idx: i16,
    chunk_save: i16,
    scratch: [i16; 3],
    stages: [Stage; 8],
}

/// Builds one RP-CLASS chain conditioning phase: buffers every raw
/// sample cheaply; when the classifier bumps the trigger counter,
/// filters a [`layout::BURST_LEN`]-sample window in
/// [`layout::BURST_CHUNK`]-sized chunks spread over subsequent wakes
/// (so the real-time constraint stays per-sample).
///
/// # Errors
///
/// Propagates assembly errors (a generator bug).
pub fn build_triggered_filter_phase(
    first_core: u16,
    lead_base: u16,
    wait: WaitStyle,
    wiring: SyncWiring,
) -> Result<Program, IsaError> {
    let mut a = PrivAlloc::new();
    let st = BufferedFilterState {
        last_seq: a.alloc(1),
        ptrs: LeadPtrs::alloc(&mut a),
        buf_ring: a.alloc(BUF_RING_LEN),
        buf_wr: a.alloc(1),
        last_trig: a.alloc(1),
        burst_rem: a.alloc(1),
        burst_src: a.alloc(1),
        cur_idx: a.alloc(1),
        chunk_save: a.alloc(1),
        scratch: [a.alloc(1), a.alloc(1), a.alloc(1)],
        stages: alloc_filter_stages(
            &mut a,
            layout::MF_OPEN_W,
            layout::MF_CLOSE_W,
            layout::MF_NOISE_W,
        ),
    };

    let mut e = Emit::new();
    e.prologue(SHARED_WORDS);
    e.lead_init(first_core, lead_base, &st.ptrs, wait == WaitStyle::Sleep);
    let top = e.fresh("loop");
    let after_buf = e.fresh("after_buf");
    let no_trig = e.fresh("no_trig");
    let chunk_loop = e.fresh("chunk");
    let chunk_done = e.fresh("chunk_done");
    e.label(&top);
    if wait == WaitStyle::Sleep {
        e.b.push(Instr::Sleep);
    }
    // Only fresh-sample wakes advance the phase. Spurious wakes (the
    // SINC-set producer flag means every consume-point fire also wakes
    // this core, per the paper's "resume all registered cores") go
    // straight back to sleep, which paces burst draining at one chunk
    // per sampling period and keeps the real-time window bounded.
    e.read_adc_seq_ind(Reg::R1, &st.ptrs);
    e.b.push(Instr::lw(Reg::R3, Reg::R6, st.last_seq));
    e.branch(BranchCond::Eq, Reg::R1, Reg::R3, &top);
    e.b.push(Instr::sw(Reg::R1, Reg::R6, st.last_seq));
    e.read_adc_data_ind(Reg::R1, &st.ptrs);
    e.b.push(Instr::lw(Reg::R2, Reg::R6, st.buf_wr));
    e.b.push(Instr::AluImm {
        op: wbsn_isa::AluImmOp::Andi,
        rd: Reg::R3,
        ra: Reg::R2,
        imm: (BUF_RING_LEN - 1) as i16,
    });
    e.b.push(Instr::addi(Reg::R3, Reg::R3, st.buf_ring));
    e.b.push(Instr::add(Reg::R3, Reg::R3, Reg::R6));
    e.b.push(Instr::sw(Reg::R1, Reg::R3, 0));
    e.b.push(Instr::addi(Reg::R2, Reg::R2, 1));
    e.b.push(Instr::sw(Reg::R2, Reg::R6, st.buf_wr));
    e.label(&after_buf);
    // New trigger? (only honoured between bursts)
    e.b.load_const(Reg::R3, layout::TRIG_FLAG as u16);
    e.b.push(Instr::lw(Reg::R2, Reg::R3, 0));
    e.b.push(Instr::lw(Reg::R3, Reg::R6, st.last_trig));
    e.branch(BranchCond::Eq, Reg::R2, Reg::R3, &no_trig);
    e.b.push(Instr::lw(Reg::R4, Reg::R6, st.burst_rem));
    e.branch(BranchCond::Ne, Reg::R4, Reg::R0, &no_trig);
    e.b.push(Instr::sw(Reg::R2, Reg::R6, st.last_trig));
    e.b.load_const(Reg::R4, layout::BURST_LEN);
    e.b.push(Instr::sw(Reg::R4, Reg::R6, st.burst_rem));
    // The burst covers the absolute indices published by the classifier.
    e.b.load_const(Reg::R3, layout::TRIG_SEQ as u16);
    e.b.push(Instr::lw(Reg::R2, Reg::R3, 0));
    e.b.push(Instr::sw(Reg::R2, Reg::R6, st.burst_src));
    e.label(&no_trig);
    // Burst chunk.
    e.b.push(Instr::lw(Reg::R4, Reg::R6, st.burst_rem));
    e.branch(BranchCond::Eq, Reg::R4, Reg::R0, &top);
    if let Some(p) = wiring.produce_point {
        e.b.push(Instr::sinc(p));
    }
    if let Some(p) = wiring.lockstep_point {
        if !wiring.lockstep_preloaded {
            e.b.push(Instr::sinc(p));
        }
    }
    e.b.load_const(Reg::R5, layout::BURST_CHUNK);
    e.label(&chunk_loop);
    e.b.push(Instr::lw(Reg::R2, Reg::R6, st.burst_src));
    e.b.push(Instr::AluImm {
        op: wbsn_isa::AluImmOp::Andi,
        rd: Reg::R3,
        ra: Reg::R2,
        imm: (BUF_RING_LEN - 1) as i16,
    });
    e.b.push(Instr::addi(Reg::R3, Reg::R3, st.buf_ring));
    e.b.push(Instr::add(Reg::R3, Reg::R3, Reg::R6));
    e.b.push(Instr::lw(Reg::R1, Reg::R3, 0));
    e.b.push(Instr::sw(Reg::R2, Reg::R6, st.cur_idx));
    e.b.push(Instr::addi(Reg::R2, Reg::R2, 1));
    e.b.push(Instr::sw(Reg::R2, Reg::R6, st.burst_src));
    e.b.push(Instr::sw(Reg::R5, Reg::R6, st.chunk_save));
    e.morph_filter(&st.stages, st.scratch);
    // out[idx & mask] = y; count = idx + 1 (absolute indices).
    e.b.push(Instr::lw(Reg::R2, Reg::R6, st.cur_idx));
    e.b.push(Instr::AluImm {
        op: wbsn_isa::AluImmOp::Andi,
        rd: Reg::R3,
        ra: Reg::R2,
        imm: (OUT_RING_LEN - 1) as i16,
    });
    e.b.push(Instr::lw(Reg::R4, Reg::R6, st.ptrs.ring_base));
    e.b.push(Instr::add(Reg::R3, Reg::R3, Reg::R4));
    e.b.push(Instr::sw(Reg::R1, Reg::R3, 0));
    e.b.push(Instr::addi(Reg::R2, Reg::R2, 1));
    e.b.push(Instr::lw(Reg::R3, Reg::R6, st.ptrs.count_addr));
    e.b.push(Instr::sw(Reg::R2, Reg::R3, 0));
    e.b.push(Instr::lw(Reg::R2, Reg::R6, st.burst_rem));
    e.b.push(Instr::addi(Reg::R2, Reg::R2, -1));
    e.b.push(Instr::sw(Reg::R2, Reg::R6, st.burst_rem));
    e.b.push(Instr::lw(Reg::R5, Reg::R6, st.chunk_save));
    e.b.push(Instr::addi(Reg::R5, Reg::R5, -1));
    e.branch(BranchCond::Eq, Reg::R2, Reg::R0, &chunk_done);
    e.branch(BranchCond::Ne, Reg::R5, Reg::R0, &chunk_loop);
    e.label(&chunk_done);
    if let Some(p) = wiring.lockstep_point {
        e.b.push(Instr::sdec(p));
        e.b.push(Instr::Sleep);
    }
    if let Some(p) = wiring.produce_point {
        e.b.push(Instr::sdec(p));
    }
    e.b.jmp_to(&top);
    e.assemble()
}

/// Builds the RP-CLASS classifier phase (beat detection on the raw lead,
/// projection, nearest-centroid labelling and chain triggering).
///
/// # Errors
///
/// Propagates assembly errors (a generator bug).
pub fn build_classifier_phase(
    wait: WaitStyle,
    consume_point: Option<u16>,
) -> Result<Program, IsaError> {
    let mut a = PrivAlloc::new();
    let st = alloc_classifier(&mut a);

    let mut e = Emit::new();
    e.prologue(SHARED_WORDS);
    emit_mmd_init(&mut e, &st.det);
    let top = e.fresh("loop");
    let check = e.fresh("check");
    let work = e.fresh("work");
    e.label(&top);
    if wait == WaitStyle::Sleep {
        if let Some(p) = consume_point {
            e.b.push(Instr::snop(p));
        }
        e.b.push(Instr::Sleep);
    }
    // avail = conditioned lead-0 samples produced so far. Recomputed on
    // every iteration: the classification fire path clobbers every
    // scratch register, so no loop bound survives a detected beat.
    e.label(&check);
    e.b.load_const(Reg::R3, LEAD_COUNT_BASE as u16);
    e.b.push(Instr::lw(Reg::R7, Reg::R3, 0));
    e.b.push(Instr::lw(Reg::R5, Reg::R6, st.idx_off));
    e.branch(BranchCond::Lt, Reg::R5, Reg::R7, &work);
    e.b.jmp_to(&top);
    e.label(&work);
    e.ring_load(
        Reg::R1,
        layout::out_ring(0),
        (OUT_RING_LEN - 1) as u16,
        Reg::R5,
    );
    emit_window_push(&mut e, &st);
    let det = st.det;
    emit_mmd_step(&mut e, &det, st.idx_off, |e| emit_classify(e, &st));
    e.b.push(Instr::lw(Reg::R5, Reg::R6, st.idx_off));
    e.b.push(Instr::addi(Reg::R5, Reg::R5, 1));
    e.b.push(Instr::sw(Reg::R5, Reg::R6, st.idx_off));
    e.b.jmp_to(&check);
    e.assemble()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_assemble_and_have_sync_overhead_only_when_wired() {
        let plain = build_filter_phase(0, 0, WaitStyle::BusyWait, SyncWiring::default()).unwrap();
        assert_eq!(plain.sync_instr_count(), 0);
        let wired = build_filter_phase(
            0,
            0,
            WaitStyle::Sleep,
            SyncWiring {
                produce_point: Some(0),
                lockstep_point: Some(1),
                lockstep_preloaded: false,
            },
        )
        .unwrap();
        // subscribe-SLEEP + SINC×2 + SDEC×2 + barrier SLEEP.
        assert_eq!(wired.sync_instr_count(), 6);
        assert!(wired.len() > plain.len());
    }

    #[test]
    fn combiner_and_delineator_assemble() {
        let c = build_combiner_phase(WaitStyle::Sleep, StreamMode::Contiguous, Some(0), Some(1))
            .unwrap();
        assert!(c.sync_instr_count() >= 3);
        let d = build_delineator_phase(WaitStyle::Sleep, StreamMode::Contiguous, Some(1)).unwrap();
        assert!(d.sync_instr_count() >= 2);
        let bw = build_combiner_phase(WaitStyle::BusyWait, StreamMode::Burst, None, None).unwrap();
        assert_eq!(bw.sync_instr_count(), 0);
    }

    #[test]
    fn classifier_and_triggered_filter_assemble() {
        let c = build_classifier_phase(WaitStyle::Sleep, Some(0)).unwrap();
        assert!(c.len() > 200, "projection should be substantial code");
        let f = build_triggered_filter_phase(
            1,
            1,
            WaitStyle::Sleep,
            SyncWiring {
                produce_point: Some(1),
                lockstep_point: Some(3),
                lockstep_preloaded: false,
            },
        )
        .unwrap();
        assert!(f.sync_instr_count() >= 5);
    }

    #[test]
    fn phase_code_fits_an_instruction_bank() {
        for p in [
            build_filter_phase(2, 0, WaitStyle::Sleep, SyncWiring::default()).unwrap(),
            build_classifier_phase(WaitStyle::Sleep, Some(0)).unwrap(),
            build_triggered_filter_phase(0, 0, WaitStyle::BusyWait, SyncWiring::default()).unwrap(),
            build_combiner_phase(WaitStyle::Sleep, StreamMode::Contiguous, Some(0), Some(1))
                .unwrap(),
            build_delineator_phase(WaitStyle::BusyWait, StreamMode::Burst, None).unwrap(),
        ] {
            assert!(p.len() < wbsn_isa::IM_BANK_WORDS, "{} words", p.len());
        }
    }
}
