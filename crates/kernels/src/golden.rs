//! Golden reference pipelines: the benchmark data paths computed in
//! plain Rust over the same fixed-point operations as the generated
//! kernels, for bit-exact validation of simulator runs.

use wbsn_dsp::ecg::EcgRecording;
use wbsn_dsp::mmd::{CombinedLead, FiducialPoint, MmdDelineator};
use wbsn_dsp::morphology::MorphFilter;
use wbsn_dsp::rproj::{BeatLabel, RpClassifier};

use crate::layout;

/// The conditioned (filtered) leads — the output of 3L-MF.
pub fn golden_filtered(recording: &EcgRecording) -> Vec<Vec<i16>> {
    recording
        .leads
        .iter()
        .map(|lead| {
            MorphFilter::new(
                layout::MF_OPEN_W as usize,
                layout::MF_CLOSE_W as usize,
                layout::MF_NOISE_W as usize,
            )
            .filter(lead)
        })
        .collect()
}

/// The combined stream of 3L-MMD: per-sample scaled absolute sum of the
/// filtered leads.
pub fn golden_combined(filtered: &[Vec<i16>]) -> Vec<i16> {
    let n = filtered.iter().map(Vec::len).min().unwrap_or(0);
    (0..n)
        .map(|i| {
            let samples: Vec<i16> = filtered.iter().map(|lead| lead[i]).collect();
            CombinedLead::combine(&samples)
        })
        .collect()
}

/// The fiducial points of 3L-MMD's delineation stage.
pub fn golden_fiducials(combined: &[i16]) -> Vec<FiducialPoint> {
    MmdDelineator::new(
        layout::MMD_SMALL_W as usize,
        layout::MMD_LARGE_W as usize,
        layout::MMD_THRESHOLD,
        layout::MMD_REFRACTORY as usize,
    )
    .delineate(combined)
}

/// The RP-CLASS classifier front end: detected beats on the
/// *conditioned* first lead with their predicted labels,
/// `(detection index, label)`. Pass the output of
/// [`golden_filtered`]'s first lead as `cond0`.
pub fn golden_beats_on(cond0: &[i16], clf: &RpClassifier) -> Vec<(usize, BeatLabel)> {
    let mut detector = MmdDelineator::new(
        layout::MMD_SMALL_W as usize,
        layout::MMD_LARGE_W as usize,
        layout::DET_THRESHOLD,
        layout::DET_REFRACTORY as usize,
    );
    detector
        .delineate(cond0)
        .into_iter()
        .map(|point| {
            let w = layout::WINDOW_LEN as usize;
            let label = if point.sample + 1 >= w {
                clf.classify_window(&cond0[point.sample + 1 - w..=point.sample])
            } else {
                // The kernel's window ring still holds start-up zeros
                // here; replicate by padding with zeros.
                let mut window = vec![0i16; w];
                let available = &cond0[..=point.sample];
                window[w - available.len()..].copy_from_slice(available);
                clf.classify_window(&window)
            };
            (point.sample, label)
        })
        .collect()
}

/// The RP-CLASS classifier pipeline straight from a recording:
/// condition lead 0, then detect and classify.
pub fn golden_beats(recording: &EcgRecording, clf: &RpClassifier) -> Vec<(usize, BeatLabel)> {
    let cond0 = MorphFilter::new(
        layout::MF_OPEN_W as usize,
        layout::MF_CLOSE_W as usize,
        layout::MF_NOISE_W as usize,
    )
    .filter(&recording.leads[0]);
    golden_beats_on(&cond0, clf)
}

/// One delineation burst event:
/// `(onset index, absolute stream index, strength)`.
pub type BurstEvent = (usize, usize, i16);

/// The RP-CLASS triggered delineation chain: for each pathological beat
/// the chain conditions the raw leads 1 and 2 over the
/// `[detection - BURST_LEN + 1, detection]` window (their filter state
/// sees *only* burst samples, like the triggered kernels), combines with
/// the continuously conditioned lead 0 and delineates. Returns the
/// combined samples per absolute index and the fiducial events.
#[allow(clippy::needless_range_loop)] // three parallel streams share `idx`
pub fn golden_rp_chain(
    recording: &EcgRecording,
    clf: &RpClassifier,
) -> (Vec<(usize, i16)>, Vec<BurstEvent>) {
    let cond0 = MorphFilter::new(
        layout::MF_OPEN_W as usize,
        layout::MF_CLOSE_W as usize,
        layout::MF_NOISE_W as usize,
    )
    .filter(&recording.leads[0]);
    let beats = golden_beats_on(&cond0, clf);

    let mut f1 = MorphFilter::new(
        layout::MF_OPEN_W as usize,
        layout::MF_CLOSE_W as usize,
        layout::MF_NOISE_W as usize,
    );
    let mut f2 = f1.clone();
    let mut delineator = MmdDelineator::new(
        layout::MMD_SMALL_W as usize,
        layout::MMD_LARGE_W as usize,
        layout::MMD_THRESHOLD,
        layout::MMD_REFRACTORY as usize,
    );
    let mut combined = Vec::new();
    let mut events = Vec::new();
    let burst = layout::BURST_LEN as usize;
    for (det, label) in beats {
        if label != BeatLabel::Pathological || det + 1 < burst {
            continue;
        }
        let start = det + 1 - burst;
        for idx in start..start + burst {
            let y1 = f1.push(recording.leads[1][idx]);
            let y2 = f2.push(recording.leads[2][idx]);
            let c = CombinedLead::combine(&[cond0[idx], y1, y2]);
            combined.push((idx, c));
            if let Some(point) = delineator.push(c) {
                // The kernel's onset is an absolute stream index while
                // the golden delineator counts pushes; onset and peak
                // always fall inside one burst (a QRS spans a few
                // samples), so the distance transfers directly.
                events.push((idx - (point.sample - point.onset), idx, point.strength));
            }
        }
    }
    (combined, events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train::ClassifierParams;
    use wbsn_dsp::ecg::{synthesize, EcgConfig};

    #[test]
    fn golden_pipeline_is_consistent() {
        let rec = synthesize(&EcgConfig::short_test());
        let filtered = golden_filtered(&rec);
        assert_eq!(filtered.len(), 3);
        assert_eq!(filtered[0].len(), rec.leads[0].len());
        let combined = golden_combined(&filtered);
        assert_eq!(combined.len(), filtered[0].len());
        let fiducials = golden_fiducials(&combined);
        // ~72 bpm over 4 s: a handful of beats, each detected once.
        assert!(
            (2..=8).contains(&fiducials.len()),
            "{} fiducials",
            fiducials.len()
        );
    }

    #[test]
    fn golden_beats_labels_are_mostly_correct() {
        let params = ClassifierParams::default_trained();
        let clf = params.classifier();
        let rec = synthesize(&EcgConfig {
            duration_s: 30.0,
            pathological_fraction: 0.3,
            seed: 0xFEED,
            ..EcgConfig::healthy_60s()
        });
        let beats = golden_beats(&rec, &clf);
        assert!(beats.len() > 15, "{} beats detected", beats.len());
        let pathological = beats
            .iter()
            .filter(|(_, l)| *l == BeatLabel::Pathological)
            .count();
        let fraction = pathological as f64 / beats.len() as f64;
        assert!(
            (0.1..=0.5).contains(&fraction),
            "pathological fraction {fraction}"
        );
    }
}
