//! Single-core baseline programs.
//!
//! The baseline executes the same data path as the multi-core mappings —
//! same filters, same rings, same counters — sequentially on one core,
//! with the whole flat memory at its disposal and an interrupt-driven
//! sleep between samples. This is the "SC" column of Table I.

use wbsn_isa::{BranchCond, Instr, IsaError, Program, Reg};

use crate::emit::{Emit, Stage};
use crate::layout::{
    self, PrivAlloc, BUF_RING_LEN, COMBINED_COUNT, COMBINED_RING, COMBINED_RING_LEN,
    LEAD_COUNT_BASE, OUT_RING_LEN, SHARED_WORDS,
};
use crate::phases::{
    alloc_classifier, alloc_filter_stages, alloc_mmd, emit_classify, emit_event_store,
    emit_mmd_init, emit_mmd_step, emit_window_push, ClassifierState, MmdState,
};

/// Per-benchmark pieces shared by the single-core builders.
struct ScCommon {
    alloc: PrivAlloc,
    last_seq: i16,
    scratch: [i16; 3],
    stages: Vec<[Stage; 8]>,
}

impl ScCommon {
    fn new(leads: usize) -> ScCommon {
        let mut alloc = PrivAlloc::new();
        let last_seq = alloc.alloc(1);
        let scratch = [alloc.alloc(1), alloc.alloc(1), alloc.alloc(1)];
        let stages = (0..leads)
            .map(|_| {
                alloc_filter_stages(
                    &mut alloc,
                    layout::MF_OPEN_W,
                    layout::MF_CLOSE_W,
                    layout::MF_NOISE_W,
                )
            })
            .collect();
        ScCommon {
            alloc,
            last_seq,
            scratch,
            stages,
        }
    }

    /// Emits the loop head: sleep, fresh-sample check (channel 0 is the
    /// pacing channel; all channels latch in the same cycle).
    fn emit_head(&self, e: &mut Emit, top: &str, on_stale: &str) {
        e.b.push(Instr::Sleep);
        e.read_adc_seq(Reg::R1, 0);
        e.b.push(Instr::lw(Reg::R3, Reg::R6, self.last_seq));
        e.branch(BranchCond::Eq, Reg::R1, Reg::R3, on_stale);
        e.b.push(Instr::sw(Reg::R1, Reg::R6, self.last_seq));
        let _ = top;
    }
}

/// Builds the single-core 3L-MF program: per sample, filter the three
/// leads back to back.
///
/// # Errors
///
/// Propagates assembly errors (a generator bug).
pub fn build_mf_single() -> Result<Program, IsaError> {
    let c = ScCommon::new(3);
    let mut e = Emit::new();
    e.prologue(SHARED_WORDS);
    e.subscribe(0b111);
    let top = e.fresh("loop");
    e.label(&top);
    c.emit_head(&mut e, &top, &top);
    for lead in 0..3 {
        e.read_adc_data(Reg::R1, lead);
        e.morph_filter(&c.stages[lead], c.scratch);
        e.ring_store(
            layout::out_ring(lead),
            (OUT_RING_LEN - 1) as u16,
            LEAD_COUNT_BASE + lead as u32,
        );
    }
    e.b.jmp_to(&top);
    e.assemble()
}

/// Builds the single-core 3L-MMD program: filter the three leads,
/// combine, delineate — all per sample.
///
/// # Errors
///
/// Propagates assembly errors (a generator bug).
#[allow(clippy::needless_range_loop)] // `lead` indexes stage sets and ADC channels alike
pub fn build_mmd_single() -> Result<Program, IsaError> {
    let mut c = ScCommon::new(3);
    let filtered: Vec<i16> = (0..3).map(|_| c.alloc.alloc(1)).collect();
    let delin_cnt = c.alloc.alloc(1);
    let mmd = alloc_mmd(
        &mut c.alloc,
        layout::MMD_SMALL_W,
        layout::MMD_LARGE_W,
        layout::MMD_THRESHOLD,
        layout::MMD_REFRACTORY,
    );

    let mut e = Emit::new();
    e.prologue(SHARED_WORDS);
    e.subscribe(0b111);
    emit_mmd_init(&mut e, &mmd);
    let top = e.fresh("loop");
    e.label(&top);
    c.emit_head(&mut e, &top, &top);
    for lead in 0..3 {
        e.read_adc_data(Reg::R1, lead);
        e.morph_filter(&c.stages[lead], c.scratch);
        e.b.push(Instr::sw(Reg::R1, Reg::R6, filtered[lead]));
        e.ring_store(
            layout::out_ring(lead),
            (OUT_RING_LEN - 1) as u16,
            LEAD_COUNT_BASE + lead as u32,
        );
    }
    emit_combine_from_private(&mut e, &filtered);
    e.ring_store(
        COMBINED_RING,
        (COMBINED_RING_LEN - 1) as u16,
        COMBINED_COUNT,
    );
    emit_mmd_step(&mut e, &mmd, delin_cnt, |e| {
        emit_event_store(e, &mmd, delin_cnt)
    });
    e.b.push(Instr::lw(Reg::R2, Reg::R6, delin_cnt));
    e.b.push(Instr::addi(Reg::R2, Reg::R2, 1));
    e.b.push(Instr::sw(Reg::R2, Reg::R6, delin_cnt));
    e.b.jmp_to(&top);
    e.assemble()
}

/// Emits the three-lead combination from private words into `r1`.
fn emit_combine_from_private(e: &mut Emit, filtered: &[i16]) {
    e.b.push(Instr::lw(Reg::R4, Reg::R6, filtered[0]));
    e.b.push(Instr::Abs {
        rd: Reg::R4,
        ra: Reg::R4,
    });
    e.b.push(Instr::srai(Reg::R1, Reg::R4, 2));
    for &off in &filtered[1..] {
        e.b.push(Instr::lw(Reg::R4, Reg::R6, off));
        e.b.push(Instr::Abs {
            rd: Reg::R4,
            ra: Reg::R4,
        });
        e.b.push(Instr::srai(Reg::R4, Reg::R4, 2));
        e.b.push(Instr::add(Reg::R1, Reg::R1, Reg::R4));
    }
}

/// Private state of the single-core RP-CLASS program.
struct ScRpState {
    /// Raw buffers for leads 1 and 2 (lead 0 is conditioned on line).
    buf_rings: [i16; 2],
    buf_wr: i16,
    last_trig: i16,
    burst_rem: i16,
    burst_src: i16,
    chunk_save: i16,
    filtered: [i16; 2],
    delineator: MmdState,
    classifier: ClassifierState,
}

/// Builds the single-core RP-CLASS program.
///
/// Per sample: condition lead 0, classify beats on the conditioned
/// stream, and buffer leads 1 and 2 raw. Only when a pathological beat
/// is flagged, the buffered window is conditioned, combined with the
/// already-conditioned lead 0 and delineated — one burst sample per
/// wake, like the multi-core chain.
///
/// # Errors
///
/// Propagates assembly errors (a generator bug).
pub fn build_rpclass_single() -> Result<Program, IsaError> {
    let mut c = ScCommon::new(3);
    let st = ScRpState {
        buf_rings: [c.alloc.alloc(BUF_RING_LEN), c.alloc.alloc(BUF_RING_LEN)],
        buf_wr: c.alloc.alloc(1),
        last_trig: c.alloc.alloc(1),
        burst_rem: c.alloc.alloc(1),
        burst_src: c.alloc.alloc(1),
        chunk_save: c.alloc.alloc(1),
        filtered: [c.alloc.alloc(1), c.alloc.alloc(1)],
        delineator: alloc_mmd(
            &mut c.alloc,
            layout::MMD_SMALL_W,
            layout::MMD_LARGE_W,
            layout::MMD_THRESHOLD,
            layout::MMD_REFRACTORY,
        ),
        classifier: alloc_classifier(&mut c.alloc),
    };

    let mut e = Emit::new();
    e.prologue(SHARED_WORDS);
    e.subscribe(0b111);
    emit_mmd_init(&mut e, &st.classifier.det);
    emit_mmd_init(&mut e, &st.delineator);
    let top = e.fresh("loop");
    let burst_check = e.fresh("burst_check");
    let no_trig = e.fresh("no_trig");
    let chunk_loop = e.fresh("chunk");
    let chunk_done = e.fresh("chunk_done");
    e.label(&top);
    c.emit_head(&mut e, &top, &burst_check);

    // Lead 0: condition, publish, classify.
    e.read_adc_data(Reg::R1, 0);
    e.morph_filter(&c.stages[0], c.scratch);
    e.ring_store(
        layout::out_ring(0),
        (OUT_RING_LEN - 1) as u16,
        LEAD_COUNT_BASE,
    );
    emit_window_push(&mut e, &st.classifier);
    let det = st.classifier.det;
    let classifier = st.classifier;
    emit_mmd_step(&mut e, &det, st.classifier.idx_off, |e| {
        emit_classify(e, &classifier)
    });
    e.b.push(Instr::lw(Reg::R2, Reg::R6, st.classifier.idx_off));
    e.b.push(Instr::addi(Reg::R2, Reg::R2, 1));
    e.b.push(Instr::sw(Reg::R2, Reg::R6, st.classifier.idx_off));
    // Leads 1 and 2: buffer raw samples at their absolute index.
    for lead in 1..3 {
        e.read_adc_data(Reg::R1, lead);
        emit_buf_push(&mut e, st.buf_rings[lead - 1], st.buf_wr, false);
    }
    emit_buf_advance(&mut e, st.buf_wr);

    e.label(&burst_check);
    // New trigger (only honoured between bursts)?
    e.b.load_const(Reg::R3, layout::TRIG_FLAG as u16);
    e.b.push(Instr::lw(Reg::R2, Reg::R3, 0));
    e.b.push(Instr::lw(Reg::R3, Reg::R6, st.last_trig));
    e.branch(BranchCond::Eq, Reg::R2, Reg::R3, &no_trig);
    e.b.push(Instr::lw(Reg::R4, Reg::R6, st.burst_rem));
    e.branch(BranchCond::Ne, Reg::R4, Reg::R0, &no_trig);
    e.b.push(Instr::sw(Reg::R2, Reg::R6, st.last_trig));
    e.b.load_const(Reg::R4, layout::BURST_LEN);
    e.b.push(Instr::sw(Reg::R4, Reg::R6, st.burst_rem));
    e.b.load_const(Reg::R3, layout::TRIG_SEQ as u16);
    e.b.push(Instr::lw(Reg::R2, Reg::R3, 0));
    e.b.push(Instr::sw(Reg::R2, Reg::R6, st.burst_src));
    e.label(&no_trig);
    e.b.push(Instr::lw(Reg::R4, Reg::R6, st.burst_rem));
    e.branch(BranchCond::Eq, Reg::R4, Reg::R0, &top);
    e.b.load_const(Reg::R5, layout::BURST_CHUNK);
    e.label(&chunk_loop);
    e.b.push(Instr::sw(Reg::R5, Reg::R6, st.chunk_save));
    // Condition the buffered sample of leads 1 and 2.
    for lead in 1..3 {
        e.b.push(Instr::lw(Reg::R2, Reg::R6, st.burst_src));
        e.b.push(Instr::AluImm {
            op: wbsn_isa::AluImmOp::Andi,
            rd: Reg::R3,
            ra: Reg::R2,
            imm: (BUF_RING_LEN - 1) as i16,
        });
        e.b.push(Instr::addi(Reg::R3, Reg::R3, st.buf_rings[lead - 1]));
        e.b.push(Instr::add(Reg::R3, Reg::R3, Reg::R6));
        e.b.push(Instr::lw(Reg::R1, Reg::R3, 0));
        e.morph_filter(&c.stages[lead], c.scratch);
        e.b.push(Instr::sw(Reg::R1, Reg::R6, st.filtered[lead - 1]));
    }
    // Combine with the conditioned lead 0 at the same absolute index.
    e.b.push(Instr::lw(Reg::R5, Reg::R6, st.burst_src));
    e.ring_load(
        Reg::R4,
        layout::out_ring(0),
        (OUT_RING_LEN - 1) as u16,
        Reg::R5,
    );
    e.b.push(Instr::Abs {
        rd: Reg::R4,
        ra: Reg::R4,
    });
    e.b.push(Instr::srai(Reg::R1, Reg::R4, 2));
    for lead in 1..3 {
        e.b.push(Instr::lw(Reg::R4, Reg::R6, st.filtered[lead - 1]));
        e.b.push(Instr::Abs {
            rd: Reg::R4,
            ra: Reg::R4,
        });
        e.b.push(Instr::srai(Reg::R4, Reg::R4, 2));
        e.b.push(Instr::add(Reg::R1, Reg::R1, Reg::R4));
    }
    // combined[idx & mask] = acc; COMBINED_COUNT = idx + 1.
    e.b.push(Instr::AluImm {
        op: wbsn_isa::AluImmOp::Andi,
        rd: Reg::R2,
        ra: Reg::R5,
        imm: (COMBINED_RING_LEN - 1) as i16,
    });
    e.b.load_const(Reg::R3, COMBINED_RING as u16);
    e.b.push(Instr::add(Reg::R3, Reg::R3, Reg::R2));
    e.b.push(Instr::sw(Reg::R1, Reg::R3, 0));
    e.b.push(Instr::addi(Reg::R2, Reg::R5, 1));
    e.b.load_const(Reg::R3, COMBINED_COUNT as u16);
    e.b.push(Instr::sw(Reg::R2, Reg::R3, 0));
    // Delineate (the event index is the absolute burst index).
    let delineator = st.delineator;
    emit_mmd_step(&mut e, &delineator, st.burst_src, |e| {
        emit_event_store(e, &delineator, st.burst_src)
    });
    // Burst bookkeeping.
    e.b.push(Instr::lw(Reg::R2, Reg::R6, st.burst_src));
    e.b.push(Instr::addi(Reg::R2, Reg::R2, 1));
    e.b.push(Instr::sw(Reg::R2, Reg::R6, st.burst_src));
    e.b.push(Instr::lw(Reg::R2, Reg::R6, st.burst_rem));
    e.b.push(Instr::addi(Reg::R2, Reg::R2, -1));
    e.b.push(Instr::sw(Reg::R2, Reg::R6, st.burst_rem));
    e.b.push(Instr::lw(Reg::R5, Reg::R6, st.chunk_save));
    e.b.push(Instr::addi(Reg::R5, Reg::R5, -1));
    e.branch(BranchCond::Eq, Reg::R2, Reg::R0, &chunk_done);
    e.branch(BranchCond::Ne, Reg::R5, Reg::R0, &chunk_loop);
    e.label(&chunk_done);
    e.b.jmp_to(&top);
    e.assemble()
}

/// Emits a private buffer-ring push: sample in `r1` (preserved), write
/// counter at `buf_wr`. When `advance` is set the counter is bumped;
/// otherwise the caller advances it once for all leads via
/// [`emit_buf_advance`]. Clobbers `r2`, `r3`.
fn emit_buf_push(e: &mut Emit, buf_ring: i16, buf_wr: i16, advance: bool) {
    e.b.push(Instr::lw(Reg::R2, Reg::R6, buf_wr));
    e.b.push(Instr::AluImm {
        op: wbsn_isa::AluImmOp::Andi,
        rd: Reg::R3,
        ra: Reg::R2,
        imm: (BUF_RING_LEN - 1) as i16,
    });
    e.b.push(Instr::addi(Reg::R3, Reg::R3, buf_ring));
    e.b.push(Instr::add(Reg::R3, Reg::R3, Reg::R6));
    e.b.push(Instr::sw(Reg::R1, Reg::R3, 0));
    if advance {
        emit_buf_advance(e, buf_wr);
    }
}

/// Bumps the buffer write counter. Clobbers `r2`.
fn emit_buf_advance(e: &mut Emit, buf_wr: i16) {
    e.b.push(Instr::lw(Reg::R2, Reg::R6, buf_wr));
    e.b.push(Instr::addi(Reg::R2, Reg::R2, 1));
    e.b.push(Instr::sw(Reg::R2, Reg::R6, buf_wr));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_core_programs_assemble() {
        let mf = build_mf_single().unwrap();
        let mmd = build_mmd_single().unwrap();
        let rp = build_rpclass_single().unwrap();
        assert!(mf.len() < mmd.len());
        assert!(mmd.len() < rp.len());
        for p in [&mf, &mmd, &rp] {
            assert!(p.len() < wbsn_isa::IM_BANK_WORDS * 2);
        }
    }

    #[test]
    fn baseline_uses_no_sync_points() {
        // SLEEP (the interrupt-controller wait) is allowed; the
        // point-based ISE is not used by the baseline.
        for p in [
            build_mf_single().unwrap(),
            build_mmd_single().unwrap(),
            build_rpclass_single().unwrap(),
        ] {
            let points = p
                .instrs()
                .iter()
                .filter(|i| matches!(i, Instr::Sync { .. }))
                .count();
            assert_eq!(points, 0);
        }
    }
}
