//! Memory-layout conventions shared by the benchmark kernels and the
//! harnesses that inspect their outputs.
//!
//! All three benchmarks use the same map so that single-core, multi-core,
//! hardware-synchronized and busy-wait variants can be compared on
//! identical footprints. Addresses are 16-bit word addresses.

/// Size of the shared data-memory section used by the benchmarks.
pub const SHARED_WORDS: u32 = 0x1800;

/// First synchronization point address (16 points at `0x10..0x20`).
pub const SYNC_BASE: u32 = 0x0010;

/// Number of synchronization points configured.
pub const SYNC_POINTS: usize = 16;

// --- control words (shared) -------------------------------------------

/// Busy-wait / trigger flag: set non-zero by the classifier when a
/// pathological beat requires delineation.
pub const TRIG_FLAG: u32 = 0x20;

/// Sample index (low 16 bits) of the triggering beat.
pub const TRIG_SEQ: u32 = 0x21;

/// Per-lead produced-sample counters: lead `l` at `LEAD_COUNT_BASE + l`.
pub const LEAD_COUNT_BASE: u32 = 0x30;

/// Combined-stream produced counter (3L-MMD / RP-CLASS chain).
pub const COMBINED_COUNT: u32 = 0x34;

/// Fiducial-event counter.
pub const EVENT_COUNT: u32 = 0x35;

/// Total classified beats (RP-CLASS).
pub const BEAT_COUNT: u32 = 0x36;

/// Pathological beats detected (RP-CLASS).
pub const PATH_COUNT: u32 = 0x37;

// --- data rings (shared) ----------------------------------------------

/// Fiducial-event ring: `EVENT_RING_LEN` events of four words
/// (onset, sample index, strength, reserved).
pub const EVENT_RING: u32 = 0x40;

/// Capacity of the event ring in events.
pub const EVENT_RING_LEN: u32 = 64;

/// Beat-label ring (RP-CLASS): one word per classified beat
/// (0 = normal, 1 = pathological).
pub const LABEL_RING: u32 = 0x140;

/// Capacity of the label ring.
pub const LABEL_RING_LEN: u32 = 128;

/// Read-only constant area: random-projection rows and centroids.
pub const CONST_BASE: u32 = 0x200;

/// Per-lead filtered-output ring: lead `l` at `OUT_RING_BASE * (l + 1)`.
pub const OUT_RING_BASE: u32 = 0x400;

/// Capacity of each output ring in samples (power of two).
pub const OUT_RING_LEN: u32 = 1024;

/// Combined-stream ring (3L-MMD / RP-CLASS chain).
pub const COMBINED_RING: u32 = 0x1000;

/// Capacity of the combined ring in samples.
pub const COMBINED_RING_LEN: u32 = 1024;

/// Address of lead `l`'s output ring.
pub const fn out_ring(lead: usize) -> u32 {
    OUT_RING_BASE * (lead as u32 + 1)
}

// --- private scratch (offsets from the private base register) ----------

/// Generic scratch word available to every phase (never live across the
/// helper that uses it).
pub const P_SCRATCH: i16 = 0x00;

/// Sequential allocator for per-phase private state (ring buffers,
/// counters, scratch), handing out word offsets from the private base
/// register.
///
/// Offsets start above the fixed scratch words and must stay within the
/// ISA's 12-bit load/store offset so generated code can address them
/// directly off the base register.
///
/// # Example
///
/// ```
/// use wbsn_kernels::layout::PrivAlloc;
///
/// let mut a = PrivAlloc::new();
/// let x = a.alloc(1);
/// let ring = a.alloc(30);
/// assert!(ring > x);
/// ```
#[derive(Debug, Clone)]
pub struct PrivAlloc {
    next: i16,
}

impl Default for PrivAlloc {
    fn default() -> Self {
        PrivAlloc::new()
    }
}

impl PrivAlloc {
    /// Largest private offset addressable with the 12-bit immediate.
    pub const LIMIT: i16 = 2047;

    /// Creates an allocator starting above the fixed scratch words.
    pub fn new() -> PrivAlloc {
        PrivAlloc { next: 0x10 }
    }

    /// Allocates `words` consecutive private words.
    ///
    /// # Panics
    ///
    /// Panics when the private window or the addressable range is
    /// exhausted — a generator bug, not a runtime condition.
    pub fn alloc(&mut self, words: u16) -> i16 {
        let base = self.next;
        let end = base as i32 + words as i32;
        assert!(
            end <= Self::LIMIT as i32 + 1,
            "private allocation overflow: {end} words"
        );
        self.next = end as i16;
        base
    }

    /// Words allocated so far.
    pub fn used(&self) -> u16 {
        self.next as u16
    }
}

/// Classifier window length in samples.
pub const WINDOW_LEN: u16 = 32;

/// Buffer ring capacity (power of two). Must cover one burst plus the
/// burst's draining time (one chunk per sampling period), with margin
/// for trigger latency.
pub const BUF_RING_LEN: u16 = 512;

/// Number of projection dimensions (RP-CLASS). Kept small so that the
/// per-beat classification cost stays within one sampling period at the
/// platform's 1 MHz clock floor — the regime of the paper's ref \[22\].
pub const RP_DIMS: u16 = 4;

/// Address of projection row `k` (`WINDOW_LEN` words of ±1).
pub const fn rp_row(k: usize) -> u32 {
    CONST_BASE + (k as u32) * WINDOW_LEN as u32
}

/// Address of the normal centroid (`RP_DIMS` words).
pub const RP_CENTROID_NORMAL: u32 = CONST_BASE + RP_DIMS as u32 * WINDOW_LEN as u32;

/// Address of the pathological centroid (`RP_DIMS` words).
pub const RP_CENTROID_PATH: u32 = RP_CENTROID_NORMAL + RP_DIMS as u32;

// --- filter parameters ---------------------------------------------------

/// Opening window of the conditioning filter (samples at 250 Hz).
pub const MF_OPEN_W: u16 = 30;

/// Closing window of the conditioning filter.
pub const MF_CLOSE_W: u16 = 50;

/// Noise-suppression structuring element of the conditioning filter.
pub const MF_NOISE_W: u16 = 5;

/// Small scale of the morphological derivative.
pub const MMD_SMALL_W: u16 = 10;

/// Large scale of the morphological derivative.
pub const MMD_LARGE_W: u16 = 30;

/// Delineator detection threshold.
pub const MMD_THRESHOLD: i16 = 150;

/// Delineator refractory period in samples.
pub const MMD_REFRACTORY: u16 = 50;

/// Beat-detector threshold on the raw classifier lead.
pub const DET_THRESHOLD: i16 = 700;

/// Beat-detector refractory period in samples.
pub const DET_REFRACTORY: u16 = 50;

/// Right pre-shift applied to window samples before projection.
pub const RP_PRE_SHIFT: u16 = 3;

/// Samples filtered per ADC wake during a delineation burst. One sample
/// per wake keeps the chain's worst-case window below one sampling
/// period at the 1 MHz clock floor; the burst then spreads over
/// [`BURST_LEN`] wakes, well inside one beat interval.
pub const BURST_CHUNK: u16 = 1;

/// Length of one delineation burst in samples: the window around a
/// pathological beat that the chain conditions and delineates (~250 ms
/// at 500 Hz, covering the QRS-T complex).
pub const BURST_LEN: u16 = 128;

#[cfg(test)]
mod tests {
    use super::*;
    use wbsn_sim::mmio::MMIO_BASE;

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn shared_regions_do_not_overlap() {
        // Control words, rings and constants all below the shared limit.
        assert!(EVENT_RING + 4 * EVENT_RING_LEN <= LABEL_RING);
        assert!(LABEL_RING + LABEL_RING_LEN <= CONST_BASE);
        assert!(RP_CENTROID_PATH + RP_DIMS as u32 <= out_ring(0));
        assert!(out_ring(2) + OUT_RING_LEN <= COMBINED_RING);
        assert!(COMBINED_RING + COMBINED_RING_LEN <= SHARED_WORDS);
        assert!(SHARED_WORDS <= MMIO_BASE);
        assert!(SYNC_BASE + SYNC_POINTS as u32 <= TRIG_FLAG);
    }

    #[test]
    fn private_allocator_is_sequential_and_bounded() {
        let mut a = PrivAlloc::new();
        let x = a.alloc(1);
        let y = a.alloc(30);
        let z = a.alloc(50);
        assert_eq!(y, x + 1);
        assert_eq!(z, y + 30);
        assert!(a.used() < PrivAlloc::LIMIT as u16);
        // The ISA limit itself is within one core's private window for
        // the benchmark shared size (≈3.3 KWords per core).
        assert!((PrivAlloc::LIMIT as u32) < (32 * 1024 - SHARED_WORDS) / 8);
    }

    #[test]
    #[should_panic(expected = "private allocation overflow")]
    fn private_allocator_overflow_panics() {
        let mut a = PrivAlloc::new();
        a.alloc(2047);
        a.alloc(10);
    }

    #[test]
    fn ring_capacities_are_powers_of_two() {
        assert!(OUT_RING_LEN.is_power_of_two());
        assert!(COMBINED_RING_LEN.is_power_of_two());
        assert!(EVENT_RING_LEN.is_power_of_two());
        assert!((BUF_RING_LEN as u32).is_power_of_two());
    }
}
