//! End-to-end validation: every generated benchmark, run on the cycle
//! simulator, must reproduce the golden Rust models bit-for-bit.

use wbsn_dsp::ecg::{synthesize, EcgConfig};
use wbsn_dsp::rproj::BeatLabel;
use wbsn_kernels::golden::{golden_beats, golden_combined, golden_fiducials, golden_filtered};
use wbsn_kernels::layout;
use wbsn_kernels::{
    build_mf, build_mmd, build_rpclass, Arch, BuildOptions, BuiltApp, ClassifierParams,
    SyncApproach,
};
use wbsn_sim::Platform;

fn short_recording(seconds: f64) -> wbsn_dsp::ecg::EcgRecording {
    synthesize(&EcgConfig {
        duration_s: seconds,
        ..EcgConfig::healthy_60s()
    })
}

/// Build options with a generous sampling period (≙ a fast reference
/// clock) so that even the heaviest single-core benchmark meets real
/// time; the experiments derive each configuration's true minimum clock
/// separately.
fn generous(approach: SyncApproach) -> BuildOptions {
    BuildOptions {
        approach,
        adc_period_cycles: 16_000,
        ..BuildOptions::default()
    }
}

/// Runs an app over a recording; the budget covers the whole stream plus
/// slack for draining the pipeline.
fn run_app(app: &BuiltApp, leads: Vec<Vec<i16>>) -> Platform {
    let samples = leads[0].len() as u64;
    let period = app.config.adc.period_cycles;
    let budget = app.config.adc.start_cycle + (samples + 8) * period;
    let mut platform = app.platform(leads).expect("platform builds");
    platform.run(budget).expect("run completes without faults");
    assert_eq!(platform.adc_overruns(), 0, "real-time violated");
    platform
}

fn read_ring(platform: &Platform, base: u32, mask: u32, count: u32) -> Vec<i16> {
    assert!(count <= mask + 1, "ring wrapped; shorten the test input");
    (0..count)
        .map(|i| platform.peek_dm(base + (i & mask)).expect("ring readable") as i16)
        .collect()
}

fn assert_filtered_match(platform: &Platform, golden: &[Vec<i16>], min_expected: u32) {
    for (lead, expected) in golden.iter().enumerate() {
        let count = platform
            .peek_dm(layout::LEAD_COUNT_BASE + lead as u32)
            .unwrap() as u32;
        assert!(
            count >= min_expected,
            "lead {lead} produced only {count} samples"
        );
        let got = read_ring(
            platform,
            layout::out_ring(lead),
            layout::OUT_RING_LEN - 1,
            count,
        );
        assert_eq!(
            &got[..],
            &expected[..count as usize],
            "lead {lead} filtered output"
        );
    }
}

#[test]
fn mf_single_core_matches_golden() {
    let rec = short_recording(3.0);
    let app = build_mf(Arch::SingleCore, &generous(SyncApproach::Hardware)).unwrap();
    let platform = run_app(&app, rec.leads.clone());
    let golden = golden_filtered(&rec);
    let n = rec.leads[0].len() as u32;
    assert_filtered_match(&platform, &golden, n);
    // The baseline sleeps between samples at this generous period.
    assert!(platform.stats().cores[0].gated_cycles > 0);
}

#[test]
fn mf_multi_core_hardware_matches_golden_and_broadcasts() {
    let rec = short_recording(3.0);
    let app = build_mf(Arch::MultiCore, &BuildOptions::default()).unwrap();
    let platform = run_app(&app, rec.leads.clone());
    let golden = golden_filtered(&rec);
    assert_filtered_match(&platform, &golden, rec.leads[0].len() as u32);

    let stats = platform.stats();
    // Lock-step execution of the shared phase merges instruction fetches.
    let pct = stats.im.broadcast_percent();
    assert!(pct > 20.0, "IM broadcast only {pct:.1}%");
    // The synchronizer fired barriers and gated cores.
    assert!(platform.synchronizer().stats().fires > 100);
    for core in 0..3 {
        assert!(
            stats.cores[core].gated_cycles > 0,
            "core {core} never slept"
        );
    }
}

#[test]
fn mf_multi_core_preloaded_barrier_matches_golden_with_less_overhead() {
    use wbsn_kernels::app::BarrierStyle;
    let rec = short_recording(2.0);
    let sincsdec = build_mf(Arch::MultiCore, &BuildOptions::default()).unwrap();
    let preloaded = build_mf(
        Arch::MultiCore,
        &BuildOptions {
            barrier: BarrierStyle::Preloaded,
            ..BuildOptions::default()
        },
    )
    .unwrap();
    // The preloaded barrier removes the entry SINC from the hot loop.
    assert!(preloaded.image.sync_words() < sincsdec.image.sync_words());
    assert!(!preloaded.preloads.is_empty());
    let platform = run_app(&preloaded, rec.leads.clone());
    let golden = golden_filtered(&rec);
    assert_filtered_match(&platform, &golden, rec.leads[0].len() as u32);
    // Barriers still fire every sample and cores still gate.
    assert!(platform.synchronizer().stats().fires > 100);
    assert!(
        platform.stats().runtime_overhead_percent()
            < run_app(&sincsdec, rec.leads.clone())
                .stats()
                .runtime_overhead_percent()
    );
}

#[test]
fn mf_multi_core_busy_wait_matches_golden_without_gating() {
    let rec = short_recording(2.0);
    let options = BuildOptions {
        approach: SyncApproach::BusyWait,
        ..BuildOptions::default()
    };
    let app = build_mf(Arch::MultiCore, &options).unwrap();
    let platform = run_app(&app, rec.leads.clone());
    let golden = golden_filtered(&rec);
    assert_filtered_match(&platform, &golden, rec.leads[0].len() as u32);
    let stats = platform.stats();
    for core in 0..3 {
        assert_eq!(stats.cores[core].gated_cycles, 0, "core {core} gated");
    }
    assert_eq!(platform.synchronizer().stats().fires, 0);
}

fn assert_mmd_outputs(platform: &Platform, rec: &wbsn_dsp::ecg::EcgRecording) {
    let golden_f = golden_filtered(rec);
    let combined = golden_combined(&golden_f);
    let fiducials = golden_fiducials(&combined);

    let ccount = platform.peek_dm(layout::COMBINED_COUNT).unwrap() as u32;
    assert!(ccount as usize >= combined.len() - 2, "combined {ccount}");
    let got_combined = read_ring(
        platform,
        layout::COMBINED_RING,
        layout::COMBINED_RING_LEN - 1,
        ccount,
    );
    assert_eq!(&got_combined[..], &combined[..ccount as usize]);

    let ecount = platform.peek_dm(layout::EVENT_COUNT).unwrap() as usize;
    assert_eq!(ecount, fiducials.len(), "fiducial count");
    for (i, f) in fiducials.iter().enumerate() {
        let slot = layout::EVENT_RING + 4 * (i as u32 & (layout::EVENT_RING_LEN - 1));
        let onset = platform.peek_dm(slot).unwrap() as usize;
        let sample = platform.peek_dm(slot + 1).unwrap() as usize;
        let strength = platform.peek_dm(slot + 2).unwrap() as i16;
        assert_eq!(onset, f.onset, "event {i} onset");
        assert_eq!(sample, f.sample, "event {i} position");
        assert_eq!(strength, f.strength, "event {i} strength");
    }
}

#[test]
fn mmd_single_core_matches_golden() {
    let rec = short_recording(3.0);
    let app = build_mmd(Arch::SingleCore, &generous(SyncApproach::Hardware)).unwrap();
    let platform = run_app(&app, rec.leads.clone());
    assert_mmd_outputs(&platform, &rec);
}

#[test]
fn mmd_multi_core_hardware_matches_golden() {
    let rec = short_recording(3.0);
    let app = build_mmd(Arch::MultiCore, &BuildOptions::default()).unwrap();
    let platform = run_app(&app, rec.leads.clone());
    assert_mmd_outputs(&platform, &rec);
    // Both kinds of synchronization are exercised.
    let sync = platform.synchronizer().stats();
    assert!(sync.fires > 100);
    assert!(sync.merged > 0, "simultaneous requests were merged");
    // All five cores participated.
    for core in 0..5 {
        assert!(
            platform.stats().cores[core].instructions > 0,
            "core {core} idle"
        );
    }
}

#[test]
fn mmd_multi_core_busy_wait_matches_golden() {
    let rec = short_recording(2.0);
    let options = BuildOptions {
        approach: SyncApproach::BusyWait,
        ..BuildOptions::default()
    };
    let app = build_mmd(Arch::MultiCore, &options).unwrap();
    let platform = run_app(&app, rec.leads.clone());
    assert_mmd_outputs(&platform, &rec);
}

fn pathological_recording(seconds: f64, fraction: f64) -> wbsn_dsp::ecg::EcgRecording {
    synthesize(&EcgConfig {
        duration_s: seconds,
        pathological_fraction: fraction,
        seed: 0xE7A1,
        ..EcgConfig::healthy_60s()
    })
}

fn assert_rpclass_labels(
    platform: &Platform,
    rec: &wbsn_dsp::ecg::EcgRecording,
    params: &ClassifierParams,
) {
    let golden = golden_beats(rec, &params.classifier());
    let beat_count = platform.peek_dm(layout::BEAT_COUNT).unwrap() as usize;
    assert_eq!(beat_count, golden.len(), "beat count");
    let path_count = platform.peek_dm(layout::PATH_COUNT).unwrap() as usize;
    let golden_path = golden
        .iter()
        .filter(|(_, l)| *l == BeatLabel::Pathological)
        .count();
    assert_eq!(path_count, golden_path, "pathological count");
    for (i, (_, label)) in golden.iter().enumerate() {
        let slot = layout::LABEL_RING + (i as u32 & (layout::LABEL_RING_LEN - 1));
        let got = platform.peek_dm(slot).unwrap();
        let expected = match label {
            BeatLabel::Normal => 0,
            BeatLabel::Pathological => 1,
        };
        assert_eq!(got, expected, "beat {i} label");
    }
}

fn assert_rpclass_chain(
    platform: &Platform,
    rec: &wbsn_dsp::ecg::EcgRecording,
    params: &ClassifierParams,
) {
    use wbsn_kernels::golden::golden_rp_chain;
    let (combined, events) = golden_rp_chain(rec, &params.classifier());
    // Compare each ring slot against its *last* golden writer (absolute
    // indices alias modulo the ring length).
    let mask = layout::COMBINED_RING_LEN - 1;
    let mut last_writer = std::collections::BTreeMap::new();
    for &(idx, value) in &combined {
        last_writer.insert(idx as u32 & mask, (idx, value));
    }
    for (&slot, &(idx, value)) in &last_writer {
        let got = platform.peek_dm(layout::COMBINED_RING + slot).unwrap() as i16;
        assert_eq!(got, value, "combined[{idx}] (slot {slot})");
    }
    // Fiducial events, in order and bit-exact.
    let ecount = platform.peek_dm(layout::EVENT_COUNT).unwrap() as usize;
    assert_eq!(ecount, events.len(), "event count");
    for (i, &(onset, idx, strength)) in events.iter().enumerate() {
        let slot = layout::EVENT_RING + 4 * (i as u32 & (layout::EVENT_RING_LEN - 1));
        assert_eq!(
            platform.peek_dm(slot).unwrap() as usize,
            onset,
            "event {i} onset"
        );
        assert_eq!(
            platform.peek_dm(slot + 1).unwrap() as usize,
            idx,
            "event {i} index"
        );
        assert_eq!(
            platform.peek_dm(slot + 2).unwrap() as i16,
            strength,
            "event {i} strength"
        );
    }
}

#[test]
fn rpclass_single_core_classifies_like_golden() {
    let params = ClassifierParams::default_trained();
    let rec = pathological_recording(6.0, 0.4);
    let app = build_rpclass(Arch::SingleCore, &generous(SyncApproach::Hardware), &params).unwrap();
    let platform = run_app(&app, rec.leads.clone());
    assert_rpclass_labels(&platform, &rec, &params);
    // Pathological beats activated the delineation data path, and the
    // whole chain reproduces the golden burst pipeline bit-for-bit.
    assert!(platform.peek_dm(layout::PATH_COUNT).unwrap() > 0);
    assert_rpclass_chain(&platform, &rec, &params);
}

#[test]
fn rpclass_multi_core_classifies_like_golden_and_gates_the_chain() {
    let params = ClassifierParams::default_trained();
    let rec = pathological_recording(6.0, 0.4);
    let app = build_rpclass(Arch::MultiCore, &generous(SyncApproach::Hardware), &params).unwrap();
    let platform = run_app(&app, rec.leads.clone());
    assert_rpclass_labels(&platform, &rec, &params);
    assert_rpclass_chain(&platform, &rec, &params);
    // The chain (burst conditioners, combiner, delineator) is mostly
    // asleep: its duty cycle is far below the always-on conditioner's.
    let stats = platform.stats();
    let cond0_duty = stats.cores[1].duty_cycle();
    for core in [2usize, 3, 4, 5] {
        assert!(
            stats.cores[core].duty_cycle() < cond0_duty,
            "chain core {core} busier than the always-on conditioner"
        );
    }
}

#[test]
fn rpclass_healthy_input_never_activates_the_chain() {
    let params = ClassifierParams::default_trained();
    let rec = short_recording(6.0);
    let app = build_rpclass(Arch::MultiCore, &generous(SyncApproach::Hardware), &params).unwrap();
    let platform = run_app(&app, rec.leads.clone());
    assert_eq!(platform.peek_dm(layout::PATH_COUNT).unwrap(), 0);
    assert_eq!(platform.peek_dm(layout::COMBINED_COUNT).unwrap(), 0);
    assert_eq!(platform.peek_dm(layout::EVENT_COUNT).unwrap(), 0);
    // Beats were still detected and classified as normal.
    assert!(platform.peek_dm(layout::BEAT_COUNT).unwrap() > 3);
}
