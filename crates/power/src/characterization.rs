//! Per-event energy and per-instance leakage characterization.
//!
//! These constants stand in for the paper's post-layout RTL measurements
//! of a 90 nm low-leakage implementation. They are expressed at the
//! nominal supply `V_NOM` (1.2 V); the model scales dynamic energy with
//! `(V/V_NOM)²` and leakage with `(V/V_NOM)` when evaluating an operating
//! point. The magnitudes are anchored to published figures for this class
//! of platform (the paper's reference \[11\] reports ≈13 pJ/cycle full-
//! system at 0.4 V), so the reproduced *power shape* — who wins and by
//! how much — is meaningful even though absolute microwatts are not the
//! authors' silicon.

/// Nominal characterization voltage in volts.
pub const V_NOM: f64 = 1.2;

/// Per-event dynamic energies (picojoules at `V_NOM`) and per-instance
/// leakage (nanowatts at `V_NOM`).
///
/// Construct with [`EnergyTable::ninety_nm_low_leakage`] for the default
/// characterization, or build a custom table for sensitivity studies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyTable {
    /// Core datapath + control, one clocked non-gated cycle.
    pub core_active_cycle_pj: f64,
    /// Residual energy of a clock-gated core cycle.
    pub core_gated_cycle_pj: f64,
    /// One 24-bit instruction-bank read.
    pub im_read_pj: f64,
    /// One 16-bit data-bank read.
    pub dm_read_pj: f64,
    /// One 16-bit data-bank write.
    pub dm_write_pj: f64,
    /// One request traversing a crossbar.
    pub xbar_traversal_pj: f64,
    /// One access through a baseline address decoder.
    pub decoder_access_pj: f64,
    /// Clock-tree trunk, per cycle, crossbar platform (larger tree).
    pub clock_trunk_mc_pj: f64,
    /// Clock-tree trunk, per cycle, decoder platform.
    pub clock_trunk_sc_pj: f64,
    /// Clock-tree branch, per clocked core per cycle.
    pub clock_branch_pj: f64,
    /// One synchronization operation processed by the synchronizer.
    pub sync_op_pj: f64,
    /// One MMIO register access.
    pub mmio_access_pj: f64,

    /// Core leakage (nW at `V_NOM`), per powered core.
    pub core_leak_nw: f64,
    /// Instruction-bank leakage per powered bank.
    pub im_bank_leak_nw: f64,
    /// Data-bank leakage per powered bank.
    pub dm_bank_leak_nw: f64,
    /// Crossbar leakage (both crossbars together).
    pub xbar_leak_nw: f64,
    /// Decoder leakage.
    pub decoder_leak_nw: f64,
    /// Synchronizer leakage.
    pub sync_unit_leak_nw: f64,
}

impl EnergyTable {
    /// The default 90 nm low-leakage characterization.
    pub fn ninety_nm_low_leakage() -> EnergyTable {
        EnergyTable {
            core_active_cycle_pj: 30.0,
            core_gated_cycle_pj: 0.4,
            im_read_pj: 46.0,
            dm_read_pj: 24.0,
            dm_write_pj: 28.0,
            xbar_traversal_pj: 8.0,
            decoder_access_pj: 1.5,
            clock_trunk_mc_pj: 11.0,
            clock_trunk_sc_pj: 3.5,
            clock_branch_pj: 7.0,
            sync_op_pj: 3.0,
            mmio_access_pj: 2.0,
            core_leak_nw: 420.0,
            im_bank_leak_nw: 160.0,
            dm_bank_leak_nw: 110.0,
            xbar_leak_nw: 240.0,
            decoder_leak_nw: 40.0,
            sync_unit_leak_nw: 90.0,
        }
    }

    /// Dynamic-energy scale factor at supply `v` (quadratic).
    pub fn dynamic_scale(v: f64) -> f64 {
        (v / V_NOM) * (v / V_NOM)
    }

    /// Leakage scale factor at supply `v` (approximately linear in this
    /// regime for a low-leakage process).
    pub fn leakage_scale(v: f64) -> f64 {
        v / V_NOM
    }
}

impl Default for EnergyTable {
    fn default() -> Self {
        EnergyTable::ninety_nm_low_leakage()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_monotonic_and_anchored() {
        assert!((EnergyTable::dynamic_scale(V_NOM) - 1.0).abs() < 1e-12);
        assert!((EnergyTable::leakage_scale(V_NOM) - 1.0).abs() < 1e-12);
        assert!(EnergyTable::dynamic_scale(0.5) < EnergyTable::dynamic_scale(0.6));
        // Quadratic: halving the voltage quarters the dynamic energy.
        assert!((EnergyTable::dynamic_scale(0.6) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn default_table_is_in_published_ballpark() {
        let t = EnergyTable::default();
        // A busy single-core cycle (core + fetch + clock) at 0.6 V should
        // land in the tens of pJ — the regime of the paper's ref [11].
        let per_cycle =
            (t.core_active_cycle_pj + t.im_read_pj + t.clock_trunk_sc_pj + t.clock_branch_pj)
                * EnergyTable::dynamic_scale(0.6);
        assert!((15.0..40.0).contains(&per_cycle), "got {per_cycle} pJ");
    }

    #[test]
    fn memory_dominates_logic_per_event() {
        let t = EnergyTable::default();
        assert!(t.im_read_pj > t.core_active_cycle_pj);
        assert!(t.dm_read_pj > t.xbar_traversal_pj);
        assert!(t.decoder_access_pj < t.xbar_traversal_pj);
    }
}
