//! Minimum-clock selection under the real-time constraint.
//!
//! The evaluated benchmarks were "optimized to be executed ... meeting
//! real-time constraints ... the system clock frequency is reduced to the
//! minimum in order to exploit the benefits of voltage-frequency scaling"
//! (paper §V-A). The platform's busy-cycle counts are clock-independent,
//! so the minimum feasible clock follows directly from the worst number
//! of active cycles any core needs within one sampling period.

use wbsn_sim::SimStats;

/// The derived clock requirement of one benchmark run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrequencyRequirement {
    /// Worst active cycles demanded by any core within one sampling
    /// period.
    pub worst_window_cycles: u64,
    /// The sampling period in seconds.
    pub sample_period_s: f64,
    /// Guard band applied on top of the worst case.
    pub guard: f64,
    /// The resulting minimum clock in Hz.
    pub required_hz: f64,
}

/// Computes the minimum clock frequency that keeps every core's
/// worst-case work inside one sampling period, with a multiplicative
/// `guard` band (e.g. `0.1` for 10%).
///
/// # Panics
///
/// Panics if `sample_period_s` is not positive.
///
/// # Example
///
/// ```
/// use wbsn_power::required_frequency;
/// use wbsn_sim::SimStats;
///
/// let mut stats = SimStats::new(1);
/// stats.cores[0].max_window_active = 8000; // cycles per 4 ms sample
/// let req = required_frequency(&stats, 0.004, 0.1);
/// assert!((req.required_hz - 2_200_000.0).abs() < 1.0);
/// ```
pub fn required_frequency(
    stats: &SimStats,
    sample_period_s: f64,
    guard: f64,
) -> FrequencyRequirement {
    assert!(sample_period_s > 0.0, "sample period must be positive");
    let worst = stats.worst_window_active();
    let required_hz = worst as f64 / sample_period_s * (1.0 + guard);
    FrequencyRequirement {
        worst_window_cycles: worst,
        sample_period_s,
        guard,
        required_hz,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_with_worst_window() {
        let mut stats = SimStats::new(2);
        stats.cores[0].max_window_active = 1000;
        stats.cores[1].max_window_active = 3000;
        let req = required_frequency(&stats, 0.004, 0.0);
        assert_eq!(req.worst_window_cycles, 3000);
        assert!((req.required_hz - 750_000.0).abs() < 1e-6);
    }

    #[test]
    fn guard_band_inflates() {
        let mut stats = SimStats::new(1);
        stats.cores[0].max_window_active = 1000;
        let base = required_frequency(&stats, 0.004, 0.0).required_hz;
        let guarded = required_frequency(&stats, 0.004, 0.25).required_hz;
        assert!((guarded / base - 1.25).abs() < 1e-12);
    }

    #[test]
    fn idle_run_requires_nothing() {
        let stats = SimStats::new(1);
        let req = required_frequency(&stats, 0.004, 0.1);
        assert_eq!(req.required_hz, 0.0);
    }
}
