//! Integrating simulation statistics into average power.

use wbsn_sim::{InterconnectKind, PlatformConfig, SimStats};

use crate::breakdown::PowerBreakdown;
use crate::characterization::EnergyTable;
use crate::vfs::OperatingPoint;

/// Which platform instances are powered during the run — the power-off
/// decisions the paper's mapping step makes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Activity {
    /// Cores that are powered (participate in the workload).
    pub cores_powered: usize,
    /// Instruction banks that must stay powered (those holding code).
    pub im_banks_powered: usize,
    /// Data banks that must stay powered. In the multi-core platform
    /// this is *all* of them, because the ATU interleaves the shared
    /// section across every bank (paper §V-A); the baseline powers only
    /// the banks its footprint touches.
    pub dm_banks_powered: usize,
}

impl Activity {
    /// Derives the powered-instance counts from a run and its platform
    /// configuration, given the number of instruction banks holding code.
    pub fn derive(
        stats: &SimStats,
        config: &PlatformConfig,
        im_banks_with_code: usize,
    ) -> Activity {
        let cores_powered = stats
            .cores
            .iter()
            .filter(|c| c.active_cycles + c.gated_cycles > 0)
            .count()
            .max(1);
        let dm_banks_powered = match config.interconnect {
            InterconnectKind::Crossbar => wbsn_isa::DM_BANKS,
            InterconnectKind::Decoder => stats.dm.touched_banks().max(1),
        };
        Activity {
            cores_powered,
            im_banks_powered: im_banks_with_code.max(1),
            dm_banks_powered,
        }
    }
}

/// The power model: a characterization table applied at an operating
/// point.
///
/// # Example
///
/// ```
/// use wbsn_power::{Activity, EnergyTable, PowerModel, VfsTable, Interconnect};
/// use wbsn_sim::{PlatformConfig, SimStats};
///
/// let model = PowerModel::default();
/// let mut stats = SimStats::new(1);
/// stats.cycles = 1_000_000; // one second at 1 MHz
/// stats.cores[0].active_cycles = 500_000;
/// let activity = Activity { cores_powered: 1, im_banks_powered: 1, dm_banks_powered: 3 };
/// let op = VfsTable::default().min_point_for(1.0e6, Interconnect::Decoder).unwrap();
/// let config = PlatformConfig::single_core();
/// let breakdown = model.average_power(&stats, &config, activity, op, 1.0e6);
/// assert!(breakdown.total_uw() > 0.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct PowerModel {
    table: EnergyTable,
}

impl PowerModel {
    /// Creates a model from a characterization table.
    pub fn new(table: EnergyTable) -> PowerModel {
        PowerModel { table }
    }

    /// The characterization table in use.
    pub fn table(&self) -> &EnergyTable {
        &self.table
    }

    /// Integrates a run into the Fig. 6 decomposition.
    ///
    /// `op` is the supply operating point and `clock_hz` the actual clock
    /// (at or below `op`'s maximum for the platform's interconnect);
    /// `stats.cycles / clock_hz` defines the wall-clock duration over
    /// which dynamic energy is averaged and leakage accrues.
    ///
    /// # Panics
    ///
    /// Panics if `clock_hz` is not positive or the run has zero cycles.
    pub fn average_power(
        &self,
        stats: &SimStats,
        config: &PlatformConfig,
        activity: Activity,
        op: OperatingPoint,
        clock_hz: f64,
    ) -> PowerBreakdown {
        assert!(clock_hz > 0.0, "clock must be positive");
        assert!(stats.cycles > 0, "run must simulate at least one cycle");
        let t = &self.table;
        let dyn_scale = EnergyTable::dynamic_scale(op.voltage);
        let leak_scale = EnergyTable::leakage_scale(op.voltage);
        let seconds = stats.cycles as f64 / clock_hz;
        // pJ of dynamic energy over the run → µW of average power.
        let uw_dyn = |pj: f64| pj * dyn_scale * 1e-12 / seconds * 1e6;
        // nW of nominal leakage → µW at the operating point.
        let uw_leak = |nw: f64| nw * leak_scale * 1e-3;

        let active: f64 = stats.total_active_cycles() as f64;
        let gated: f64 = stats.cores.iter().map(|c| c.gated_cycles as f64).sum();
        let sync_ops: f64 = stats.cores.iter().map(|c| c.sync_ops as f64).sum();

        let cores_and_logic_uw = uw_dyn(
            active * t.core_active_cycle_pj
                + gated * t.core_gated_cycle_pj
                + sync_ops * t.sync_op_pj
                + (stats.mmio_reads + stats.mmio_writes) as f64 * t.mmio_access_pj,
        ) + uw_leak(activity.cores_powered as f64 * t.core_leak_nw)
            + if config.interconnect == InterconnectKind::Crossbar {
                uw_leak(t.sync_unit_leak_nw)
            } else {
                0.0
            };

        let im_reads: f64 = stats.im.reads.iter().sum::<u64>() as f64;
        let prog_mem_uw = uw_dyn(im_reads * t.im_read_pj)
            + uw_leak(activity.im_banks_powered as f64 * t.im_bank_leak_nw);

        let dm_reads: f64 =
            stats.dm.reads.iter().sum::<u64>() as f64 + stats.sync_region_reads as f64;
        let dm_writes: f64 =
            stats.dm.writes.iter().sum::<u64>() as f64 + stats.sync_region_writes as f64;
        let data_mem_uw = uw_dyn(dm_reads * t.dm_read_pj + dm_writes * t.dm_write_pj)
            + uw_leak(activity.dm_banks_powered as f64 * t.dm_bank_leak_nw);

        let interconnect_uw = match config.interconnect {
            InterconnectKind::Crossbar => {
                uw_dyn((stats.xbar_im + stats.xbar_dm) as f64 * t.xbar_traversal_pj)
                    + uw_leak(t.xbar_leak_nw)
            }
            InterconnectKind::Decoder => {
                let accesses = im_reads + dm_reads + dm_writes;
                uw_dyn(accesses * t.decoder_access_pj) + uw_leak(t.decoder_leak_nw)
            }
        };

        let trunk = match config.interconnect {
            InterconnectKind::Crossbar => t.clock_trunk_mc_pj,
            InterconnectKind::Decoder => t.clock_trunk_sc_pj,
        };
        let clock_tree_uw = uw_dyn(stats.cycles as f64 * trunk + active * t.clock_branch_pj);

        PowerBreakdown {
            cores_and_logic_uw,
            prog_mem_uw,
            data_mem_uw,
            interconnect_uw,
            clock_tree_uw,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::{Interconnect, VfsTable};

    fn busy_sc_stats(cycles: u64, duty: f64) -> SimStats {
        let mut s = SimStats::new(1);
        s.cycles = cycles;
        let active = (cycles as f64 * duty) as u64;
        s.cores[0].active_cycles = active;
        s.cores[0].gated_cycles = cycles - active;
        s.cores[0].instructions = active * 9 / 10;
        s.im.reads[0] = active * 9 / 10;
        s.dm.reads[0] = active / 5;
        s.dm.writes[0] = active / 10;
        s
    }

    #[test]
    fn single_core_power_lands_in_table_i_ballpark() {
        // 2.3 MHz, 0.6 V, ~90% duty: the paper reports 53.6 µW.
        let model = PowerModel::default();
        let f = 2.3e6;
        let stats = busy_sc_stats(2_300_000, 0.90);
        let config = PlatformConfig::single_core();
        let activity = Activity {
            cores_powered: 1,
            im_banks_powered: 1,
            dm_banks_powered: 3,
        };
        let op = VfsTable::default()
            .min_point_for(f, Interconnect::Decoder)
            .unwrap();
        let b = model.average_power(&stats, &config, activity, op, f);
        let total = b.total_uw();
        assert!(
            (25.0..110.0).contains(&total),
            "expected tens of µW, got {total}"
        );
        // Program memory is a first-order component in this regime.
        assert!(b.prog_mem_uw > 0.2 * total);
    }

    #[test]
    fn voltage_scaling_reduces_power_quadratically() {
        let model = PowerModel::default();
        let stats = busy_sc_stats(1_000_000, 1.0);
        let config = PlatformConfig::single_core();
        let activity = Activity {
            cores_powered: 1,
            im_banks_powered: 1,
            dm_banks_powered: 1,
        };
        let vfs = VfsTable::default();
        let p06 = vfs.points()[1];
        let p12 = vfs.points()[7];
        let low = model.average_power(&stats, &config, activity, p06, 1.0e6);
        let high = model.average_power(&stats, &config, activity, p12, 1.0e6);
        assert!(low.total_uw() < 0.3 * high.total_uw());
    }

    #[test]
    fn gated_cycles_are_nearly_free() {
        let model = PowerModel::default();
        let config = PlatformConfig::single_core();
        let activity = Activity {
            cores_powered: 1,
            im_banks_powered: 1,
            dm_banks_powered: 1,
        };
        let op = VfsTable::default().points()[0];
        let busy = model.average_power(&busy_sc_stats(1_000_000, 1.0), &config, activity, op, 1e6);
        let idle = model.average_power(&busy_sc_stats(1_000_000, 0.05), &config, activity, op, 1e6);
        assert!(idle.total_uw() < 0.25 * busy.total_uw());
    }

    #[test]
    fn crossbar_platform_charges_interconnect_and_sync_leakage() {
        let model = PowerModel::default();
        let mut stats = SimStats::new(8);
        stats.cycles = 1_000_000;
        stats.cores[0].active_cycles = 500_000;
        stats.xbar_im = 450_000;
        stats.xbar_dm = 100_000;
        let config = PlatformConfig::multi_core();
        let activity = Activity {
            cores_powered: 3,
            im_banks_powered: 1,
            dm_banks_powered: 16,
        };
        let op = VfsTable::default().points()[0];
        let b = model.average_power(&stats, &config, activity, op, 1e6);
        assert!(b.interconnect_uw > 0.0);
        // All 16 banks leak even if untouched.
        let t = model.table();
        let dm_leak = 16.0 * t.dm_bank_leak_nw * EnergyTable::leakage_scale(0.5) * 1e-3;
        assert!(b.data_mem_uw >= dm_leak * 0.99);
    }

    #[test]
    fn activity_derivation() {
        let mut stats = SimStats::new(8);
        stats.cores[0].active_cycles = 10;
        stats.cores[1].gated_cycles = 5;
        stats.dm.reads[2] = 1;
        stats.dm.writes[9] = 1;
        let mc = Activity::derive(&stats, &PlatformConfig::multi_core(), 2);
        assert_eq!(mc.cores_powered, 2);
        assert_eq!(mc.im_banks_powered, 2);
        assert_eq!(mc.dm_banks_powered, 16);
        let sc = Activity::derive(&stats, &PlatformConfig::single_core(), 1);
        assert_eq!(sc.dm_banks_powered, 2);
    }
}
