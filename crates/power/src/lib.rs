//! Energy and power modelling for the WBSN platform.
//!
//! The paper's methodology annotates a SystemC architectural model with
//! per-component energies measured in post-layout RTL simulation (90 nm
//! low-leakage process), then integrates those energies over a long
//! simulated run to obtain average power. This crate plays the same
//! role for [`wbsn_sim`]:
//!
//! * [`characterization`] — the per-event energy and per-instance
//!   leakage table standing in for the RTL characterization.
//! * [`vfs`] — voltage-frequency scaling: the discrete operating points
//!   and the maximum clock attainable with crossbar vs decoder
//!   interconnect at each voltage.
//! * [`select`] — minimum-frequency/voltage selection under the
//!   application's real-time constraint.
//! * [`model`] + [`breakdown`] — integrating a run's
//!   [`wbsn_sim::SimStats`] into the Fig. 6 power decomposition.
//!
//! # Example
//!
//! ```
//! use wbsn_power::{Interconnect, VfsTable};
//!
//! let vfs = VfsTable::ninety_nm_low_leakage();
//! let op = vfs.min_point_for(2_300_000.0, Interconnect::Decoder).unwrap();
//! assert!((op.voltage - 0.6).abs() < 1e-9);
//! ```

pub mod breakdown;
pub mod characterization;
pub mod model;
pub mod select;
pub mod vfs;

pub use breakdown::PowerBreakdown;
pub use characterization::EnergyTable;
pub use model::{Activity, PowerModel};
pub use select::{required_frequency, FrequencyRequirement};
pub use vfs::{Interconnect, OperatingPoint, VfsTable};
