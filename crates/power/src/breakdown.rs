//! The Fig. 6 power decomposition.

use std::fmt;

/// Average power split into the components of the paper's Fig. 6, in
/// microwatts.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PowerBreakdown {
    /// Cores, core-side logic and the synchronizer.
    pub cores_and_logic_uw: f64,
    /// Program (instruction) memory banks.
    pub prog_mem_uw: f64,
    /// Data memory banks.
    pub data_mem_uw: f64,
    /// Crossbars (multi-core) or decoders (baseline).
    pub interconnect_uw: f64,
    /// Clock tree (trunk + branches to clocked cores).
    pub clock_tree_uw: f64,
}

impl PowerBreakdown {
    /// Total average power in microwatts.
    pub fn total_uw(&self) -> f64 {
        self.cores_and_logic_uw
            + self.prog_mem_uw
            + self.data_mem_uw
            + self.interconnect_uw
            + self.clock_tree_uw
    }

    /// Each component as a share of the total, in percent, in the order
    /// (cores, program memory, data memory, interconnect, clock tree).
    pub fn shares_percent(&self) -> [f64; 5] {
        let total = self.total_uw();
        if total == 0.0 {
            return [0.0; 5];
        }
        [
            100.0 * self.cores_and_logic_uw / total,
            100.0 * self.prog_mem_uw / total,
            100.0 * self.data_mem_uw / total,
            100.0 * self.interconnect_uw / total,
            100.0 * self.clock_tree_uw / total,
        ]
    }
}

impl fmt::Display for PowerBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "cores & logic : {:8.2} uW", self.cores_and_logic_uw)?;
        writeln!(f, "prog mem      : {:8.2} uW", self.prog_mem_uw)?;
        writeln!(f, "data mem      : {:8.2} uW", self.data_mem_uw)?;
        writeln!(f, "interconnect  : {:8.2} uW", self.interconnect_uw)?;
        writeln!(f, "clock tree    : {:8.2} uW", self.clock_tree_uw)?;
        write!(f, "total         : {:8.2} uW", self.total_uw())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_and_shares() {
        let b = PowerBreakdown {
            cores_and_logic_uw: 10.0,
            prog_mem_uw: 20.0,
            data_mem_uw: 10.0,
            interconnect_uw: 5.0,
            clock_tree_uw: 5.0,
        };
        assert!((b.total_uw() - 50.0).abs() < 1e-12);
        let shares = b.shares_percent();
        assert!((shares.iter().sum::<f64>() - 100.0).abs() < 1e-9);
        assert!((shares[1] - 40.0).abs() < 1e-9);
    }

    #[test]
    fn zero_breakdown_has_zero_shares() {
        assert_eq!(PowerBreakdown::default().shares_percent(), [0.0; 5]);
    }

    #[test]
    fn display_lists_every_component() {
        let text = PowerBreakdown::default().to_string();
        for needle in ["cores", "prog", "data", "interconnect", "clock", "total"] {
            assert!(text.contains(needle), "missing {needle}");
        }
    }
}
