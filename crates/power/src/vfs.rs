//! Voltage-frequency scaling: operating points and interconnect-dependent
//! maximum clock.
//!
//! The single-core baseline replaces the crossbars with simple decoders,
//! "allowing higher clock frequencies at the same voltage level" (paper
//! §IV-B); conversely, the crossbar platform pays a critical-path penalty
//! but can drop to a lower voltage when the required clock is low — the
//! essence of the paper's energy argument.

/// Which interconnect closes the platform's critical path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interconnect {
    /// Combinational crossbars (multi-core).
    Crossbar,
    /// Address decoders (single-core baseline).
    Decoder,
}

/// One voltage level with the maximum clock attainable per interconnect.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperatingPoint {
    /// Supply voltage in volts.
    pub voltage: f64,
    /// Maximum clock with crossbar interconnect, Hz.
    pub fmax_crossbar_hz: f64,
    /// Maximum clock with decoder interconnect, Hz.
    pub fmax_decoder_hz: f64,
}

impl OperatingPoint {
    /// The maximum clock for `interconnect` at this voltage.
    pub fn fmax(&self, interconnect: Interconnect) -> f64 {
        match interconnect {
            Interconnect::Crossbar => self.fmax_crossbar_hz,
            Interconnect::Decoder => self.fmax_decoder_hz,
        }
    }
}

/// The discrete voltage levels the regulator supports.
#[derive(Debug, Clone, PartialEq)]
pub struct VfsTable {
    points: Vec<OperatingPoint>,
    /// Lowest clock the platform's timing sources support, Hz.
    pub min_clock_hz: f64,
}

impl VfsTable {
    /// The default 90 nm low-leakage characterization, anchored so that a
    /// ~1 MHz crossbar platform reaches 0.5 V while a 2.3–3.4 MHz decoder
    /// platform needs 0.6 V — the regime of Table I.
    pub fn ninety_nm_low_leakage() -> VfsTable {
        let p = |voltage: f64, xbar_mhz: f64, dec_mhz: f64| OperatingPoint {
            voltage,
            fmax_crossbar_hz: xbar_mhz * 1e6,
            fmax_decoder_hz: dec_mhz * 1e6,
        };
        VfsTable {
            points: vec![
                p(0.5, 1.2, 2.0),
                p(0.6, 3.6, 4.8),
                p(0.7, 8.0, 10.0),
                p(0.8, 16.0, 20.0),
                p(0.9, 28.0, 34.0),
                p(1.0, 40.0, 48.0),
                p(1.1, 60.0, 70.0),
                p(1.2, 80.0, 96.0),
            ],
            min_clock_hz: 1.0e6,
        }
    }

    /// The operating points in ascending voltage order.
    pub fn points(&self) -> &[OperatingPoint] {
        &self.points
    }

    /// The lowest-voltage point whose `fmax` meets `required_hz` for the
    /// given interconnect, or `None` when even the nominal voltage is too
    /// slow.
    ///
    /// # Example
    ///
    /// ```
    /// use wbsn_power::{Interconnect, VfsTable};
    ///
    /// let vfs = VfsTable::ninety_nm_low_leakage();
    /// let mc = vfs.min_point_for(1_000_000.0, Interconnect::Crossbar).unwrap();
    /// assert!((mc.voltage - 0.5).abs() < 1e-9);
    /// let sc = vfs.min_point_for(3_400_000.0, Interconnect::Decoder).unwrap();
    /// assert!((sc.voltage - 0.6).abs() < 1e-9);
    /// ```
    pub fn min_point_for(
        &self,
        required_hz: f64,
        interconnect: Interconnect,
    ) -> Option<OperatingPoint> {
        self.points
            .iter()
            .find(|p| p.fmax(interconnect) >= required_hz)
            .copied()
    }

    /// Clamps a required clock to the platform's minimum.
    pub fn clamp_clock(&self, required_hz: f64) -> f64 {
        required_hz.max(self.min_clock_hz)
    }
}

impl Default for VfsTable {
    fn default() -> Self {
        VfsTable::ninety_nm_low_leakage()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_monotonic() {
        let vfs = VfsTable::default();
        for w in vfs.points().windows(2) {
            assert!(w[0].voltage < w[1].voltage);
            assert!(w[0].fmax_crossbar_hz < w[1].fmax_crossbar_hz);
            assert!(w[0].fmax_decoder_hz < w[1].fmax_decoder_hz);
        }
    }

    #[test]
    fn decoder_is_always_faster_than_crossbar() {
        for p in VfsTable::default().points() {
            assert!(p.fmax_decoder_hz > p.fmax_crossbar_hz);
        }
    }

    #[test]
    fn selection_matches_table_i_regime() {
        let vfs = VfsTable::default();
        // MC at its 1 MHz floor fits 0.5 V.
        let mc = vfs
            .min_point_for(1.0e6, Interconnect::Crossbar)
            .expect("feasible");
        assert!((mc.voltage - 0.5).abs() < 1e-9);
        // SC at 2.3–3.4 MHz needs 0.6 V.
        for f in [2.3e6, 3.3e6, 3.4e6] {
            let sc = vfs
                .min_point_for(f, Interconnect::Decoder)
                .expect("feasible");
            assert!((sc.voltage - 0.6).abs() < 1e-9, "f = {f}");
        }
    }

    #[test]
    fn infeasible_requirement_returns_none() {
        let vfs = VfsTable::default();
        assert!(vfs.min_point_for(1e9, Interconnect::Decoder).is_none());
    }

    #[test]
    fn clock_floor() {
        let vfs = VfsTable::default();
        assert_eq!(vfs.clamp_clock(200_000.0), 1.0e6);
        assert_eq!(vfs.clamp_clock(2.0e6), 2.0e6);
    }
}
