//! Property tests on the power model: monotonicity and scaling laws.

use proptest::prelude::*;
use wbsn_power::{Activity, EnergyTable, Interconnect, PowerModel, VfsTable};
use wbsn_sim::{PlatformConfig, SimStats};

fn stats_with(cycles: u64, active: u64, im_reads: u64, dm_reads: u64) -> SimStats {
    let mut s = SimStats::new(1);
    s.cycles = cycles.max(1);
    s.cores[0].active_cycles = active.min(s.cycles);
    s.cores[0].gated_cycles = s.cycles - s.cores[0].active_cycles;
    s.im.reads[0] = im_reads;
    s.dm.reads[0] = dm_reads;
    s
}

fn activity() -> Activity {
    Activity {
        cores_powered: 1,
        im_banks_powered: 1,
        dm_banks_powered: 2,
    }
}

proptest! {
    /// More activity never costs less power (same duration, same
    /// operating point).
    #[test]
    fn power_is_monotone_in_activity(
        cycles in 1_000u64..1_000_000,
        a1 in 0u64..1_000_000,
        a2 in 0u64..1_000_000,
    ) {
        let model = PowerModel::default();
        let config = PlatformConfig::single_core();
        let op = VfsTable::default().points()[1];
        let f = 1.0e6;
        let (lo, hi) = if a1 <= a2 { (a1, a2) } else { (a2, a1) };
        let p_lo = model
            .average_power(&stats_with(cycles, lo, lo, lo / 4), &config, activity(), op, f)
            .total_uw();
        let p_hi = model
            .average_power(&stats_with(cycles, hi, hi, hi / 4), &config, activity(), op, f)
            .total_uw();
        prop_assert!(p_lo <= p_hi + 1e-9, "{p_lo} > {p_hi}");
    }

    /// Higher supply voltage never costs less power for the same run.
    #[test]
    fn power_is_monotone_in_voltage(
        cycles in 1_000u64..100_000,
        active in 0u64..100_000,
        op_a in 0usize..8,
        op_b in 0usize..8,
    ) {
        let model = PowerModel::default();
        let config = PlatformConfig::single_core();
        let vfs = VfsTable::default();
        let stats = stats_with(cycles, active, active, active / 3);
        let f = 1.0e6;
        let (lo, hi) = if op_a <= op_b { (op_a, op_b) } else { (op_b, op_a) };
        let p_lo = model
            .average_power(&stats, &config, activity(), vfs.points()[lo], f)
            .total_uw();
        let p_hi = model
            .average_power(&stats, &config, activity(), vfs.points()[hi], f)
            .total_uw();
        prop_assert!(p_lo <= p_hi + 1e-9);
    }

    /// Scaling every dynamic event count and the cycle count by the same
    /// factor leaves average power unchanged (it is an average).
    #[test]
    fn average_power_is_scale_invariant(
        cycles in 1_000u64..50_000,
        active in 1u64..50_000,
        k in 2u64..8,
    ) {
        let model = PowerModel::default();
        let config = PlatformConfig::single_core();
        let op = VfsTable::default().points()[2];
        let f = 2.0e6;
        let a = active.min(cycles);
        let dm = a / 2; // fixed before scaling so integer division cannot skew
        let p1 = model
            .average_power(&stats_with(cycles, a, a, dm), &config, activity(), op, f)
            .total_uw();
        let pk = model
            .average_power(
                &stats_with(cycles * k, a * k, a * k, dm * k),
                &config,
                activity(),
                op,
                f,
            )
            .total_uw();
        prop_assert!((p1 - pk).abs() < p1 * 1e-6 + 1e-9, "{p1} vs {pk}");
    }

    /// The VFS selector always returns the cheapest feasible voltage:
    /// no lower table entry satisfies the requirement.
    #[test]
    fn vfs_selection_is_minimal(required_mhz in 0.1f64..100.0) {
        let vfs = VfsTable::default();
        let required = required_mhz * 1e6;
        for interconnect in [Interconnect::Crossbar, Interconnect::Decoder] {
            if let Some(op) = vfs.min_point_for(required, interconnect) {
                prop_assert!(op.fmax(interconnect) >= required);
                for lower in vfs.points().iter().filter(|p| p.voltage < op.voltage) {
                    prop_assert!(lower.fmax(interconnect) < required);
                }
            } else {
                // Infeasible: even the top voltage is too slow.
                let top = vfs.points().last().expect("non-empty table");
                prop_assert!(top.fmax(interconnect) < required);
            }
        }
    }

    /// Dynamic/leakage scaling anchors: nominal voltage scales to 1.
    #[test]
    fn scaling_anchors(v in 0.3f64..1.2) {
        prop_assert!(EnergyTable::dynamic_scale(v) <= 1.0 + 1e-12);
        prop_assert!(EnergyTable::leakage_scale(v) <= 1.0 + 1e-12);
        prop_assert!(EnergyTable::dynamic_scale(v) > 0.0);
        // Quadratic beats linear below nominal.
        prop_assert!(EnergyTable::dynamic_scale(v) <= EnergyTable::leakage_scale(v) + 1e-12);
    }
}
