//! Observability layer for the WBSN simulator.
//!
//! This crate defines a typed event stream over everything the paper's
//! platform does that is worth watching — synchronizer activity, clock
//! gating, bank power-up, ADC traffic, mapping-phase transitions and
//! stall runs — plus the sinks that consume it:
//!
//! * [`CountingSink`] — counters and log2 histograms (sleep latency,
//!   sync gaps, stall-run lengths), cheap enough for every sweep cell;
//! * [`PhaseProfiler`] — attributes every core-cycle to the mapping
//!   phase executing at retirement;
//! * [`TraceJsonSink`] — a Chrome/Perfetto `trace_event` timeline.
//!
//! The simulator talks to the layer through [`Obs`], a handle that is a
//! `None` check when observability is disabled: every hook is
//! `#[inline]` and returns immediately, so the predecoded fast path pays
//! nothing measurable. Construct a recorder with [`ObsConfig`] and
//! [`Obs::enable`].

pub mod count;
pub mod event;
pub mod hist;
pub mod json;
pub mod perfetto;
pub mod profile;
pub mod sink;

use std::collections::VecDeque;
use std::fmt;

pub use count::{CountingSink, ObsSummary};
pub use event::{AdcEvent, Event, PhaseEvent, PowerEvent, StallCause, SyncEvent, TimedEvent};
pub use hist::Histogram;
pub use perfetto::TraceJsonSink;
pub use profile::{PhaseCounters, PhaseProfiler, PhaseRow, UNMAPPED_PHASE};
pub use sink::EventSink;

use wbsn_core::{SyncOutcome, MAX_CORES};
use wbsn_isa::{PhaseTable, SyncKind, NO_PHASE};

/// What to record.
#[derive(Debug, Clone, Default)]
pub struct ObsConfig {
    /// Run the [`CountingSink`].
    pub counting: bool,
    /// Run the [`PhaseProfiler`].
    pub profile: bool,
    /// Run the [`TraceJsonSink`].
    pub trace: bool,
    /// Keep the most recent events in a ring of this capacity (0
    /// disables the ring).
    pub ring: usize,
    /// Phase table for pc → phase attribution. Without it, profiling
    /// and phase slices collapse into the unmapped phase.
    pub phases: Option<PhaseTable>,
}

impl ObsConfig {
    /// Counters and histograms only — the sweep engine's configuration.
    pub fn counting_only() -> ObsConfig {
        ObsConfig {
            counting: true,
            ..ObsConfig::default()
        }
    }

    /// Everything on: counting, profiling, timeline export and a
    /// post-mortem ring.
    pub fn full(phases: Option<PhaseTable>) -> ObsConfig {
        ObsConfig {
            counting: true,
            profile: true,
            trace: true,
            ring: 256,
            phases,
        }
    }
}

/// The live recorder behind an enabled [`Obs`] handle.
pub struct ObsCore {
    cores: usize,
    phases: Option<PhaseTable>,
    track_phases: bool,
    cur_phase: [u16; MAX_CORES],
    stall_len: [u64; MAX_CORES],
    stall_cause: [StallCause; MAX_CORES],
    gate_start: [Option<(u64, u16)>; MAX_CORES],
    last_sync: [Option<u64>; MAX_CORES],
    im_banks_on: u32,
    dm_banks_on: u32,
    counting: Option<CountingSink>,
    profiler: Option<PhaseProfiler>,
    trace: Option<TraceJsonSink>,
    extra: Vec<Box<dyn EventSink + Send>>,
    ring: VecDeque<TimedEvent>,
    ring_capacity: usize,
    finished: bool,
}

impl fmt::Debug for ObsCore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ObsCore")
            .field("cores", &self.cores)
            .field("counting", &self.counting.is_some())
            .field("profile", &self.profiler.is_some())
            .field("trace", &self.trace.is_some())
            .field("ring_capacity", &self.ring_capacity)
            .field("extra_sinks", &self.extra.len())
            .finish()
    }
}

impl ObsCore {
    /// A recorder for `cores` cores.
    pub fn new(cores: usize, config: ObsConfig) -> ObsCore {
        let cores = cores.min(MAX_CORES);
        let names: Vec<String> = config
            .phases
            .as_ref()
            .map(|t| t.names().to_vec())
            .unwrap_or_default();
        let profiler = config
            .profile
            .then(|| PhaseProfiler::new(cores, names.clone()));
        let trace = config.trace.then(|| TraceJsonSink::new(names));
        let track_phases = profiler.is_some() || trace.is_some() || config.ring > 0;
        ObsCore {
            cores,
            track_phases,
            cur_phase: [NO_PHASE; MAX_CORES],
            stall_len: [0; MAX_CORES],
            stall_cause: [StallCause::ImConflict; MAX_CORES],
            gate_start: [None; MAX_CORES],
            last_sync: [None; MAX_CORES],
            im_banks_on: 0,
            dm_banks_on: 0,
            counting: config.counting.then(CountingSink::new),
            profiler,
            trace,
            extra: Vec::new(),
            ring: VecDeque::with_capacity(config.ring),
            ring_capacity: config.ring,
            phases: config.phases,
            finished: false,
        }
    }

    /// Attaches a caller-provided sink.
    pub fn add_sink(&mut self, sink: Box<dyn EventSink + Send>) {
        self.extra.push(sink);
    }

    #[inline]
    fn emit(&mut self, cycle: u64, event: Event) {
        if self.ring_capacity > 0 {
            if self.ring.len() == self.ring_capacity {
                self.ring.pop_front();
            }
            self.ring.push_back(TimedEvent { cycle, event });
        }
        if let Some(sink) = &mut self.counting {
            sink.on_event(cycle, &event);
        }
        if let Some(sink) = &mut self.trace {
            sink.on_event(cycle, &event);
        }
        for sink in &mut self.extra {
            sink.on_event(cycle, &event);
        }
    }

    /// Profiler slot for a phase index.
    #[inline]
    fn slot(&self, phase: u16) -> usize {
        if phase == NO_PHASE {
            self.phases.as_ref().map_or(0, |t| t.num_phases())
        } else {
            phase as usize
        }
    }

    /// One active (ungated) cycle on `core`, with the program counter
    /// it is about to execute.
    #[inline]
    pub fn active_cycle(&mut self, cycle: u64, core: usize, pc: u32) {
        if self.track_phases {
            let phase = self.phases.as_ref().map_or(NO_PHASE, |t| t.phase_at(pc));
            if phase != self.cur_phase[core] {
                let old = self.cur_phase[core];
                if old != NO_PHASE {
                    self.emit(
                        cycle,
                        Event::Phase(PhaseEvent::Exit {
                            core: core as u8,
                            phase: old,
                        }),
                    );
                }
                if phase != NO_PHASE {
                    self.emit(
                        cycle,
                        Event::Phase(PhaseEvent::Enter {
                            core: core as u8,
                            phase,
                        }),
                    );
                }
                self.cur_phase[core] = phase;
            }
        }
        if self.profiler.is_some() {
            let slot = self.slot(self.cur_phase[core]);
            if let Some(p) = &mut self.profiler {
                p.active(core, slot);
            }
        }
    }

    /// One stall cycle on `core`. Consecutive stalls with the same
    /// cause accumulate into a single run, emitted when the run ends.
    #[inline]
    pub fn stall(&mut self, cycle: u64, core: usize, cause: StallCause) {
        if self.stall_len[core] > 0 && self.stall_cause[core] != cause {
            self.flush_stall(core, cycle);
        }
        self.stall_cause[core] = cause;
        self.stall_len[core] += 1;
        if self.profiler.is_some() {
            let slot = self.slot(self.cur_phase[core]);
            if let Some(p) = &mut self.profiler {
                p.stall(core, slot, cause);
            }
        }
    }

    /// One bubble cycle on `core`.
    #[inline]
    pub fn bubble(&mut self, _cycle: u64, core: usize) {
        if self.profiler.is_some() {
            let slot = self.slot(self.cur_phase[core]);
            if let Some(p) = &mut self.profiler {
                p.bubble(core, slot);
            }
        }
    }

    /// `core` retired an instruction this cycle; any open stall run has
    /// therefore ended.
    #[inline]
    pub fn retire(&mut self, cycle: u64, core: usize) {
        if self.stall_len[core] > 0 {
            self.flush_stall(core, cycle);
        }
        if self.profiler.is_some() {
            let slot = self.slot(self.cur_phase[core]);
            if let Some(p) = &mut self.profiler {
                p.retire(core, slot);
            }
        }
    }

    fn flush_stall(&mut self, core: usize, now: u64) {
        let len = std::mem::take(&mut self.stall_len[core]);
        if len > 0 {
            self.emit(
                now,
                Event::StallRun {
                    core: core as u8,
                    cause: self.stall_cause[core],
                    len,
                },
            );
        }
    }

    /// `core` retired a synchronization instruction on `point`.
    #[inline]
    pub fn sync_op(&mut self, cycle: u64, core: usize, kind: SyncKind, point: u16) {
        let since_last = self.last_sync[core].map(|last| cycle - last);
        self.last_sync[core] = Some(cycle);
        self.emit(
            cycle,
            Event::Sync(SyncEvent::OpRetired {
                core: core as u8,
                kind,
                point,
                since_last,
            }),
        );
        if self.profiler.is_some() {
            let slot = self.slot(self.cur_phase[core]);
            if let Some(p) = &mut self.profiler {
                p.sync_op(core, slot);
            }
        }
    }

    /// `core` issued a `SLEEP` this cycle.
    #[inline]
    pub fn sleep_op(&mut self, _cycle: u64, core: usize) {
        if self.profiler.is_some() {
            let slot = self.slot(self.cur_phase[core]);
            if let Some(p) = &mut self.profiler {
                p.sleep(core, slot);
            }
        }
    }

    /// The synchronizer committed a cycle; translate its outcome into
    /// events and gate bookkeeping.
    pub fn sync_outcome(&mut self, cycle: u64, outcome: &SyncOutcome) {
        for touch in &outcome.touched {
            if touch.requests > 1 {
                self.emit(
                    cycle,
                    Event::Sync(SyncEvent::PointMerged {
                        point: touch.point,
                        requests: touch.requests,
                    }),
                );
            }
            if touch.armed {
                self.emit(
                    cycle,
                    Event::Sync(SyncEvent::PointArmed { point: touch.point }),
                );
            }
            for core in touch.flagged.iter() {
                self.emit(
                    cycle,
                    Event::Sync(SyncEvent::CoreFlagged {
                        core: core.index() as u8,
                        point: touch.point,
                    }),
                );
            }
        }
        for (i, &point) in outcome.fired_points.iter().enumerate() {
            let woken = outcome.fired_wakes.get(i).map_or(0, |set| set.bits());
            self.emit(
                cycle,
                Event::Sync(SyncEvent::PointReleased { point, woken }),
            );
        }
        for core in outcome.fell_through.iter() {
            self.emit(
                cycle,
                Event::Sync(SyncEvent::SleepFellThrough {
                    core: core.index() as u8,
                }),
            );
        }
        for core in outcome.slept.iter() {
            let idx = core.index();
            self.emit(cycle, Event::Sync(SyncEvent::CoreSlept { core: idx as u8 }));
            self.emit(cycle, Event::Power(PowerEvent::Gate { core: idx as u8 }));
            if idx < MAX_CORES {
                self.gate_start[idx] = Some((cycle, self.cur_phase[idx]));
            }
        }
        for core in outcome.woken.iter() {
            let idx = core.index();
            let (slept_cycles, phase) = match self.gate_start.get_mut(idx).and_then(Option::take) {
                Some((start, phase)) => (cycle.saturating_sub(start), phase),
                None => (0, NO_PHASE),
            };
            self.emit(
                cycle,
                Event::Sync(SyncEvent::CoreWoken {
                    core: idx as u8,
                    slept_cycles,
                }),
            );
            self.emit(cycle, Event::Power(PowerEvent::Ungate { core: idx as u8 }));
            if self.profiler.is_some() {
                let slot = self.slot(phase);
                if let Some(p) = &mut self.profiler {
                    p.gated(idx, slot, slept_cycles);
                }
            }
        }
    }

    /// The ADC latched a sample and raised the interrupt sources in
    /// `mask`.
    pub fn adc_sample(&mut self, cycle: u64, mask: u16) {
        if mask == 0 {
            return;
        }
        self.emit(cycle, Event::Adc(AdcEvent::SampleReady { channels: mask }));
        for source in 0..16u8 {
            if mask & (1 << source) != 0 {
                self.emit(cycle, Event::Adc(AdcEvent::IrqForwarded { source }));
            }
        }
    }

    /// An instruction-memory bank served an access (first touch emits a
    /// power-up event).
    #[inline]
    pub fn im_access(&mut self, cycle: u64, bank: usize) {
        let bit = 1u32 << (bank as u32 & 31);
        if self.im_banks_on & bit == 0 {
            self.im_banks_on |= bit;
            self.emit(
                cycle,
                Event::Power(PowerEvent::ImBankOn { bank: bank as u8 }),
            );
        }
    }

    /// A data-memory bank served an access (first touch emits a
    /// power-up event).
    #[inline]
    pub fn dm_access(&mut self, cycle: u64, bank: usize) {
        let bit = 1u32 << (bank as u32 & 31);
        if self.dm_banks_on & bit == 0 {
            self.dm_banks_on |= bit;
            self.emit(
                cycle,
                Event::Power(PowerEvent::DmBankOn { bank: bank as u8 }),
            );
        }
    }

    /// Ends the recording: flushes open stall runs, attributes open
    /// gated intervals, and lets sinks close open slices. Idempotent.
    pub fn finish(&mut self, cycle: u64) {
        if self.finished {
            return;
        }
        self.finished = true;
        for core in 0..self.cores {
            self.flush_stall(core, cycle);
            if let Some((start, phase)) = self.gate_start[core].take() {
                let slept = cycle.saturating_sub(start);
                let slot = self.slot(phase);
                if let Some(p) = &mut self.profiler {
                    p.gated(core, slot, slept);
                }
            }
        }
        if let Some(sink) = &mut self.counting {
            sink.finish(cycle);
        }
        if let Some(sink) = &mut self.trace {
            sink.finish(cycle);
        }
        for sink in &mut self.extra {
            sink.finish(cycle);
        }
    }

    /// The counting sink, if enabled.
    pub fn counting(&self) -> Option<&CountingSink> {
        self.counting.as_ref()
    }

    /// The per-phase profiler, if enabled.
    pub fn profiler(&self) -> Option<&PhaseProfiler> {
        self.profiler.as_ref()
    }

    /// The timeline exporter, if enabled.
    pub fn trace_sink(&self) -> Option<&TraceJsonSink> {
        self.trace.as_ref()
    }

    /// Renders the timeline as `trace_event` JSON, if tracing was
    /// enabled.
    pub fn trace_json(&self) -> Option<String> {
        self.trace.as_ref().map(TraceJsonSink::to_json)
    }

    /// The phase table, if one was configured.
    pub fn phases(&self) -> Option<&PhaseTable> {
        self.phases.as_ref()
    }

    /// The retained event ring, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TimedEvent> {
        self.ring.iter()
    }

    /// The last `n` ring events rendered as `[cycle] description`
    /// lines, oldest first.
    pub fn tail_rendered(&self, n: usize) -> Vec<String> {
        let skip = self.ring.len().saturating_sub(n);
        self.ring
            .iter()
            .skip(skip)
            .map(|t| format!("[{:>10}] {}", t.cycle, t.event.render(self.phases.as_ref())))
            .collect()
    }
}

/// The simulator-facing handle: `Obs::default()` is off and every hook
/// is a `None` check away from returning.
#[derive(Debug, Default)]
pub struct Obs(Option<Box<ObsCore>>);

macro_rules! forward {
    ($(#[$doc:meta])* $name:ident ( $($arg:ident : $ty:ty),* )) => {
        $(#[$doc])*
        #[inline]
        pub fn $name(&mut self, $($arg: $ty),*) {
            if let Some(core) = &mut self.0 {
                core.$name($($arg),*);
            }
        }
    };
}

impl Obs {
    /// A disabled handle.
    pub const fn off() -> Obs {
        Obs(None)
    }

    /// Enables recording for `cores` cores with `config`.
    pub fn enable(&mut self, cores: usize, config: ObsConfig) {
        self.0 = Some(Box::new(ObsCore::new(cores, config)));
    }

    /// True when a recorder is attached.
    pub fn enabled(&self) -> bool {
        self.0.is_some()
    }

    /// The recorder, if enabled.
    pub fn recorder(&self) -> Option<&ObsCore> {
        self.0.as_deref()
    }

    /// The recorder, mutable, if enabled.
    pub fn recorder_mut(&mut self) -> Option<&mut ObsCore> {
        self.0.as_deref_mut()
    }

    /// Attaches a caller-provided sink (no-op when disabled).
    pub fn add_sink(&mut self, sink: Box<dyn EventSink + Send>) {
        if let Some(core) = &mut self.0 {
            core.add_sink(sink);
        }
    }

    forward!(
        /// See [`ObsCore::active_cycle`].
        active_cycle(cycle: u64, core: usize, pc: u32)
    );
    forward!(
        /// See [`ObsCore::stall`].
        stall(cycle: u64, core: usize, cause: StallCause)
    );
    forward!(
        /// See [`ObsCore::bubble`].
        bubble(cycle: u64, core: usize)
    );
    forward!(
        /// See [`ObsCore::retire`].
        retire(cycle: u64, core: usize)
    );
    forward!(
        /// See [`ObsCore::sync_op`].
        sync_op(cycle: u64, core: usize, kind: SyncKind, point: u16)
    );
    forward!(
        /// See [`ObsCore::sleep_op`].
        sleep_op(cycle: u64, core: usize)
    );
    forward!(
        /// See [`ObsCore::adc_sample`].
        adc_sample(cycle: u64, mask: u16)
    );
    forward!(
        /// See [`ObsCore::im_access`].
        im_access(cycle: u64, bank: usize)
    );
    forward!(
        /// See [`ObsCore::dm_access`].
        dm_access(cycle: u64, bank: usize)
    );
    forward!(
        /// See [`ObsCore::finish`].
        finish(cycle: u64)
    );

    /// Translates a committed synchronizer outcome into events.
    #[inline]
    pub fn sync_outcome(&mut self, cycle: u64, outcome: &SyncOutcome) {
        if let Some(core) = &mut self.0 {
            core.sync_outcome(cycle, outcome);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wbsn_core::{CoreSet, PointTouch};

    fn outcome_release(point: u16, woken_core: usize) -> SyncOutcome {
        let set = CoreSet::from_bits(1 << woken_core);
        SyncOutcome {
            woken: set,
            slept: CoreSet::empty(),
            fell_through: CoreSet::empty(),
            fired_points: vec![point],
            fired_wakes: vec![set],
            touched: vec![PointTouch {
                point,
                flagged: CoreSet::empty(),
                requests: 2,
                armed: false,
            }],
            memory_writes: 1,
        }
    }

    #[test]
    fn disabled_handle_is_inert() {
        let mut obs = Obs::off();
        assert!(!obs.enabled());
        obs.active_cycle(0, 0, 0);
        obs.stall(1, 0, StallCause::ImConflict);
        obs.retire(2, 0);
        obs.finish(3);
        assert!(obs.recorder().is_none());
    }

    #[test]
    fn recorder_tracks_sleep_latency_through_outcomes() {
        let mut obs = Obs::off();
        obs.enable(2, ObsConfig::full(None));

        // Core 1 sleeps at cycle 10 and is woken at cycle 35.
        let slept = SyncOutcome {
            slept: CoreSet::from_bits(0b10),
            ..SyncOutcome::default()
        };
        obs.sleep_op(10, 1);
        obs.sync_outcome(10, &slept);
        obs.sync_outcome(35, &outcome_release(4, 1));
        obs.finish(40);

        let rec = obs.recorder().unwrap();
        let counting = rec.counting().unwrap();
        assert_eq!(counting.releases, 1);
        assert_eq!(counting.merges_saved, 1);
        assert_eq!(counting.sleep_cycles.count(), 1);
        assert_eq!(counting.sleep_cycles.max(), 25);

        // The ring retained the story in order.
        let kinds: Vec<_> = rec.events().map(|t| t.event).collect();
        assert!(kinds.contains(&Event::Sync(SyncEvent::CoreSlept { core: 1 })));
        assert!(kinds.contains(&Event::Sync(SyncEvent::CoreWoken {
            core: 1,
            slept_cycles: 25
        })));
        assert!(kinds.contains(&Event::Power(PowerEvent::Gate { core: 1 })));

        // The trace exporter saw the gate as a 25-cycle sleep slice.
        let json = rec.trace_json().unwrap();
        let doc = json::parse(&json).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let sleep = events
            .iter()
            .find(|e| e.get("cat").and_then(|c| c.as_str()) == Some("power"))
            .expect("sleep slice present");
        assert_eq!(sleep.get("dur").unwrap().as_num(), Some(25.0));
    }

    #[test]
    fn stall_runs_coalesce_and_flush_on_retire() {
        let mut obs = Obs::off();
        obs.enable(
            1,
            ObsConfig {
                counting: true,
                ring: 16,
                ..ObsConfig::default()
            },
        );
        obs.stall(5, 0, StallCause::DmConflict);
        obs.stall(6, 0, StallCause::DmConflict);
        obs.stall(7, 0, StallCause::LoadUseHazard);
        obs.retire(8, 0);
        obs.finish(9);

        let rec = obs.recorder().unwrap();
        let runs: Vec<_> = rec
            .events()
            .filter_map(|t| match t.event {
                Event::StallRun { cause, len, .. } => Some((t.cycle, cause, len)),
                _ => None,
            })
            .collect();
        assert_eq!(
            runs,
            vec![
                (7, StallCause::DmConflict, 2),
                (8, StallCause::LoadUseHazard, 1)
            ]
        );
        let counting = rec.counting().unwrap();
        assert_eq!(counting.total_stall_cycles(), 3);
        assert_eq!(counting.stall_run_cycles.count(), 2);
    }

    #[test]
    fn unfinished_gate_attributes_to_profiler_on_finish() {
        let mut obs = Obs::off();
        obs.enable(
            1,
            ObsConfig {
                profile: true,
                ..ObsConfig::default()
            },
        );
        let slept = SyncOutcome {
            slept: CoreSet::from_bits(0b1),
            ..SyncOutcome::default()
        };
        obs.sync_outcome(100, &slept);
        obs.finish(160);
        let p = obs.recorder().unwrap().profiler().unwrap();
        let rows = p.rows();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].phase, UNMAPPED_PHASE);
        assert_eq!(rows[0].counters.gated_cycles, 60);
    }

    #[test]
    fn bank_power_events_fire_once() {
        let mut obs = Obs::off();
        obs.enable(
            1,
            ObsConfig {
                ring: 8,
                ..ObsConfig::default()
            },
        );
        obs.im_access(1, 0);
        obs.im_access(2, 0);
        obs.im_access(3, 5);
        obs.dm_access(4, 2);
        obs.dm_access(5, 2);
        let events: Vec<_> = obs.recorder().unwrap().events().map(|t| t.event).collect();
        assert_eq!(
            events,
            vec![
                Event::Power(PowerEvent::ImBankOn { bank: 0 }),
                Event::Power(PowerEvent::ImBankOn { bank: 5 }),
                Event::Power(PowerEvent::DmBankOn { bank: 2 }),
            ]
        );
    }
}
