//! Fixed-footprint log2-bucket histograms.
//!
//! Recording is a `leading_zeros` and an array increment — cheap enough
//! to run per event inside the simulator. Quantiles are extracted from
//! the bucket boundaries, so they are deterministic across runs and
//! platforms (no sampling, no floating-point accumulation).

/// One bucket per power of two, plus a dedicated zero bucket.
const BUCKETS: usize = 65;

/// A histogram over `u64` values with power-of-two buckets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; BUCKETS],
    total: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: [0; BUCKETS],
            total: 0,
            sum: 0,
            max: 0,
        }
    }
}

/// Bucket index for a value: 0 holds only zero, bucket `i` holds
/// `[2^(i-1), 2^i - 1]`.
#[inline]
fn bucket_of(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        (64 - value.leading_zeros()) as usize
    }
}

/// Inclusive upper bound of bucket `i`.
fn bucket_hi(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// Inclusive lower bound of bucket `i`.
fn bucket_lo(i: usize) -> u64 {
    if i <= 1 {
        (i as u64).min(1)
    } else {
        1u64 << (i - 1)
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one value.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.counts[bucket_of(value)] += 1;
        self.total += 1;
        self.sum = self.sum.saturating_add(value);
        if value > self.max {
            self.max = value;
        }
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Sum of recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Mean of recorded values, 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// The quantile `q` in `[0, 1]`, reported as the inclusive upper
    /// bound of the bucket holding that rank (capped at the observed
    /// max). Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (i, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return bucket_hi(i).min(self.max);
            }
        }
        self.max
    }

    /// Median (bucket upper bound).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 99th percentile (bucket upper bound).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Non-empty buckets as `(lo, hi, count)`, in ascending order.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_lo(i), bucket_hi(i), c))
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        self.total += other.total;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_powers_of_two() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        for i in 0..BUCKETS {
            assert_eq!(bucket_of(bucket_hi(i)), i);
            assert_eq!(bucket_of(bucket_lo(i)), i.min(64));
        }
    }

    #[test]
    fn quantiles_are_bucket_bounds() {
        let mut h = Histogram::new();
        for v in [1u64, 1, 2, 3, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1107);
        assert_eq!(h.max(), 1000);
        // rank 3 of 6 lands in the [2,3] bucket.
        assert_eq!(h.p50(), 3);
        // p99 lands in the last occupied bucket, capped at max.
        assert_eq!(h.p99(), 1000);
        assert_eq!(h.quantile(0.0), 1);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p99(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.buckets().count(), 0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Histogram::new();
        a.record(4);
        let mut b = Histogram::new();
        b.record(9);
        b.record(9);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max(), 9);
        assert_eq!(a.sum(), 22);
    }
}
