//! A minimal JSON reader/writer helper.
//!
//! The workspace is offline and carries no serde; the exporter emits
//! JSON by hand and this module provides the escape helper plus a small
//! recursive-descent parser used by the `wbsn-trace-check` validator and
//! the crate's own tests.

use std::error::Error;
use std::fmt;

/// Escapes a string for embedding inside a JSON string literal
/// (without the surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }
}

/// A parse failure with its byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub msg: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.msg)
    }
}

impl Error for JsonError {}

/// Parses a complete JSON document.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &'static str) -> JsonError {
        JsonError {
            offset: self.pos,
            msg,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, msg: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{', "expected '{'")?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':' after object key")?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"', "expected string")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.hex4()?;
                            // Surrogate pairs are decoded when both
                            // halves are present; a lone half becomes
                            // the replacement character.
                            let ch = if (0xD800..0xDC00).contains(&code) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    let combined = 0x10000
                                        + ((code - 0xD800) << 10)
                                        + (low.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined).unwrap_or('\u{FFFD}')
                                } else {
                                    '\u{FFFD}'
                                }
                            } else {
                                char::from_u32(code).unwrap_or('\u{FFFD}')
                            };
                            out.push(ch);
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    let start = self.pos;
                    while let Some(b) = self.peek() {
                        if b == b'"' || b == b'\\' || b < 0x20 {
                            break;
                        }
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid utf-8 in string"))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let b = self.peek().ok_or_else(|| self.err("short \\u escape"))?;
            let digit = match b {
                b'0'..=b'9' => u32::from(b - b'0'),
                b'a'..=b'f' => u32::from(b - b'a' + 10),
                b'A'..=b'F' => u32::from(b - b'A' + 10),
                _ => return Err(self.err("invalid hex digit in \\u escape")),
            };
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>().map(Json::Num).map_err(|_| JsonError {
            offset: start,
            msg: "invalid number",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let doc =
            parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": "x\ny", "d": null}, "ok": true}"#).unwrap();
        assert_eq!(doc.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            doc.get("a").unwrap().as_arr().unwrap()[2].as_num(),
            Some(-300.0)
        );
        assert_eq!(
            doc.get("b").unwrap().get("c").unwrap().as_str(),
            Some("x\ny")
        );
        assert_eq!(doc.get("b").unwrap().get("d"), Some(&Json::Null));
        assert_eq!(doc.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(doc.get("missing"), None);
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse("[1, 2,]").is_err());
        assert!(parse("{\"a\": 1} extra").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn unescapes_strings() {
        let doc = parse(r#""tab\t quote\" uA pair😀""#).unwrap();
        assert_eq!(doc.as_str(), Some("tab\t quote\" uA pair\u{1F600}"));
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let original = "core0 \"mf\"\n\tslice\\end\u{1}";
        let wrapped = format!("\"{}\"", escape(original));
        assert_eq!(parse(&wrapped).unwrap().as_str(), Some(original));
    }
}
