//! The pluggable sink interface.

use crate::event::Event;

/// A consumer of the recorder's event stream.
///
/// Sinks receive every event the recorder emits, in cycle order. The
/// built-in sinks ([`CountingSink`](crate::CountingSink),
/// [`TraceJsonSink`](crate::TraceJsonSink)) implement this; callers can
/// attach their own through
/// [`Obs::add_sink`](crate::Obs::add_sink).
pub trait EventSink {
    /// Called for every recorded event.
    fn on_event(&mut self, cycle: u64, event: &Event);

    /// Called once when the simulation ends, with the final cycle, so
    /// sinks can close open intervals.
    fn finish(&mut self, _final_cycle: u64) {}
}
