//! The typed event taxonomy.
//!
//! Every event is a small `Copy` value — recording one costs a match and
//! a few integer stores, never an allocation, which is what lets the
//! recorder sit inside the simulator's cycle loop.

use std::fmt;

use wbsn_isa::{PhaseTable, SyncKind, NO_PHASE};

/// Why a core failed to retire on a given cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallCause {
    /// Lost instruction-memory arbitration.
    ImConflict,
    /// Lost data-memory arbitration.
    DmConflict,
    /// Load-use hazard interlock.
    LoadUseHazard,
}

impl StallCause {
    /// All causes, in breakdown order.
    pub const ALL: [StallCause; 3] = [
        StallCause::ImConflict,
        StallCause::DmConflict,
        StallCause::LoadUseHazard,
    ];

    /// Stable index into per-cause arrays.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            StallCause::ImConflict => 0,
            StallCause::DmConflict => 1,
            StallCause::LoadUseHazard => 2,
        }
    }

    /// Short display label.
    pub fn label(self) -> &'static str {
        match self {
            StallCause::ImConflict => "im-conflict",
            StallCause::DmConflict => "dm-conflict",
            StallCause::LoadUseHazard => "load-use",
        }
    }
}

impl fmt::Display for StallCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Synchronizer activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncEvent {
    /// A core retired a synchronization-point instruction.
    OpRetired {
        /// The issuing core.
        core: u8,
        /// The instruction kind.
        kind: SyncKind,
        /// The touched point.
        point: u16,
        /// Cycles since this core's previous sync op, if any.
        since_last: Option<u64>,
    },
    /// A merged update armed the point (a `SINC` was present).
    PointArmed {
        /// The armed point.
        point: u16,
    },
    /// Several same-cycle requests merged into the point's single write.
    PointMerged {
        /// The touched point.
        point: u16,
        /// Requests merged into one physical write.
        requests: u8,
    },
    /// The point fired: counter zero, flags set.
    PointReleased {
        /// The fired point.
        point: u16,
        /// Bitmask of the cores that were flagged at release.
        woken: u8,
    },
    /// A core registered itself in a point's flag field.
    CoreFlagged {
        /// The registering core.
        core: u8,
        /// The point.
        point: u16,
    },
    /// A `SLEEP` gated the core.
    CoreSlept {
        /// The gated core.
        core: u8,
    },
    /// A wake resumed the core.
    CoreWoken {
        /// The resumed core.
        core: u8,
        /// Cycles spent clock-gated (0 when the gate was not observed).
        slept_cycles: u64,
    },
    /// A `SLEEP` consumed a pending wake and completed without gating.
    SleepFellThrough {
        /// The core whose sleep fell through.
        core: u8,
    },
}

/// Clock-gating and bank power state changes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PowerEvent {
    /// The core's clock was gated.
    Gate {
        /// The gated core.
        core: u8,
    },
    /// The core's clock was restored.
    Ungate {
        /// The resumed core.
        core: u8,
    },
    /// First access to an instruction-memory bank (it must be powered).
    ImBankOn {
        /// The bank.
        bank: u8,
    },
    /// First access to a data-memory bank.
    DmBankOn {
        /// The bank.
        bank: u8,
    },
}

/// Mapping-phase transitions, derived from the program counter and the
/// image's placed sections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhaseEvent {
    /// The core started executing inside the phase's section.
    Enter {
        /// The core.
        core: u8,
        /// Phase index (into the image's [`PhaseTable`]).
        phase: u16,
    },
    /// The core left the phase's section.
    Exit {
        /// The core.
        core: u8,
        /// Phase index.
        phase: u16,
    },
}

/// ADC activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdcEvent {
    /// A sample latched into the data registers.
    SampleReady {
        /// Bitmask of the interrupt sources raised (one per channel).
        channels: u16,
    },
    /// One data-ready interrupt was forwarded to the synchronizer.
    IrqForwarded {
        /// The interrupt source.
        source: u8,
    },
}

/// Any observable event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// Synchronizer activity.
    Sync(SyncEvent),
    /// Power state change.
    Power(PowerEvent),
    /// Mapping-phase transition.
    Phase(PhaseEvent),
    /// ADC activity.
    Adc(AdcEvent),
    /// A completed run of consecutive stall cycles on one core (emitted
    /// when the run ends, so the whole run is one event).
    StallRun {
        /// The stalled core.
        core: u8,
        /// The cause shared by the run.
        cause: StallCause,
        /// Run length in cycles.
        len: u64,
    },
}

/// An event with its cycle stamp — what the recorder's ring holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimedEvent {
    /// Cycle at which the event was recorded.
    pub cycle: u64,
    /// The event.
    pub event: Event,
}

impl Event {
    /// Renders the event as one human-readable line, resolving phase
    /// indices through `phases` when available.
    pub fn render(&self, phases: Option<&PhaseTable>) -> String {
        let phase_name = |idx: u16| -> String {
            if idx == NO_PHASE {
                return "<unmapped>".to_string();
            }
            phases
                .and_then(|t| t.name_of(idx))
                .map(str::to_string)
                .unwrap_or_else(|| format!("phase{idx}"))
        };
        match self {
            Event::Sync(e) => match e {
                SyncEvent::OpRetired {
                    core,
                    kind,
                    point,
                    since_last,
                } => {
                    let kind = match kind {
                        SyncKind::Inc => "sinc",
                        SyncKind::Dec => "sdec",
                        SyncKind::Nop => "snop",
                    };
                    match since_last {
                        Some(gap) => format!("core{core} {kind} p{point} (+{gap} cycles)"),
                        None => format!("core{core} {kind} p{point}"),
                    }
                }
                SyncEvent::PointArmed { point } => format!("point p{point} armed"),
                SyncEvent::PointMerged { point, requests } => {
                    format!("point p{point} merged {requests} requests into one write")
                }
                SyncEvent::PointReleased { point, woken } => {
                    format!("point p{point} released (flagged mask {woken:#04x})")
                }
                SyncEvent::CoreFlagged { core, point } => {
                    format!("core{core} flagged in p{point}")
                }
                SyncEvent::CoreSlept { core } => format!("core{core} slept"),
                SyncEvent::CoreWoken { core, slept_cycles } => {
                    format!("core{core} woken after {slept_cycles} gated cycles")
                }
                SyncEvent::SleepFellThrough { core } => {
                    format!("core{core} sleep fell through on a pending wake")
                }
            },
            Event::Power(e) => match e {
                PowerEvent::Gate { core } => format!("core{core} clock gated"),
                PowerEvent::Ungate { core } => format!("core{core} clock restored"),
                PowerEvent::ImBankOn { bank } => format!("im bank {bank} powered"),
                PowerEvent::DmBankOn { bank } => format!("dm bank {bank} powered"),
            },
            Event::Phase(e) => match e {
                PhaseEvent::Enter { core, phase } => {
                    format!("core{core} entered phase {}", phase_name(*phase))
                }
                PhaseEvent::Exit { core, phase } => {
                    format!("core{core} left phase {}", phase_name(*phase))
                }
            },
            Event::Adc(e) => match e {
                AdcEvent::SampleReady { channels } => {
                    format!("adc sample ready (sources {channels:#06x})")
                }
                AdcEvent::IrqForwarded { source } => format!("adc irq {source} forwarded"),
            },
            Event::StallRun { core, cause, len } => {
                format!("core{core} stalled {len} cycles ({cause})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_render_without_a_phase_table() {
        let e = Event::Sync(SyncEvent::CoreWoken {
            core: 3,
            slept_cycles: 120,
        });
        assert_eq!(e.render(None), "core3 woken after 120 gated cycles");
        let e = Event::StallRun {
            core: 1,
            cause: StallCause::ImConflict,
            len: 4,
        };
        assert!(e.render(None).contains("im-conflict"));
        let e = Event::Phase(PhaseEvent::Enter { core: 0, phase: 2 });
        assert_eq!(e.render(None), "core0 entered phase phase2");
        let e = Event::Phase(PhaseEvent::Exit {
            core: 0,
            phase: NO_PHASE,
        });
        assert!(e.render(None).contains("<unmapped>"));
    }

    #[test]
    fn stall_cause_indices_are_stable() {
        for (i, cause) in StallCause::ALL.into_iter().enumerate() {
            assert_eq!(cause.index(), i);
        }
    }
}
