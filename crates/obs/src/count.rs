//! The counting/histogram sink and the compact summary the sweep engine
//! embeds per cell.

use crate::event::{Event, StallCause, SyncEvent};
use crate::hist::Histogram;
use crate::sink::EventSink;

/// Aggregates the event stream into counters and histograms.
///
/// This is the "always cheap" sink: it never allocates after
/// construction and does a handful of integer operations per event, so
/// the sweep engine can leave it on for every measured window.
#[derive(Debug, Clone, Default)]
pub struct CountingSink {
    /// Gated-interval lengths, one sample per observed wake.
    pub sleep_cycles: Histogram,
    /// Cycles between consecutive sync ops on the same core.
    pub sync_gap_cycles: Histogram,
    /// Lengths of consecutive-stall runs, all causes mixed.
    pub stall_run_cycles: Histogram,
    /// Total stall cycles per cause, indexed by [`StallCause::index`].
    pub stall_cycles: [u64; 3],
    /// Point releases observed.
    pub releases: u64,
    /// Physical writes avoided by same-cycle merging.
    pub merges_saved: u64,
    /// Sleeps that fell through on a pending wake.
    pub fallthroughs: u64,
    /// ADC samples latched.
    pub adc_samples: u64,
    /// Data-ready interrupts forwarded.
    pub irq_forwards: u64,
    /// Total events seen.
    pub events: u64,
}

impl CountingSink {
    /// An empty sink.
    pub fn new() -> CountingSink {
        CountingSink::default()
    }

    /// Total stall cycles across all causes.
    pub fn total_stall_cycles(&self) -> u64 {
        self.stall_cycles.iter().sum()
    }

    /// The cause with the most stall cycles, with its total, if any
    /// stalls were observed.
    pub fn worst_stall_cause(&self) -> Option<(StallCause, u64)> {
        StallCause::ALL
            .into_iter()
            .map(|c| (c, self.stall_cycles[c.index()]))
            .max_by_key(|&(_, cycles)| cycles)
            .filter(|&(_, cycles)| cycles > 0)
    }

    /// Collapses the histograms into the per-cell summary.
    pub fn summary(&self) -> ObsSummary {
        ObsSummary {
            sleep_count: self.sleep_cycles.count(),
            sleep_p50_cycles: self.sleep_cycles.p50(),
            sleep_p99_cycles: self.sleep_cycles.p99(),
            sync_gap_p50_cycles: self.sync_gap_cycles.p50(),
            sync_gap_p99_cycles: self.sync_gap_cycles.p99(),
            stall_im_cycles: self.stall_cycles[StallCause::ImConflict.index()],
            stall_dm_cycles: self.stall_cycles[StallCause::DmConflict.index()],
            stall_hazard_cycles: self.stall_cycles[StallCause::LoadUseHazard.index()],
            stall_run_p99_cycles: self.stall_run_cycles.p99(),
        }
    }
}

impl EventSink for CountingSink {
    fn on_event(&mut self, _cycle: u64, event: &Event) {
        self.events += 1;
        match event {
            Event::Sync(e) => match e {
                SyncEvent::OpRetired {
                    since_last: Some(gap),
                    ..
                } => self.sync_gap_cycles.record(*gap),
                SyncEvent::OpRetired { .. } => {}
                SyncEvent::PointMerged { requests, .. } => {
                    self.merges_saved += u64::from(requests.saturating_sub(1));
                }
                SyncEvent::PointReleased { .. } => self.releases += 1,
                SyncEvent::CoreWoken { slept_cycles, .. } => {
                    self.sleep_cycles.record(*slept_cycles);
                }
                SyncEvent::SleepFellThrough { .. } => self.fallthroughs += 1,
                SyncEvent::PointArmed { .. }
                | SyncEvent::CoreFlagged { .. }
                | SyncEvent::CoreSlept { .. } => {}
            },
            Event::StallRun { cause, len, .. } => {
                self.stall_cycles[cause.index()] += len;
                self.stall_run_cycles.record(*len);
            }
            Event::Adc(e) => match e {
                crate::event::AdcEvent::SampleReady { .. } => self.adc_samples += 1,
                crate::event::AdcEvent::IrqForwarded { .. } => self.irq_forwards += 1,
            },
            Event::Power(_) | Event::Phase(_) => {}
        }
    }
}

/// The latency/stall digest a sweep cell records
/// (`wbsn-bench-sweep/2`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ObsSummary {
    /// Observed wakes (samples behind the sleep percentiles).
    pub sleep_count: u64,
    /// Median gated-interval length, in cycles.
    pub sleep_p50_cycles: u64,
    /// 99th-percentile gated-interval length, in cycles.
    pub sleep_p99_cycles: u64,
    /// Median cycles between sync ops on a core.
    pub sync_gap_p50_cycles: u64,
    /// 99th-percentile cycles between sync ops on a core.
    pub sync_gap_p99_cycles: u64,
    /// Total cycles lost to instruction-memory conflicts.
    pub stall_im_cycles: u64,
    /// Total cycles lost to data-memory conflicts.
    pub stall_dm_cycles: u64,
    /// Total cycles lost to load-use hazards.
    pub stall_hazard_cycles: u64,
    /// 99th-percentile stall-run length, in cycles.
    pub stall_run_p99_cycles: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{AdcEvent, PowerEvent};

    #[test]
    fn counting_sink_aggregates_the_stream() {
        let mut sink = CountingSink::new();
        sink.on_event(
            10,
            &Event::Sync(SyncEvent::OpRetired {
                core: 0,
                kind: wbsn_isa::SyncKind::Dec,
                point: 3,
                since_last: None,
            }),
        );
        sink.on_event(
            20,
            &Event::Sync(SyncEvent::OpRetired {
                core: 0,
                kind: wbsn_isa::SyncKind::Dec,
                point: 3,
                since_last: Some(10),
            }),
        );
        sink.on_event(
            20,
            &Event::Sync(SyncEvent::PointMerged {
                point: 3,
                requests: 3,
            }),
        );
        sink.on_event(
            20,
            &Event::Sync(SyncEvent::PointReleased {
                point: 3,
                woken: 0b10,
            }),
        );
        sink.on_event(
            25,
            &Event::Sync(SyncEvent::CoreWoken {
                core: 1,
                slept_cycles: 5,
            }),
        );
        sink.on_event(
            30,
            &Event::StallRun {
                core: 0,
                cause: StallCause::DmConflict,
                len: 4,
            },
        );
        sink.on_event(31, &Event::Adc(AdcEvent::SampleReady { channels: 0b11 }));
        sink.on_event(31, &Event::Adc(AdcEvent::IrqForwarded { source: 0 }));
        sink.on_event(40, &Event::Power(PowerEvent::Gate { core: 1 }));

        assert_eq!(sink.events, 9);
        assert_eq!(sink.releases, 1);
        assert_eq!(sink.merges_saved, 2);
        assert_eq!(sink.adc_samples, 1);
        assert_eq!(sink.irq_forwards, 1);
        assert_eq!(sink.sync_gap_cycles.count(), 1);
        assert_eq!(sink.total_stall_cycles(), 4);
        assert_eq!(sink.worst_stall_cause(), Some((StallCause::DmConflict, 4)));

        let summary = sink.summary();
        assert_eq!(summary.sleep_count, 1);
        assert_eq!(summary.sleep_p50_cycles, 5);
        assert_eq!(summary.stall_dm_cycles, 4);
        assert_eq!(summary.stall_im_cycles, 0);
        assert_eq!(summary.stall_run_p99_cycles, 4);
    }

    #[test]
    fn no_stalls_means_no_worst_cause() {
        assert_eq!(CountingSink::new().worst_stall_cause(), None);
    }
}
