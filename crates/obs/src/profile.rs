//! The per-phase profiler: attributes every core-cycle and counter to
//! the mapping phase active at retirement.

use crate::event::StallCause;

/// Per-(core, phase) counter block — the same taxonomy as the
/// simulator's `CoreStats`, sliced by phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseCounters {
    /// Instructions retired in the phase.
    pub instructions: u64,
    /// Active (ungated) cycles charged to the phase.
    pub active_cycles: u64,
    /// Cycles stalled on instruction-memory conflicts.
    pub stall_im: u64,
    /// Cycles stalled on data-memory conflicts.
    pub stall_dm: u64,
    /// Cycles stalled on load-use hazards.
    pub stall_hazard: u64,
    /// Pipeline bubbles after taken control flow.
    pub bubbles: u64,
    /// Clock-gated cycles attributed to the phase that issued the sleep.
    pub gated_cycles: u64,
    /// Synchronization instructions retired.
    pub sync_ops: u64,
    /// Sleeps issued.
    pub sleeps: u64,
}

impl PhaseCounters {
    fn is_empty(&self) -> bool {
        *self == PhaseCounters::default()
    }

    fn add(&mut self, other: &PhaseCounters) {
        self.instructions += other.instructions;
        self.active_cycles += other.active_cycles;
        self.stall_im += other.stall_im;
        self.stall_dm += other.stall_dm;
        self.stall_hazard += other.stall_hazard;
        self.bubbles += other.bubbles;
        self.gated_cycles += other.gated_cycles;
        self.sync_ops += other.sync_ops;
        self.sleeps += other.sleeps;
    }
}

/// One profiler row: a core, a phase name, and its counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseRow {
    /// The core.
    pub core: usize,
    /// The phase name (`"<unmapped>"` for addresses outside every
    /// section).
    pub phase: String,
    /// The attributed counters.
    pub counters: PhaseCounters,
}

/// Attributes cycles and counters to `(core, phase)` pairs.
///
/// The recorder resolves the phase index from the program counter each
/// active cycle; the profiler just indexes a dense `[core][slot]`
/// matrix, where the last slot collects unmapped addresses.
#[derive(Debug, Clone)]
pub struct PhaseProfiler {
    names: Vec<String>,
    rows: Vec<Vec<PhaseCounters>>,
}

/// Label used for the extra slot that collects unmapped addresses.
pub const UNMAPPED_PHASE: &str = "<unmapped>";

impl PhaseProfiler {
    /// A profiler for `cores` cores over phases named `names`.
    pub fn new(cores: usize, names: Vec<String>) -> PhaseProfiler {
        let slots = names.len() + 1;
        PhaseProfiler {
            names,
            rows: vec![vec![PhaseCounters::default(); slots]; cores],
        }
    }

    #[inline]
    fn at(&mut self, core: usize, slot: usize) -> &mut PhaseCounters {
        &mut self.rows[core][slot]
    }

    /// Charges one active cycle.
    #[inline]
    pub fn active(&mut self, core: usize, slot: usize) {
        self.at(core, slot).active_cycles += 1;
    }

    /// Charges one stall cycle.
    #[inline]
    pub fn stall(&mut self, core: usize, slot: usize, cause: StallCause) {
        let c = self.at(core, slot);
        match cause {
            StallCause::ImConflict => c.stall_im += 1,
            StallCause::DmConflict => c.stall_dm += 1,
            StallCause::LoadUseHazard => c.stall_hazard += 1,
        }
    }

    /// Charges one bubble cycle.
    #[inline]
    pub fn bubble(&mut self, core: usize, slot: usize) {
        self.at(core, slot).bubbles += 1;
    }

    /// Records one retired instruction.
    #[inline]
    pub fn retire(&mut self, core: usize, slot: usize) {
        self.at(core, slot).instructions += 1;
    }

    /// Records one retired sync instruction.
    #[inline]
    pub fn sync_op(&mut self, core: usize, slot: usize) {
        self.at(core, slot).sync_ops += 1;
    }

    /// Records one issued sleep.
    #[inline]
    pub fn sleep(&mut self, core: usize, slot: usize) {
        self.at(core, slot).sleeps += 1;
    }

    /// Charges `cycles` gated cycles to the phase that issued the sleep.
    #[inline]
    pub fn gated(&mut self, core: usize, slot: usize, cycles: u64) {
        self.at(core, slot).gated_cycles += cycles;
    }

    /// The slot index collecting unmapped addresses.
    pub fn unmapped_slot(&self) -> usize {
        self.names.len()
    }

    /// Name of a slot.
    fn slot_name(&self, slot: usize) -> &str {
        self.names.get(slot).map_or(UNMAPPED_PHASE, String::as_str)
    }

    /// Total active cycles attributed to `core` across all phases.
    pub fn active_total(&self, core: usize) -> u64 {
        self.rows[core].iter().map(|c| c.active_cycles).sum()
    }

    /// All non-empty rows, core-major then phase order.
    pub fn rows(&self) -> Vec<PhaseRow> {
        let mut out = Vec::new();
        for (core, phases) in self.rows.iter().enumerate() {
            for (slot, counters) in phases.iter().enumerate() {
                if !counters.is_empty() {
                    out.push(PhaseRow {
                        core,
                        phase: self.slot_name(slot).to_string(),
                        counters: *counters,
                    });
                }
            }
        }
        out
    }

    /// Per-phase totals summed over all cores, in phase order, skipping
    /// empty phases.
    pub fn phase_totals(&self) -> Vec<(String, PhaseCounters)> {
        let slots = self.names.len() + 1;
        let mut totals = vec![PhaseCounters::default(); slots];
        for phases in &self.rows {
            for (slot, counters) in phases.iter().enumerate() {
                totals[slot].add(counters);
            }
        }
        totals
            .into_iter()
            .enumerate()
            .filter(|(_, c)| !c.is_empty())
            .map(|(slot, c)| (self.slot_name(slot).to_string(), c))
            .collect()
    }

    /// Renders the profile as an aligned text table.
    pub fn render(&self) -> String {
        let rows = self.rows();
        let mut out = String::new();
        out.push_str(
            "core  phase            instrs    active  stall-im  stall-dm    hazard   bubbles     gated  syncs  sleeps\n",
        );
        for row in &rows {
            let c = &row.counters;
            out.push_str(&format!(
                "{:>4}  {:<14} {:>8} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>6} {:>7}\n",
                row.core,
                row.phase,
                c.instructions,
                c.active_cycles,
                c.stall_im,
                c.stall_dm,
                c.stall_hazard,
                c.bubbles,
                c.gated_cycles,
                c.sync_ops,
                c.sleeps,
            ));
        }
        if rows.is_empty() {
            out.push_str("(no attributed cycles)\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiler_attributes_to_core_and_phase() {
        let mut p = PhaseProfiler::new(2, vec!["mf".into(), "classify".into()]);
        p.active(0, 0);
        p.active(0, 0);
        p.retire(0, 0);
        p.active(0, 1);
        p.stall(1, 1, StallCause::DmConflict);
        p.gated(1, p.unmapped_slot(), 50);

        assert_eq!(p.active_total(0), 3);
        assert_eq!(p.active_total(1), 0);

        let rows = p.rows();
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].phase, "mf");
        assert_eq!(rows[0].counters.active_cycles, 2);
        assert_eq!(rows[0].counters.instructions, 1);
        assert_eq!(rows[1].phase, "classify");
        assert_eq!(rows[2].core, 1);
        assert_eq!(rows[2].counters.stall_dm, 1);
        assert_eq!(rows[3].phase, UNMAPPED_PHASE);
        assert_eq!(rows[3].counters.gated_cycles, 50);

        let totals = p.phase_totals();
        assert_eq!(totals.len(), 3);
        assert_eq!(totals[0].0, "mf");
        assert_eq!(totals[0].1.active_cycles, 2);

        let table = p.render();
        assert!(table.contains("classify"));
        assert!(table.contains(UNMAPPED_PHASE));
    }
}
