//! Validates a Chrome/Perfetto `trace_event` JSON file.
//!
//! Usage: `wbsn-trace-check <trace.json>...`
//!
//! Checks, per file, that the document parses, has the JSON Object
//! Format shape (`{"traceEvents": [...]}`), and that every event
//! carries the fields its phase requires: `X` events need numeric
//! non-negative `ts` and `dur`, `i` events need `ts` and a scope `s`,
//! `M` events need a `name` and `args`. Exits non-zero on the first
//! invalid file so CI can gate on it.

use std::process::ExitCode;

use wbsn_obs::json::{self, Json};

fn check_event(i: usize, event: &Json) -> Result<(), String> {
    let obj = event
        .as_obj()
        .ok_or_else(|| format!("event {i}: not an object"))?;
    let field = |key: &str| -> Option<&Json> { obj.iter().find(|(k, _)| k == key).map(|(_, v)| v) };
    let ph = field("ph")
        .and_then(Json::as_str)
        .ok_or_else(|| format!("event {i}: missing string \"ph\""))?;
    let num_field = |key: &str| -> Result<f64, String> {
        field(key)
            .and_then(Json::as_num)
            .ok_or_else(|| format!("event {i} (ph {ph}): missing numeric \"{key}\""))
    };
    match ph {
        "X" => {
            field("name")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("event {i}: complete event without \"name\""))?;
            let ts = num_field("ts")?;
            let dur = num_field("dur")?;
            if ts < 0.0 || dur < 0.0 {
                return Err(format!("event {i}: negative ts/dur"));
            }
        }
        "i" | "I" => {
            field("name")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("event {i}: instant event without \"name\""))?;
            num_field("ts")?;
            let scope = field("s")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("event {i}: instant event without scope \"s\""))?;
            if !matches!(scope, "g" | "p" | "t") {
                return Err(format!("event {i}: invalid instant scope \"{scope}\""));
            }
        }
        "M" => {
            field("name")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("event {i}: metadata event without \"name\""))?;
            field("args")
                .and_then(Json::as_obj)
                .ok_or_else(|| format!("event {i}: metadata event without \"args\" object"))?;
        }
        "B" | "E" | "b" | "e" | "n" | "C" | "s" | "t" | "f" | "P" => {
            num_field("ts")?;
        }
        other => return Err(format!("event {i}: unknown event phase \"{other}\"")),
    }
    Ok(())
}

fn check_file(path: &str) -> Result<usize, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read failed: {e}"))?;
    let doc = json::parse(&text).map_err(|e| e.to_string())?;
    let events = doc
        .get("traceEvents")
        .ok_or_else(|| "missing \"traceEvents\" key".to_string())?
        .as_arr()
        .ok_or_else(|| "\"traceEvents\" is not an array".to_string())?;
    if events.is_empty() {
        return Err("\"traceEvents\" is empty".to_string());
    }
    for (i, event) in events.iter().enumerate() {
        check_event(i, event)?;
    }
    Ok(events.len())
}

fn main() -> ExitCode {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: wbsn-trace-check <trace.json>...");
        return ExitCode::from(2);
    }
    let mut failed = false;
    for path in &paths {
        match check_file(path) {
            Ok(n) => println!("{path}: ok ({n} events)"),
            Err(msg) => {
                eprintln!("{path}: INVALID: {msg}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
