//! Chrome/Perfetto `trace_event` JSON exporter.
//!
//! Emits the JSON Object Format (`{"traceEvents": [...]}`) that both
//! `chrome://tracing` and <https://ui.perfetto.dev> open directly. One
//! simulated cycle maps to one microsecond of trace time, so the
//! timeline axis reads in cycles.
//!
//! Track layout: each core owns a group of three threads —
//! `tid = core*4` carries mapping-phase slices, `core*4 + 1` carries
//! sleep (clock-gated) slices, `core*4 + 2` carries stall slices.
//! Synchronization-point releases and ADC samples appear as instant
//! events on a dedicated platform track.

use crate::event::{AdcEvent, Event, PhaseEvent, PowerEvent, SyncEvent};
use crate::json::escape;
use crate::sink::EventSink;

/// Process id used for every track (one simulated platform).
const PID: u32 = 1;
/// Thread id carrying platform-wide instant events.
const PLATFORM_TID: u32 = 1000;
/// Per-core thread-group stride.
const CORE_STRIDE: u32 = 4;
/// Cores the exporter can track.
const MAX_CORES: usize = 8;

#[derive(Debug, Clone)]
enum Record {
    Complete {
        tid: u32,
        cat: &'static str,
        name: String,
        ts: u64,
        dur: u64,
    },
    Instant {
        tid: u32,
        cat: &'static str,
        name: String,
        ts: u64,
        args: Option<(&'static str, u64)>,
    },
}

/// Accumulates the event stream and renders a `trace_event` document.
#[derive(Debug, Clone)]
pub struct TraceJsonSink {
    phase_names: Vec<String>,
    records: Vec<Record>,
    open_phase: [Option<(u64, u16)>; MAX_CORES],
    open_gate: [Option<u64>; MAX_CORES],
    cores_seen: [bool; MAX_CORES],
    finished: bool,
}

impl TraceJsonSink {
    /// A sink that labels phase slices with `phase_names` (indexable by
    /// the `phase` field of [`PhaseEvent`]).
    pub fn new(phase_names: Vec<String>) -> TraceJsonSink {
        TraceJsonSink {
            phase_names,
            records: Vec::new(),
            open_phase: [None; MAX_CORES],
            open_gate: [None; MAX_CORES],
            cores_seen: [false; MAX_CORES],
            finished: false,
        }
    }

    fn phase_name(&self, idx: u16) -> String {
        self.phase_names
            .get(idx as usize)
            .cloned()
            .unwrap_or_else(|| format!("phase{idx}"))
    }

    fn close_phase(&mut self, core: usize, now: u64) {
        if let Some((start, phase)) = self.open_phase[core].take() {
            let name = self.phase_name(phase);
            self.records.push(Record::Complete {
                tid: core as u32 * CORE_STRIDE,
                cat: "phase",
                name,
                ts: start,
                dur: now.saturating_sub(start),
            });
        }
    }

    fn close_gate(&mut self, core: usize, now: u64) {
        if let Some(start) = self.open_gate[core].take() {
            self.records.push(Record::Complete {
                tid: core as u32 * CORE_STRIDE + 1,
                cat: "power",
                name: "sleep".to_string(),
                ts: start,
                dur: now.saturating_sub(start),
            });
        }
    }

    /// Number of buffered records (before metadata).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if no records were buffered.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Renders the complete `trace_event` JSON document.
    pub fn to_json(&self) -> String {
        let mut events = Vec::new();
        events.push(format!(
            "{{\"ph\":\"M\",\"pid\":{PID},\"name\":\"process_name\",\"args\":{{\"name\":\"wbsn platform\"}}}}"
        ));
        events.push(format!(
            "{{\"ph\":\"M\",\"pid\":{PID},\"tid\":{PLATFORM_TID},\"name\":\"thread_name\",\"args\":{{\"name\":\"platform events\"}}}}"
        ));
        events.push(format!(
            "{{\"ph\":\"M\",\"pid\":{PID},\"tid\":{PLATFORM_TID},\"name\":\"thread_sort_index\",\"args\":{{\"sort_index\":{PLATFORM_TID}}}}}"
        ));
        for (core, seen) in self.cores_seen.iter().enumerate() {
            if !seen {
                continue;
            }
            let base = core as u32 * CORE_STRIDE;
            for (off, label) in [(0, "phase"), (1, "sleep"), (2, "stall")] {
                let tid = base + off;
                events.push(format!(
                    "{{\"ph\":\"M\",\"pid\":{PID},\"tid\":{tid},\"name\":\"thread_name\",\"args\":{{\"name\":\"core{core} {label}\"}}}}"
                ));
                events.push(format!(
                    "{{\"ph\":\"M\",\"pid\":{PID},\"tid\":{tid},\"name\":\"thread_sort_index\",\"args\":{{\"sort_index\":{tid}}}}}"
                ));
            }
        }
        for record in &self.records {
            events.push(match record {
                Record::Complete {
                    tid,
                    cat,
                    name,
                    ts,
                    dur,
                } => format!(
                    "{{\"ph\":\"X\",\"pid\":{PID},\"tid\":{tid},\"cat\":\"{cat}\",\"name\":\"{}\",\"ts\":{ts},\"dur\":{dur}}}",
                    escape(name)
                ),
                Record::Instant {
                    tid,
                    cat,
                    name,
                    ts,
                    args,
                } => {
                    let args = match args {
                        Some((key, value)) => format!(",\"args\":{{\"{key}\":{value}}}"),
                        None => String::new(),
                    };
                    format!(
                        "{{\"ph\":\"i\",\"pid\":{PID},\"tid\":{tid},\"cat\":\"{cat}\",\"name\":\"{}\",\"ts\":{ts},\"s\":\"t\"{args}}}",
                        escape(name)
                    )
                }
            });
        }
        let mut out = String::from("{\"traceEvents\":[\n");
        out.push_str(&events.join(",\n"));
        out.push_str("\n]}\n");
        out
    }
}

impl EventSink for TraceJsonSink {
    fn on_event(&mut self, cycle: u64, event: &Event) {
        match event {
            Event::Phase(PhaseEvent::Enter { core, phase }) => {
                let core = *core as usize;
                if core >= MAX_CORES {
                    return;
                }
                self.cores_seen[core] = true;
                self.close_phase(core, cycle);
                self.open_phase[core] = Some((cycle, *phase));
            }
            Event::Phase(PhaseEvent::Exit { core, .. }) => {
                let core = *core as usize;
                if core >= MAX_CORES {
                    return;
                }
                self.close_phase(core, cycle);
            }
            Event::Power(PowerEvent::Gate { core }) => {
                let core = *core as usize;
                if core >= MAX_CORES {
                    return;
                }
                self.cores_seen[core] = true;
                self.open_gate[core] = Some(cycle);
            }
            Event::Power(PowerEvent::Ungate { core }) => {
                let core = *core as usize;
                if core >= MAX_CORES {
                    return;
                }
                self.close_gate(core, cycle);
            }
            Event::StallRun { core, cause, len } => {
                let core = *core as usize;
                if core >= MAX_CORES || *len == 0 {
                    return;
                }
                self.cores_seen[core] = true;
                self.records.push(Record::Complete {
                    tid: core as u32 * CORE_STRIDE + 2,
                    cat: "stall",
                    name: cause.label().to_string(),
                    ts: cycle.saturating_sub(*len),
                    dur: *len,
                });
            }
            Event::Sync(SyncEvent::PointReleased { point, woken }) => {
                self.records.push(Record::Instant {
                    tid: PLATFORM_TID,
                    cat: "sync",
                    name: format!("release p{point}"),
                    ts: cycle,
                    args: Some(("woken_mask", u64::from(*woken))),
                });
            }
            Event::Adc(AdcEvent::SampleReady { channels }) => {
                self.records.push(Record::Instant {
                    tid: PLATFORM_TID,
                    cat: "adc",
                    name: "adc sample".to_string(),
                    ts: cycle,
                    args: Some(("sources", u64::from(*channels))),
                });
            }
            _ => {}
        }
    }

    fn finish(&mut self, final_cycle: u64) {
        if self.finished {
            return;
        }
        self.finished = true;
        for core in 0..MAX_CORES {
            self.close_phase(core, final_cycle);
            self.close_gate(core, final_cycle);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn exports_valid_trace_event_json() {
        let mut sink = TraceJsonSink::new(vec!["mf".into(), "classify".into()]);
        sink.on_event(0, &Event::Phase(PhaseEvent::Enter { core: 0, phase: 0 }));
        sink.on_event(10, &Event::Phase(PhaseEvent::Enter { core: 0, phase: 1 }));
        sink.on_event(4, &Event::Power(PowerEvent::Gate { core: 1 }));
        sink.on_event(9, &Event::Power(PowerEvent::Ungate { core: 1 }));
        sink.on_event(
            9,
            &Event::Sync(SyncEvent::PointReleased { point: 2, woken: 2 }),
        );
        sink.on_event(
            12,
            &Event::StallRun {
                core: 0,
                cause: crate::StallCause::DmConflict,
                len: 3,
            },
        );
        sink.finish(20);
        sink.finish(25); // idempotent

        let text = sink.to_json();
        let doc = json::parse(&text).expect("exporter output must parse");
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        assert!(!events.is_empty());

        let mut phases = 0;
        let mut sleeps = 0;
        let mut stalls = 0;
        let mut instants = 0;
        for e in events {
            let ph = e.get("ph").unwrap().as_str().unwrap();
            match ph {
                "X" => {
                    let cat = e.get("cat").unwrap().as_str().unwrap();
                    let dur = e.get("dur").unwrap().as_num().unwrap();
                    assert!(dur >= 0.0);
                    match cat {
                        "phase" => phases += 1,
                        "power" => sleeps += 1,
                        "stall" => stalls += 1,
                        other => panic!("unexpected slice category {other}"),
                    }
                }
                "i" => instants += 1,
                "M" => {}
                other => panic!("unexpected event phase {other}"),
            }
        }
        // mf closed at 10, classify closed by finish(20).
        assert_eq!(phases, 2);
        assert_eq!(sleeps, 1);
        assert_eq!(stalls, 1);
        assert_eq!(instants, 1);

        // The mf slice spans [0, 10).
        let mf = events
            .iter()
            .find(|e| e.get("name").and_then(|n| n.as_str()) == Some("mf"))
            .unwrap();
        assert_eq!(mf.get("ts").unwrap().as_num(), Some(0.0));
        assert_eq!(mf.get("dur").unwrap().as_num(), Some(10.0));
        // The stall slice is back-dated to its first stalled cycle.
        let stall = events
            .iter()
            .find(|e| e.get("cat").and_then(|c| c.as_str()) == Some("stall"))
            .unwrap();
        assert_eq!(stall.get("ts").unwrap().as_num(), Some(9.0));
        assert_eq!(stall.get("dur").unwrap().as_num(), Some(3.0));
    }
}
