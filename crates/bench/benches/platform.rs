//! Micro-benchmarks of the platform substrates: simulator throughput,
//! synchronizer commit path and crossbar arbitration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use wbsn_core::{CoreId, Synchronizer};
use wbsn_dsp::ecg::{synthesize, EcgConfig};
use wbsn_isa::SyncKind;
use wbsn_kernels::{build_mf, Arch, BuildOptions};
use wbsn_sim::xbar::{arbitrate, Request};

fn sim_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("platform");
    group.sample_size(10);
    let rec = synthesize(&EcgConfig {
        fs: 500,
        duration_s: 1.0,
        ..EcgConfig::healthy_60s()
    });
    for (label, arch) in [("mf_sc", Arch::SingleCore), ("mf_mc", Arch::MultiCore)] {
        let app = build_mf(arch, &BuildOptions::default()).expect("builds");
        let samples = rec.leads[0].len() as u64;
        let cycles = app.config.adc.start_cycle + samples * app.config.adc.period_cycles;
        group.throughput(Throughput::Elements(cycles));
        group.bench_function(BenchmarkId::new("simulate_1s", label), |b| {
            b.iter(|| {
                let mut platform = app.platform(rec.leads.clone()).expect("platform");
                platform.run(cycles).expect("runs");
                platform.stats().total_active_cycles()
            })
        });
    }
    group.finish();
}

fn synchronizer_commit(c: &mut Criterion) {
    let mut group = c.benchmark_group("synchronizer");
    group.bench_function("merged_barrier_cycle", |b| {
        let mut sync = Synchronizer::new(8, 16).expect("valid");
        let cores: Vec<CoreId> = (0..8).map(|i| CoreId::new(i).expect("in range")).collect();
        b.iter(|| {
            for &core in &cores {
                sync.submit_op(core, SyncKind::Inc, 3).expect("staged");
            }
            sync.commit().expect("consistent");
            for &core in &cores {
                sync.submit_op(core, SyncKind::Dec, 3).expect("staged");
            }
            sync.commit().expect("consistent")
        })
    });
    group.finish();
}

fn crossbar_arbitration(c: &mut Criterion) {
    let mut group = c.benchmark_group("crossbar");
    let all_same: Vec<Request> = (0..8)
        .map(|core| Request {
            core,
            bank: 2,
            addr: 0x100,
            write: false,
        })
        .collect();
    let all_conflicting: Vec<Request> = (0..8)
        .map(|core| Request {
            core,
            bank: 2,
            addr: 0x100 + core as u32 * 16,
            write: false,
        })
        .collect();
    let disjoint: Vec<Request> = (0..8)
        .map(|core| Request {
            core,
            bank: core % 8,
            addr: core as u32,
            write: core % 2 == 0,
        })
        .collect();
    for (label, reqs) in [
        ("broadcast_merge", &all_same),
        ("bank_conflict", &all_conflicting),
        ("disjoint", &disjoint),
    ] {
        group.bench_function(label, |b| b.iter(|| arbitrate(reqs, 3, true)));
    }
    group.finish();
}

criterion_group!(
    benches,
    sim_throughput,
    synchronizer_commit,
    crossbar_arbitration
);
criterion_main!(benches);
