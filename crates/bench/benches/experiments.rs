//! Experiment-regeneration benches: one Criterion target per reproduced
//! table/figure, running a shortened slice of the corresponding
//! measurement flow. The printable full-length reproductions live in the
//! `table1`, `fig6` and `fig7` binaries; these benches keep the flows
//! exercised (and timed) by `cargo bench`.

use criterion::{criterion_group, criterion_main, Criterion};
use wbsn_bench::{measure, BenchmarkId as Bench, ExperimentConfig, RunVariant};
use wbsn_kernels::ClassifierParams;

fn quick_config(fraction: f64) -> ExperimentConfig {
    ExperimentConfig {
        duration_s: 1.5,
        calibration_s: 1.0,
        pathological_fraction: fraction,
        ..ExperimentConfig::default()
    }
}

fn table1_rows(c: &mut Criterion) {
    let params = ClassifierParams::default_trained();
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    group.bench_function("mf_sc_and_mc_row", |b| {
        b.iter(|| {
            let config = quick_config(0.2);
            let sc =
                measure(Bench::Mf, RunVariant::SingleCore, &config, &params).expect("SC measures");
            let mc = measure(Bench::Mf, RunVariant::MultiCoreSync, &config, &params)
                .expect("MC measures");
            (sc.power_uw(), mc.power_uw())
        })
    });
    group.finish();
}

fn fig6_bars(c: &mut Criterion) {
    let params = ClassifierParams::default_trained();
    let mut group = c.benchmark_group("fig6");
    group.sample_size(10);
    group.bench_function("mmd_three_bars", |b| {
        b.iter(|| {
            let config = quick_config(0.2);
            [
                RunVariant::SingleCore,
                RunVariant::MultiCoreBusyWait,
                RunVariant::MultiCoreSync,
            ]
            .map(|v| {
                measure(Bench::Mmd, v, &config, &params)
                    .expect("measures")
                    .breakdown
            })
        })
    });
    group.finish();
}

fn fig7_point(c: &mut Criterion) {
    let params = ClassifierParams::default_trained();
    let mut group = c.benchmark_group("fig7");
    group.sample_size(10);
    group.bench_function("rpclass_20pct_point", |b| {
        b.iter(|| {
            let config = quick_config(0.2);
            let sc = measure(Bench::RpClass, RunVariant::SingleCore, &config, &params)
                .expect("SC measures");
            let mc = measure(Bench::RpClass, RunVariant::MultiCoreSync, &config, &params)
                .expect("MC measures");
            100.0 * (1.0 - mc.power_uw() / sc.power_uw())
        })
    });
    group.finish();
}

criterion_group!(benches, table1_rows, fig6_bars, fig7_point);
criterion_main!(benches);
