//! Micro-benchmarks of the tool-chain substrate: instruction
//! encode/decode, text assembly, linking and whole-application builds.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use wbsn_isa::{assemble_text, Instr, Linker, Reg, Section};
use wbsn_kernels::{build_mmd, Arch, BuildOptions};

fn encode_decode(c: &mut Criterion) {
    let instrs = [
        Instr::add(Reg::R1, Reg::R2, Reg::R3),
        Instr::lw(Reg::R4, Reg::R5, -7),
        Instr::sinc(3),
        Instr::Branch {
            cond: wbsn_isa::BranchCond::Ne,
            ra: Reg::R1,
            rb: Reg::R0,
            off: -12,
        },
        Instr::Jmp { off: 1000 },
    ];
    let words: Vec<u32> = instrs
        .iter()
        .map(|i| i.encode().expect("encodes"))
        .collect();
    let mut group = c.benchmark_group("isa");
    group.throughput(Throughput::Elements(instrs.len() as u64));
    group.bench_function("encode", |b| {
        b.iter(|| {
            instrs
                .iter()
                .map(|i| i.encode().expect("encodes"))
                .sum::<u32>()
        })
    });
    group.bench_function("decode", |b| {
        b.iter(|| {
            words
                .iter()
                .map(|&w| Instr::decode(w).expect("decodes"))
                .filter(|i| !i.is_control())
                .count()
        })
    });
    group.finish();
}

const KERNEL_SOURCE: &str = "li r1, 100\n\
                             loop: addi r1, r1, -1\n\
                             lw r2, 7(r1)\n\
                             add r3, r3, r2\n\
                             bne r1, r0, loop\n\
                             sw r3, 0x200(r0)\n\
                             halt\n";

fn assembler_and_linker(c: &mut Criterion) {
    let mut group = c.benchmark_group("toolchain");
    group.throughput(Throughput::Bytes(KERNEL_SOURCE.len() as u64));
    group.bench_function("assemble_text", |b| {
        b.iter(|| assemble_text(KERNEL_SOURCE).expect("assembles"))
    });
    let program = assemble_text(KERNEL_SOURCE).expect("assembles");
    group.bench_function("link_8_sections", |b| {
        b.iter(|| {
            let mut linker = Linker::new();
            for bank in 0..8 {
                linker.add_section(Section::in_bank(format!("s{bank}"), program.clone(), bank));
                linker.set_entry(bank, format!("s{bank}"));
            }
            linker.link().expect("links")
        })
    });
    group.bench_function("build_mmd_multicore", |b| {
        b.iter(|| build_mmd(Arch::MultiCore, &BuildOptions::default()).expect("builds"))
    });
    group.finish();
}

criterion_group!(benches, encode_decode, assembler_and_linker);
criterion_main!(benches);
