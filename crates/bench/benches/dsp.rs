//! Micro-benchmarks of the bio-signal substrate: conditioning filter,
//! delineator, classifier and the synthetic ECG generator.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use wbsn_dsp::ecg::{synthesize, EcgConfig};
use wbsn_dsp::mmd::MmdDelineator;
use wbsn_dsp::morphology::MorphFilter;
use wbsn_dsp::rproj::{NearestCentroid, RandomProjection};

fn filter_throughput(c: &mut Criterion) {
    let rec = synthesize(&EcgConfig {
        fs: 500,
        duration_s: 4.0,
        ..EcgConfig::healthy_60s()
    });
    let lead = &rec.leads[0];
    let mut group = c.benchmark_group("dsp");
    group.throughput(Throughput::Elements(lead.len() as u64));
    group.bench_function("morph_filter_4s", |b| {
        b.iter(|| MorphFilter::new(30, 50, 5).filter(lead))
    });
    group.bench_function("mmd_delineate_4s", |b| {
        b.iter(|| MmdDelineator::standard_250hz().delineate(lead))
    });
    group.finish();
}

fn classifier(c: &mut Criterion) {
    let projection = RandomProjection::new_seeded(4, 32, 7);
    let window: Vec<i16> = (0..32).map(|i| (i * 91 % 777 - 300) as i16).collect();
    let decision = NearestCentroid::new(vec![10, -20, 30, -40], vec![-10, 20, -30, 40]);
    let mut group = c.benchmark_group("rproj");
    group.bench_function("project_and_classify", |b| {
        b.iter(|| decision.classify(&projection.project(&window)))
    });
    group.finish();
}

fn synthesis(c: &mut Criterion) {
    let config = EcgConfig {
        fs: 500,
        duration_s: 10.0,
        pathological_fraction: 0.2,
        ..EcgConfig::healthy_60s()
    };
    let mut group = c.benchmark_group("ecg");
    group.throughput(Throughput::Elements(config.samples() as u64));
    group.bench_function("synthesize_10s_3leads", |b| b.iter(|| synthesize(&config)));
    group.finish();
}

criterion_group!(benches, filter_throughput, classifier, synthesis);
criterion_main!(benches);
