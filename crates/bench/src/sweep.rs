//! The parallel experiment sweep engine.
//!
//! Every results-producing binary is a grid of independent measurement
//! cells — `(benchmark, variant, config)` triples fed to
//! [`measure_cached`] (or [`measure_at_clock_cached`] for
//! clock-pinned ablations). This module runs such grids:
//!
//! * cells are sharded across a fixed-size worker pool (the vendored
//!   [`threadpool`] shim), one OS thread per worker;
//! * every cell routes its builds through one shared
//!   [`BuildCache`], so repeated images are linked once per sweep;
//! * results land in their input slot: the report's order equals the
//!   grid's order regardless of worker count or completion order, and
//!   the measurements themselves are byte-identical to serial runs (the
//!   simulator is deterministic and cells share no mutable state);
//! * a machine-readable perf record ([`SweepReport::to_json`]) captures
//!   the grid, per-cell results and throughput for cross-run
//!   comparison. Wall-clock fields are the only non-deterministic
//!   content and every such key carries a `wall_` / `_per_wall_s`
//!   marker so differential tooling can strip them.
//!
//! Worker count resolution: explicit [`SweepOptions::workers`], else the
//! `WBSN_WORKERS` environment variable, else the host's available
//! parallelism.

use std::sync::{mpsc, Arc};
use std::time::Instant;

use threadpool::ThreadPool;
use wbsn_kernels::ClassifierParams;

use crate::cache::BuildCache;
use crate::experiment::{
    measure_at_clock_cached, measure_cached, BenchmarkId, ExperimentConfig, MeasureError,
    Measurement, RunVariant,
};

/// One cell of a sweep grid.
#[derive(Debug, Clone)]
pub struct SweepCell {
    /// The benchmark to measure.
    pub benchmark: BenchmarkId,
    /// The platform/synchronization configuration.
    pub variant: RunVariant,
    /// The experiment knobs for this cell.
    pub config: ExperimentConfig,
    /// Pin the run to this clock instead of searching for the minimum
    /// (the `measure_at_clock` ablations).
    pub pinned_clock_hz: Option<f64>,
}

impl SweepCell {
    /// A minimum-clock-search cell.
    pub fn new(benchmark: BenchmarkId, variant: RunVariant, config: ExperimentConfig) -> SweepCell {
        SweepCell {
            benchmark,
            variant,
            config,
            pinned_clock_hz: None,
        }
    }

    /// A cell pinned to a given clock (the no-VFS ablations).
    pub fn pinned(
        benchmark: BenchmarkId,
        variant: RunVariant,
        config: ExperimentConfig,
        clock_hz: f64,
    ) -> SweepCell {
        SweepCell {
            benchmark,
            variant,
            config,
            pinned_clock_hz: Some(clock_hz),
        }
    }
}

/// One finished cell: the input, its result and its wall time.
#[derive(Debug)]
pub struct CellOutcome {
    /// The cell as submitted.
    pub cell: SweepCell,
    /// The measurement, or the error string of the failed flow
    /// (stringified so outcomes stay `Send` + cheap to clone around).
    pub result: Result<Measurement, String>,
    /// Wall-clock seconds this cell took (non-deterministic).
    pub wall_s: f64,
}

/// Sweep-wide knobs.
#[derive(Debug, Clone, Default)]
pub struct SweepOptions {
    /// Worker threads; `None` resolves `WBSN_WORKERS`, then the host's
    /// available parallelism.
    pub workers: Option<usize>,
}

impl SweepOptions {
    /// The effective worker count (≥ 1).
    pub fn resolve_workers(&self) -> usize {
        self.workers
            .or_else(|| {
                std::env::var("WBSN_WORKERS")
                    .ok()
                    .and_then(|v| v.parse().ok())
            })
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
            .max(1)
    }
}

/// The result of one sweep: outcomes in grid order plus run metadata.
#[derive(Debug)]
pub struct SweepReport {
    /// Finished cells, in the exact order they were submitted.
    pub outcomes: Vec<CellOutcome>,
    /// Worker threads used.
    pub workers: usize,
    /// Wall-clock seconds for the whole sweep (non-deterministic).
    pub wall_s: f64,
    /// Build-cache lookups served without building.
    pub cache_hits: u64,
    /// Build-cache lookups that built an image.
    pub cache_misses: u64,
}

impl SweepReport {
    /// Measurements in grid order; failed cells panic with their error
    /// (the behaviour every binary wants: a failed reproduction is a
    /// bug, not a data point).
    pub fn expect_all(&self) -> Vec<&Measurement> {
        self.outcomes
            .iter()
            .map(|o| match &o.result {
                Ok(m) => m,
                Err(e) => panic!(
                    "{} {} failed: {e}",
                    o.cell.benchmark.name(),
                    o.cell.variant.label()
                ),
            })
            .collect()
    }

    /// Total simulated cycles across the successful cells.
    pub fn simulated_cycles(&self) -> u64 {
        self.outcomes
            .iter()
            .filter_map(|o| o.result.as_ref().ok())
            .map(|m| m.stats.cycles)
            .sum()
    }

    /// Merges another report into this one (grids run in phases — e.g.
    /// clock-pinned cells that need a baseline's result — append their
    /// outcomes and accumulate the counters).
    pub fn merge(&mut self, other: SweepReport) {
        self.outcomes.extend(other.outcomes);
        self.wall_s += other.wall_s;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.workers = self.workers.max(other.workers);
    }

    /// Pairs every baseline cell (no scheduling, no forwarding) with the
    /// fixed cells that differ from it only in those two knobs, for the
    /// record's `hazard_fixes` block: each entry diffs the load-use
    /// stall bucket and the power integral before/after the fix.
    fn hazard_fixes(&self) -> Vec<(&CellOutcome, &CellOutcome, &'static str)> {
        let mut fixes = Vec::new();
        for base in &self.outcomes {
            let c = &base.cell;
            if c.config.schedule || c.config.forwarding || base.result.is_err() {
                continue;
            }
            for fixed in &self.outcomes {
                let f = &fixed.cell;
                let same_cell = f.benchmark == c.benchmark
                    && f.variant == c.variant
                    && f.pinned_clock_hz == c.pinned_clock_hz
                    && f.config.seed == c.config.seed
                    && f.config.duration_s == c.config.duration_s
                    && f.config.pathological_fraction == c.config.pathological_fraction;
                if !same_cell || fixed.result.is_err() {
                    continue;
                }
                let label = match (f.config.schedule, f.config.forwarding) {
                    (true, false) => "schedule",
                    (false, true) => "forwarding",
                    (true, true) => "schedule+forwarding",
                    (false, false) => continue,
                };
                fixes.push((base, fixed, label));
            }
        }
        fixes
    }

    /// Renders the machine-readable sweep record (`BENCH_sweep.json`).
    ///
    /// One key per line; every non-deterministic key contains `wall_` or
    /// `_per_wall_s`, so `grep -v wall` yields a byte-stable view of the
    /// record for differential comparison across runs and worker counts
    /// (`workers` is deliberately excluded for the same reason).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": \"wbsn-bench-sweep/3\",\n");
        out.push_str(&format!("  \"grid_cells\": {},\n", self.outcomes.len()));
        out.push_str(&format!("  \"wall_s\": {},\n", json_f64(self.wall_s)));
        let cycles = self.simulated_cycles();
        out.push_str(&format!("  \"simulated_cycles\": {cycles},\n"));
        out.push_str(&format!(
            "  \"simulated_cycles_per_wall_s\": {},\n",
            json_f64(cycles as f64 / self.wall_s.max(1e-9))
        ));
        out.push_str(&format!("  \"build_cache_hits\": {},\n", self.cache_hits));
        out.push_str(&format!(
            "  \"build_cache_misses\": {},\n",
            self.cache_misses
        ));
        out.push_str("  \"cells\": [\n");
        for (i, outcome) in self.outcomes.iter().enumerate() {
            let cell = &outcome.cell;
            out.push_str("    {\n");
            out.push_str(&format!(
                "      \"benchmark\": \"{}\",\n",
                cell.benchmark.name()
            ));
            out.push_str(&format!(
                "      \"variant\": \"{}\",\n",
                cell.variant.label()
            ));
            out.push_str(&format!(
                "      \"duration_s\": {},\n",
                json_f64(cell.config.duration_s)
            ));
            out.push_str(&format!(
                "      \"pathological_fraction\": {},\n",
                json_f64(cell.config.pathological_fraction)
            ));
            out.push_str(&format!("      \"seed\": {},\n", cell.config.seed));
            out.push_str(&format!("      \"schedule\": {},\n", cell.config.schedule));
            out.push_str(&format!(
                "      \"forwarding\": {},\n",
                cell.config.forwarding
            ));
            out.push_str(&format!(
                "      \"pinned_clock_hz\": {},\n",
                match cell.pinned_clock_hz {
                    Some(hz) => json_f64(hz),
                    None => "null".to_string(),
                }
            ));
            out.push_str(&format!(
                "      \"wall_s\": {},\n",
                json_f64(outcome.wall_s)
            ));
            match &outcome.result {
                Ok(m) => {
                    out.push_str("      \"ok\": true,\n");
                    out.push_str(&format!("      \"clock_hz\": {},\n", json_f64(m.clock_hz)));
                    out.push_str(&format!("      \"voltage\": {},\n", json_f64(m.voltage)));
                    out.push_str(&format!(
                        "      \"power_uw\": {},\n",
                        json_f64(m.power_uw())
                    ));
                    out.push_str(&format!(
                        "      \"im_broadcast_percent\": {},\n",
                        json_f64(m.im_broadcast_percent)
                    ));
                    out.push_str(&format!(
                        "      \"dm_broadcast_percent\": {},\n",
                        json_f64(m.dm_broadcast_percent)
                    ));
                    out.push_str(&format!("      \"active_cores\": {},\n", m.active_cores));
                    out.push_str(&format!("      \"cycles\": {},\n", m.stats.cycles));
                    match &m.obs {
                        Some(s) => {
                            out.push_str("      \"obs\": {\n");
                            out.push_str(&format!("        \"sleep_count\": {},\n", s.sleep_count));
                            out.push_str(&format!(
                                "        \"sleep_p50_cycles\": {},\n",
                                s.sleep_p50_cycles
                            ));
                            out.push_str(&format!(
                                "        \"sleep_p99_cycles\": {},\n",
                                s.sleep_p99_cycles
                            ));
                            out.push_str(&format!(
                                "        \"sync_gap_p50_cycles\": {},\n",
                                s.sync_gap_p50_cycles
                            ));
                            out.push_str(&format!(
                                "        \"sync_gap_p99_cycles\": {},\n",
                                s.sync_gap_p99_cycles
                            ));
                            out.push_str(&format!(
                                "        \"stall_im_cycles\": {},\n",
                                s.stall_im_cycles
                            ));
                            out.push_str(&format!(
                                "        \"stall_dm_cycles\": {},\n",
                                s.stall_dm_cycles
                            ));
                            out.push_str(&format!(
                                "        \"stall_hazard_cycles\": {},\n",
                                s.stall_hazard_cycles
                            ));
                            out.push_str(&format!(
                                "        \"stall_run_p99_cycles\": {}\n",
                                s.stall_run_p99_cycles
                            ));
                            out.push_str("      }\n");
                        }
                        None => out.push_str("      \"obs\": null\n"),
                    }
                }
                Err(e) => {
                    out.push_str("      \"ok\": false,\n");
                    out.push_str(&format!("      \"error\": \"{}\"\n", json_escape(e)));
                }
            }
            out.push_str(if i + 1 < self.outcomes.len() {
                "    },\n"
            } else {
                "    }\n"
            });
        }
        out.push_str("  ],\n");
        // Before/after view of the load-use stall bucket: one entry per
        // (baseline cell, fix) pair present in the grid.
        let fixes = self.hazard_fixes();
        out.push_str("  \"hazard_fixes\": [\n");
        for (i, (base, fixed, label)) in fixes.iter().enumerate() {
            let (b, f) = match (&base.result, &fixed.result) {
                (Ok(b), Ok(f)) => (b, f),
                _ => unreachable!("hazard_fixes only pairs successful cells"),
            };
            let before = b.obs.map(|s| s.stall_hazard_cycles).unwrap_or(0);
            let after = f.obs.map(|s| s.stall_hazard_cycles).unwrap_or(0);
            let cut = if before > 0 {
                100.0 * (before.saturating_sub(after)) as f64 / before as f64
            } else {
                0.0
            };
            out.push_str("    {\n");
            out.push_str(&format!(
                "      \"benchmark\": \"{}\",\n",
                base.cell.benchmark.name()
            ));
            out.push_str(&format!(
                "      \"variant\": \"{}\",\n",
                base.cell.variant.label()
            ));
            out.push_str(&format!("      \"fix\": \"{label}\",\n"));
            out.push_str(&format!(
                "      \"stall_hazard_cycles_before\": {before},\n"
            ));
            out.push_str(&format!("      \"stall_hazard_cycles_after\": {after},\n"));
            out.push_str(&format!(
                "      \"stall_hazard_cut_percent\": {},\n",
                json_f64(cut)
            ));
            out.push_str(&format!(
                "      \"power_uw_before\": {},\n",
                json_f64(b.power_uw())
            ));
            out.push_str(&format!(
                "      \"power_uw_after\": {},\n",
                json_f64(f.power_uw())
            ));
            out.push_str(&format!(
                "      \"clock_hz_before\": {},\n",
                json_f64(b.clock_hz)
            ));
            out.push_str(&format!(
                "      \"clock_hz_after\": {}\n",
                json_f64(f.clock_hz)
            ));
            out.push_str(if i + 1 < fixes.len() {
                "    },\n"
            } else {
                "    }\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes the sweep record to `path`, or to the `WBSN_SWEEP_JSON`
    /// override when set (an empty override suppresses the record).
    ///
    /// # Errors
    ///
    /// Propagates the write error.
    pub fn write_json(&self, path: &str) -> std::io::Result<()> {
        let path = std::env::var("WBSN_SWEEP_JSON").unwrap_or_else(|_| path.to_string());
        if path.is_empty() {
            return Ok(());
        }
        std::fs::write(&path, self.to_json())?;
        eprintln!(
            "# sweep: {} cells, {} workers, {:.1}s wall, {:.1} Msim-cycles/s -> {path}",
            self.outcomes.len(),
            self.workers,
            self.wall_s,
            self.simulated_cycles() as f64 / self.wall_s.max(1e-9) / 1e6
        );
        Ok(())
    }
}

/// Formats an `f64` the way the record wants it: JSON has no NaN or
/// infinities, and Rust's shortest-roundtrip `{}` is deterministic.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // Bare integers are valid JSON numbers, but keep the float shape
        // so consumers see a stable type per key.
        if s.contains('.') || s.contains('e') {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "null".to_string()
    }
}

/// Escapes a string for embedding in a JSON literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Runs one measurement cell (the worker body).
fn run_cell(cell: &SweepCell, params: &ClassifierParams, cache: &BuildCache) -> CellOutcome {
    let start = Instant::now();
    let result = match cell.pinned_clock_hz {
        Some(clock_hz) => measure_at_clock_cached(
            cell.benchmark,
            cell.variant,
            &cell.config,
            params,
            clock_hz,
            cache,
        ),
        None => measure_cached(cell.benchmark, cell.variant, &cell.config, params, cache),
    };
    CellOutcome {
        cell: cell.clone(),
        result: result.map_err(|e: MeasureError| e.to_string()),
        wall_s: start.elapsed().as_secs_f64(),
    }
}

/// Runs a grid of cells across the worker pool.
///
/// Results are slotted by submission index: `report.outcomes[i]` always
/// belongs to `cells[i]`, whatever the worker count. With one worker the
/// execution order is exactly the grid order, so serial and parallel
/// sweeps are comparable cell by cell.
pub fn run_sweep(
    cells: Vec<SweepCell>,
    params: &ClassifierParams,
    options: &SweepOptions,
) -> SweepReport {
    let workers = options.resolve_workers();
    let start = Instant::now();
    let cache = Arc::new(BuildCache::new());
    let params = Arc::new(params.clone());
    let count = cells.len();

    let mut slots: Vec<Option<CellOutcome>> = Vec::with_capacity(count);
    slots.resize_with(count, || None);
    if workers == 1 || count <= 1 {
        // In-line serial path: same code path the workers run, without
        // thread-spawn overhead (and the baseline the determinism tests
        // compare against).
        for (i, cell) in cells.iter().enumerate() {
            slots[i] = Some(run_cell(cell, &params, &cache));
        }
    } else {
        let pool = ThreadPool::new(workers.min(count));
        let (tx, rx) = mpsc::channel::<(usize, CellOutcome)>();
        for (i, cell) in cells.iter().cloned().enumerate() {
            let tx = tx.clone();
            let params = Arc::clone(&params);
            let cache = Arc::clone(&cache);
            pool.execute(move || {
                let outcome = run_cell(&cell, &params, &cache);
                // The main thread keeps the receiver for the whole
                // collection loop, so this send cannot fail.
                let _ = tx.send((i, outcome));
            });
        }
        drop(tx);
        for (i, outcome) in rx {
            slots[i] = Some(outcome);
        }
        pool.join();
        assert_eq!(pool.panic_count(), 0, "sweep worker panicked");
    }

    SweepReport {
        outcomes: slots
            .into_iter()
            .map(|s| s.expect("every cell reports exactly once"))
            .collect(),
        workers,
        wall_s: start.elapsed().as_secs_f64(),
        cache_hits: cache.hits(),
        cache_misses: cache.misses(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_f64_is_stable_and_typed() {
        assert_eq!(json_f64(1.5), "1.5");
        assert_eq!(json_f64(3.0), "3.0");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(1e300 * 1e300), "null");
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn empty_grid_produces_a_valid_record() {
        let report = run_sweep(
            Vec::new(),
            &ClassifierParams::default_trained(),
            &SweepOptions { workers: Some(1) },
        );
        assert!(report.outcomes.is_empty());
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"wbsn-bench-sweep/3\""));
        assert!(json.contains("\"grid_cells\": 0"));
        assert!(json.contains("\"hazard_fixes\": [\n  ]"));
        assert!(json.ends_with("]\n}\n"));
    }
}
