//! The evaluation harness: reproduces every table and figure of the
//! paper's evaluation section.
//!
//! * [`experiment`] — the per-configuration measurement flow (calibrate →
//!   select V/f → measure power over a long simulated window).
//! * Binaries:
//!   * `table1` — Table I: per-benchmark SC vs MC execution details.
//!   * `fig6` — Fig. 6: power decomposition for SC, MC without the
//!     proposed synchronization (busy wait) and MC with it.
//!   * `fig7` — Fig. 7: RP-CLASS power vs pathological-beat fraction.
//!
//! Criterion micro-benchmarks for the substrates live under `benches/`.

pub mod experiment;

pub use experiment::{measure, BenchmarkId, ExperimentConfig, Measurement, RunVariant};
