//! The evaluation harness: reproduces every table and figure of the
//! paper's evaluation section.
//!
//! * [`experiment`] — the per-configuration measurement flow (calibrate →
//!   select V/f → measure power over a long simulated window).
//! * [`cache`] — the shared build cache: one linked image per distinct
//!   `(benchmark, architecture, BuildOptions)` key.
//! * [`sweep`] — the parallel sweep engine: grids of measurement cells
//!   sharded across a worker pool with deterministic, grid-ordered
//!   results and a machine-readable `BENCH_sweep.json` record.
//! * Binaries (all routed through the sweep engine):
//!   * `table1` — Table I: per-benchmark SC vs MC execution details.
//!   * `fig6` — Fig. 6: power decomposition for SC, MC without the
//!     proposed synchronization (busy wait) and MC with it.
//!   * `fig7` — Fig. 7: RP-CLASS power vs pathological-beat fraction.
//!   * `ablations`, `sensitivity` — the DESIGN.md studies.
//!   * `sweep` — the stand-alone sweep driver CLI.
//!
//! Criterion micro-benchmarks for the substrates live under `benches/`.

pub mod cache;
pub mod experiment;
pub mod sweep;

pub use cache::BuildCache;
pub use experiment::{measure, BenchmarkId, ExperimentConfig, Measurement, RunVariant};
pub use sweep::{run_sweep, SweepCell, SweepOptions, SweepReport};
