//! Reproduces Fig. 6: power-consumption decomposition of the single-core
//! (SC) and multi-core (MC) systems with and without the proposed
//! synchronization approach.
//!
//! Usage: `cargo run --release -p wbsn-bench --bin fig6`
//!
//! Environment:
//! * `WBSN_DURATION_S` — observation window (default 60 s).
//! * `WBSN_NO_BROADCAST=1` — ablation: disable crossbar broadcasting.

use wbsn_bench::{measure, BenchmarkId, ExperimentConfig, RunVariant};
use wbsn_kernels::ClassifierParams;

fn main() {
    let config = ExperimentConfig {
        duration_s: std::env::var("WBSN_DURATION_S")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(60.0),
        disable_broadcast: std::env::var("WBSN_NO_BROADCAST").is_ok(),
        ..ExperimentConfig::default()
    };
    let params = ClassifierParams::default_trained();
    eprintln!(
        "# Fig. 6 reproduction — power decomposition (uW), {} s simulated{}",
        config.duration_s,
        if config.disable_broadcast {
            ", broadcasting DISABLED (ablation)"
        } else {
            ""
        }
    );

    let variants = [
        RunVariant::SingleCore,
        RunVariant::MultiCoreBusyWait,
        RunVariant::MultiCoreSync,
    ];
    println!(
        "{:<10} {:<14} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "benchmark", "config", "cores", "prog mem", "data mem", "intercon", "clock", "total"
    );
    for benchmark in BenchmarkId::ALL {
        for variant in variants {
            let m = measure(benchmark, variant, &config, &params)
                .unwrap_or_else(|e| panic!("{} {} failed: {e}", benchmark.name(), variant.label()));
            let b = &m.breakdown;
            println!(
                "{:<10} {:<14} {:>10.2} {:>10.2} {:>10.2} {:>10.2} {:>10.2} {:>10.2}",
                benchmark.name(),
                variant.label(),
                b.cores_and_logic_uw,
                b.prog_mem_uw,
                b.data_mem_uw,
                b.interconnect_uw,
                b.clock_tree_uw,
                b.total_uw()
            );
        }
        println!();
    }
}
