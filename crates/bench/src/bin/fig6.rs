//! Reproduces Fig. 6: power-consumption decomposition of the single-core
//! (SC) and multi-core (MC) systems with and without the proposed
//! synchronization approach.
//!
//! Usage: `cargo run --release -p wbsn-bench --bin fig6`
//!
//! Environment:
//! * `WBSN_DURATION_S` — observation window (default 60 s).
//! * `WBSN_NO_BROADCAST=1` — ablation: disable crossbar broadcasting.

use wbsn_bench::{run_sweep, BenchmarkId, ExperimentConfig, RunVariant, SweepCell, SweepOptions};
use wbsn_kernels::ClassifierParams;

fn main() {
    let config = ExperimentConfig {
        duration_s: std::env::var("WBSN_DURATION_S")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(60.0),
        disable_broadcast: std::env::var("WBSN_NO_BROADCAST").is_ok(),
        ..ExperimentConfig::default()
    };
    let params = ClassifierParams::default_trained();
    eprintln!(
        "# Fig. 6 reproduction — power decomposition (uW), {} s simulated{}",
        config.duration_s,
        if config.disable_broadcast {
            ", broadcasting DISABLED (ablation)"
        } else {
            ""
        }
    );

    let variants = [
        RunVariant::SingleCore,
        RunVariant::MultiCoreBusyWait,
        RunVariant::MultiCoreSync,
    ];
    // One sweep grid: benchmark-major, variant-minor — the print order.
    let cells: Vec<SweepCell> = BenchmarkId::ALL
        .into_iter()
        .flat_map(|benchmark| {
            variants.map(|variant| SweepCell::new(benchmark, variant, config.clone()))
        })
        .collect();
    let report = run_sweep(cells, &params, &SweepOptions::default());
    let mut measurements = report.expect_all().into_iter();
    println!(
        "{:<10} {:<14} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "benchmark", "config", "cores", "prog mem", "data mem", "intercon", "clock", "total"
    );
    for benchmark in BenchmarkId::ALL {
        for variant in variants {
            let m = measurements.next().expect("one measurement per cell");
            let b = &m.breakdown;
            println!(
                "{:<10} {:<14} {:>10.2} {:>10.2} {:>10.2} {:>10.2} {:>10.2} {:>10.2}",
                benchmark.name(),
                variant.label(),
                b.cores_and_logic_uw,
                b.prog_mem_uw,
                b.data_mem_uw,
                b.interconnect_uw,
                b.clock_tree_uw,
                b.total_uw()
            );
        }
        println!();
    }

    report
        .write_json("BENCH_sweep.json")
        .expect("writing the sweep record");
}
