//! Ablation study of the design choices DESIGN.md calls out:
//!
//! * **broadcast off** — crossbars stop merging same-address reads;
//!   isolates the instruction/data broadcasting contribution.
//! * **lock-step barrier off** — the conditioning group never
//!   re-synchronizes after divergence; shows how much broadcast decays
//!   without the paper's branch-recovery mechanism.
//! * **VFS off** — the multi-core platform is pinned to the baseline's
//!   clock and voltage; isolates the voltage-frequency-scaling
//!   contribution (the decomposition of Fig. 7's discussion, §V-C).
//! * **busy wait** — the full "without the proposed approach" bar of
//!   Fig. 6, for reference.
//!
//! Usage: `cargo run --release -p wbsn-bench --bin ablations`
//! (`WBSN_DURATION_S` overrides the observation window.)

use wbsn_bench::{
    run_sweep, BenchmarkId, ExperimentConfig, Measurement, RunVariant, SweepCell, SweepOptions,
};
use wbsn_kernels::ClassifierParams;

fn main() {
    let duration_s = std::env::var("WBSN_DURATION_S")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20.0);
    let base = ExperimentConfig {
        duration_s,
        ..ExperimentConfig::default()
    };
    let params = ClassifierParams::default_trained();
    let options = SweepOptions::default();
    eprintln!("# Ablations on 3L-MF (the broadcast-heaviest benchmark), {duration_s} s simulated");

    // Phase 1: every cell that searches its own minimum clock.
    let mc = RunVariant::MultiCoreSync;
    let cells = vec![
        SweepCell::new(BenchmarkId::Mf, RunVariant::SingleCore, base.clone()),
        SweepCell::new(BenchmarkId::Mf, mc, base.clone()),
        SweepCell::new(
            BenchmarkId::Mf,
            mc,
            ExperimentConfig {
                disable_broadcast: true,
                ..base.clone()
            },
        ),
        SweepCell::new(
            BenchmarkId::Mf,
            mc,
            ExperimentConfig {
                disable_lockstep: true,
                ..base.clone()
            },
        ),
        SweepCell::new(
            BenchmarkId::Mf,
            mc,
            ExperimentConfig {
                preloaded_barrier: true,
                ..base.clone()
            },
        ),
        SweepCell::new(BenchmarkId::Mf, RunVariant::MultiCoreBusyWait, base.clone()),
    ];
    let mut report = run_sweep(cells, &params, &options);
    let sc_clock_hz = report.expect_all()[0].clock_hz;

    // Phase 2: the VFS ablation runs at the baseline's clock, which
    // phase 1 just determined.
    let no_vfs_report = run_sweep(
        vec![SweepCell::pinned(BenchmarkId::Mf, mc, base, sc_clock_hz)],
        &params,
        &options,
    );

    println!(
        "{:<26} {:>9} {:>7} {:>11} {:>11} {:>12}",
        "configuration", "f (MHz)", "V", "IM bcast %", "power (uW)", "vs SC"
    );
    {
        let searched = report.expect_all();
        let sc = searched[0];
        let labelled = [
            ("SC baseline", searched[0]),
            ("MC full approach", searched[1]),
            ("MC - no broadcast", searched[2]),
            ("MC - no lock-step barrier", searched[3]),
            ("MC - preloaded barrier", searched[4]),
            ("MC - no VFS (SC's V/f)", no_vfs_report.expect_all()[0]),
            ("MC - busy wait", searched[5]),
        ];
        let row = |label: &str, m: &Measurement| {
            println!(
                "{:<26} {:>9.2} {:>7.1} {:>11.2} {:>11.2} {:>11.1}%",
                label,
                m.clock_hz / 1e6,
                m.voltage,
                m.im_broadcast_percent,
                m.power_uw(),
                100.0 * (1.0 - m.power_uw() / sc.power_uw())
            );
        };
        for (label, m) in labelled {
            row(label, m);
        }
    }

    report.merge(no_vfs_report);
    report
        .write_json("BENCH_sweep.json")
        .expect("writing the sweep record");
}
