//! Ablation study of the design choices DESIGN.md calls out:
//!
//! * **broadcast off** — crossbars stop merging same-address reads;
//!   isolates the instruction/data broadcasting contribution.
//! * **lock-step barrier off** — the conditioning group never
//!   re-synchronizes after divergence; shows how much broadcast decays
//!   without the paper's branch-recovery mechanism.
//! * **VFS off** — the multi-core platform is pinned to the baseline's
//!   clock and voltage; isolates the voltage-frequency-scaling
//!   contribution (the decomposition of Fig. 7's discussion, §V-C).
//! * **busy wait** — the full "without the proposed approach" bar of
//!   Fig. 6, for reference.
//!
//! Usage: `cargo run --release -p wbsn-bench --bin ablations`
//! (`WBSN_DURATION_S` overrides the observation window.)

use wbsn_bench::experiment::measure_at_clock;
use wbsn_bench::{measure, BenchmarkId, ExperimentConfig, Measurement, RunVariant};
use wbsn_kernels::ClassifierParams;

fn main() {
    let duration_s = std::env::var("WBSN_DURATION_S")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20.0);
    let base = ExperimentConfig {
        duration_s,
        ..ExperimentConfig::default()
    };
    let params = ClassifierParams::default_trained();
    eprintln!("# Ablations on 3L-MF (the broadcast-heaviest benchmark), {duration_s} s simulated");

    let sc = measure(BenchmarkId::Mf, RunVariant::SingleCore, &base, &params).expect("SC baseline");
    let full =
        measure(BenchmarkId::Mf, RunVariant::MultiCoreSync, &base, &params).expect("full approach");
    let no_broadcast = measure(
        BenchmarkId::Mf,
        RunVariant::MultiCoreSync,
        &ExperimentConfig {
            disable_broadcast: true,
            ..base.clone()
        },
        &params,
    )
    .expect("broadcast ablation");
    let no_lockstep = measure(
        BenchmarkId::Mf,
        RunVariant::MultiCoreSync,
        &ExperimentConfig {
            disable_lockstep: true,
            ..base.clone()
        },
        &params,
    )
    .expect("lock-step ablation");
    let preloaded = measure(
        BenchmarkId::Mf,
        RunVariant::MultiCoreSync,
        &ExperimentConfig {
            preloaded_barrier: true,
            ..base.clone()
        },
        &params,
    )
    .expect("preloaded barrier");
    let no_vfs = measure_at_clock(
        BenchmarkId::Mf,
        RunVariant::MultiCoreSync,
        &base,
        &params,
        sc.clock_hz,
    )
    .expect("VFS ablation");
    let busy = measure(
        BenchmarkId::Mf,
        RunVariant::MultiCoreBusyWait,
        &base,
        &params,
    )
    .expect("busy wait");

    println!(
        "{:<26} {:>9} {:>7} {:>11} {:>11} {:>12}",
        "configuration", "f (MHz)", "V", "IM bcast %", "power (uW)", "vs SC"
    );
    let row = |label: &str, m: &Measurement| {
        println!(
            "{:<26} {:>9.2} {:>7.1} {:>11.2} {:>11.2} {:>11.1}%",
            label,
            m.clock_hz / 1e6,
            m.voltage,
            m.im_broadcast_percent,
            m.power_uw(),
            100.0 * (1.0 - m.power_uw() / sc.power_uw())
        );
    };
    row("SC baseline", &sc);
    row("MC full approach", &full);
    row("MC - no broadcast", &no_broadcast);
    row("MC - no lock-step barrier", &no_lockstep);
    row("MC - preloaded barrier", &preloaded);
    row("MC - no VFS (SC's V/f)", &no_vfs);
    row("MC - busy wait", &busy);
}
