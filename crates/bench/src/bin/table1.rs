//! Reproduces Table I: execution details of the three benchmarks on the
//! single-core (SC) baseline and the multi-core (MC) platform with the
//! proposed synchronization approach.
//!
//! Usage: `cargo run --release -p wbsn-bench --bin table1`
//! (set `WBSN_DURATION_S` to override the 60 s observation window).

use wbsn_bench::{
    run_sweep, BenchmarkId, ExperimentConfig, Measurement, RunVariant, SweepCell, SweepOptions,
};
use wbsn_kernels::ClassifierParams;

fn duration_from_env() -> f64 {
    std::env::var("WBSN_DURATION_S")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(60.0)
}

fn main() {
    let config = ExperimentConfig {
        duration_s: duration_from_env(),
        ..ExperimentConfig::default()
    };
    let params = ClassifierParams::default_trained();
    eprintln!(
        "# Table I reproduction — {} s simulated, fs = {} Hz, {}% pathological beats (RP-CLASS)",
        config.duration_s,
        config.fs,
        (config.pathological_fraction * 100.0).round()
    );

    // One sweep grid: (benchmark × {SC, MC}) in Table I order.
    let cells: Vec<SweepCell> = BenchmarkId::ALL
        .into_iter()
        .flat_map(|benchmark| {
            [RunVariant::SingleCore, RunVariant::MultiCoreSync]
                .map(|variant| SweepCell::new(benchmark, variant, config.clone()))
        })
        .collect();
    let report = run_sweep(cells, &params, &SweepOptions::default());
    let measurements = report.expect_all();
    let columns: Vec<(BenchmarkId, &Measurement, &Measurement)> = BenchmarkId::ALL
        .into_iter()
        .zip(measurements.chunks_exact(2))
        .map(|(benchmark, pair)| (benchmark, pair[0], pair[1]))
        .collect();

    let dash = "-".to_string();
    let header: Vec<String> = columns
        .iter()
        .flat_map(|(b, _, _)| [format!("{} SC", b.name()), "MC".to_string()])
        .collect();
    let row = |label: &str, f: &dyn Fn(&Measurement, bool) -> String| {
        let cells: Vec<String> = columns
            .iter()
            .flat_map(|(_, sc, mc)| [f(sc, false), f(mc, true)])
            .collect();
        println!(
            "{label:<22} {}",
            cells.iter().map(|c| format!("{c:>12}")).collect::<String>()
        );
    };

    println!(
        "{:<22} {}",
        "",
        header
            .iter()
            .map(|c| format!("{c:>12}"))
            .collect::<String>()
    );
    row("Active Cores", &|m, _| m.active_cores.to_string());
    row("Active IM banks", &|m, _| m.active_im_banks.to_string());
    row("Active DM banks", &|m, _| m.active_dm_banks.to_string());
    row("IM Broadcast (%)", &|m, is_mc| {
        if is_mc {
            format!("{:.2}", m.im_broadcast_percent)
        } else {
            dash.clone()
        }
    });
    row("DM Broadcast (%)", &|m, is_mc| {
        if is_mc {
            format!("{:.2}", m.dm_broadcast_percent)
        } else {
            dash.clone()
        }
    });
    row("Min. Clock (MHz)", &|m, _| {
        format!("{:.1}", m.clock_hz / 1e6)
    });
    row("Min. Voltage (V)", &|m, _| format!("{:.1}", m.voltage));
    row("Code Overhead (%)", &|m, is_mc| {
        if is_mc {
            format!("{:.2}", m.code_overhead_percent)
        } else {
            dash.clone()
        }
    });
    row("Run-time Overhead (%)", &|m, is_mc| {
        if is_mc {
            format!("{:.2}", m.runtime_overhead_percent)
        } else {
            dash.clone()
        }
    });
    row("Avg. Power (uW)", &|m, _| format!("{:.1}", m.power_uw()));

    print!("{:<22} ", "Saving");
    for (_, sc, mc) in &columns {
        let saving = 100.0 * (1.0 - mc.power_uw() / sc.power_uw());
        print!("{:>12}{:>12}", "", format!("{saving:.1} %"));
    }
    println!();

    report
        .write_json("BENCH_sweep.json")
        .expect("writing the sweep record");
}
