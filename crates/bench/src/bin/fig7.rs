//! Reproduces Fig. 7: power consumption of the single-core (SC) and
//! multi-core (MC) systems, and the respective reduction, while the
//! proportion of abnormal (pathological) heartbeats in the RP-CLASS
//! input sweeps from 0% to 100%.
//!
//! Usage: `cargo run --release -p wbsn-bench --bin fig7`
//!
//! Environment:
//! * `WBSN_DURATION_S` — observation window (default 60 s).
//! * `WBSN_NO_VFS=1` — ablation: run the multi-core platform at the
//!   baseline's clock and voltage, isolating the broadcast contribution.

use wbsn_bench::{run_sweep, BenchmarkId, ExperimentConfig, RunVariant, SweepCell, SweepOptions};
use wbsn_kernels::ClassifierParams;

const FRACTIONS: [f64; 7] = [0.0, 0.10, 0.20, 0.25, 0.33, 0.50, 1.00];

fn config_for(fraction: f64, duration_s: f64) -> ExperimentConfig {
    ExperimentConfig {
        duration_s,
        pathological_fraction: fraction,
        ..ExperimentConfig::default()
    }
}

fn main() {
    let duration_s = std::env::var("WBSN_DURATION_S")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(60.0);
    let no_vfs = std::env::var("WBSN_NO_VFS").is_ok();
    let params = ClassifierParams::default_trained();
    let options = SweepOptions::default();
    eprintln!(
        "# Fig. 7 reproduction — RP-CLASS, {} s simulated{}",
        duration_s,
        if no_vfs {
            ", VFS DISABLED (ablation)"
        } else {
            ""
        }
    );

    // Phase 1: the SC baseline at every fraction. The no-VFS ablation
    // pins each MC cell to its baseline's clock, so the MC grid can only
    // be formed once these results exist.
    let sc_cells: Vec<SweepCell> = FRACTIONS
        .into_iter()
        .map(|fraction| {
            SweepCell::new(
                BenchmarkId::RpClass,
                RunVariant::SingleCore,
                config_for(fraction, duration_s),
            )
        })
        .collect();
    let mut report = run_sweep(sc_cells, &params, &options);

    // Phase 2: the MC point for every fraction, clock-pinned when VFS is
    // disabled.
    let mc_cells: Vec<SweepCell> = FRACTIONS
        .into_iter()
        .zip(report.expect_all())
        .map(|(fraction, sc)| {
            let config = config_for(fraction, duration_s);
            if no_vfs {
                SweepCell::pinned(
                    BenchmarkId::RpClass,
                    RunVariant::MultiCoreSync,
                    config,
                    sc.clock_hz,
                )
            } else {
                SweepCell::new(BenchmarkId::RpClass, RunVariant::MultiCoreSync, config)
            }
        })
        .collect();
    let mc_report = run_sweep(mc_cells, &params, &options);

    println!(
        "{:>12} {:>10} {:>10} {:>10} {:>10} {:>12}",
        "abnormal (%)", "SC f(MHz)", "MC f(MHz)", "SC (uW)", "MC (uW)", "reduction (%)"
    );
    let sc_points = report.expect_all();
    let mc_points = mc_report.expect_all();
    for ((fraction, sc), mc) in FRACTIONS.into_iter().zip(sc_points).zip(mc_points) {
        let reduction = 100.0 * (1.0 - mc.power_uw() / sc.power_uw());
        println!(
            "{:>12.0} {:>10.2} {:>10.2} {:>10.2} {:>10.2} {:>12.1}",
            fraction * 100.0,
            sc.clock_hz / 1e6,
            mc.clock_hz / 1e6,
            sc.power_uw(),
            mc.power_uw(),
            reduction
        );
    }

    report.merge(mc_report);
    report
        .write_json("BENCH_sweep.json")
        .expect("writing the sweep record");
}
