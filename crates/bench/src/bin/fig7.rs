//! Reproduces Fig. 7: power consumption of the single-core (SC) and
//! multi-core (MC) systems, and the respective reduction, while the
//! proportion of abnormal (pathological) heartbeats in the RP-CLASS
//! input sweeps from 0% to 100%.
//!
//! Usage: `cargo run --release -p wbsn-bench --bin fig7`
//!
//! Environment:
//! * `WBSN_DURATION_S` — observation window (default 60 s).
//! * `WBSN_NO_VFS=1` — ablation: run the multi-core platform at the
//!   baseline's clock and voltage, isolating the broadcast contribution.

use wbsn_bench::experiment::measure_at_clock;
use wbsn_bench::{measure, BenchmarkId, ExperimentConfig, RunVariant};
use wbsn_kernels::ClassifierParams;

fn main() {
    let duration_s = std::env::var("WBSN_DURATION_S")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(60.0);
    let no_vfs = std::env::var("WBSN_NO_VFS").is_ok();
    let params = ClassifierParams::default_trained();
    eprintln!(
        "# Fig. 7 reproduction — RP-CLASS, {} s simulated{}",
        duration_s,
        if no_vfs {
            ", VFS DISABLED (ablation)"
        } else {
            ""
        }
    );

    println!(
        "{:>12} {:>10} {:>10} {:>10} {:>10} {:>12}",
        "abnormal (%)", "SC f(MHz)", "MC f(MHz)", "SC (uW)", "MC (uW)", "reduction (%)"
    );
    for fraction in [0.0, 0.10, 0.20, 0.25, 0.33, 0.50, 1.00] {
        let config = ExperimentConfig {
            duration_s,
            pathological_fraction: fraction,
            ..ExperimentConfig::default()
        };
        let sc = measure(
            BenchmarkId::RpClass,
            RunVariant::SingleCore,
            &config,
            &params,
        )
        .unwrap_or_else(|e| panic!("SC at {fraction} failed: {e}"));
        let mc = if no_vfs {
            measure_at_clock(
                BenchmarkId::RpClass,
                RunVariant::MultiCoreSync,
                &config,
                &params,
                sc.clock_hz,
            )
            .unwrap_or_else(|e| panic!("MC (no VFS) at {fraction} failed: {e}"))
        } else {
            measure(
                BenchmarkId::RpClass,
                RunVariant::MultiCoreSync,
                &config,
                &params,
            )
            .unwrap_or_else(|e| panic!("MC at {fraction} failed: {e}"))
        };
        let reduction = 100.0 * (1.0 - mc.power_uw() / sc.power_uw());
        println!(
            "{:>12.0} {:>10.2} {:>10.2} {:>10.2} {:>10.2} {:>12.1}",
            fraction * 100.0,
            sc.clock_hz / 1e6,
            mc.clock_hz / 1e6,
            sc.power_uw(),
            mc.power_uw(),
            reduction
        );
    }
}
