//! The stand-alone sweep driver: runs a (benchmark × variant) grid
//! through the parallel sweep engine and writes the machine-readable
//! `BENCH_sweep.json` perf record.
//!
//! Usage: `cargo run --release -p wbsn-bench --bin sweep -- [options]`
//!
//! Options:
//! * `--benchmarks mf,mmd,rpclass` — grid rows (default: all).
//! * `--variants sc,mc,busy` — grid columns (default: all).
//! * `--duration <s>` — observation window (default 60 s, or
//!   `WBSN_DURATION_S`).
//! * `--workers <n>` — worker threads (default `WBSN_WORKERS`, then the
//!   host parallelism).
//! * `--json <path>` — record path (default `BENCH_sweep.json`, or
//!   `WBSN_SWEEP_JSON`; empty suppresses the record).
//! * `--no-fix-cells` — drop the scheduled/forwarding variants of the
//!   hardware-sync cells (the default grid includes them so the record
//!   diffs the load-use stall bucket before and after each fix).

use wbsn_bench::{run_sweep, BenchmarkId, ExperimentConfig, RunVariant, SweepCell, SweepOptions};
use wbsn_kernels::ClassifierParams;

fn parse_benchmark(name: &str) -> BenchmarkId {
    match name {
        "mf" => BenchmarkId::Mf,
        "mmd" => BenchmarkId::Mmd,
        "rpclass" => BenchmarkId::RpClass,
        other => die(&format!("unknown benchmark {other:?} (mf, mmd, rpclass)")),
    }
}

fn parse_variant(name: &str) -> RunVariant {
    match name {
        "sc" => RunVariant::SingleCore,
        "mc" => RunVariant::MultiCoreSync,
        "busy" => RunVariant::MultiCoreBusyWait,
        other => die(&format!("unknown variant {other:?} (sc, mc, busy)")),
    }
}

fn die(message: &str) -> ! {
    eprintln!("sweep: {message}");
    std::process::exit(2);
}

fn main() {
    let mut benchmarks: Vec<BenchmarkId> = BenchmarkId::ALL.to_vec();
    let mut variants = vec![
        RunVariant::SingleCore,
        RunVariant::MultiCoreSync,
        RunVariant::MultiCoreBusyWait,
    ];
    let mut duration_s: f64 = std::env::var("WBSN_DURATION_S")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(60.0);
    let mut options = SweepOptions::default();
    let mut json_path = String::from("BENCH_sweep.json");
    let mut fix_cells = true;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| die(&format!("{flag} needs a value")))
        };
        match flag.as_str() {
            "--benchmarks" => {
                benchmarks = value("--benchmarks")
                    .split(',')
                    .map(parse_benchmark)
                    .collect();
            }
            "--variants" => {
                variants = value("--variants").split(',').map(parse_variant).collect();
            }
            "--duration" => {
                duration_s = value("--duration")
                    .parse()
                    .unwrap_or_else(|_| die("--duration needs seconds"));
            }
            "--workers" => {
                options.workers = Some(
                    value("--workers")
                        .parse()
                        .unwrap_or_else(|_| die("--workers needs a count")),
                );
            }
            "--json" => json_path = value("--json"),
            "--no-fix-cells" => fix_cells = false,
            other => die(&format!("unknown option {other:?}")),
        }
    }

    let config = ExperimentConfig {
        duration_s,
        ..ExperimentConfig::default()
    };
    let params = ClassifierParams::default_trained();
    let mut cells: Vec<SweepCell> = benchmarks
        .iter()
        .flat_map(|&benchmark| {
            let config = &config;
            variants
                .iter()
                .map(move |&variant| SweepCell::new(benchmark, variant, config.clone()))
        })
        .collect();
    if fix_cells {
        // Scheduled and forwarding variants of every hardware-sync cell:
        // the record pairs each with its baseline and diffs the load-use
        // stall bucket and the power integral.
        let baselines: Vec<SweepCell> = cells
            .iter()
            .filter(|c| c.variant == RunVariant::MultiCoreSync)
            .cloned()
            .collect();
        for base in baselines {
            let mut scheduled = base.clone();
            scheduled.config.schedule = true;
            cells.push(scheduled);
            let mut forwarded = base.clone();
            forwarded.config.forwarding = true;
            cells.push(forwarded);
        }
    }
    eprintln!(
        "# sweep driver — {} cells ({} benchmarks x {} variants{}), {} s simulated, {} workers",
        cells.len(),
        benchmarks.len(),
        variants.len(),
        if fix_cells { " + fix cells" } else { "" },
        duration_s,
        options.resolve_workers()
    );

    let report = run_sweep(cells, &params, &options);
    println!(
        "{:<10} {:<14} {:>10} {:>8} {:>12} {:>14}",
        "benchmark", "config", "f (MHz)", "V", "power (uW)", "cycles"
    );
    for outcome in &report.outcomes {
        let (benchmark, variant) = (outcome.cell.benchmark, outcome.cell.variant);
        let mut label = variant.label().to_string();
        if outcome.cell.config.schedule {
            label.push_str(" +sched");
        }
        if outcome.cell.config.forwarding {
            label.push_str(" +fwd");
        }
        match &outcome.result {
            Ok(m) => println!(
                "{:<10} {:<14} {:>10.2} {:>8.1} {:>12.2} {:>14}",
                benchmark.name(),
                label,
                m.clock_hz / 1e6,
                m.voltage,
                m.power_uw(),
                m.stats.cycles
            ),
            Err(e) => println!("{:<10} {:<14} FAILED: {e}", benchmark.name(), label),
        }
    }

    report.write_json(&json_path).expect("writing sweep record");
    if report.outcomes.iter().any(|o| o.result.is_err()) {
        std::process::exit(1);
    }
}
