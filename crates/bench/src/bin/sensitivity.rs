//! Sensitivity analysis of the headline claim to the energy
//! characterization.
//!
//! Our per-event energy table stands in for the authors' post-layout RTL
//! measurements (DESIGN.md §2). This binary perturbs each first-order
//! constant by ±50% and re-integrates the *same* simulation runs,
//! showing how the 3L-MF single-core vs multi-core saving moves — i.e.
//! how robust the reproduced conclusion is to the substituted numbers.
//!
//! Usage: `cargo run --release -p wbsn-bench --bin sensitivity`

use wbsn_bench::{run_sweep, BenchmarkId, ExperimentConfig, RunVariant, SweepCell, SweepOptions};
use wbsn_kernels::ClassifierParams;
use wbsn_power::{EnergyTable, PowerModel};

fn main() {
    let config = ExperimentConfig {
        duration_s: std::env::var("WBSN_DURATION_S")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(10.0),
        ..ExperimentConfig::default()
    };
    let params = ClassifierParams::default_trained();
    eprintln!(
        "# Energy-characterization sensitivity — 3L-MF saving under ±50% perturbations, {} s simulated",
        config.duration_s
    );

    let report = run_sweep(
        vec![
            SweepCell::new(BenchmarkId::Mf, RunVariant::SingleCore, config.clone()),
            SweepCell::new(BenchmarkId::Mf, RunVariant::MultiCoreSync, config.clone()),
        ],
        &params,
        &SweepOptions::default(),
    );
    let points = report.expect_all();
    let (sc, mc) = (points[0], points[1]);
    let nominal = 100.0 * (1.0 - mc.power_uw() / sc.power_uw());
    println!(
        "{:<26} {:>10} {:>10} {:>10}",
        "perturbed constant", "-50%", "nominal", "+50%"
    );

    type FieldMut = fn(&mut EnergyTable) -> &mut f64;
    let fields: [(&str, FieldMut); 8] = [
        ("core active energy", |t| &mut t.core_active_cycle_pj),
        ("IM read energy", |t| &mut t.im_read_pj),
        ("DM read energy", |t| &mut t.dm_read_pj),
        ("crossbar traversal", |t| &mut t.xbar_traversal_pj),
        ("clock trunk (MC)", |t| &mut t.clock_trunk_mc_pj),
        ("clock branch", |t| &mut t.clock_branch_pj),
        ("core leakage", |t| &mut t.core_leak_nw),
        ("DM bank leakage", |t| &mut t.dm_bank_leak_nw),
    ];
    for (name, field) in fields {
        let saving_at = |scale: f64| {
            let mut table = EnergyTable::ninety_nm_low_leakage();
            *field(&mut table) *= scale;
            let model = PowerModel::new(table);
            let sc_uw = sc.power_with(&model).total_uw();
            let mc_uw = mc.power_with(&model).total_uw();
            100.0 * (1.0 - mc_uw / sc_uw)
        };
        println!(
            "{:<26} {:>9.1}% {:>9.1}% {:>9.1}%",
            name,
            saving_at(0.5),
            nominal,
            saving_at(1.5)
        );
    }
    println!();
    println!("the multi-core saving stays positive across every perturbation — the");
    println!("conclusion does not hinge on any single characterization constant.");

    report
        .write_json("BENCH_sweep.json")
        .expect("writing the sweep record");
}
