//! Shared cache of built benchmark images.
//!
//! Every measurement builds (generates, maps, links) its application
//! several times: once for calibration and once per feasibility /
//! measurement attempt, each with a different ADC period. Cells of a
//! sweep grid repeat many of those builds — every pathological-fraction
//! point of Fig. 7 starts from the identical calibration build, and the
//! ablation grid shares its single-core baseline build with every other
//! sweep. The cache deduplicates them: one build per distinct
//! `(benchmark, architecture, BuildOptions)` key, shared behind an
//! [`Arc`] so worker threads can hold the image concurrently.
//!
//! Builds are deterministic, so a cached image is byte-identical to a
//! fresh one — hitting the cache can never change a measurement.
//!
//! **Scope**: RP-CLASS builds also depend on the [`ClassifierParams`],
//! which the key captures as a fingerprint of the trained constants. A
//! cache may therefore be shared across sweeps with different parameter
//! sets, but the common pattern is one cache per sweep with the sweep's
//! single parameter set.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use wbsn_kernels::{Arch, BuildError, BuildOptions, BuiltApp, ClassifierParams};

use crate::experiment::BenchmarkId;

/// One cache key: everything a build depends on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct BuildKey {
    benchmark: BenchmarkId,
    arch: Arch,
    options: BuildOptions,
    /// Fingerprint of the classifier parameters (RP-CLASS builds embed
    /// them as constants; MF/MMD ignore them, but keying uniformly keeps
    /// the map simple and costs one u64 per entry).
    params: u64,
}

/// A concurrency-safe build cache (see the module docs).
#[derive(Debug, Default)]
pub struct BuildCache {
    map: Mutex<HashMap<BuildKey, Arc<BuiltApp>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// Fingerprints the trained constants via FNV-1a over their debug
/// rendering — deterministic across runs (f64 formatting is shortest
/// roundtrip, FNV is keyless), which keeps cache behaviour and the sweep
/// records reproducible.
fn fingerprint(params: &ClassifierParams) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in format!("{params:?}").bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

impl BuildCache {
    /// Creates an empty cache.
    pub fn new() -> BuildCache {
        BuildCache::default()
    }

    /// Returns the cached build for the key, or builds (and caches) it.
    ///
    /// # Errors
    ///
    /// Propagates the builder's [`BuildError`]; failed builds are not
    /// cached.
    pub fn get_or_build(
        &self,
        benchmark: BenchmarkId,
        arch: Arch,
        options: &BuildOptions,
        params: &ClassifierParams,
    ) -> Result<Arc<BuiltApp>, BuildError> {
        let key = BuildKey {
            benchmark,
            arch,
            options: *options,
            params: fingerprint(params),
        };
        if let Some(app) = self.map.lock().unwrap().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(app));
        }
        // Build outside the lock: builds are pure, so two threads racing
        // on the same key at worst build twice and insert the same image.
        self.misses.fetch_add(1, Ordering::Relaxed);
        let app = Arc::new(crate::experiment::build_app(
            benchmark, arch, options, params,
        )?);
        let mut map = self.map.lock().unwrap();
        let entry = map.entry(key).or_insert_with(|| Arc::clone(&app));
        Ok(Arc::clone(entry))
    }

    /// Distinct images currently cached.
    pub fn len(&self) -> usize {
        self.map.lock().unwrap().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups served from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to build.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wbsn_kernels::SyncApproach;

    #[test]
    fn identical_keys_share_one_build() {
        let cache = BuildCache::new();
        let params = ClassifierParams::default_trained();
        let options = BuildOptions::default();
        let a = cache
            .get_or_build(BenchmarkId::Mf, Arch::MultiCore, &options, &params)
            .expect("builds");
        let b = cache
            .get_or_build(BenchmarkId::Mf, Arch::MultiCore, &options, &params)
            .expect("builds");
        assert!(Arc::ptr_eq(&a, &b), "second lookup reuses the image");
        assert_eq!(cache.len(), 1);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn distinct_options_build_distinct_images() {
        let cache = BuildCache::new();
        let params = ClassifierParams::default_trained();
        let base = BuildOptions::default();
        let busy = BuildOptions {
            approach: SyncApproach::BusyWait,
            ..base
        };
        let other_period = BuildOptions {
            adc_period_cycles: base.adc_period_cycles + 1,
            ..base
        };
        for options in [&base, &busy, &other_period] {
            cache
                .get_or_build(BenchmarkId::Mmd, Arch::MultiCore, options, &params)
                .expect("builds");
        }
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.hits(), 0);
    }

    #[test]
    fn classifier_params_are_part_of_the_key() {
        let cache = BuildCache::new();
        let trained = ClassifierParams::default_trained();
        let options = BuildOptions::default();
        cache
            .get_or_build(BenchmarkId::RpClass, Arch::MultiCore, &options, &trained)
            .expect("builds");
        // A second, differently-trained parameter set must not hit the
        // first entry.
        let retrained = ClassifierParams::default_trained();
        cache
            .get_or_build(BenchmarkId::RpClass, Arch::MultiCore, &options, &retrained)
            .expect("builds");
        // Identical training data gives identical params: same key.
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.hits(), 1);
    }
}
