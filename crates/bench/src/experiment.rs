//! The measurement flow behind every reproduced table and figure.
//!
//! For one `(benchmark, variant)` pair the flow mirrors the paper's
//! §V-A optimization ("the system clock frequency is reduced to the
//! minimum in order to exploit the benefits of VFS"):
//!
//! 1. **Calibrate** — run a short slice of the workload at a generous
//!    reference clock and record the worst per-core active cycles within
//!    one sampling period (clock-independent).
//! 2. **Select** — derive the minimum feasible clock (plus a guard
//!    band, clamped to the 1 MHz platform floor) and pick the lowest
//!    voltage whose interconnect-dependent `f_max` covers it.
//! 3. **Measure** — re-run the full observation window with the sampling
//!    period implied by the chosen clock, verify no ADC overruns, and
//!    integrate the run into the Fig. 6 power decomposition.

use std::error::Error;
use std::fmt;
use std::sync::Arc;

use wbsn_dsp::ecg::{synthesize, EcgConfig, EcgRecording};
use wbsn_kernels::{
    build_mf, build_mmd, build_rpclass, Arch, BuildError, BuildOptions, BuiltApp, ClassifierParams,
    SyncApproach,
};
use wbsn_power::{Activity, Interconnect, OperatingPoint, PowerBreakdown, PowerModel, VfsTable};
use wbsn_sim::{ObsConfig, ObsSummary, Platform, SimError, SimStats};

use crate::cache::BuildCache;

/// Which benchmark to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BenchmarkId {
    /// Three-lead morphological filtering.
    Mf,
    /// Three-lead filtering + delineation.
    Mmd,
    /// Heartbeat classification with triggered delineation.
    RpClass,
}

impl BenchmarkId {
    /// All benchmarks, in Table I order.
    pub const ALL: [BenchmarkId; 3] = [BenchmarkId::Mf, BenchmarkId::Mmd, BenchmarkId::RpClass];

    /// The paper's benchmark name.
    pub fn name(self) -> &'static str {
        match self {
            BenchmarkId::Mf => "3L-MF",
            BenchmarkId::Mmd => "3L-MMD",
            BenchmarkId::RpClass => "RP-CLASS",
        }
    }
}

/// Which platform/synchronization configuration to measure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RunVariant {
    /// Single-core baseline.
    SingleCore,
    /// Multi-core with the proposed HW/SW synchronization.
    MultiCoreSync,
    /// Multi-core with active waiting (Fig. 6's "no synch").
    MultiCoreBusyWait,
}

impl RunVariant {
    fn arch(self) -> Arch {
        match self {
            RunVariant::SingleCore => Arch::SingleCore,
            _ => Arch::MultiCore,
        }
    }

    fn approach(self) -> SyncApproach {
        match self {
            RunVariant::MultiCoreBusyWait => SyncApproach::BusyWait,
            _ => SyncApproach::Hardware,
        }
    }

    fn interconnect(self) -> Interconnect {
        match self {
            RunVariant::SingleCore => Interconnect::Decoder,
            _ => Interconnect::Crossbar,
        }
    }

    /// Short display label.
    pub fn label(self) -> &'static str {
        match self {
            RunVariant::SingleCore => "SC",
            RunVariant::MultiCoreSync => "MC",
            RunVariant::MultiCoreBusyWait => "MC (no synch)",
        }
    }
}

/// Experiment-wide knobs.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Observation window in simulated seconds (the paper uses 60 s).
    pub duration_s: f64,
    /// ECG sampling rate in Hz.
    pub fs: u32,
    /// Fraction of pathological beats (RP-CLASS input).
    pub pathological_fraction: f64,
    /// Guard band on the minimum-clock selection.
    pub guard: f64,
    /// Calibration slice length in seconds.
    pub calibration_s: f64,
    /// Disable crossbar broadcasting (ablation).
    pub disable_broadcast: bool,
    /// Disable the lock-step branch-recovery barrier (ablation).
    pub disable_lockstep: bool,
    /// Use the preloaded auto-reload barrier extension instead of the
    /// paper's SINC/SDEC protocol.
    pub preloaded_barrier: bool,
    /// Force the multi-core run onto the baseline's operating point
    /// (isolates the VFS contribution — ablation for Fig. 7's
    /// discussion).
    pub disable_vfs: bool,
    /// Run the load-latency-aware scheduler over every kernel (the
    /// software fix for the load-use stall bucket).
    pub schedule: bool,
    /// Model a memory→execute bypass in the pipeline (the hardware fix
    /// for the load-use stall bucket).
    pub forwarding: bool,
    /// Input seed.
    pub seed: u64,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            duration_s: 60.0,
            // The paper's CSE inputs are multi-lead recordings sampled at
            // 500 Hz.
            fs: 500,
            pathological_fraction: 0.2,
            guard: 0.10,
            calibration_s: 6.0,
            disable_broadcast: false,
            disable_lockstep: false,
            preloaded_barrier: false,
            disable_vfs: false,
            schedule: false,
            forwarding: false,
            seed: 0xEC60,
        }
    }
}

/// Everything measured for one `(benchmark, variant)` configuration.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// The benchmark.
    pub benchmark: BenchmarkId,
    /// The configuration.
    pub variant: RunVariant,
    /// Cores participating.
    pub active_cores: usize,
    /// Instruction banks holding code.
    pub active_im_banks: usize,
    /// Data banks that stay powered.
    pub active_dm_banks: usize,
    /// Fetch requests served by broadcast, percent.
    pub im_broadcast_percent: f64,
    /// Data reads served by broadcast, percent.
    pub dm_broadcast_percent: f64,
    /// Chosen clock in Hz.
    pub clock_hz: f64,
    /// Chosen supply voltage.
    pub voltage: f64,
    /// Static code overhead of the synchronization ISE, percent.
    pub code_overhead_percent: f64,
    /// Run-time share of synchronization instructions, percent.
    pub runtime_overhead_percent: f64,
    /// The Fig. 6 power decomposition.
    pub breakdown: PowerBreakdown,
    /// Raw statistics of the measurement run.
    pub stats: SimStats,
    /// Latency/stall digest of the measurement run (sleep and sync-gap
    /// percentiles, per-cause stall totals).
    pub obs: Option<ObsSummary>,
    /// The powered-instance counts used by the power model.
    pub activity: Activity,
    /// The selected operating point.
    pub op: OperatingPoint,
    /// The platform configuration of the measurement run.
    pub platform_config: wbsn_sim::PlatformConfig,
}

impl Measurement {
    /// Total average power in µW.
    pub fn power_uw(&self) -> f64 {
        self.breakdown.total_uw()
    }

    /// Re-integrates this run's statistics under a different energy
    /// characterization — the sensitivity-analysis hook: the simulation
    /// is reused, only the per-event energies change.
    pub fn power_with(&self, model: &PowerModel) -> PowerBreakdown {
        model.average_power(
            &self.stats,
            &self.platform_config,
            self.activity,
            self.op,
            self.clock_hz,
        )
    }
}

/// Errors of the measurement flow.
#[derive(Debug)]
pub enum MeasureError {
    /// The application failed to build.
    Build(BuildError),
    /// The simulator faulted.
    Sim(SimError),
    /// No operating point satisfies the required clock.
    Infeasible {
        /// The clock that could not be met.
        required_hz: f64,
    },
    /// Real-time violations persisted after retries.
    Overruns {
        /// Overruns observed in the last attempt.
        overruns: u64,
    },
}

impl fmt::Display for MeasureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MeasureError::Build(e) => write!(f, "build failed: {e}"),
            MeasureError::Sim(e) => write!(f, "simulation failed: {e}"),
            MeasureError::Infeasible { required_hz } => {
                write!(f, "no operating point reaches {required_hz:.0} Hz")
            }
            MeasureError::Overruns { overruns } => {
                write!(f, "{overruns} ADC overruns at the selected clock")
            }
        }
    }
}

impl Error for MeasureError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            MeasureError::Build(e) => Some(e),
            MeasureError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<BuildError> for MeasureError {
    fn from(e: BuildError) -> Self {
        MeasureError::Build(e)
    }
}

impl From<SimError> for MeasureError {
    fn from(e: SimError) -> Self {
        MeasureError::Sim(e)
    }
}

fn barrier_style(config: &ExperimentConfig) -> wbsn_kernels::app::BarrierStyle {
    if config.preloaded_barrier {
        wbsn_kernels::app::BarrierStyle::Preloaded
    } else {
        wbsn_kernels::app::BarrierStyle::SincSdec
    }
}

fn recording(config: &ExperimentConfig, seconds: f64) -> EcgRecording {
    synthesize(&EcgConfig {
        fs: config.fs,
        duration_s: seconds,
        pathological_fraction: config.pathological_fraction,
        seed: config.seed,
        ..EcgConfig::healthy_60s()
    })
}

/// Builds one benchmark for one architecture — the single entry point
/// the [`BuildCache`](crate::cache::BuildCache) deduplicates.
pub(crate) fn build_app(
    benchmark: BenchmarkId,
    arch: Arch,
    options: &BuildOptions,
    params: &ClassifierParams,
) -> Result<BuiltApp, BuildError> {
    match benchmark {
        BenchmarkId::Mf => build_mf(arch, options),
        BenchmarkId::Mmd => build_mmd(arch, options),
        BenchmarkId::RpClass => build_rpclass(arch, options, params),
    }
}

fn run_window(
    app: &BuiltApp,
    leads: Vec<Vec<i16>>,
    period: u64,
    forwarding: bool,
) -> Result<Platform, SimError> {
    let samples = leads[0].len() as u64;
    let total = app.config.adc.start_cycle + samples * period;
    let mut platform = app.platform(leads)?;
    // Forwarding is a platform property, not a build property: setting
    // it here keeps the build-cache keys clean (the image is identical
    // with and without the bypass).
    platform.set_forwarding(forwarding);
    // The counting sink is cheap enough to leave on for every cell; its
    // histograms become the per-cell latency digest of the sweep record.
    platform.enable_obs(ObsConfig::counting_only());
    platform.run(total)?;
    platform.idle_until(total);
    platform.finish_obs();
    Ok(platform)
}

/// The latency/stall digest of a finished measurement window.
fn obs_summary(platform: &Platform) -> Option<ObsSummary> {
    platform
        .obs()
        .recorder()
        .and_then(|r| r.counting())
        .map(|c| c.summary())
}

/// Measures one `(benchmark, variant)` configuration.
///
/// # Errors
///
/// Returns a [`MeasureError`] when the application cannot be built, the
/// simulator faults, or no operating point meets the real-time
/// requirement.
pub fn measure(
    benchmark: BenchmarkId,
    variant: RunVariant,
    config: &ExperimentConfig,
    params: &ClassifierParams,
) -> Result<Measurement, MeasureError> {
    measure_cached(benchmark, variant, config, params, &BuildCache::new())
}

/// [`measure`] with a shared [`BuildCache`]: sweep grids route every
/// cell through one cache so repeated `(benchmark, arch, options)`
/// builds are linked once (see the cache module docs for why this can
/// never change a measurement).
///
/// # Errors
///
/// Same conditions as [`measure`].
pub fn measure_cached(
    benchmark: BenchmarkId,
    variant: RunVariant,
    config: &ExperimentConfig,
    params: &ClassifierParams,
    cache: &BuildCache,
) -> Result<Measurement, MeasureError> {
    let vfs = VfsTable::ninety_nm_low_leakage();
    let model = PowerModel::default();
    let interconnect = variant.interconnect();

    // 1. Seed the search with the average per-sample demand (measured at
    // a generous reference clock where real time trivially holds).
    let calib_period = 20_000u64;
    let options = BuildOptions {
        approach: variant.approach(),
        broadcast: !config.disable_broadcast,
        lockstep: !config.disable_lockstep,
        barrier: barrier_style(config),
        schedule: config.schedule,
        adc_period_cycles: calib_period,
    };
    let app = cache.get_or_build(benchmark, variant.arch(), &options, params)?;
    let calib = recording(config, config.calibration_s.min(config.duration_s));
    let platform = run_window(&app, calib.leads.clone(), calib_period, config.forwarding)?;
    let stats = platform.stats();
    let samples = stats.adc_samples.max(1) as f64;
    let avg_window = stats
        .cores
        .iter()
        .map(|c| c.active_cycles as f64 / samples)
        .fold(0.0f64, f64::max);
    // Busy-wait cores spin between samples, so their active cycles say
    // nothing about the clock requirement; start those searches from the
    // platform's clock floor.
    let mut required_hz = if variant.approach() == SyncApproach::BusyWait {
        vfs.min_clock_hz
    } else {
        vfs.clamp_clock(avg_window * config.fs as f64 * (1.0 + config.guard))
    };

    // 2. Feasibility search: the minimum clock is the lowest at which a
    // calibration slice shows no ADC overruns — the paper's "meeting
    // real-time constraints" criterion (work may pipeline across
    // sampling periods thanks to the data registers and buffering, so
    // worst-window heuristics alone are too conservative).
    let mut feasible_run: Option<(u64, Arc<BuiltApp>, Platform)> = None;
    for _ in 0..24 {
        let period = (required_hz / config.fs as f64).round() as u64;
        let options = BuildOptions {
            approach: variant.approach(),
            broadcast: !config.disable_broadcast,
            lockstep: !config.disable_lockstep,
            barrier: barrier_style(config),
            schedule: config.schedule,
            adc_period_cycles: period,
        };
        let app = cache.get_or_build(benchmark, variant.arch(), &options, params)?;
        let platform = run_window(&app, calib.leads.clone(), period, config.forwarding)?;
        if platform.adc_overruns() == 0 {
            feasible_run = Some((period, app, platform));
            break;
        }
        required_hz *= 1.15;
    }

    // 3. Measurement runs; bump the clock on residual overruns (the
    // calibration slice may have missed the worst window).
    let full = recording(config, config.duration_s);
    // When the observation window fits inside the calibration slice the
    // recordings are identical, so the successful feasibility run IS the
    // measurement run (the simulator is deterministic): reuse it instead
    // of stepping the same window twice.
    let mut cached = match feasible_run {
        Some(run) if calib.leads == full.leads => Some(run),
        _ => None,
    };
    for _attempt in 0..6 {
        let op: OperatingPoint = vfs
            .min_point_for(required_hz, interconnect)
            .ok_or(MeasureError::Infeasible { required_hz })?;
        let period = (required_hz / config.fs as f64).round() as u64;
        let (app, platform) = match cached.take() {
            Some((p, app, platform)) if p == period => (app, platform),
            _ => {
                let options = BuildOptions {
                    approach: variant.approach(),
                    broadcast: !config.disable_broadcast,
                    lockstep: !config.disable_lockstep,
                    barrier: barrier_style(config),
                    schedule: config.schedule,
                    adc_period_cycles: period,
                };
                let app = cache.get_or_build(benchmark, variant.arch(), &options, params)?;
                let platform = run_window(&app, full.leads.clone(), period, config.forwarding)?;
                (app, platform)
            }
        };
        if platform.adc_overruns() > 0 {
            required_hz *= 1.15;
            continue;
        }
        let stats = platform.stats().clone();
        let activity = Activity::derive(&stats, &app.config, app.active_im_banks());
        let breakdown = model.average_power(&stats, &app.config, activity, op, required_hz);
        return Ok(Measurement {
            benchmark,
            variant,
            active_cores: app.active_cores,
            active_im_banks: app.active_im_banks(),
            active_dm_banks: activity.dm_banks_powered,
            im_broadcast_percent: stats.im.broadcast_percent(),
            dm_broadcast_percent: stats.dm.broadcast_percent(),
            clock_hz: required_hz,
            voltage: op.voltage,
            code_overhead_percent: app.code_overhead_percent(),
            runtime_overhead_percent: stats.runtime_overhead_percent(),
            breakdown,
            stats,
            obs: obs_summary(&platform),
            activity,
            op,
            platform_config: app.config.clone(),
        });
    }
    Err(MeasureError::Overruns { overruns: u64::MAX })
}

/// Measures a multi-core configuration pinned to a given clock (the
/// `--no-vfs` ablation: same workload, baseline operating point).
///
/// # Errors
///
/// Same conditions as [`measure`].
pub fn measure_at_clock(
    benchmark: BenchmarkId,
    variant: RunVariant,
    config: &ExperimentConfig,
    params: &ClassifierParams,
    clock_hz: f64,
) -> Result<Measurement, MeasureError> {
    measure_at_clock_cached(
        benchmark,
        variant,
        config,
        params,
        clock_hz,
        &BuildCache::new(),
    )
}

/// [`measure_at_clock`] with a shared [`BuildCache`] (the sweep-grid
/// entry point, like [`measure_cached`]).
///
/// # Errors
///
/// Same conditions as [`measure`].
pub fn measure_at_clock_cached(
    benchmark: BenchmarkId,
    variant: RunVariant,
    config: &ExperimentConfig,
    params: &ClassifierParams,
    clock_hz: f64,
    cache: &BuildCache,
) -> Result<Measurement, MeasureError> {
    let vfs = VfsTable::ninety_nm_low_leakage();
    let model = PowerModel::default();
    let op =
        vfs.min_point_for(clock_hz, variant.interconnect())
            .ok_or(MeasureError::Infeasible {
                required_hz: clock_hz,
            })?;
    let period = (clock_hz / config.fs as f64).round() as u64;
    let options = BuildOptions {
        approach: variant.approach(),
        broadcast: !config.disable_broadcast,
        lockstep: !config.disable_lockstep,
        barrier: barrier_style(config),
        schedule: config.schedule,
        adc_period_cycles: period,
    };
    let app = cache.get_or_build(benchmark, variant.arch(), &options, params)?;
    let full = recording(config, config.duration_s);
    let platform = run_window(&app, full.leads.clone(), period, config.forwarding)?;
    if platform.adc_overruns() > 0 {
        return Err(MeasureError::Overruns {
            overruns: platform.adc_overruns(),
        });
    }
    let stats = platform.stats().clone();
    let activity = Activity::derive(&stats, &app.config, app.active_im_banks());
    let breakdown = model.average_power(&stats, &app.config, activity, op, clock_hz);
    Ok(Measurement {
        benchmark,
        variant,
        active_cores: app.active_cores,
        active_im_banks: app.active_im_banks(),
        active_dm_banks: activity.dm_banks_powered,
        im_broadcast_percent: stats.im.broadcast_percent(),
        dm_broadcast_percent: stats.dm.broadcast_percent(),
        clock_hz,
        voltage: op.voltage,
        code_overhead_percent: app.code_overhead_percent(),
        runtime_overhead_percent: stats.runtime_overhead_percent(),
        breakdown,
        stats,
        obs: obs_summary(&platform),
        activity,
        op,
        platform_config: app.config.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> ExperimentConfig {
        ExperimentConfig {
            duration_s: 3.0,
            calibration_s: 2.0,
            ..ExperimentConfig::default()
        }
    }

    #[test]
    fn mf_sc_vs_mc_shows_the_paper_shape() {
        let params = ClassifierParams::default_trained();
        let config = quick_config();
        let sc = measure(BenchmarkId::Mf, RunVariant::SingleCore, &config, &params).unwrap();
        let mc = measure(BenchmarkId::Mf, RunVariant::MultiCoreSync, &config, &params).unwrap();
        // VFS: the multi-core platform runs slower and at lower voltage.
        assert!(mc.clock_hz < sc.clock_hz);
        assert!(mc.voltage < sc.voltage);
        // And saves power overall.
        assert!(
            mc.power_uw() < sc.power_uw(),
            "MC {:.1} µW vs SC {:.1} µW",
            mc.power_uw(),
            sc.power_uw()
        );
        // Broadcasting only exists on the multi-core platform.
        assert_eq!(sc.im_broadcast_percent, 0.0);
        assert!(mc.im_broadcast_percent > 10.0);
        // Table I structure: SC powers fewer DM banks.
        assert_eq!(mc.active_dm_banks, 16);
        assert!(sc.active_dm_banks < 16);
        // Overheads are small.
        assert!(mc.code_overhead_percent < 10.0);
        assert!(mc.runtime_overhead_percent < 10.0);
        // The counting sink rode along: the multi-core run observed
        // real sleeps and its percentiles are ordered.
        let obs = mc.obs.expect("measurement carries the latency digest");
        assert!(obs.sleep_count > 0, "{obs:?}");
        assert!(obs.sleep_p99_cycles >= obs.sleep_p50_cycles, "{obs:?}");
        assert!(
            obs.sync_gap_p99_cycles >= obs.sync_gap_p50_cycles,
            "{obs:?}"
        );
    }
}
