//! Determinism of the parallel sweep engine: the worker count is a
//! throughput knob, never a results knob.
//!
//! One grid is swept serially (1 worker) and with 2 and 4 workers; the
//! sweep records must be byte-identical once the wall-clock keys (the
//! only non-deterministic content, all marked with `wall`) are
//! stripped, and the outcome order must equal the submission order in
//! every case.

use wbsn_bench::{run_sweep, BenchmarkId, ExperimentConfig, RunVariant, SweepCell, SweepOptions};
use wbsn_kernels::ClassifierParams;

fn grid() -> Vec<SweepCell> {
    let config = ExperimentConfig {
        duration_s: 1.2,
        calibration_s: 1.0,
        ..ExperimentConfig::default()
    };
    vec![
        SweepCell::new(BenchmarkId::Mf, RunVariant::SingleCore, config.clone()),
        SweepCell::new(BenchmarkId::Mf, RunVariant::MultiCoreSync, config.clone()),
        SweepCell::new(BenchmarkId::Mmd, RunVariant::SingleCore, config.clone()),
        SweepCell::new(BenchmarkId::Mmd, RunVariant::MultiCoreSync, config),
    ]
}

/// The deterministic view of a sweep record: every line whose key
/// carries a wall-clock marker dropped.
fn stable_view(json: &str) -> String {
    json.lines()
        .filter(|line| !line.contains("wall"))
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn worker_count_never_changes_results_or_order() {
    let params = ClassifierParams::default_trained();
    let cells = grid();
    let expected_order: Vec<(BenchmarkId, RunVariant)> =
        cells.iter().map(|c| (c.benchmark, c.variant)).collect();

    let mut views: Vec<String> = Vec::new();
    for workers in [1, 2, 4] {
        let report = run_sweep(
            cells.clone(),
            &params,
            &SweepOptions {
                workers: Some(workers),
            },
        );
        // Outcomes land in submission order whatever the worker count.
        let order: Vec<(BenchmarkId, RunVariant)> = report
            .outcomes
            .iter()
            .map(|o| (o.cell.benchmark, o.cell.variant))
            .collect();
        assert_eq!(order, expected_order, "{workers} workers reordered cells");
        for outcome in &report.outcomes {
            assert!(
                outcome.result.is_ok(),
                "{workers} workers: {} {} failed: {:?}",
                outcome.cell.benchmark.name(),
                outcome.cell.variant.label(),
                outcome.result
            );
        }
        views.push(stable_view(&report.to_json()));
    }

    assert_eq!(
        views[0], views[1],
        "serial and 2-worker records diverge beyond wall-clock keys"
    );
    assert_eq!(
        views[0], views[2],
        "serial and 4-worker records diverge beyond wall-clock keys"
    );
    // The stable view still carries the actual measurements.
    assert!(views[0].contains("\"power_uw\""));
    assert!(views[0].contains("\"simulated_cycles\""));
}

#[test]
fn sweep_record_strips_to_a_stable_view() {
    // The markers the stable view relies on: every non-deterministic key
    // carries `wall`, and deterministic keys never do.
    let params = ClassifierParams::default_trained();
    let report = run_sweep(
        vec![grid().remove(0)],
        &params,
        &SweepOptions { workers: Some(1) },
    );
    let json = report.to_json();
    assert!(json.contains("\"wall_s\""));
    assert!(json.contains("\"simulated_cycles_per_wall_s\""));
    let stable = stable_view(&json);
    assert!(!stable.contains("wall"));
    assert!(stable.contains("\"clock_hz\""));
}
