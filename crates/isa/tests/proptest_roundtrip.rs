//! Property tests: encoding, decoding, printing and re-assembling are
//! mutually inverse wherever they are defined.

use proptest::prelude::*;
use wbsn_isa::{asm, AluImmOp, AluOp, BranchCond, Instr, Reg, SyncKind};

fn any_reg() -> impl Strategy<Value = Reg> {
    (0usize..8).prop_map(|i| Reg::from_index(i).expect("index in range"))
}

fn any_instr() -> impl Strategy<Value = Instr> {
    let alu =
        (0usize..AluOp::ALL.len(), any_reg(), any_reg(), any_reg()).prop_map(|(op, rd, ra, rb)| {
            Instr::Alu {
                op: AluOp::ALL[op],
                rd,
                ra,
                rb,
            }
        });
    let alui = (
        0usize..AluImmOp::ALL.len(),
        any_reg(),
        any_reg(),
        -2048i16..=2047,
    )
        .prop_map(|(op, rd, ra, imm)| {
            let op = AluImmOp::ALL[op];
            let imm = if op.is_shift() {
                imm.rem_euclid(16)
            } else if op == AluImmOp::Addi {
                imm
            } else {
                imm.rem_euclid(4096)
            };
            Instr::AluImm { op, rd, ra, imm }
        });
    let branch = (0usize..6, any_reg(), any_reg(), -2048i16..=2047).prop_map(|(c, ra, rb, off)| {
        Instr::Branch {
            cond: BranchCond::ALL[c],
            ra,
            rb,
            off,
        }
    });
    let sync = (
        prop_oneof![
            Just(SyncKind::Inc),
            Just(SyncKind::Dec),
            Just(SyncKind::Nop)
        ],
        0u16..4096,
    )
        .prop_map(|(kind, point)| Instr::Sync { kind, point });
    prop_oneof![
        Just(Instr::Nop),
        Just(Instr::Halt),
        Just(Instr::Sleep),
        sync,
        alu,
        alui,
        (any_reg(), any_reg()).prop_map(|(rd, ra)| Instr::Mov { rd, ra }),
        (any_reg(), any_reg()).prop_map(|(rd, ra)| Instr::Abs { rd, ra }),
        (any_reg(), -16384i16..=16383).prop_map(|(rd, imm)| Instr::Li { rd, imm }),
        (any_reg(), any::<u8>()).prop_map(|(rd, imm)| Instr::Lui { rd, imm }),
        (any_reg(), any_reg(), -2048i16..=2047).prop_map(|(rd, ra, off)| Instr::Lw { rd, ra, off }),
        (any_reg(), any_reg(), -2048i16..=2047).prop_map(|(rs, ra, off)| Instr::Sw { rs, ra, off }),
        branch,
        (-131072i32..=131071).prop_map(|off| Instr::Jmp { off }),
        (any_reg(), -16384i16..=16383).prop_map(|(rd, off)| Instr::Jal { rd, off }),
        any_reg().prop_map(|ra| Instr::Jr { ra }),
    ]
}

proptest! {
    /// encode → decode is the identity for every well-formed instruction.
    #[test]
    fn encode_decode_round_trip(instr in any_instr()) {
        let word = instr.encode().expect("generated instruction is encodable");
        prop_assert!(word < (1 << 24));
        prop_assert_eq!(Instr::decode(word).expect("valid word decodes"), instr);
    }

    /// Display → text assembler reproduces the instruction, except for
    /// pseudo-target instructions the assembler spells differently.
    #[test]
    fn display_assemble_round_trip(instr in any_instr()) {
        let text = instr.to_string();
        let program = asm::assemble_text(&text).expect("printed form assembles");
        prop_assert_eq!(program.instrs(), &[instr]);
    }

    /// decode never panics on arbitrary 24-bit words; when it succeeds the
    /// result re-encodes to the same word.
    #[test]
    fn decode_total_and_faithful(word in 0u32..(1 << 24)) {
        if let Ok(instr) = Instr::decode(word) {
            let back = instr.encode().expect("decoded instruction re-encodes");
            // Unused bits are zero in canonical encodings; decode only
            // accepts canonical opcodes but may ignore don't-care fields.
            let canonical = Instr::decode(back).expect("canonical word decodes");
            prop_assert_eq!(canonical, instr);
        }
    }
}
