//! Linker: places code sections into instruction-memory banks.
//!
//! The paper's mapping step requires that "binary code of the different
//! phases is placed in different IM banks in order to avoid access
//! conflicts and benefit from broadcasting". The [`Linker`] consumes
//! assembled [`Program`] sections together with optional bank assignments
//! (the *building directives* of the tool-chain) and produces a
//! [`LinkedImage`]: a full instruction-memory image, per-core entry
//! points, the set of instruction banks that must stay powered, and the
//! initial data-memory contents.

use std::collections::BTreeMap;

use crate::error::{DecodeError, LinkError};
use crate::instr::Instr;
use crate::mem::{DM_WORDS, IM_BANKS, IM_BANK_WORDS, IM_WORDS};
use crate::program::Program;

/// A named code section to be placed into the instruction memory.
#[derive(Debug, Clone)]
pub struct Section {
    /// Section name, unique within one link.
    pub name: String,
    /// The assembled program body.
    pub program: Program,
    /// Bank this section must live in; `None` lets the linker choose
    /// (first-fit from bank 0, which is what the single-core baseline
    /// uses to minimise the number of powered banks).
    pub bank: Option<usize>,
}

impl Section {
    /// Creates a section with automatic bank placement.
    pub fn new(name: impl Into<String>, program: Program) -> Section {
        Section {
            name: name.into(),
            program,
            bank: None,
        }
    }

    /// Creates a section pinned to a specific instruction-memory bank.
    pub fn in_bank(name: impl Into<String>, program: Program, bank: usize) -> Section {
        Section {
            name: name.into(),
            program,
            bank: Some(bank),
        }
    }
}

/// A contiguous block of initial data-memory contents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataSegment {
    /// First word address of the segment in the core-visible address space.
    pub base: u32,
    /// The 16-bit words to preload.
    pub words: Vec<u16>,
}

impl DataSegment {
    /// Creates a data segment at `base`.
    pub fn new(base: u32, words: Vec<u16>) -> DataSegment {
        DataSegment { base, words }
    }
}

/// Collects sections, data segments and entry points, then links them.
///
/// # Example
///
/// ```
/// use wbsn_isa::{Instr, Linker, Program, Section};
///
/// # fn main() -> Result<(), wbsn_isa::IsaError> {
/// let main = Program::from_instrs(vec![Instr::Nop, Instr::Halt]);
/// let mut linker = Linker::new();
/// linker.add_section(Section::in_bank("main", main, 2));
/// linker.set_entry(0, "main");
/// let image = linker.link()?;
/// assert_eq!(image.entry(0), Some(2 * 4096));
/// assert_eq!(image.active_im_banks(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct Linker {
    sections: Vec<Section>,
    data: Vec<DataSegment>,
    entries: BTreeMap<usize, String>,
}

impl Linker {
    /// Creates an empty linker.
    pub fn new() -> Linker {
        Linker::default()
    }

    /// Adds a code section.
    pub fn add_section(&mut self, section: Section) -> &mut Self {
        self.sections.push(section);
        self
    }

    /// Adds an initial data-memory segment.
    pub fn add_data(&mut self, segment: DataSegment) -> &mut Self {
        self.data.push(segment);
        self
    }

    /// Declares that `core` starts executing at the first instruction of
    /// the named section.
    pub fn set_entry(&mut self, core: usize, section: impl Into<String>) -> &mut Self {
        self.entries.insert(core, section.into());
        self
    }

    /// Performs placement and produces the final image.
    ///
    /// # Errors
    ///
    /// Returns a [`LinkError`] for duplicate section names, bank indices
    /// outside the geometry, bank overflow, out-of-range or overlapping
    /// data segments, and entries naming unknown sections.
    pub fn link(&self) -> Result<LinkedImage, LinkError> {
        let mut bank_fill = [0usize; IM_BANKS];
        let mut placed: BTreeMap<String, (u32, usize)> = BTreeMap::new();
        let mut im = vec![0u32; IM_WORDS];
        let mut code_words = 0usize;
        let mut sync_words = 0usize;

        // Pinned sections first so auto placement cannot steal their space.
        let (pinned, auto): (Vec<_>, Vec<_>) = self.sections.iter().partition(|s| s.bank.is_some());
        for section in pinned.into_iter().chain(auto) {
            if placed.contains_key(&section.name) {
                return Err(LinkError::DuplicateSection(section.name.clone()));
            }
            let len = section.program.len();
            let bank = match section.bank {
                Some(bank) => {
                    if bank >= IM_BANKS {
                        return Err(LinkError::BankOutOfRange {
                            section: section.name.clone(),
                            bank,
                            banks: IM_BANKS,
                        });
                    }
                    if bank_fill[bank] + len > IM_BANK_WORDS {
                        return Err(LinkError::BankOverflow {
                            section: section.name.clone(),
                            bank,
                            excess: bank_fill[bank] + len - IM_BANK_WORDS,
                        });
                    }
                    bank
                }
                None => {
                    let candidate = bank_fill
                        .iter()
                        .position(|&fill| fill + len <= IM_BANK_WORDS);
                    match candidate {
                        Some(bank) => bank,
                        None => {
                            return Err(LinkError::BankOverflow {
                                section: section.name.clone(),
                                bank: IM_BANKS - 1,
                                excess: len,
                            })
                        }
                    }
                }
            };
            let base = (bank * IM_BANK_WORDS + bank_fill[bank]) as u32;
            for (i, instr) in section.program.instrs().iter().enumerate() {
                // Programs validated their encodings at assembly time, so
                // an encode failure here is a programming error.
                im[base as usize + i] = instr
                    .encode()
                    .expect("assembled program contains encodable instructions");
                if instr.is_sync_ise() {
                    sync_words += 1;
                }
            }
            bank_fill[bank] += len;
            code_words += len;
            placed.insert(section.name.clone(), (base, len));
        }

        let mut entries = BTreeMap::new();
        for (&core, name) in &self.entries {
            let (base, _) = placed
                .get(name)
                .ok_or_else(|| LinkError::UnknownEntrySection {
                    core,
                    section: name.clone(),
                })?;
            entries.insert(core, *base);
        }

        // Merge and validate data segments.
        let mut dm_init: BTreeMap<u32, u16> = BTreeMap::new();
        for seg in &self.data {
            let end = seg.base as usize + seg.words.len();
            if end > DM_WORDS {
                return Err(LinkError::DataOutOfRange {
                    base: seg.base,
                    len: seg.words.len(),
                });
            }
            for (i, &w) in seg.words.iter().enumerate() {
                let addr = seg.base + i as u32;
                if dm_init.insert(addr, w).is_some() {
                    return Err(LinkError::DataOverlap { addr });
                }
            }
        }

        let active_banks: Vec<bool> = bank_fill.iter().map(|&f| f > 0).collect();
        let sections = placed
            .into_iter()
            .map(|(name, (base, len))| PlacedSection { name, base, len })
            .collect();

        Ok(LinkedImage {
            im,
            entries,
            active_banks,
            sections,
            code_words,
            sync_words,
            dm_init,
        })
    }
}

/// A section after placement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlacedSection {
    /// Section name.
    pub name: String,
    /// First instruction-memory address of the section.
    pub base: u32,
    /// Length in instruction words.
    pub len: usize,
}

/// The output of a successful link: a full instruction-memory image plus
/// the metadata the platform loader needs.
#[derive(Debug, Clone)]
pub struct LinkedImage {
    im: Vec<u32>,
    entries: BTreeMap<usize, u32>,
    active_banks: Vec<bool>,
    sections: Vec<PlacedSection>,
    code_words: usize,
    sync_words: usize,
    dm_init: BTreeMap<u32, u16>,
}

impl LinkedImage {
    /// The full instruction-memory image (one 24-bit word per address).
    pub fn im_words(&self) -> &[u32] {
        &self.im
    }

    /// The instruction word at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is outside the instruction memory.
    pub fn instr_word(&self, addr: u32) -> u32 {
        self.im[addr as usize]
    }

    /// Entry address for `core`, if one was declared.
    pub fn entry(&self, core: usize) -> Option<u32> {
        self.entries.get(&core).copied()
    }

    /// Core → entry-address pairs in core order.
    pub fn entries(&self) -> impl Iterator<Item = (usize, u32)> + '_ {
        self.entries.iter().map(|(&c, &a)| (c, a))
    }

    /// Which instruction banks contain code (must stay powered).
    pub fn bank_usage(&self) -> &[bool] {
        &self.active_banks
    }

    /// Number of instruction banks containing code — Table I's
    /// "Active IM banks".
    pub fn active_im_banks(&self) -> usize {
        self.active_banks.iter().filter(|&&b| b).count()
    }

    /// Placed sections with their final addresses.
    pub fn sections(&self) -> &[PlacedSection] {
        &self.sections
    }

    /// Total placed code size in instruction words.
    pub fn code_words(&self) -> usize {
        self.code_words
    }

    /// Number of placed synchronization-ISE instructions.
    pub fn sync_words(&self) -> usize {
        self.sync_words
    }

    /// Static code overhead of the synchronization ISE, in percent —
    /// Table I's "Code Overhead (%)".
    pub fn code_overhead_percent(&self) -> f64 {
        if self.code_words == 0 {
            0.0
        } else {
            100.0 * self.sync_words as f64 / self.code_words as f64
        }
    }

    /// Initial data-memory contents as `(address, word)` pairs.
    pub fn dm_init(&self) -> impl Iterator<Item = (u32, u16)> + '_ {
        self.dm_init.iter().map(|(&a, &w)| (a, w))
    }

    /// Decodes the instruction at `addr`, if it is a valid encoding.
    pub fn decode_at(&self, addr: u32) -> Option<Instr> {
        Instr::decode(self.instr_word(addr)).ok()
    }

    /// Reconstructs a placed section as a [`Program`] by decoding its
    /// instruction words — the image-walking primitive behind the
    /// static sync-protocol verifier.
    ///
    /// # Errors
    ///
    /// Returns the first invalid encoding (which would also fault at
    /// fetch time on the platform).
    pub fn section_program(&self, section: &PlacedSection) -> Result<Program, DecodeError> {
        let instrs = (0..section.len)
            .map(|offset| Instr::decode(self.instr_word(section.base + offset as u32)))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Program::from_instrs(instrs))
    }

    /// The cores whose entry point starts `section`.
    pub fn cores_entering(&self, section: &PlacedSection) -> Vec<usize> {
        self.entries
            .iter()
            .filter(|(_, &addr)| addr == section.base)
            .map(|(&core, _)| core)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::Instr;
    use crate::reg::Reg;

    fn prog(n: usize) -> Program {
        Program::from_instrs(vec![Instr::Nop; n])
    }

    #[test]
    fn pinned_sections_land_in_their_banks() {
        let mut l = Linker::new();
        l.add_section(Section::in_bank("a", prog(4), 3));
        l.add_section(Section::in_bank("b", prog(2), 3));
        let image = l.link().unwrap();
        let a = image.sections().iter().find(|s| s.name == "a").unwrap();
        let b = image.sections().iter().find(|s| s.name == "b").unwrap();
        assert_eq!(a.base, 3 * IM_BANK_WORDS as u32);
        assert_eq!(b.base, a.base + 4);
        assert_eq!(image.active_im_banks(), 1);
    }

    #[test]
    fn auto_sections_first_fit_from_bank_zero() {
        let mut l = Linker::new();
        l.add_section(Section::new("a", prog(IM_BANK_WORDS)));
        l.add_section(Section::new("b", prog(10)));
        let image = l.link().unwrap();
        let b = image.sections().iter().find(|s| s.name == "b").unwrap();
        assert_eq!(b.base, IM_BANK_WORDS as u32);
        assert_eq!(image.active_im_banks(), 2);
    }

    #[test]
    fn pinned_before_auto() {
        let mut l = Linker::new();
        l.add_section(Section::new("auto", prog(8)));
        l.add_section(Section::in_bank("pin", prog(8), 0));
        let image = l.link().unwrap();
        let pin = image.sections().iter().find(|s| s.name == "pin").unwrap();
        let auto = image.sections().iter().find(|s| s.name == "auto").unwrap();
        assert_eq!(pin.base, 0);
        assert_eq!(auto.base, 8);
    }

    #[test]
    fn entries_resolve_to_section_bases() {
        let mut l = Linker::new();
        l.add_section(Section::in_bank("main", prog(3), 1));
        l.set_entry(0, "main");
        let image = l.link().unwrap();
        assert_eq!(image.entry(0), Some(IM_BANK_WORDS as u32));
        assert_eq!(image.entry(1), None);
    }

    #[test]
    fn unknown_entry_is_an_error() {
        let mut l = Linker::new();
        l.set_entry(0, "missing");
        assert!(matches!(
            l.link(),
            Err(LinkError::UnknownEntrySection { .. })
        ));
    }

    #[test]
    fn bank_overflow_detected() {
        let mut l = Linker::new();
        l.add_section(Section::in_bank("big", prog(IM_BANK_WORDS + 1), 0));
        assert!(matches!(l.link(), Err(LinkError::BankOverflow { .. })));
    }

    #[test]
    fn bank_out_of_range_detected() {
        let mut l = Linker::new();
        l.add_section(Section::in_bank("x", prog(1), IM_BANKS));
        assert!(matches!(l.link(), Err(LinkError::BankOutOfRange { .. })));
    }

    #[test]
    fn duplicate_sections_rejected() {
        let mut l = Linker::new();
        l.add_section(Section::new("x", prog(1)));
        l.add_section(Section::new("x", prog(1)));
        assert!(matches!(l.link(), Err(LinkError::DuplicateSection(_))));
    }

    #[test]
    fn data_segments_merge_and_validate() {
        let mut l = Linker::new();
        l.add_data(DataSegment::new(10, vec![1, 2, 3]));
        l.add_data(DataSegment::new(20, vec![9]));
        let image = l.link().unwrap();
        let init: Vec<_> = image.dm_init().collect();
        assert_eq!(init, vec![(10, 1), (11, 2), (12, 3), (20, 9)]);

        let mut bad = Linker::new();
        bad.add_data(DataSegment::new(10, vec![1, 2]));
        bad.add_data(DataSegment::new(11, vec![3]));
        assert!(matches!(bad.link(), Err(LinkError::DataOverlap { .. })));

        let mut oob = Linker::new();
        oob.add_data(DataSegment::new(DM_WORDS as u32 - 1, vec![1, 2]));
        assert!(matches!(oob.link(), Err(LinkError::DataOutOfRange { .. })));
    }

    #[test]
    fn code_overhead_counts_sync_instructions() {
        let p = Program::from_instrs(vec![
            Instr::sinc(0),
            Instr::Sleep,
            Instr::add(Reg::R1, Reg::R1, Reg::R1),
            Instr::Halt,
        ]);
        let mut l = Linker::new();
        l.add_section(Section::new("m", p));
        let image = l.link().unwrap();
        assert_eq!(image.sync_words(), 2);
        assert_eq!(image.code_words(), 4);
        assert!((image.code_overhead_percent() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn image_decodes_back() {
        let p = Program::from_instrs(vec![Instr::lw(Reg::R1, Reg::R2, 7)]);
        let mut l = Linker::new();
        l.add_section(Section::in_bank("m", p, 2));
        let image = l.link().unwrap();
        let addr = 2 * IM_BANK_WORDS as u32;
        assert_eq!(image.decode_at(addr), Some(Instr::lw(Reg::R1, Reg::R2, 7)));
    }
}
