//! General-purpose register names of the 16-bit WBSN core.

use std::fmt;
use std::str::FromStr;

use crate::error::ParseAsmError;

/// One of the eight 16-bit general-purpose registers of a WBSN core.
///
/// The architecture does not hard-wire any register to zero; by software
/// convention [`Reg::R0`] is kept at zero by the generated kernels and
/// [`Reg::R7`] is the link register used by `JAL`/`JR` call sequences.
///
/// # Example
///
/// ```
/// use wbsn_isa::Reg;
///
/// assert_eq!(Reg::R3.index(), 3);
/// assert_eq!("r3".parse::<Reg>().ok(), Some(Reg::R3));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Reg {
    /// Register 0 (zero by software convention).
    R0 = 0,
    /// Register 1.
    R1 = 1,
    /// Register 2.
    R2 = 2,
    /// Register 3.
    R3 = 3,
    /// Register 4.
    R4 = 4,
    /// Register 5.
    R5 = 5,
    /// Register 6.
    R6 = 6,
    /// Register 7 (link register by software convention).
    R7 = 7,
}

impl Reg {
    /// All registers in index order.
    pub const ALL: [Reg; 8] = [
        Reg::R0,
        Reg::R1,
        Reg::R2,
        Reg::R3,
        Reg::R4,
        Reg::R5,
        Reg::R6,
        Reg::R7,
    ];

    /// The link register used by the call/return convention.
    pub const LINK: Reg = Reg::R7;

    /// Returns the register's index in `0..8`.
    #[inline]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Returns the register with the given index.
    ///
    /// Returns `None` if `index >= 8`.
    #[inline]
    pub const fn from_index(index: usize) -> Option<Reg> {
        match index {
            0 => Some(Reg::R0),
            1 => Some(Reg::R1),
            2 => Some(Reg::R2),
            3 => Some(Reg::R3),
            4 => Some(Reg::R4),
            5 => Some(Reg::R5),
            6 => Some(Reg::R6),
            7 => Some(Reg::R7),
            _ => None,
        }
    }

    /// Returns the register encoded by the low three bits of `bits`.
    #[inline]
    pub(crate) const fn from_bits3(bits: u32) -> Reg {
        match bits & 0x7 {
            0 => Reg::R0,
            1 => Reg::R1,
            2 => Reg::R2,
            3 => Reg::R3,
            4 => Reg::R4,
            5 => Reg::R5,
            6 => Reg::R6,
            _ => Reg::R7,
        }
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.index())
    }
}

impl FromStr for Reg {
    type Err = ParseAsmError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let lower = s.to_ascii_lowercase();
        let rest = lower
            .strip_prefix('r')
            .ok_or_else(|| ParseAsmError::bad_register(s))?;
        let index: usize = rest.parse().map_err(|_| ParseAsmError::bad_register(s))?;
        Reg::from_index(index).ok_or_else(|| ParseAsmError::bad_register(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trip() {
        for (i, r) in Reg::ALL.iter().enumerate() {
            assert_eq!(r.index(), i);
            assert_eq!(Reg::from_index(i), Some(*r));
        }
        assert_eq!(Reg::from_index(8), None);
    }

    #[test]
    fn display_and_parse() {
        for r in Reg::ALL {
            let text = r.to_string();
            assert_eq!(text.parse::<Reg>().ok(), Some(r));
        }
        assert!("r8".parse::<Reg>().is_err());
        assert!("x1".parse::<Reg>().is_err());
        assert!("r".parse::<Reg>().is_err());
    }

    #[test]
    fn parse_is_case_insensitive() {
        assert_eq!("R5".parse::<Reg>().ok(), Some(Reg::R5));
    }
}
