//! Disassembly of binary instruction words back into readable listings.

use crate::error::DecodeError;
use crate::instr::Instr;

/// Disassembles one 24-bit word.
///
/// # Errors
///
/// Returns [`DecodeError`] when the word is not a valid instruction.
///
/// # Example
///
/// ```
/// use wbsn_isa::{disasm, Instr, Reg};
///
/// let word = Instr::add(Reg::R1, Reg::R2, Reg::R3).encode()?;
/// assert_eq!(disasm::disassemble_word(word)?, "add r1, r2, r3");
/// # Ok::<(), wbsn_isa::IsaError>(())
/// ```
pub fn disassemble_word(word: u32) -> Result<String, DecodeError> {
    Ok(Instr::decode(word)?.to_string())
}

/// Disassembles a contiguous range of words into an addressed listing.
///
/// Undecodable words are rendered as `.word 0x??????` so a listing of a
/// memory region that mixes code and data never fails.
///
/// # Example
///
/// ```
/// use wbsn_isa::{disasm, Instr};
///
/// let words = [Instr::Nop.encode()?, 0x00FF_FFFF];
/// let listing = disasm::disassemble(&words, 0x100);
/// assert!(listing[0].contains("nop"));
/// assert!(listing[1].contains(".word"));
/// # Ok::<(), wbsn_isa::IsaError>(())
/// ```
pub fn disassemble(words: &[u32], base_addr: u32) -> Vec<String> {
    words
        .iter()
        .enumerate()
        .map(|(i, &w)| {
            let addr = base_addr + i as u32;
            match Instr::decode(w) {
                Ok(instr) => format!("{addr:#06x}: {instr}"),
                Err(_) => format!("{addr:#06x}: .word {w:#08x}"),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::Reg;

    #[test]
    fn listing_addresses_advance() {
        let words = vec![
            Instr::Nop.encode().unwrap(),
            Instr::lw(Reg::R1, Reg::R2, 5).encode().unwrap(),
        ];
        let lines = disassemble(&words, 0x10);
        assert!(lines[0].starts_with("0x0010"));
        assert!(lines[1].starts_with("0x0011"));
        assert!(lines[1].contains("lw r1, 5(r2)"));
    }

    #[test]
    fn bad_word_becomes_data_directive() {
        let lines = disassemble(&[0x00FC_0000], 0);
        assert!(lines[0].contains(".word"));
    }
}
