//! Path-sensitive verification of the synchronization-instruction
//! protocol inside one program.
//!
//! The paper's insertion rules (§III-B) make the sync-point counter a
//! per-core balance: a core retracts with `SDEC` exactly what it
//! announced with `SINC`, on every control-flow path — that is what
//! keeps Fig. 3-b's data-dependent branches recoverable in lock-step
//! and what keeps producer/consumer points from deadlocking or firing
//! early. This module checks that balance statically: it builds the
//! control-flow graph of a [`Program`] and runs an interval analysis of
//! the net `SINC`/`SDEC` delta per synchronization point, reporting
//!
//! * joins whose incoming arms carry different deltas (an unbalanced
//!   `SINC`/`SDEC` pair on a data-dependent branch),
//! * paths on which the counter could drop below zero (`SDEC` without a
//!   covering `SINC`/preload — the runtime would fault or deadlock),
//! * paths or loops on which the counter could grow past the 8-bit
//!   hardware field (a missing `SDEC` inside a loop),
//! * references to synchronization points outside the configured
//!   range.
//!
//! Unlike [`crate::lint`]'s warnings, these diagnostics are protocol
//! violations: `wbsn-asm --lint` rejects programs that produce them.
//!
//! # Scope
//!
//! The analysis is per-core: it assumes a core only retracts its own
//! contribution, which is how the paper's insertion step and this
//! repository's generators emit code. Preloaded auto-reload barrier
//! points (building directives) are the exception — cores `SDEC` a
//! counter the hardware refills — so such points are declared in the
//! [`SyncFlowConfig`] and exempted from the counter-range checks.
//! Paths through `jr` (computed jumps) end the walk conservatively.

use std::fmt;

use crate::instr::{Instr, SyncKind};
use crate::program::Program;

/// Counter excursions are clamped to this magnitude so that loop
/// widening terminates; anything beyond the 8-bit hardware field is
/// already a violation.
const CLAMP: i32 = 512;

/// Hardware counter capacity (8-bit up/down counter).
const COUNTER_MAX: i32 = 255;

/// Configuration of the sync-flow analysis.
#[derive(Debug, Clone, Default)]
pub struct SyncFlowConfig {
    /// Number of synchronization points the platform is configured
    /// with; `None` skips the range check (checked at link time
    /// instead).
    pub sync_points: Option<u16>,
    /// Load-time preloads: `(point, initial counter)`.
    pub preloads: Vec<(u16, u8)>,
    /// Points configured as auto-reload barriers: the hardware refills
    /// the counter after each fire, so the per-core balance and range
    /// checks do not apply to them.
    pub auto_reload: Vec<u16>,
}

impl SyncFlowConfig {
    /// The platform default: 16 points, nothing preloaded.
    pub fn with_sync_points(points: u16) -> SyncFlowConfig {
        SyncFlowConfig {
            sync_points: Some(points),
            ..SyncFlowConfig::default()
        }
    }

    fn preload_of(&self, point: u16) -> i32 {
        self.preloads
            .iter()
            .find(|(p, _)| *p == point)
            .map_or(0, |(_, v)| *v as i32)
    }

    fn is_auto_reload(&self, point: u16) -> bool {
        self.auto_reload.contains(&point)
    }
}

/// A protocol violation found by [`analyze`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SyncFlowDiag {
    /// A synchronization instruction references a point beyond the
    /// configured count.
    UnallocatedPoint {
        /// Program-relative address of the instruction.
        pc: usize,
        /// The out-of-range point literal.
        point: u16,
    },
    /// Control-flow arms joining at `pc` carry different net
    /// `SINC`/`SDEC` deltas for `point`: a data-dependent branch with
    /// an unbalanced pair (the paper's lock-step recovery rule).
    UnbalancedBranch {
        /// Program-relative address of the join.
        pc: usize,
        /// The affected point.
        point: u16,
        /// Smallest incoming net delta.
        min_delta: i32,
        /// Largest incoming net delta.
        max_delta: i32,
    },
    /// Some path reaches this `SDEC` with no covering `SINC` or
    /// preload: the counter would underflow (or consume another core's
    /// contribution and deadlock it).
    CounterUnderflow {
        /// Program-relative address of the `SDEC`.
        pc: usize,
        /// The affected point.
        point: u16,
        /// The most negative counter value reachable here.
        min_value: i32,
    },
    /// Some path (typically a loop with a missing `SDEC`) drives the
    /// counter past the 8-bit hardware field at this `SINC`.
    CounterOverflow {
        /// Program-relative address of the `SINC`.
        pc: usize,
        /// The affected point.
        point: u16,
        /// The largest counter value reachable here (clamped).
        max_value: i32,
    },
}

impl SyncFlowDiag {
    /// Program-relative address of the finding.
    pub fn pc(&self) -> usize {
        match self {
            SyncFlowDiag::UnallocatedPoint { pc, .. }
            | SyncFlowDiag::UnbalancedBranch { pc, .. }
            | SyncFlowDiag::CounterUnderflow { pc, .. }
            | SyncFlowDiag::CounterOverflow { pc, .. } => *pc,
        }
    }

    /// The synchronization point the finding concerns.
    pub fn point(&self) -> u16 {
        match self {
            SyncFlowDiag::UnallocatedPoint { point, .. }
            | SyncFlowDiag::UnbalancedBranch { point, .. }
            | SyncFlowDiag::CounterUnderflow { point, .. }
            | SyncFlowDiag::CounterOverflow { point, .. } => *point,
        }
    }
}

impl fmt::Display for SyncFlowDiag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SyncFlowDiag::UnallocatedPoint { pc, point } => {
                write!(f, "pc {pc}: sync point {point} is not allocated")
            }
            SyncFlowDiag::UnbalancedBranch {
                pc,
                point,
                min_delta,
                max_delta,
            } => write!(
                f,
                "pc {pc}: branch arms join with unbalanced SINC/SDEC on point \
                 {point} (net delta {min_delta}..{max_delta})"
            ),
            SyncFlowDiag::CounterUnderflow {
                pc,
                point,
                min_value,
            } => write!(
                f,
                "pc {pc}: SDEC on point {point} can underflow (counter could \
                 be {min_value}); no covering SINC or preload on some path"
            ),
            SyncFlowDiag::CounterOverflow {
                pc,
                point,
                max_value,
            } => write!(
                f,
                "pc {pc}: SINC on point {point} can overflow the 8-bit \
                 counter (reaches {max_value}); missing SDEC on some path"
            ),
        }
    }
}

/// Net-delta interval per tracked point; `None` = unreachable.
type State = Option<Vec<(i32, i32)>>;

fn successors(pc: usize, instr: &Instr, len: usize) -> Vec<usize> {
    let mut out = Vec::with_capacity(2);
    let mut push = |target: i64| {
        if target >= 0 && (target as usize) < len {
            out.push(target as usize);
        }
    };
    match *instr {
        Instr::Halt | Instr::Jr { .. } => {}
        Instr::Jmp { off } => push(pc as i64 + 1 + off as i64),
        Instr::Jal { off, .. } => push(pc as i64 + 1 + off as i64),
        Instr::Branch { off, .. } => {
            push(pc as i64 + 1);
            push(pc as i64 + 1 + off as i64);
        }
        _ => push(pc as i64 + 1),
    }
    out
}

/// Runs the sync-flow analysis over one program.
///
/// Returns the violations sorted by program address; an empty vector
/// means every path satisfies the insertion rules this pass models.
///
/// # Example
///
/// ```
/// use wbsn_isa::{assemble_text, syncflow};
///
/// // SINC on one branch arm only: flagged at the join.
/// let p = assemble_text(
///     "beq r1, r0, skip\nsinc 0\nskip: sdec 0\nhalt\n",
/// )?;
/// let diags = syncflow::analyze(&p, &syncflow::SyncFlowConfig::default());
/// assert!(!diags.is_empty());
/// # Ok::<(), wbsn_isa::IsaError>(())
/// ```
pub fn analyze(program: &Program, config: &SyncFlowConfig) -> Vec<SyncFlowDiag> {
    let instrs = program.instrs();
    let len = instrs.len();
    let mut diags = Vec::new();

    // Tracked points: every point the program references, in order.
    let mut points: Vec<u16> = instrs
        .iter()
        .filter_map(|i| match i {
            Instr::Sync { point, .. } => Some(*point),
            _ => None,
        })
        .collect();
    points.sort_unstable();
    points.dedup();

    if let Some(limit) = config.sync_points {
        for (pc, instr) in instrs.iter().enumerate() {
            if let Instr::Sync { point, .. } = instr {
                if *point >= limit {
                    diags.push(SyncFlowDiag::UnallocatedPoint { pc, point: *point });
                }
            }
        }
    }

    if points.is_empty() || len == 0 {
        diags.sort_by_key(SyncFlowDiag::pc);
        return diags;
    }
    let index_of = |point: u16| points.binary_search(&point).expect("tracked point");

    // Fixpoint: in-state per pc, entry starts balanced at zero.
    let mut states: Vec<State> = vec![None; len];
    states[0] = Some(vec![(0, 0); points.len()]);
    let mut worklist: Vec<usize> = vec![0];
    while let Some(pc) = worklist.pop() {
        let Some(in_state) = states[pc].clone() else {
            continue;
        };
        // Transfer.
        let mut out = in_state;
        if let Instr::Sync { kind, point } = &instrs[pc] {
            if !config.is_auto_reload(*point) {
                let delta = match kind {
                    SyncKind::Inc => 1,
                    SyncKind::Dec => -1,
                    SyncKind::Nop => 0,
                };
                if delta != 0 {
                    let (lo, hi) = out[index_of(*point)];
                    out[index_of(*point)] = (
                        (lo + delta).clamp(-CLAMP, CLAMP),
                        (hi + delta).clamp(-CLAMP, CLAMP),
                    );
                }
            }
        }
        // Propagate with interval join.
        for succ in successors(pc, &instrs[pc], len) {
            let changed = match &mut states[succ] {
                None => {
                    states[succ] = Some(out.clone());
                    true
                }
                Some(existing) => {
                    let mut changed = false;
                    for (slot, &(lo, hi)) in existing.iter_mut().zip(out.iter()) {
                        let merged = (slot.0.min(lo), slot.1.max(hi));
                        if merged != *slot {
                            *slot = merged;
                            changed = true;
                        }
                    }
                    changed
                }
            };
            if changed {
                worklist.push(succ);
            }
        }
    }

    // Reporting pass over the converged states.
    let mut join_preds: Vec<Vec<usize>> = vec![Vec::new(); len];
    for (pc, instr) in instrs.iter().enumerate() {
        for succ in successors(pc, instr, len) {
            join_preds[succ].push(pc);
        }
    }
    for (pc, instr) in instrs.iter().enumerate() {
        let Some(in_state) = &states[pc] else {
            continue;
        };
        if let Instr::Sync { kind, point } = instr {
            if config.is_auto_reload(*point) {
                continue;
            }
            let (lo, hi) = in_state[index_of(*point)];
            let preload = config.preload_of(*point);
            match kind {
                SyncKind::Dec if preload + lo - 1 < 0 => {
                    diags.push(SyncFlowDiag::CounterUnderflow {
                        pc,
                        point: *point,
                        min_value: preload + lo - 1,
                    });
                }
                SyncKind::Inc if preload + hi + 1 > COUNTER_MAX => {
                    diags.push(SyncFlowDiag::CounterOverflow {
                        pc,
                        point: *point,
                        max_value: preload + hi + 1,
                    });
                }
                _ => {}
            }
        }
    }
    // Unbalanced joins: a pc whose reachable predecessors disagree on
    // the net delta of some point. Reported at the earliest such join
    // only, so one misplaced SINC yields one finding, not a cascade.
    let out_state = |pred: usize| -> Option<Vec<(i32, i32)>> {
        let mut s = states[pred].clone()?;
        if let Instr::Sync { kind, point } = &instrs[pred] {
            if !config.is_auto_reload(*point) {
                let delta = match kind {
                    SyncKind::Inc => 1,
                    SyncKind::Dec => -1,
                    SyncKind::Nop => 0,
                };
                let (lo, hi) = s[index_of(*point)];
                s[index_of(*point)] = (
                    (lo + delta).clamp(-CLAMP, CLAMP),
                    (hi + delta).clamp(-CLAMP, CLAMP),
                );
            }
        }
        Some(s)
    };
    let mut flagged: Vec<bool> = vec![false; points.len()];
    for (pc, joins) in join_preds.iter().enumerate().take(len) {
        let preds: Vec<Vec<(i32, i32)>> = joins.iter().filter_map(|&p| out_state(p)).collect();
        if preds.len() < 2 {
            continue;
        }
        for (idx, &point) in points.iter().enumerate() {
            if flagged[idx] || config.is_auto_reload(point) {
                continue;
            }
            let lo = preds.iter().map(|s| s[idx].0).min().expect("non-empty");
            let hi = preds.iter().map(|s| s[idx].1).max().expect("non-empty");
            let disagree = preds.windows(2).any(|w| w[0][idx] != w[1][idx]);
            if disagree {
                flagged[idx] = true;
                diags.push(SyncFlowDiag::UnbalancedBranch {
                    pc,
                    point,
                    min_delta: lo,
                    max_delta: hi,
                });
            }
        }
    }

    diags.sort_by_key(SyncFlowDiag::pc);
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble_text;

    fn check(src: &str) -> Vec<SyncFlowDiag> {
        analyze(
            &assemble_text(src).expect("assembles"),
            &SyncFlowConfig::default(),
        )
    }

    #[test]
    fn balanced_producer_loop_is_clean() {
        let diags = check(
            "top: sinc 0\n\
             addi r1, r1, -1\n\
             sdec 0\n\
             bne r1, r0, top\n\
             halt\n",
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn balanced_branch_arms_are_clean() {
        // Both arms carry a SINC/SDEC pair: deltas agree at the join.
        let diags = check(
            "bne r1, r0, other\n\
             sinc 0\n\
             sdec 0\n\
             jmp join\n\
             other: sinc 0\n\
             sdec 0\n\
             join: halt\n",
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn sinc_on_one_arm_is_unbalanced() {
        let diags = check(
            "beq r1, r0, skip\n\
             sinc 0\n\
             skip: sleep\n\
             halt\n",
        );
        assert!(
            diags.iter().any(|d| matches!(
                d,
                SyncFlowDiag::UnbalancedBranch {
                    pc: 2,
                    point: 0,
                    ..
                }
            )),
            "{diags:?}"
        );
    }

    #[test]
    fn sdec_without_sinc_underflows() {
        let diags = check("sdec 3\nhalt\n");
        assert_eq!(
            diags,
            vec![SyncFlowDiag::CounterUnderflow {
                pc: 0,
                point: 3,
                min_value: -1
            }]
        );
    }

    #[test]
    fn preload_covers_the_sdec() {
        let program = assemble_text("sdec 3\nsleep\nhalt\n").expect("assembles");
        let config = SyncFlowConfig {
            preloads: vec![(3, 1)],
            ..SyncFlowConfig::default()
        };
        assert!(analyze(&program, &config).is_empty());
    }

    #[test]
    fn auto_reload_points_skip_range_checks() {
        let program = assemble_text("top: sdec 3\nsleep\njmp top\n").expect("assembles");
        let config = SyncFlowConfig {
            auto_reload: vec![3],
            ..SyncFlowConfig::default()
        };
        assert!(analyze(&program, &config).is_empty());
    }

    #[test]
    fn loop_without_sdec_overflows() {
        let diags = check("top: sinc 0\nbne r1, r0, top\nsdec 0\nhalt\n");
        assert!(
            diags
                .iter()
                .any(|d| matches!(d, SyncFlowDiag::CounterOverflow { point: 0, .. })),
            "{diags:?}"
        );
    }

    #[test]
    fn unallocated_point_is_flagged() {
        let program = assemble_text("sinc 12\nsdec 12\nhalt\n").expect("assembles");
        let config = SyncFlowConfig::with_sync_points(8);
        let diags = analyze(&program, &config);
        assert!(
            diags
                .iter()
                .any(|d| matches!(d, SyncFlowDiag::UnallocatedPoint { pc: 0, point: 12 })),
            "{diags:?}"
        );
    }

    #[test]
    fn diagnostics_render_with_locations() {
        let diags = check("sdec 1\nhalt\n");
        assert!(diags[0].to_string().contains("pc 0"));
        assert!(diags[0].to_string().contains("point 1"));
    }

    #[test]
    fn unreachable_code_is_ignored() {
        // The SDEC after HALT can never execute.
        let diags = check("sinc 0\nsdec 0\nhalt\nsdec 0\n");
        assert!(diags.is_empty(), "{diags:?}");
    }
}
