//! Text assembler for the WBSN ISA.
//!
//! The accepted syntax is one instruction or label per line, with `;` or
//! `#` comments:
//!
//! ```text
//! ; countdown
//!     li   r1, 3
//! loop:
//!     addi r1, r1, -1
//!     bne  r1, r0, loop
//!     halt
//! ```
//!
//! Branch and jump targets may be labels or literal word offsets.
//!
//! `.equ NAME, value` defines a symbolic constant usable wherever a
//! number is expected:
//!
//! ```text
//! .equ OUT, 0x200
//! .equ COUNT, 10
//!     li  r1, COUNT
//!     sw  r1, OUT(r0)
//! ```

use std::collections::HashMap;

use crate::builder::ProgramBuilder;
use crate::error::{IsaError, ParseAsmError};
use crate::instr::{AluImmOp, AluOp, BranchCond, Instr, SyncKind};
use crate::program::Program;
use crate::reg::Reg;

/// Assembles a full source text into a [`Program`].
///
/// # Errors
///
/// Returns a [`ParseAsmError`]-carrying [`IsaError`] with the offending
/// 1-based line number for syntax errors, unknown mnemonics, bad operands,
/// duplicate or undefined labels, and out-of-range immediates.
///
/// # Example
///
/// ```
/// use wbsn_isa::asm::assemble_text;
///
/// let p = assemble_text("li r1, 7\nhalt\n")?;
/// assert_eq!(p.len(), 2);
/// # Ok::<(), wbsn_isa::IsaError>(())
/// ```
pub fn assemble_text(source: &str) -> Result<Program, IsaError> {
    let mut builder = ProgramBuilder::new();
    let mut consts: HashMap<String, i64> = HashMap::new();
    for (idx, raw_line) in source.lines().enumerate() {
        let line_no = idx + 1;
        let line = strip_comment(raw_line).trim();
        if line.is_empty() {
            continue;
        }
        parse_line(&mut builder, &mut consts, line).map_err(|e| match e {
            IsaError::Parse(p) => IsaError::Parse(p.with_line(line_no)),
            other => other,
        })?;
    }
    builder.assemble()
}

fn strip_comment(line: &str) -> &str {
    match line.find([';', '#']) {
        Some(pos) => &line[..pos],
        None => line,
    }
}

fn parse_line(
    builder: &mut ProgramBuilder,
    consts: &mut HashMap<String, i64>,
    line: &str,
) -> Result<(), IsaError> {
    // Constant definition?
    if let Some(rest) = line.strip_prefix(".equ") {
        let Some((name, value)) = rest.split_once(',') else {
            return Err(ParseAsmError::new("`.equ` expects `NAME, value`").into());
        };
        let name = name.trim();
        if !is_ident(name) {
            return Err(ParseAsmError::new(format!("invalid constant name `{name}`")).into());
        }
        let value = int_with(consts, value.trim())?;
        if consts.insert(name.to_string(), value).is_some() {
            return Err(ParseAsmError::new(format!("constant `{name}` redefined")).into());
        }
        return Ok(());
    }
    let mut rest = line;
    // A line may start with one or more labels.
    while let Some(colon) = rest.find(':') {
        let (label, tail) = rest.split_at(colon);
        let label = label.trim();
        if label.is_empty() || !is_ident(label) {
            return Err(ParseAsmError::new(format!("invalid label `{label}`")).into());
        }
        builder.label(label)?;
        rest = tail[1..].trim_start();
    }
    if rest.is_empty() {
        return Ok(());
    }
    parse_instr(builder, consts, rest)
}

fn is_ident(s: &str) -> bool {
    let mut chars = s.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_' || c == '.')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
}

fn parse_instr(
    builder: &mut ProgramBuilder,
    consts: &HashMap<String, i64>,
    text: &str,
) -> Result<(), IsaError> {
    let (mnemonic, operands) = match text.find(char::is_whitespace) {
        Some(pos) => (&text[..pos], text[pos..].trim()),
        None => (text, ""),
    };
    let mnemonic = mnemonic.to_ascii_lowercase();
    let ops: Vec<&str> = if operands.is_empty() {
        Vec::new()
    } else {
        operands.split(',').map(str::trim).collect()
    };

    let expect = |n: usize| -> Result<(), IsaError> {
        if ops.len() != n {
            return Err(ParseAsmError::new(format!(
                "`{mnemonic}` expects {n} operand(s), found {}",
                ops.len()
            ))
            .into());
        }
        Ok(())
    };

    if let Some(op) = alu_op(&mnemonic) {
        expect(3)?;
        builder.push(Instr::Alu {
            op,
            rd: reg(ops[0])?,
            ra: reg(ops[1])?,
            rb: reg(ops[2])?,
        });
        return Ok(());
    }
    if let Some(op) = alu_imm_op(&mnemonic) {
        expect(3)?;
        builder.push(Instr::AluImm {
            op,
            rd: reg(ops[0])?,
            ra: reg(ops[1])?,
            imm: int_with(consts, ops[2])? as i16,
        });
        return Ok(());
    }
    if let Some(cond) = branch_cond(&mnemonic) {
        expect(3)?;
        let ra = reg(ops[0])?;
        let rb = reg(ops[1])?;
        if let Ok(off) = int_with(consts, ops[2]) {
            builder.push(Instr::Branch {
                cond,
                ra,
                rb,
                off: off as i16,
            });
        } else {
            builder.branch_to(cond, ra, rb, ops[2]);
        }
        return Ok(());
    }
    match mnemonic.as_str() {
        "nop" => {
            expect(0)?;
            builder.push(Instr::Nop);
        }
        "halt" => {
            expect(0)?;
            builder.push(Instr::Halt);
        }
        "sleep" => {
            expect(0)?;
            builder.push(Instr::Sleep);
        }
        "sinc" | "sdec" | "snop" => {
            expect(1)?;
            let kind = match mnemonic.as_str() {
                "sinc" => SyncKind::Inc,
                "sdec" => SyncKind::Dec,
                _ => SyncKind::Nop,
            };
            builder.push(Instr::Sync {
                kind,
                point: int_with(consts, ops[0])? as u16,
            });
        }
        "mov" => {
            expect(2)?;
            builder.push(Instr::Mov {
                rd: reg(ops[0])?,
                ra: reg(ops[1])?,
            });
        }
        "abs" => {
            expect(2)?;
            builder.push(Instr::Abs {
                rd: reg(ops[0])?,
                ra: reg(ops[1])?,
            });
        }
        "li" => {
            expect(2)?;
            builder.push(Instr::Li {
                rd: reg(ops[0])?,
                imm: int_with(consts, ops[1])? as i16,
            });
        }
        "lui" => {
            expect(2)?;
            builder.push(Instr::Lui {
                rd: reg(ops[0])?,
                imm: int_with(consts, ops[1])? as u8,
            });
        }
        "lw" | "sw" => {
            expect(2)?;
            let r = reg(ops[0])?;
            let (off, base) = mem_operand(consts, ops[1])?;
            builder.push(if mnemonic == "lw" {
                Instr::Lw {
                    rd: r,
                    ra: base,
                    off,
                }
            } else {
                Instr::Sw {
                    rs: r,
                    ra: base,
                    off,
                }
            });
        }
        "jmp" => {
            expect(1)?;
            if let Ok(off) = int_with(consts, ops[0]) {
                builder.push(Instr::Jmp { off: off as i32 });
            } else {
                builder.jmp_to(ops[0]);
            }
        }
        "jal" => {
            expect(2)?;
            let rd = reg(ops[0])?;
            if let Ok(off) = int_with(consts, ops[1]) {
                builder.push(Instr::Jal {
                    rd,
                    off: off as i16,
                });
            } else if rd == Reg::LINK {
                builder.call(ops[1]);
            } else {
                return Err(ParseAsmError::new(
                    "label-form `jal` only supports the link register r7",
                )
                .into());
            }
        }
        "jr" => {
            expect(1)?;
            builder.push(Instr::Jr { ra: reg(ops[0])? });
        }
        "call" => {
            expect(1)?;
            builder.call(ops[0]);
        }
        "ret" => {
            expect(0)?;
            builder.ret();
        }
        other => {
            return Err(ParseAsmError::new(format!("unknown mnemonic `{other}`")).into());
        }
    }
    Ok(())
}

fn alu_op(m: &str) -> Option<AluOp> {
    AluOp::ALL.into_iter().find(|op| op.mnemonic() == m)
}

fn alu_imm_op(m: &str) -> Option<AluImmOp> {
    AluImmOp::ALL.into_iter().find(|op| op.mnemonic() == m)
}

fn branch_cond(m: &str) -> Option<BranchCond> {
    BranchCond::ALL.into_iter().find(|c| c.mnemonic() == m)
}

fn reg(text: &str) -> Result<Reg, IsaError> {
    text.parse::<Reg>().map_err(IsaError::from)
}

/// Resolves a number or a `.equ` constant.
fn int_with(consts: &HashMap<String, i64>, text: &str) -> Result<i64, IsaError> {
    if let Some(&value) = consts.get(text.trim()) {
        return Ok(value);
    }
    int(text)
}

fn int(text: &str) -> Result<i64, IsaError> {
    let text = text.trim();
    let (neg, body) = match text.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, text),
    };
    let value = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16)
    } else {
        body.parse::<i64>()
    }
    .map_err(|_| IsaError::from(ParseAsmError::new(format!("invalid number `{text}`"))))?;
    Ok(if neg { -value } else { value })
}

/// Parses `off(reg)` memory operands such as `-4(r2)` or `NAME(r0)`.
fn mem_operand(consts: &HashMap<String, i64>, text: &str) -> Result<(i16, Reg), IsaError> {
    let open = text.find('(').ok_or_else(|| {
        IsaError::from(ParseAsmError::new(format!(
            "expected `offset(reg)` operand, found `{text}`"
        )))
    })?;
    let close = text
        .rfind(')')
        .ok_or_else(|| IsaError::from(ParseAsmError::new(format!("missing `)` in `{text}`"))))?;
    let off_text = text[..open].trim();
    let off = if off_text.is_empty() {
        0
    } else {
        int_with(consts, off_text)? as i16
    };
    let base = reg(text[open + 1..close].trim())?;
    Ok((off, base))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembles_representative_program() {
        let src = r"
            ; set up
            li   r1, 5
            li   r2, 0
        loop:
            add  r2, r2, r1
            addi r1, r1, -1
            bne  r1, r0, loop
            sw   r2, 0x10(r0)
            halt
        ";
        let p = assemble_text(src).unwrap();
        assert_eq!(p.len(), 7);
        assert_eq!(p.label("loop"), Some(2));
        assert_eq!(
            p.instrs()[4],
            Instr::Branch {
                cond: BranchCond::Ne,
                ra: Reg::R1,
                rb: Reg::R0,
                off: -3
            }
        );
    }

    #[test]
    fn parses_sync_instructions() {
        let p = assemble_text("sinc 1\nsdec 1\nsnop 2\nsleep\n").unwrap();
        assert_eq!(p.sync_instr_count(), 4);
        assert_eq!(p.instrs()[0], Instr::sinc(1));
        assert_eq!(p.instrs()[2], Instr::snop(2));
    }

    #[test]
    fn parses_memory_operands() {
        let p = assemble_text("lw r1, -3(r2)\nsw r4, (r5)\n").unwrap();
        assert_eq!(p.instrs()[0], Instr::lw(Reg::R1, Reg::R2, -3));
        assert_eq!(p.instrs()[1], Instr::sw(Reg::R4, Reg::R5, 0));
    }

    #[test]
    fn parses_hex_and_negative_numbers() {
        let p = assemble_text("li r1, 0x7F\nli r2, -0x10\n").unwrap();
        assert_eq!(
            p.instrs()[0],
            Instr::Li {
                rd: Reg::R1,
                imm: 0x7F
            }
        );
        assert_eq!(
            p.instrs()[1],
            Instr::Li {
                rd: Reg::R2,
                imm: -16
            }
        );
    }

    #[test]
    fn call_and_ret_pseudos() {
        let p = assemble_text("call f\nhalt\nf: ret\n").unwrap();
        assert_eq!(p.instrs()[2], Instr::Jr { ra: Reg::LINK });
    }

    #[test]
    fn equ_constants_resolve_everywhere() {
        let p = assemble_text(
            ".equ OUT, 0x200\n.equ COUNT, 3\n.equ PT, 2\nli r1, COUNT\nsw r1, OUT(r0)\nsinc PT\naddi r1, r1, COUNT\nhalt\n",
        )
        .unwrap();
        assert_eq!(
            p.instrs()[0],
            Instr::Li {
                rd: Reg::R1,
                imm: 3
            }
        );
        assert_eq!(p.instrs()[1], Instr::sw(Reg::R1, Reg::R0, 0x200));
        assert_eq!(p.instrs()[2], Instr::sinc(2));
    }

    #[test]
    fn equ_errors_are_reported() {
        assert!(assemble_text(".equ X\nhalt\n").is_err());
        assert!(assemble_text(".equ 1X, 3\nhalt\n").is_err());
        assert!(assemble_text(".equ X, 1\n.equ X, 2\nhalt\n").is_err());
        assert!(assemble_text("li r1, UNDEFINED\nhalt\n").is_err());
    }

    #[test]
    fn equ_can_reference_earlier_constants() {
        let p = assemble_text(".equ A, 5\n.equ B, A\nli r1, B\nhalt\n").unwrap();
        assert_eq!(
            p.instrs()[0],
            Instr::Li {
                rd: Reg::R1,
                imm: 5
            }
        );
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = assemble_text("nop\nbogus r1\n").unwrap_err();
        match err {
            IsaError::Parse(p) => assert_eq!(p.line(), Some(2)),
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn undefined_label_is_reported() {
        assert!(assemble_text("jmp nowhere\n").is_err());
    }

    #[test]
    fn wrong_operand_count_is_reported() {
        assert!(assemble_text("add r1, r2\n").is_err());
        assert!(assemble_text("halt r1\n").is_err());
    }

    #[test]
    fn label_only_lines_and_multiple_labels() {
        let p = assemble_text("a:\nb: nop\n").unwrap();
        assert_eq!(p.label("a"), Some(0));
        assert_eq!(p.label("b"), Some(0));
    }

    #[test]
    fn display_round_trips_through_assembler() {
        let src = "li r1, 5\nabs r2, r1\nmin r3, r2, r1\nsinc 3\nsleep\nhalt\n";
        let p = assemble_text(src).unwrap();
        let printed = p.to_string();
        let again = assemble_text(&printed).unwrap();
        assert_eq!(p.instrs(), again.instrs());
    }
}
