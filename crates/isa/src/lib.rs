//! Instruction set and tool-chain for the low-power multi-core WBSN platform.
//!
//! This crate provides the software half of the HW/SW synchronization
//! approach of Braojos et al. (DATE 2014): a 16-bit RISC instruction set
//! extended with the synchronization instructions `SINC`, `SDEC`, `SNOP`
//! and `SLEEP`, together with the programming tool-chain the paper's
//! experimental set-up relies on — a text assembler, a programmatic
//! program builder, a disassembler, and a linker that places code
//! sections into instruction-memory banks according to building
//! directives.
//!
//! # Example
//!
//! ```
//! use wbsn_isa::{ProgramBuilder, Reg, Instr};
//!
//! # fn main() -> Result<(), wbsn_isa::IsaError> {
//! let mut b = ProgramBuilder::new();
//! b.load_const(Reg::R1, 10);
//! b.label("loop")?;
//! b.push(Instr::addi(Reg::R1, Reg::R1, -1));
//! b.bne_to(Reg::R1, Reg::R0, "loop");
//! b.push(Instr::Halt);
//! let program = b.assemble()?;
//! assert_eq!(program.len(), 4);
//! # Ok(())
//! # }
//! ```

pub mod asm;
pub mod builder;
pub mod decoded;
pub mod disasm;
pub mod error;
pub mod image;
pub mod instr;
pub mod link;
pub mod lint;
pub mod mem;
pub mod phase;
pub mod program;
pub mod reg;
pub mod sched;
pub mod syncflow;

pub use asm::assemble_text;
pub use builder::ProgramBuilder;
pub use decoded::{DecodedImage, DecodedInstr, MemClass};
pub use error::{DecodeError, EncodeError, IsaError, LinkError, ParseAsmError};
pub use image::ImageFormatError;
pub use instr::{AluImmOp, AluOp, BranchCond, Instr, SyncKind, MAX_SYNC_POINT};
pub use link::{DataSegment, LinkedImage, Linker, PlacedSection, Section};
pub use mem::{DM_BANKS, DM_BANK_WORDS, DM_WORDS, IM_BANKS, IM_BANK_WORDS, IM_WORDS};
pub use phase::{PhaseTable, NO_PHASE};
pub use program::Program;
pub use reg::Reg;
pub use sched::{schedule_program, ScheduleStats};
