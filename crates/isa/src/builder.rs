//! Programmatic assembler with forward-reference label resolution.
//!
//! [`ProgramBuilder`] is the code-generation front end used by the
//! benchmark kernels: instructions are pushed in order, control transfers
//! may name labels that are defined later, and [`ProgramBuilder::assemble`]
//! resolves every reference into concrete pipeline-relative offsets.

use std::collections::BTreeMap;

use crate::error::{IsaError, ParseAsmError};
use crate::instr::{BranchCond, Instr};
use crate::program::Program;
use crate::reg::Reg;

#[derive(Debug, Clone)]
enum Slot {
    Fixed(Instr),
    Branch {
        cond: BranchCond,
        ra: Reg,
        rb: Reg,
        label: String,
    },
    Jmp {
        label: String,
    },
    Jal {
        rd: Reg,
        label: String,
    },
}

/// Incremental program builder with labels and pseudo-instructions.
///
/// # Example
///
/// A countdown loop using a backward label reference:
///
/// ```
/// use wbsn_isa::{Instr, ProgramBuilder, Reg};
///
/// # fn main() -> Result<(), wbsn_isa::IsaError> {
/// let mut b = ProgramBuilder::new();
/// b.load_const(Reg::R1, 3);
/// b.label("again")?;
/// b.push(Instr::addi(Reg::R1, Reg::R1, -1));
/// b.bne_to(Reg::R1, Reg::R0, "again");
/// b.push(Instr::Halt);
/// let p = b.assemble()?;
/// assert_eq!(p.label("again"), Some(1));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct ProgramBuilder {
    slots: Vec<Slot>,
    labels: BTreeMap<String, usize>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> ProgramBuilder {
        ProgramBuilder::default()
    }

    /// Number of instructions emitted so far.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether no instructions have been emitted yet.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Defines `name` at the current position.
    ///
    /// # Errors
    ///
    /// Returns an error if the label was already defined.
    pub fn label(&mut self, name: &str) -> Result<(), IsaError> {
        if self.labels.contains_key(name) {
            return Err(ParseAsmError::new(format!("label `{name}` defined twice")).into());
        }
        self.labels.insert(name.to_string(), self.slots.len());
        Ok(())
    }

    /// Appends a concrete instruction.
    pub fn push(&mut self, instr: Instr) {
        self.slots.push(Slot::Fixed(instr));
    }

    /// Appends several concrete instructions in order.
    pub fn push_all<I: IntoIterator<Item = Instr>>(&mut self, instrs: I) {
        for i in instrs {
            self.push(i);
        }
    }

    /// Appends a conditional branch to a (possibly forward) label.
    pub fn branch_to(&mut self, cond: BranchCond, ra: Reg, rb: Reg, label: &str) {
        self.slots.push(Slot::Branch {
            cond,
            ra,
            rb,
            label: label.to_string(),
        });
    }

    /// `beq ra, rb, label`.
    pub fn beq_to(&mut self, ra: Reg, rb: Reg, label: &str) {
        self.branch_to(BranchCond::Eq, ra, rb, label);
    }

    /// `bne ra, rb, label`.
    pub fn bne_to(&mut self, ra: Reg, rb: Reg, label: &str) {
        self.branch_to(BranchCond::Ne, ra, rb, label);
    }

    /// `blt ra, rb, label` (signed).
    pub fn blt_to(&mut self, ra: Reg, rb: Reg, label: &str) {
        self.branch_to(BranchCond::Lt, ra, rb, label);
    }

    /// `bge ra, rb, label` (signed).
    pub fn bge_to(&mut self, ra: Reg, rb: Reg, label: &str) {
        self.branch_to(BranchCond::Ge, ra, rb, label);
    }

    /// Appends an unconditional jump to a label.
    pub fn jmp_to(&mut self, label: &str) {
        self.slots.push(Slot::Jmp {
            label: label.to_string(),
        });
    }

    /// Appends a call (`jal` to the label with the link register).
    pub fn call(&mut self, label: &str) {
        self.slots.push(Slot::Jal {
            rd: Reg::LINK,
            label: label.to_string(),
        });
    }

    /// Appends a return through the link register.
    pub fn ret(&mut self) {
        self.push(Instr::Jr { ra: Reg::LINK });
    }

    /// Loads an arbitrary 16-bit constant into `rd`, using one `li` when
    /// the value fits the sign-extended 15-bit immediate and a `lui`/`ori`
    /// pair otherwise.
    pub fn load_const(&mut self, rd: Reg, value: u16) {
        let as_signed = value as i16;
        if (-16384..=16383).contains(&as_signed) {
            self.push(Instr::Li { rd, imm: as_signed });
        } else {
            self.push(Instr::Lui {
                rd,
                imm: (value >> 8) as u8,
            });
            let low = value & 0xFF;
            if low != 0 {
                self.push(Instr::AluImm {
                    op: crate::instr::AluImmOp::Ori,
                    rd,
                    ra: rd,
                    imm: low as i16,
                });
            }
        }
    }

    /// Loads a signed 16-bit constant into `rd`.
    pub fn load_const_i16(&mut self, rd: Reg, value: i16) {
        self.load_const(rd, value as u16);
    }

    /// Resolves all label references and produces the final [`Program`].
    ///
    /// # Errors
    ///
    /// Returns an error for undefined labels or offsets that exceed the
    /// branch/jump encoding ranges.
    pub fn assemble(self) -> Result<Program, IsaError> {
        let mut instrs = Vec::with_capacity(self.slots.len());
        for (pc, slot) in self.slots.iter().enumerate() {
            let resolve = |label: &str| -> Result<i32, IsaError> {
                let target = self.labels.get(label).ok_or_else(|| {
                    IsaError::from(ParseAsmError::new(format!("undefined label `{label}`")))
                })?;
                Ok(*target as i32 - (pc as i32 + 1))
            };
            let instr = match slot {
                Slot::Fixed(i) => *i,
                Slot::Branch {
                    cond,
                    ra,
                    rb,
                    label,
                } => {
                    let off = resolve(label)?;
                    let off = i16::try_from(off).map_err(|_| {
                        IsaError::from(ParseAsmError::new(format!(
                            "branch to `{label}` out of range ({off} words)"
                        )))
                    })?;
                    Instr::Branch {
                        cond: *cond,
                        ra: *ra,
                        rb: *rb,
                        off,
                    }
                }
                Slot::Jmp { label } => Instr::Jmp {
                    off: resolve(label)?,
                },
                Slot::Jal { rd, label } => {
                    let off = resolve(label)?;
                    let off = i16::try_from(off).map_err(|_| {
                        IsaError::from(ParseAsmError::new(format!(
                            "call to `{label}` out of range ({off} words)"
                        )))
                    })?;
                    Instr::Jal { rd: *rd, off }
                }
            };
            // Validate encoding ranges eagerly so errors surface at
            // assembly time, not at link or load time.
            instr.encode().map_err(IsaError::from)?;
            instrs.push(instr);
        }
        Ok(Program::with_labels(instrs, self.labels))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_and_backward_references() {
        let mut b = ProgramBuilder::new();
        b.jmp_to("end"); // forward
        b.label("mid").unwrap();
        b.push(Instr::Nop);
        b.label("end").unwrap();
        b.bne_to(Reg::R1, Reg::R0, "mid"); // backward
        b.push(Instr::Halt);
        let p = b.assemble().unwrap();
        assert_eq!(p.instrs()[0], Instr::Jmp { off: 1 });
        assert_eq!(
            p.instrs()[2],
            Instr::Branch {
                cond: BranchCond::Ne,
                ra: Reg::R1,
                rb: Reg::R0,
                off: -2
            }
        );
    }

    #[test]
    fn undefined_label_is_an_error() {
        let mut b = ProgramBuilder::new();
        b.jmp_to("nowhere");
        assert!(b.assemble().is_err());
    }

    #[test]
    fn duplicate_label_is_an_error() {
        let mut b = ProgramBuilder::new();
        b.label("x").unwrap();
        assert!(b.label("x").is_err());
    }

    #[test]
    fn load_const_small_uses_one_instruction() {
        let mut b = ProgramBuilder::new();
        b.load_const(Reg::R1, 100);
        b.load_const_i16(Reg::R2, -5);
        let p = b.assemble().unwrap();
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn load_const_large_uses_lui_ori() {
        let mut b = ProgramBuilder::new();
        b.load_const(Reg::R1, 0x7FFF);
        let p = b.assemble().unwrap();
        assert_eq!(
            p.instrs(),
            &[
                Instr::Lui {
                    rd: Reg::R1,
                    imm: 0x7F
                },
                Instr::AluImm {
                    op: crate::instr::AluImmOp::Ori,
                    rd: Reg::R1,
                    ra: Reg::R1,
                    imm: 0xFF
                }
            ]
        );
    }

    #[test]
    fn load_const_round_byte_skips_ori() {
        let mut b = ProgramBuilder::new();
        b.load_const(Reg::R1, 0x4000);
        let p = b.assemble().unwrap();
        assert_eq!(p.len(), 1);
        assert_eq!(
            p.instrs()[0],
            Instr::Lui {
                rd: Reg::R1,
                imm: 0x40
            }
        );
    }

    #[test]
    fn call_and_ret_use_link_register() {
        let mut b = ProgramBuilder::new();
        b.call("f");
        b.push(Instr::Halt);
        b.label("f").unwrap();
        b.ret();
        let p = b.assemble().unwrap();
        assert_eq!(
            p.instrs()[0],
            Instr::Jal {
                rd: Reg::LINK,
                off: 1
            }
        );
        assert_eq!(p.instrs()[2], Instr::Jr { ra: Reg::LINK });
    }
}
