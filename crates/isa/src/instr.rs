//! Instruction definitions and 24-bit binary encoding.
//!
//! The instruction word is 24 bits wide (the paper's instruction memory is
//! 32 KWords × 24 bits). The top six bits select the opcode; the remaining
//! bits hold register and immediate fields according to the format of each
//! instruction family:
//!
//! | family | layout (bit 23 .. bit 0) |
//! |---|---|
//! | R-type ALU | `op\[6\] rd\[3\] ra\[3\] rb\[3\] 0\[9\]` |
//! | I-type ALU / LW / SW | `op\[6\] rd\[3\] ra\[3\] imm12\[12\]` |
//! | LI | `op\[6\] rd\[3\] imm15\[15\]` |
//! | LUI | `op\[6\] rd\[3\] 0\[7\] imm8\[8\]` |
//! | branch | `op\[6\] ra\[3\] rb\[3\] off12\[12\]` |
//! | JMP | `op\[6\] off18\[18\]` |
//! | JAL | `op\[6\] rd\[3\] off15\[15\]` |
//! | JR | `op\[6\] ra\[3\] 0\[15\]` |
//! | sync (SINC/SDEC/SNOP) | `op\[6\] 0\[6\] point12\[12\]` |
//!
//! Branch and jump offsets count instruction words relative to the
//! instruction *after* the control transfer (`pc + 1`), matching the
//! three-stage pipeline's natural sequential fetch.

use std::fmt;

use crate::error::{DecodeError, EncodeError};
use crate::mem::INSTR_MASK;
use crate::reg::Reg;

/// Register-register ALU operation selector.
///
/// `Min`/`Max` are signed and are first-class operations because the
/// morphological-filtering workloads the platform targets are dominated by
/// running minima and maxima (erosions and dilations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Wrapping 16-bit addition.
    Add,
    /// Wrapping 16-bit subtraction.
    Sub,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical shift left by `rb & 0xF`.
    Sll,
    /// Logical shift right by `rb & 0xF`.
    Srl,
    /// Arithmetic shift right by `rb & 0xF`.
    Sra,
    /// Low 16 bits of the signed 16×16 product.
    Mul,
    /// High 16 bits of the signed 16×16 product.
    Mulh,
    /// Signed minimum.
    Min,
    /// Signed maximum.
    Max,
    /// Set to 1 when `ra < rb` (signed), else 0.
    Slt,
    /// Set to 1 when `ra < rb` (unsigned), else 0.
    Sltu,
}

impl AluOp {
    /// All ALU operations, in opcode order.
    pub const ALL: [AluOp; 14] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Sll,
        AluOp::Srl,
        AluOp::Sra,
        AluOp::Mul,
        AluOp::Mulh,
        AluOp::Min,
        AluOp::Max,
        AluOp::Slt,
        AluOp::Sltu,
    ];

    /// Mnemonic used by the assembler and disassembler.
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Sll => "sll",
            AluOp::Srl => "srl",
            AluOp::Sra => "sra",
            AluOp::Mul => "mul",
            AluOp::Mulh => "mulh",
            AluOp::Min => "min",
            AluOp::Max => "max",
            AluOp::Slt => "slt",
            AluOp::Sltu => "sltu",
        }
    }
}

/// Register-immediate ALU operation selector.
///
/// `Addi` sign-extends its 12-bit immediate; the logical operations
/// zero-extend it; shifts use the low four bits as the shift amount.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluImmOp {
    /// `rd = ra + sext(imm12)`.
    Addi,
    /// `rd = ra & zext(imm12)`.
    Andi,
    /// `rd = ra | zext(imm12)`.
    Ori,
    /// `rd = ra ^ zext(imm12)`.
    Xori,
    /// `rd = ra << imm` with `imm` in `0..16`.
    Slli,
    /// `rd = ra >> imm` (logical).
    Srli,
    /// `rd = ra >> imm` (arithmetic).
    Srai,
}

impl AluImmOp {
    /// All register-immediate operations, in opcode order.
    pub const ALL: [AluImmOp; 7] = [
        AluImmOp::Addi,
        AluImmOp::Andi,
        AluImmOp::Ori,
        AluImmOp::Xori,
        AluImmOp::Slli,
        AluImmOp::Srli,
        AluImmOp::Srai,
    ];

    /// Mnemonic used by the assembler and disassembler.
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluImmOp::Addi => "addi",
            AluImmOp::Andi => "andi",
            AluImmOp::Ori => "ori",
            AluImmOp::Xori => "xori",
            AluImmOp::Slli => "slli",
            AluImmOp::Srli => "srli",
            AluImmOp::Srai => "srai",
        }
    }

    /// Whether the immediate is a shift amount restricted to `0..16`.
    pub fn is_shift(self) -> bool {
        matches!(self, AluImmOp::Slli | AluImmOp::Srli | AluImmOp::Srai)
    }
}

/// Branch comparison condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchCond {
    /// Taken when `ra == rb`.
    Eq,
    /// Taken when `ra != rb`.
    Ne,
    /// Taken when `ra < rb` (signed).
    Lt,
    /// Taken when `ra >= rb` (signed).
    Ge,
    /// Taken when `ra < rb` (unsigned).
    Ltu,
    /// Taken when `ra >= rb` (unsigned).
    Geu,
}

impl BranchCond {
    /// All conditions, in opcode order.
    pub const ALL: [BranchCond; 6] = [
        BranchCond::Eq,
        BranchCond::Ne,
        BranchCond::Lt,
        BranchCond::Ge,
        BranchCond::Ltu,
        BranchCond::Geu,
    ];

    /// Mnemonic used by the assembler and disassembler.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BranchCond::Eq => "beq",
            BranchCond::Ne => "bne",
            BranchCond::Lt => "blt",
            BranchCond::Ge => "bge",
            BranchCond::Ltu => "bltu",
            BranchCond::Geu => "bgeu",
        }
    }

    /// Evaluates the condition on two 16-bit register values.
    ///
    /// # Example
    ///
    /// ```
    /// use wbsn_isa::BranchCond;
    ///
    /// assert!(BranchCond::Lt.eval(0xFFFF, 1)); // -1 < 1 signed
    /// assert!(!BranchCond::Ltu.eval(0xFFFF, 1)); // 65535 > 1 unsigned
    /// ```
    pub fn eval(self, a: u16, b: u16) -> bool {
        match self {
            BranchCond::Eq => a == b,
            BranchCond::Ne => a != b,
            BranchCond::Lt => (a as i16) < (b as i16),
            BranchCond::Ge => (a as i16) >= (b as i16),
            BranchCond::Ltu => a < b,
            BranchCond::Geu => a >= b,
        }
    }
}

/// Selector for the three synchronization-point instructions of the ISE.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SyncKind {
    /// `SINC(#lit)`: set the issuing core's flag and increment the counter.
    Inc,
    /// `SDEC(#lit)`: decrement the counter, flags untouched.
    Dec,
    /// `SNOP(#lit)`: set the issuing core's flag, counter untouched.
    Nop,
}

impl SyncKind {
    /// Mnemonic used by the assembler and disassembler.
    pub fn mnemonic(self) -> &'static str {
        match self {
            SyncKind::Inc => "sinc",
            SyncKind::Dec => "sdec",
            SyncKind::Nop => "snop",
        }
    }
}

/// Largest synchronization-point literal encodable in a sync instruction.
pub const MAX_SYNC_POINT: u16 = (1 << 12) - 1;

/// A decoded instruction of the WBSN 16-bit RISC ISA with the
/// synchronization instruction-set extension.
///
/// Construct values either directly or through the convenience
/// constructors ([`Instr::add`], [`Instr::addi`], …), which are what the
/// code generators in downstream crates use.
///
/// # Example
///
/// ```
/// use wbsn_isa::{Instr, Reg};
///
/// let i = Instr::add(Reg::R1, Reg::R2, Reg::R3);
/// let word = i.encode()?;
/// assert_eq!(Instr::decode(word)?, i);
/// # Ok::<(), wbsn_isa::IsaError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instr {
    /// No operation.
    Nop,
    /// Stop the issuing core permanently (simulation end marker).
    Halt,
    /// Request clock gating from the synchronizer until the next
    /// synchronization event or subscribed interrupt.
    Sleep,
    /// A synchronization-point instruction (`SINC`/`SDEC`/`SNOP`).
    Sync {
        /// Which of the three point updates to perform.
        kind: SyncKind,
        /// Synchronization-point literal (`#lit` in the paper).
        point: u16,
    },
    /// Register-register ALU operation.
    Alu {
        /// Operation selector.
        op: AluOp,
        /// Destination register.
        rd: Reg,
        /// First operand.
        ra: Reg,
        /// Second operand.
        rb: Reg,
    },
    /// Register copy: `rd = ra`.
    Mov {
        /// Destination register.
        rd: Reg,
        /// Source register.
        ra: Reg,
    },
    /// Absolute value: `rd = |ra|` (signed; `-32768` saturates to `32767`).
    Abs {
        /// Destination register.
        rd: Reg,
        /// Source register.
        ra: Reg,
    },
    /// Register-immediate ALU operation.
    AluImm {
        /// Operation selector.
        op: AluImmOp,
        /// Destination register.
        rd: Reg,
        /// Source register.
        ra: Reg,
        /// 12-bit immediate (interpretation depends on `op`).
        imm: i16,
    },
    /// Load a sign-extended 15-bit immediate: `rd = sext(imm15)`.
    Li {
        /// Destination register.
        rd: Reg,
        /// Immediate in `-16384..=16383`.
        imm: i16,
    },
    /// Load upper immediate: `rd = imm8 << 8`.
    Lui {
        /// Destination register.
        rd: Reg,
        /// High byte.
        imm: u8,
    },
    /// Load word: `rd = dm[ra + sext(off12)]`.
    Lw {
        /// Destination register.
        rd: Reg,
        /// Base address register.
        ra: Reg,
        /// Signed word offset.
        off: i16,
    },
    /// Store word: `dm[ra + sext(off12)] = rs`.
    Sw {
        /// Source register holding the value to store.
        rs: Reg,
        /// Base address register.
        ra: Reg,
        /// Signed word offset.
        off: i16,
    },
    /// Conditional branch to `pc + 1 + off`.
    Branch {
        /// Comparison condition.
        cond: BranchCond,
        /// First compared register.
        ra: Reg,
        /// Second compared register.
        rb: Reg,
        /// Signed word offset from `pc + 1`.
        off: i16,
    },
    /// Unconditional jump to `pc + 1 + off` (18-bit signed offset).
    Jmp {
        /// Signed word offset from `pc + 1`.
        off: i32,
    },
    /// Jump and link: `rd = pc + 1; pc = pc + 1 + off`.
    Jal {
        /// Link destination register.
        rd: Reg,
        /// Signed word offset from `pc + 1`.
        off: i16,
    },
    /// Jump to the address in `ra`.
    Jr {
        /// Register holding the target address.
        ra: Reg,
    },
}

// Opcode constants (bits 23..18 of the instruction word).
const OP_NOP: u8 = 0x00;
const OP_HALT: u8 = 0x01;
const OP_SLEEP: u8 = 0x02;
const OP_SINC: u8 = 0x04;
const OP_SDEC: u8 = 0x05;
const OP_SNOP: u8 = 0x06;
const OP_ALU_BASE: u8 = 0x08; // 0x08..=0x15
const OP_MOV: u8 = 0x16;
const OP_ABS: u8 = 0x17;
const OP_ALUI_BASE: u8 = 0x18; // 0x18..=0x1E
const OP_LI: u8 = 0x20;
const OP_LUI: u8 = 0x21;
const OP_LW: u8 = 0x22;
const OP_SW: u8 = 0x23;
const OP_BRANCH_BASE: u8 = 0x28; // 0x28..=0x2D
const OP_JMP: u8 = 0x30;
const OP_JAL: u8 = 0x31;
const OP_JR: u8 = 0x32;

#[inline]
fn sext(value: u32, bits: u32) -> i32 {
    let shift = 32 - bits;
    ((value << shift) as i32) >> shift
}

#[inline]
fn check_signed(field: &'static str, value: i64, bits: u32) -> Result<u32, EncodeError> {
    let min = -(1i64 << (bits - 1));
    let max = (1i64 << (bits - 1)) - 1;
    if value < min || value > max {
        return Err(EncodeError::range(field, value, min, max));
    }
    Ok((value as u32) & ((1u32 << bits) - 1))
}

#[inline]
fn check_unsigned(field: &'static str, value: i64, bits: u32) -> Result<u32, EncodeError> {
    let max = (1i64 << bits) - 1;
    if value < 0 || value > max {
        return Err(EncodeError::range(field, value, 0, max));
    }
    Ok(value as u32)
}

impl Instr {
    // --- convenience constructors -------------------------------------

    /// `rd = ra + rb`.
    pub fn add(rd: Reg, ra: Reg, rb: Reg) -> Instr {
        Instr::Alu {
            op: AluOp::Add,
            rd,
            ra,
            rb,
        }
    }

    /// `rd = ra - rb`.
    pub fn sub(rd: Reg, ra: Reg, rb: Reg) -> Instr {
        Instr::Alu {
            op: AluOp::Sub,
            rd,
            ra,
            rb,
        }
    }

    /// `rd = min(ra, rb)` signed.
    pub fn min(rd: Reg, ra: Reg, rb: Reg) -> Instr {
        Instr::Alu {
            op: AluOp::Min,
            rd,
            ra,
            rb,
        }
    }

    /// `rd = max(ra, rb)` signed.
    pub fn max(rd: Reg, ra: Reg, rb: Reg) -> Instr {
        Instr::Alu {
            op: AluOp::Max,
            rd,
            ra,
            rb,
        }
    }

    /// `rd = ra + sext(imm)`.
    pub fn addi(rd: Reg, ra: Reg, imm: i16) -> Instr {
        Instr::AluImm {
            op: AluImmOp::Addi,
            rd,
            ra,
            imm,
        }
    }

    /// `rd = ra >> imm` arithmetic.
    pub fn srai(rd: Reg, ra: Reg, imm: i16) -> Instr {
        Instr::AluImm {
            op: AluImmOp::Srai,
            rd,
            ra,
            imm,
        }
    }

    /// `rd = dm[ra + off]`.
    pub fn lw(rd: Reg, ra: Reg, off: i16) -> Instr {
        Instr::Lw { rd, ra, off }
    }

    /// `dm[ra + off] = rs`.
    pub fn sw(rs: Reg, ra: Reg, off: i16) -> Instr {
        Instr::Sw { rs, ra, off }
    }

    /// `SINC(#point)`.
    pub fn sinc(point: u16) -> Instr {
        Instr::Sync {
            kind: SyncKind::Inc,
            point,
        }
    }

    /// `SDEC(#point)`.
    pub fn sdec(point: u16) -> Instr {
        Instr::Sync {
            kind: SyncKind::Dec,
            point,
        }
    }

    /// `SNOP(#point)`.
    pub fn snop(point: u16) -> Instr {
        Instr::Sync {
            kind: SyncKind::Nop,
            point,
        }
    }

    // --- classification helpers ---------------------------------------

    /// Whether this is one of the synchronization ISE instructions
    /// (`SINC`, `SDEC`, `SNOP` or `SLEEP`).
    ///
    /// Table I's *code overhead* is the fraction of such instructions in
    /// the placed binary, and the *run-time overhead* their share of the
    /// executed active cycles.
    pub fn is_sync_ise(&self) -> bool {
        matches!(self, Instr::Sync { .. } | Instr::Sleep)
    }

    /// Whether the instruction may redirect control flow.
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            Instr::Branch { .. } | Instr::Jmp { .. } | Instr::Jal { .. } | Instr::Jr { .. }
        )
    }

    /// The register written by this instruction, if any.
    pub fn dest(&self) -> Option<Reg> {
        match *self {
            Instr::Alu { rd, .. }
            | Instr::Mov { rd, .. }
            | Instr::Abs { rd, .. }
            | Instr::AluImm { rd, .. }
            | Instr::Li { rd, .. }
            | Instr::Lui { rd, .. }
            | Instr::Lw { rd, .. }
            | Instr::Jal { rd, .. } => Some(rd),
            _ => None,
        }
    }

    /// The registers read by this instruction (up to two).
    pub fn sources(&self) -> [Option<Reg>; 2] {
        match *self {
            Instr::Alu { ra, rb, .. } | Instr::Branch { ra, rb, .. } => [Some(ra), Some(rb)],
            Instr::Mov { ra, .. }
            | Instr::Abs { ra, .. }
            | Instr::AluImm { ra, .. }
            | Instr::Lw { ra, .. }
            | Instr::Jr { ra } => [Some(ra), None],
            Instr::Sw { rs, ra, .. } => [Some(rs), Some(ra)],
            _ => [None, None],
        }
    }

    // --- binary encoding ----------------------------------------------

    /// Encodes the instruction into its 24-bit binary word.
    ///
    /// # Errors
    ///
    /// Returns [`EncodeError`] when an immediate, offset or
    /// synchronization-point literal does not fit its field.
    pub fn encode(&self) -> Result<u32, EncodeError> {
        let op = |o: u8| (o as u32) << 18;
        let rd3 = |r: Reg| (r.index() as u32) << 15;
        let ra3 = |r: Reg| (r.index() as u32) << 12;
        let rb3 = |r: Reg| (r.index() as u32) << 9;
        let word = match *self {
            Instr::Nop => op(OP_NOP),
            Instr::Halt => op(OP_HALT),
            Instr::Sleep => op(OP_SLEEP),
            Instr::Sync { kind, point } => {
                let o = match kind {
                    SyncKind::Inc => OP_SINC,
                    SyncKind::Dec => OP_SDEC,
                    SyncKind::Nop => OP_SNOP,
                };
                op(o) | check_unsigned("point", point as i64, 12)?
            }
            Instr::Alu {
                op: alu,
                rd,
                ra,
                rb,
            } => {
                let o = OP_ALU_BASE + AluOp::ALL.iter().position(|&x| x == alu).unwrap() as u8;
                op(o) | rd3(rd) | ra3(ra) | rb3(rb)
            }
            Instr::Mov { rd, ra } => op(OP_MOV) | rd3(rd) | ra3(ra),
            Instr::Abs { rd, ra } => op(OP_ABS) | rd3(rd) | ra3(ra),
            Instr::AluImm {
                op: alu,
                rd,
                ra,
                imm,
            } => {
                let o = OP_ALUI_BASE + AluImmOp::ALL.iter().position(|&x| x == alu).unwrap() as u8;
                let field = if alu.is_shift() {
                    check_unsigned("shamt", imm as i64, 4)?
                } else if alu == AluImmOp::Addi {
                    check_signed("imm", imm as i64, 12)?
                } else {
                    check_unsigned("imm", imm as i64, 12)?
                };
                op(o) | rd3(rd) | ra3(ra) | field
            }
            Instr::Li { rd, imm } => op(OP_LI) | rd3(rd) | check_signed("imm", imm as i64, 15)?,
            Instr::Lui { rd, imm } => op(OP_LUI) | rd3(rd) | imm as u32,
            Instr::Lw { rd, ra, off } => {
                op(OP_LW) | rd3(rd) | ra3(ra) | check_signed("off", off as i64, 12)?
            }
            Instr::Sw { rs, ra, off } => {
                op(OP_SW) | rd3(rs) | ra3(ra) | check_signed("off", off as i64, 12)?
            }
            Instr::Branch { cond, ra, rb, off } => {
                let o =
                    OP_BRANCH_BASE + BranchCond::ALL.iter().position(|&x| x == cond).unwrap() as u8;
                op(o) | rd3(ra) | ra3(rb) | check_signed("off", off as i64, 12)?
            }
            Instr::Jmp { off } => op(OP_JMP) | check_signed("off", off as i64, 18)?,
            Instr::Jal { rd, off } => op(OP_JAL) | rd3(rd) | check_signed("off", off as i64, 15)?,
            Instr::Jr { ra } => op(OP_JR) | rd3(ra),
        };
        debug_assert_eq!(word & !INSTR_MASK, 0);
        Ok(word)
    }

    /// Decodes a 24-bit binary word back into an instruction.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] when the word is wider than 24 bits or the
    /// opcode is not assigned.
    pub fn decode(word: u32) -> Result<Instr, DecodeError> {
        if word & !INSTR_MASK != 0 {
            return Err(DecodeError::wide_word(word));
        }
        let opcode = (word >> 18) as u8;
        let rd = Reg::from_bits3(word >> 15);
        let ra = Reg::from_bits3(word >> 12);
        let rb = Reg::from_bits3(word >> 9);
        let imm12 = sext(word & 0xFFF, 12) as i16;
        let instr = match opcode {
            OP_NOP => Instr::Nop,
            OP_HALT => Instr::Halt,
            OP_SLEEP => Instr::Sleep,
            OP_SINC | OP_SDEC | OP_SNOP => {
                let kind = match opcode {
                    OP_SINC => SyncKind::Inc,
                    OP_SDEC => SyncKind::Dec,
                    _ => SyncKind::Nop,
                };
                Instr::Sync {
                    kind,
                    point: (word & 0xFFF) as u16,
                }
            }
            o if (OP_ALU_BASE..OP_ALU_BASE + 14).contains(&o) => Instr::Alu {
                op: AluOp::ALL[(o - OP_ALU_BASE) as usize],
                rd,
                ra,
                rb,
            },
            OP_MOV => Instr::Mov { rd, ra },
            OP_ABS => Instr::Abs { rd, ra },
            o if (OP_ALUI_BASE..OP_ALUI_BASE + 7).contains(&o) => {
                let op = AluImmOp::ALL[(o - OP_ALUI_BASE) as usize];
                let imm = if op.is_shift() {
                    (word & 0xF) as i16
                } else if op == AluImmOp::Addi {
                    imm12
                } else {
                    (word & 0xFFF) as i16
                };
                Instr::AluImm { op, rd, ra, imm }
            }
            OP_LI => Instr::Li {
                rd,
                imm: sext(word & 0x7FFF, 15) as i16,
            },
            OP_LUI => Instr::Lui {
                rd,
                imm: (word & 0xFF) as u8,
            },
            OP_LW => Instr::Lw { rd, ra, off: imm12 },
            OP_SW => Instr::Sw {
                rs: rd,
                ra,
                off: imm12,
            },
            o if (OP_BRANCH_BASE..OP_BRANCH_BASE + 6).contains(&o) => Instr::Branch {
                cond: BranchCond::ALL[(o - OP_BRANCH_BASE) as usize],
                ra: rd,
                rb: ra,
                off: imm12,
            },
            OP_JMP => Instr::Jmp {
                off: sext(word & 0x3FFFF, 18),
            },
            OP_JAL => Instr::Jal {
                rd,
                off: sext(word & 0x7FFF, 15) as i16,
            },
            OP_JR => Instr::Jr { ra: rd },
            _ => return Err(DecodeError::unknown_opcode(word, opcode)),
        };
        Ok(instr)
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Instr::Nop => f.write_str("nop"),
            Instr::Halt => f.write_str("halt"),
            Instr::Sleep => f.write_str("sleep"),
            Instr::Sync { kind, point } => write!(f, "{} {}", kind.mnemonic(), point),
            Instr::Alu { op, rd, ra, rb } => {
                write!(f, "{} {rd}, {ra}, {rb}", op.mnemonic())
            }
            Instr::Mov { rd, ra } => write!(f, "mov {rd}, {ra}"),
            Instr::Abs { rd, ra } => write!(f, "abs {rd}, {ra}"),
            Instr::AluImm { op, rd, ra, imm } => {
                write!(f, "{} {rd}, {ra}, {imm}", op.mnemonic())
            }
            Instr::Li { rd, imm } => write!(f, "li {rd}, {imm}"),
            Instr::Lui { rd, imm } => write!(f, "lui {rd}, {imm}"),
            Instr::Lw { rd, ra, off } => write!(f, "lw {rd}, {off}({ra})"),
            Instr::Sw { rs, ra, off } => write!(f, "sw {rs}, {off}({ra})"),
            Instr::Branch { cond, ra, rb, off } => {
                write!(f, "{} {ra}, {rb}, {off}", cond.mnemonic())
            }
            Instr::Jmp { off } => write!(f, "jmp {off}"),
            Instr::Jal { rd, off } => write!(f, "jal {rd}, {off}"),
            Instr::Jr { ra } => write!(f, "jr {ra}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(i: Instr) {
        let word = i.encode().unwrap_or_else(|e| panic!("encode {i}: {e}"));
        assert!(word <= INSTR_MASK);
        let back = Instr::decode(word).unwrap_or_else(|e| panic!("decode {i}: {e}"));
        assert_eq!(back, i, "word {word:#08x}");
    }

    #[test]
    fn round_trip_all_families() {
        round_trip(Instr::Nop);
        round_trip(Instr::Halt);
        round_trip(Instr::Sleep);
        for kind in [SyncKind::Inc, SyncKind::Dec, SyncKind::Nop] {
            round_trip(Instr::Sync { kind, point: 0 });
            round_trip(Instr::Sync { kind, point: 4095 });
        }
        for op in AluOp::ALL {
            round_trip(Instr::Alu {
                op,
                rd: Reg::R1,
                ra: Reg::R6,
                rb: Reg::R3,
            });
        }
        round_trip(Instr::Mov {
            rd: Reg::R2,
            ra: Reg::R5,
        });
        round_trip(Instr::Abs {
            rd: Reg::R4,
            ra: Reg::R4,
        });
        for op in AluImmOp::ALL {
            let imm = if op.is_shift() { 15 } else { 7 };
            round_trip(Instr::AluImm {
                op,
                rd: Reg::R0,
                ra: Reg::R7,
                imm,
            });
        }
        round_trip(Instr::addi(Reg::R1, Reg::R1, -2048));
        round_trip(Instr::Li {
            rd: Reg::R3,
            imm: -16384,
        });
        round_trip(Instr::Li {
            rd: Reg::R3,
            imm: 16383,
        });
        round_trip(Instr::Lui {
            rd: Reg::R3,
            imm: 0xAB,
        });
        round_trip(Instr::lw(Reg::R1, Reg::R2, -7));
        round_trip(Instr::sw(Reg::R1, Reg::R2, 2047));
        for cond in BranchCond::ALL {
            round_trip(Instr::Branch {
                cond,
                ra: Reg::R5,
                rb: Reg::R1,
                off: -100,
            });
        }
        round_trip(Instr::Jmp { off: -131072 });
        round_trip(Instr::Jmp { off: 131071 });
        round_trip(Instr::Jal {
            rd: Reg::R7,
            off: 1234,
        });
        round_trip(Instr::Jr { ra: Reg::R7 });
    }

    #[test]
    fn encode_rejects_out_of_range_fields() {
        assert!(Instr::addi(Reg::R0, Reg::R0, 2048).encode().is_err());
        assert!(Instr::addi(Reg::R0, Reg::R0, -2049).encode().is_err());
        assert!(Instr::Li {
            rd: Reg::R0,
            imm: 16384
        }
        .encode()
        .is_err());
        assert!(Instr::Sync {
            kind: SyncKind::Inc,
            point: 4096
        }
        .encode()
        .is_err());
        assert!(Instr::AluImm {
            op: AluImmOp::Slli,
            rd: Reg::R0,
            ra: Reg::R0,
            imm: 16
        }
        .encode()
        .is_err());
        assert!(Instr::Jmp { off: 1 << 17 }.encode().is_err());
    }

    #[test]
    fn decode_rejects_bad_words() {
        assert!(Instr::decode(0x0100_0000).is_err());
        // Opcode 0x3F is unassigned.
        assert!(Instr::decode(0x3Fu32 << 18).is_err());
        assert!(Instr::decode(0x03u32 << 18).is_err());
    }

    #[test]
    fn dest_and_sources_classification() {
        let i = Instr::add(Reg::R1, Reg::R2, Reg::R3);
        assert_eq!(i.dest(), Some(Reg::R1));
        assert_eq!(i.sources(), [Some(Reg::R2), Some(Reg::R3)]);

        let s = Instr::sw(Reg::R4, Reg::R5, 0);
        assert_eq!(s.dest(), None);
        assert_eq!(s.sources(), [Some(Reg::R4), Some(Reg::R5)]);

        assert!(Instr::sinc(3).is_sync_ise());
        assert!(Instr::Sleep.is_sync_ise());
        assert!(!Instr::Nop.is_sync_ise());
        assert!(Instr::Jmp { off: 0 }.is_control());
    }

    #[test]
    fn branch_cond_eval_signedness() {
        assert!(BranchCond::Ge.eval(0, 0));
        assert!(BranchCond::Lt.eval(0x8000, 0)); // -32768 < 0
        assert!(BranchCond::Geu.eval(0x8000, 0));
        assert!(BranchCond::Eq.eval(42, 42));
        assert!(BranchCond::Ne.eval(42, 43));
    }

    #[test]
    fn display_forms() {
        assert_eq!(
            Instr::add(Reg::R1, Reg::R2, Reg::R3).to_string(),
            "add r1, r2, r3"
        );
        assert_eq!(Instr::lw(Reg::R1, Reg::R2, -3).to_string(), "lw r1, -3(r2)");
        assert_eq!(Instr::sinc(7).to_string(), "sinc 7");
        assert_eq!(Instr::Sleep.to_string(), "sleep");
    }
}
