//! Static checks over assembled programs.
//!
//! The tool-chain's last line of defence before load time: catches the
//! mistakes that are cheap to detect statically and expensive to debug
//! on the platform — control transfers that leave the section,
//! synchronization-point literals outside the configured range,
//! registers read before ever being written, and `SLEEP` in a program
//! that never registers for any wake-up source.

use std::fmt;

use crate::instr::Instr;
use crate::program::Program;
use crate::reg::Reg;

/// One finding of the [`lint`] pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LintWarning {
    /// A branch or jump targets an address outside the program.
    ControlOutOfRange {
        /// Program-relative address of the instruction.
        pc: usize,
        /// The (program-relative) target it computes.
        target: i64,
    },
    /// A synchronization instruction uses a point beyond the configured
    /// count.
    SyncPointOutOfRange {
        /// Program-relative address of the instruction.
        pc: usize,
        /// The out-of-range literal.
        point: u16,
    },
    /// A register is read on the straight-line path from entry before
    /// any instruction writes it.
    ReadBeforeWrite {
        /// Program-relative address of the first offending read.
        pc: usize,
        /// The register read.
        reg: Reg,
    },
    /// The program sleeps but never issues `SNOP`/`SINC` and never
    /// writes the interrupt-subscription register — nothing can ever
    /// wake it.
    SleepWithoutWakeSource {
        /// Program-relative address of the first `SLEEP`.
        pc: usize,
    },
}

impl fmt::Display for LintWarning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LintWarning::ControlOutOfRange { pc, target } => {
                write!(
                    f,
                    "pc {pc}: control transfer to {target} leaves the program"
                )
            }
            LintWarning::SyncPointOutOfRange { pc, point } => {
                write!(f, "pc {pc}: synchronization point {point} out of range")
            }
            LintWarning::ReadBeforeWrite { pc, reg } => {
                write!(f, "pc {pc}: {reg} read before any write")
            }
            LintWarning::SleepWithoutWakeSource { pc } => {
                write!(f, "pc {pc}: SLEEP but no wake source is ever registered")
            }
        }
    }
}

/// Configuration of the lint pass.
#[derive(Debug, Clone, Copy)]
pub struct LintConfig {
    /// Number of synchronization points the platform is configured with.
    pub sync_points: u16,
    /// Address of the memory-mapped interrupt-subscription register
    /// (stores through a register are assumed to possibly hit it, so
    /// only a *complete absence* of stores triggers the sleep warning).
    pub subscribe_addr: u16,
}

impl Default for LintConfig {
    fn default() -> Self {
        LintConfig {
            sync_points: 16,
            subscribe_addr: 0x7F20,
        }
    }
}

/// Runs every check over a program and returns the findings in program
/// order.
///
/// These are warnings, not errors: generated code may legitimately
/// confuse the straight-line read-before-write heuristic, so callers
/// (like `wbsn-asm --lint`) surface rather than reject.
///
/// # Example
///
/// ```
/// use wbsn_isa::{assemble_text, lint};
///
/// let p = assemble_text("sinc 99\nhalt\n")?;
/// let warnings = lint::lint(&p, &lint::LintConfig::default());
/// assert_eq!(warnings.len(), 1);
/// # Ok::<(), wbsn_isa::IsaError>(())
/// ```
pub fn lint(program: &Program, config: &LintConfig) -> Vec<LintWarning> {
    let mut warnings = Vec::new();
    let len = program.len() as i64;
    let instrs = program.instrs();

    // Pass 1: per-instruction range checks.
    for (pc, instr) in instrs.iter().enumerate() {
        let target = match *instr {
            Instr::Branch { off, .. } => Some(pc as i64 + 1 + off as i64),
            Instr::Jmp { off } => Some(pc as i64 + 1 + off as i64),
            Instr::Jal { off, .. } => Some(pc as i64 + 1 + off as i64),
            _ => None,
        };
        if let Some(target) = target {
            if target < 0 || target >= len {
                warnings.push(LintWarning::ControlOutOfRange { pc, target });
            }
        }
        if let Instr::Sync { point, .. } = *instr {
            if point >= config.sync_points {
                warnings.push(LintWarning::SyncPointOutOfRange { pc, point });
            }
        }
    }

    // Pass 2: straight-line read-before-write from the entry, stopping
    // at the first control transfer (a conservative prefix analysis:
    // everything it flags really executes on the entry path).
    let mut written = [false; 8];
    let mut flagged = [false; 8];
    for (pc, instr) in instrs.iter().enumerate() {
        for src in instr.sources().into_iter().flatten() {
            if !written[src.index()] && !flagged[src.index()] {
                flagged[src.index()] = true;
                warnings.push(LintWarning::ReadBeforeWrite { pc, reg: src });
            }
        }
        if let Some(dest) = instr.dest() {
            written[dest.index()] = true;
        }
        if instr.is_control() || matches!(instr, Instr::Halt | Instr::Sleep) {
            break;
        }
    }

    // Pass 3: SLEEP reachability of a wake source.
    let first_sleep = instrs.iter().position(|i| matches!(i, Instr::Sleep));
    if let Some(pc) = first_sleep {
        let registers_point = instrs.iter().any(|i| {
            matches!(
                i,
                Instr::Sync {
                    kind: crate::instr::SyncKind::Nop | crate::instr::SyncKind::Inc,
                    ..
                }
            )
        });
        let stores_anywhere = instrs.iter().any(|i| matches!(i, Instr::Sw { .. }));
        if !registers_point && !stores_anywhere {
            warnings.push(LintWarning::SleepWithoutWakeSource { pc });
        }
    }

    warnings.sort_by_key(|w| match w {
        LintWarning::ControlOutOfRange { pc, .. }
        | LintWarning::SyncPointOutOfRange { pc, .. }
        | LintWarning::ReadBeforeWrite { pc, .. }
        | LintWarning::SleepWithoutWakeSource { pc } => *pc,
    });
    warnings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble_text;

    fn check(src: &str) -> Vec<LintWarning> {
        lint(
            &assemble_text(src).expect("assembles"),
            &LintConfig::default(),
        )
    }

    #[test]
    fn clean_program_has_no_warnings() {
        let w = check("li r1, 3\nloop: addi r1, r1, -1\nbne r1, r0, loop\nsinc 0\nsdec 0\nhalt\n");
        // r0 is read before write (the zero-register convention), which
        // the heuristic intentionally reports for hand-written sources
        // that forgot the prologue.
        assert_eq!(w.len(), 1);
        assert!(matches!(
            w[0],
            LintWarning::ReadBeforeWrite { reg: Reg::R0, .. }
        ));
    }

    #[test]
    fn detects_out_of_range_control() {
        let w = check("jmp 100\nhalt\n");
        assert!(w
            .iter()
            .any(|w| matches!(w, LintWarning::ControlOutOfRange { pc: 0, target: 101 })));
        let w = check("beq r0, r0, -5\nhalt\n");
        assert!(w
            .iter()
            .any(|w| matches!(w, LintWarning::ControlOutOfRange { .. })));
    }

    #[test]
    fn detects_out_of_range_sync_points() {
        let w = check("sinc 16\nhalt\n");
        assert!(w
            .iter()
            .any(|w| matches!(w, LintWarning::SyncPointOutOfRange { point: 16, .. })));
        // In range is fine.
        let w = check("li r0, 0\nsinc 15\nhalt\n");
        assert!(w.is_empty());
    }

    #[test]
    fn detects_read_before_write_on_the_entry_path() {
        let w = check("add r3, r1, r2\nhalt\n");
        let regs: Vec<Reg> = w
            .iter()
            .filter_map(|w| match w {
                LintWarning::ReadBeforeWrite { reg, .. } => Some(*reg),
                _ => None,
            })
            .collect();
        assert_eq!(regs, vec![Reg::R1, Reg::R2]);
    }

    #[test]
    fn detects_unwakeable_sleep() {
        let w = check("li r0, 0\nsleep\nhalt\n");
        assert!(w
            .iter()
            .any(|w| matches!(w, LintWarning::SleepWithoutWakeSource { pc: 1 })));
        // A SNOP or any store (potential subscription) silences it.
        let w = check("li r0, 0\nsnop 0\nsleep\nhalt\n");
        assert!(w.is_empty());
        let w = check("li r0, 0\nli r1, 1\nsw r1, 0x40(r0)\nsleep\nhalt\n");
        assert!(w.is_empty());
    }

    #[test]
    fn warnings_display_with_pcs() {
        let w = check("sinc 99\nhalt\n");
        assert!(w[0].to_string().contains("pc 0"));
    }
}
