//! Binary serialization of linked images.
//!
//! A [`LinkedImage`] can be saved to a compact binary
//! container and loaded back — the hand-off format between the
//! tool-chain binaries (`wbsn-asm`) and the platform runner (`wbsn-run`).
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic  "WBSN"            4 bytes
//! version u16              currently 1
//! sections u16             count
//!   per section: name_len u8, name bytes, base u32, len u32,
//!                len × u32 instruction words
//! entries u8               count
//!   per entry: core u8, addr u32
//! dm_init u32              count
//!   per word: addr u32, value u16
//! ```

use std::error::Error;
use std::fmt;

use crate::link::{LinkedImage, Linker, Section};
use crate::program::Program;
use crate::Instr;

/// Magic prefix of the container.
pub const MAGIC: &[u8; 4] = b"WBSN";

/// Container format version written by this crate.
pub const VERSION: u16 = 1;

/// Errors raised while reading an image container.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ImageFormatError {
    /// The buffer does not start with the `WBSN` magic.
    BadMagic,
    /// The container version is not supported.
    BadVersion(u16),
    /// The buffer ended before the declared content.
    Truncated,
    /// A section name is not valid UTF-8.
    BadSectionName,
    /// A stored instruction word does not decode.
    BadInstruction {
        /// The address of the bad word.
        addr: u32,
    },
    /// Rebuilding the image failed (overlap, bank overflow, …).
    Link(crate::LinkError),
}

impl fmt::Display for ImageFormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImageFormatError::BadMagic => f.write_str("not a WBSN image (bad magic)"),
            ImageFormatError::BadVersion(v) => write!(f, "unsupported image version {v}"),
            ImageFormatError::Truncated => f.write_str("image truncated"),
            ImageFormatError::BadSectionName => f.write_str("section name is not UTF-8"),
            ImageFormatError::BadInstruction { addr } => {
                write!(f, "undecodable instruction word at {addr:#06x}")
            }
            ImageFormatError::Link(e) => write!(f, "image re-link failed: {e}"),
        }
    }
}

impl Error for ImageFormatError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ImageFormatError::Link(e) => Some(e),
            _ => None,
        }
    }
}

/// Serializes a linked image into the container format.
///
/// # Example
///
/// ```
/// use wbsn_isa::{assemble_text, image, Linker, Section};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut linker = Linker::new();
/// linker.add_section(Section::new("main", assemble_text("halt\n")?));
/// linker.set_entry(0, "main");
/// let original = linker.link()?;
/// let bytes = image::to_bytes(&original);
/// let restored = image::from_bytes(&bytes)?;
/// assert_eq!(restored.entry(0), original.entry(0));
/// # Ok(())
/// # }
/// ```
pub fn to_bytes(image: &LinkedImage) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    let sections = image.sections();
    out.extend_from_slice(&(sections.len() as u16).to_le_bytes());
    for section in sections {
        let name = section.name.as_bytes();
        out.push(name.len().min(255) as u8);
        out.extend_from_slice(&name[..name.len().min(255)]);
        out.extend_from_slice(&section.base.to_le_bytes());
        out.extend_from_slice(&(section.len as u32).to_le_bytes());
        for offset in 0..section.len {
            let word = image.instr_word(section.base + offset as u32);
            out.extend_from_slice(&word.to_le_bytes());
        }
    }
    let entries: Vec<(usize, u32)> = image.entries().collect();
    out.push(entries.len() as u8);
    for (core, addr) in entries {
        out.push(core as u8);
        out.extend_from_slice(&addr.to_le_bytes());
    }
    let init: Vec<(u32, u16)> = image.dm_init().collect();
    out.extend_from_slice(&(init.len() as u32).to_le_bytes());
    for (addr, word) in init {
        out.extend_from_slice(&addr.to_le_bytes());
        out.extend_from_slice(&word.to_le_bytes());
    }
    out
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ImageFormatError> {
        if self.pos + n > self.buf.len() {
            return Err(ImageFormatError::Truncated);
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, ImageFormatError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ImageFormatError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len 2")))
    }

    fn u32(&mut self) -> Result<u32, ImageFormatError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }
}

/// Reads an image container back into a [`LinkedImage`].
///
/// # Errors
///
/// Returns [`ImageFormatError`] for malformed containers, undecodable
/// instruction words, or contents that no longer fit the memory
/// geometry.
pub fn from_bytes(bytes: &[u8]) -> Result<LinkedImage, ImageFormatError> {
    let mut r = Reader { buf: bytes, pos: 0 };
    if r.take(4)? != MAGIC {
        return Err(ImageFormatError::BadMagic);
    }
    let version = r.u16()?;
    if version != VERSION {
        return Err(ImageFormatError::BadVersion(version));
    }
    let mut linker = Linker::new();
    let sections = r.u16()?;
    let mut loaded: Vec<(String, u32, Vec<Instr>)> = Vec::new();
    for _ in 0..sections {
        let name_len = r.u8()? as usize;
        let name = std::str::from_utf8(r.take(name_len)?)
            .map_err(|_| ImageFormatError::BadSectionName)?
            .to_string();
        let base = r.u32()?;
        let len = r.u32()? as usize;
        let mut instrs = Vec::with_capacity(len);
        for offset in 0..len {
            let word = r.u32()?;
            let instr = Instr::decode(word).map_err(|_| ImageFormatError::BadInstruction {
                addr: base + offset as u32,
            })?;
            instrs.push(instr);
        }
        loaded.push((name, base, instrs));
    }
    // Re-place each section exactly where it was: pin it to its bank and
    // declare sections in ascending base order, which is the order the
    // linker packs a bank in.
    loaded.sort_by_key(|(_, base, _)| *base);
    let mut placed: Vec<(String, u32)> = Vec::new();
    for (name, base, instrs) in loaded {
        placed.push((name.clone(), base));
        linker.add_section(Section::in_bank(
            name,
            Program::from_instrs(instrs),
            base as usize / crate::mem::IM_BANK_WORDS,
        ));
    }
    let entries = r.u8()?;
    let mut entry_pairs = Vec::new();
    for _ in 0..entries {
        let core = r.u8()? as usize;
        let addr = r.u32()?;
        entry_pairs.push((core, addr));
    }
    let init_count = r.u32()?;
    for _ in 0..init_count {
        let addr = r.u32()?;
        let word = r.u16()?;
        linker.add_data(crate::link::DataSegment::new(addr, vec![word]));
    }
    // Entries are stored by address; map them back to sections.
    for (core, addr) in entry_pairs {
        let section = placed
            .iter()
            .find(|(_, base)| *base == addr)
            .map(|(name, _)| name.clone())
            .ok_or(ImageFormatError::Truncated)?;
        linker.set_entry(core, section);
    }
    linker.link().map_err(ImageFormatError::Link)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{assemble_text, DataSegment};

    fn sample_image() -> LinkedImage {
        let mut linker = Linker::new();
        linker.add_section(Section::in_bank(
            "a",
            assemble_text("li r1, 5\nsinc 2\nhalt\n").expect("assembles"),
            1,
        ));
        linker.add_section(Section::in_bank(
            "b",
            assemble_text("nop\nsleep\nhalt\n").expect("assembles"),
            3,
        ));
        linker.set_entry(0, "a");
        linker.set_entry(2, "b");
        linker.add_data(DataSegment::new(0x200, vec![7, 8, 9]));
        linker.link().expect("links")
    }

    #[test]
    fn round_trip_preserves_everything_observable() {
        let original = sample_image();
        let restored = from_bytes(&to_bytes(&original)).expect("round trips");
        assert_eq!(restored.im_words(), original.im_words());
        assert_eq!(
            restored.entries().collect::<Vec<_>>(),
            original.entries().collect::<Vec<_>>()
        );
        assert_eq!(
            restored.dm_init().collect::<Vec<_>>(),
            original.dm_init().collect::<Vec<_>>()
        );
        assert_eq!(restored.active_im_banks(), original.active_im_banks());
        assert_eq!(restored.code_words(), original.code_words());
        assert_eq!(restored.sync_words(), original.sync_words());
    }

    #[test]
    fn bad_magic_and_version_are_rejected() {
        assert_eq!(from_bytes(b"NOPE").unwrap_err(), ImageFormatError::BadMagic);
        let mut bytes = to_bytes(&sample_image());
        bytes[4] = 0xFF;
        assert!(matches!(
            from_bytes(&bytes),
            Err(ImageFormatError::BadVersion(_))
        ));
    }

    #[test]
    fn truncation_is_detected() {
        let bytes = to_bytes(&sample_image());
        for cut in [3, 8, bytes.len() - 1] {
            assert!(from_bytes(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn corrupted_instruction_word_is_rejected() {
        let mut bytes = to_bytes(&sample_image());
        // The first section's first instruction word starts after
        // magic(4) + version(2) + count(2) + name_len(1) + name(1) +
        // base(4) + len(4) = 18.
        bytes[18..22].copy_from_slice(&0x00FF_FFFFu32.to_le_bytes());
        assert!(matches!(
            from_bytes(&bytes),
            Err(ImageFormatError::BadInstruction { .. })
        ));
    }
}
