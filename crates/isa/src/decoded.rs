//! Predecoded instruction images for fast simulation.
//!
//! A cycle-accurate interpreter that re-decodes the 24-bit instruction
//! word on every fetch spends a large share of its time in the decoder
//! even though the instruction memory never changes after load. This
//! module decodes each word **once**, at image-load time, into a dense
//! array of [`DecodedInstr`] — the [`Instr`] plus the per-instruction
//! metadata the simulator's hot loop needs every cycle (source-register
//! mask for load-use hazard checks, memory-access class for intent
//! dispatch) — so the per-cycle work reduces to an indexed load.
//!
//! The representation is purely an acceleration: it carries exactly the
//! information of the binary words it was built from, and the simulator
//! keeps the decode-per-cycle path available (behind its `slow-decode`
//! feature) as a differential oracle.

use crate::instr::Instr;
use crate::mem::IM_WORDS;
use crate::reg::Reg;

/// What kind of data-memory access an instruction performs, fixed at
/// decode time (the effective address still depends on register state).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemClass {
    /// No data-memory access.
    None,
    /// A load (`LW`).
    Load,
    /// A store (`SW`).
    Store,
}

/// One predecoded instruction: the decoded form plus hot-loop metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodedInstr {
    /// The decoded instruction.
    pub instr: Instr,
    /// Bit `i` set ⇔ register `r<i>` is a source operand. Used for
    /// load-use hazard detection without materializing register options.
    pub src_mask: u8,
    /// The instruction's data-memory class.
    pub mem: MemClass,
}

impl DecodedInstr {
    /// Precomputes the metadata for one instruction.
    pub fn new(instr: Instr) -> DecodedInstr {
        let mut src_mask = 0u8;
        for src in instr.sources().into_iter().flatten() {
            src_mask |= 1 << src.index();
        }
        let mem = match instr {
            Instr::Lw { .. } => MemClass::Load,
            Instr::Sw { .. } => MemClass::Store,
            _ => MemClass::None,
        };
        DecodedInstr {
            instr,
            src_mask,
            mem,
        }
    }

    /// Whether `reg` is a source operand.
    #[inline]
    pub fn reads(&self, reg: Reg) -> bool {
        self.src_mask & (1 << reg.index()) != 0
    }
}

/// A whole instruction memory predecoded into a dense array.
///
/// Every address holds either the predecoded instruction or `None` for
/// words that do not decode (uninitialized memory, data placed in the
/// instruction space); fetching such a word is an error the simulator
/// reports as a fault, exactly like the decode-per-cycle path.
#[derive(Debug, Clone)]
pub struct DecodedImage {
    slots: Box<[Option<DecodedInstr>]>,
}

impl DecodedImage {
    /// Predecodes a full instruction image (one `u32` word per address).
    ///
    /// # Panics
    ///
    /// Panics if `words` is not exactly [`IM_WORDS`] long — the image
    /// must cover the whole memory, matching the simulator's geometry.
    pub fn from_words(words: &[u32]) -> DecodedImage {
        assert_eq!(words.len(), IM_WORDS, "image must cover the whole memory");
        DecodedImage {
            slots: words
                .iter()
                .map(|&w| Instr::decode(w).ok().map(DecodedInstr::new))
                .collect(),
        }
    }

    /// The predecoded instruction at `addr`, or `None` when the address
    /// is out of range or the word does not decode.
    #[inline]
    pub fn get(&self, addr: u32) -> Option<&DecodedInstr> {
        self.slots.get(addr as usize).and_then(|s| s.as_ref())
    }

    /// Number of addresses holding a valid instruction.
    pub fn decoded_len(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{AluOp, BranchCond};

    #[test]
    fn src_masks_cover_operand_shapes() {
        let add = DecodedInstr::new(Instr::Alu {
            op: AluOp::Add,
            rd: Reg::R1,
            ra: Reg::R2,
            rb: Reg::R3,
        });
        assert_eq!(add.src_mask, 0b1100);
        assert!(add.reads(Reg::R2) && add.reads(Reg::R3));
        assert!(!add.reads(Reg::R1), "destination is not a source");

        let sw = DecodedInstr::new(Instr::sw(Reg::R4, Reg::R5, 0));
        assert_eq!(sw.src_mask, 0b11_0000);
        assert_eq!(sw.mem, MemClass::Store);

        let lw = DecodedInstr::new(Instr::lw(Reg::R1, Reg::R0, 4));
        assert_eq!(lw.mem, MemClass::Load);
        assert!(lw.reads(Reg::R0));

        let nop = DecodedInstr::new(Instr::Nop);
        assert_eq!(nop.src_mask, 0);
        assert_eq!(nop.mem, MemClass::None);
    }

    #[test]
    fn branch_sources_are_both_operands() {
        let b = DecodedInstr::new(Instr::Branch {
            cond: BranchCond::Eq,
            ra: Reg::R6,
            rb: Reg::R7,
            off: -2,
        });
        assert_eq!(b.src_mask, 0b1100_0000);
    }

    #[test]
    fn image_predecodes_valid_words_and_flags_bad_ones() {
        let mut words = vec![0u32; IM_WORDS];
        words[0] = Instr::Nop.encode().unwrap();
        words[1] = Instr::add(Reg::R1, Reg::R2, Reg::R3).encode().unwrap();
        words[2] = 0x00FF_FFFF; // does not decode
        let image = DecodedImage::from_words(&words);
        assert_eq!(image.get(0).unwrap().instr, Instr::Nop);
        assert_eq!(
            image.get(1).unwrap().instr,
            Instr::add(Reg::R1, Reg::R2, Reg::R3)
        );
        assert!(image.get(2).is_none());
        assert!(image.get(IM_WORDS as u32).is_none(), "out of range");
    }

    #[test]
    fn predecode_matches_per_word_decode_everywhere() {
        // Whatever the word, the predecoded slot agrees with Instr::decode.
        let mut words = vec![0u32; IM_WORDS];
        for (i, w) in words.iter_mut().enumerate().take(4096) {
            *w = (i as u32).wrapping_mul(0x9E37) & crate::mem::INSTR_MASK;
        }
        let image = DecodedImage::from_words(&words);
        for (addr, &word) in words.iter().enumerate().take(4096) {
            match Instr::decode(word) {
                Ok(instr) => assert_eq!(image.get(addr as u32).unwrap().instr, instr, "@{addr}"),
                Err(_) => assert!(image.get(addr as u32).is_none(), "@{addr}"),
            }
        }
    }
}
