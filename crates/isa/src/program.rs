//! Assembled programs: ordered instruction lists with label metadata.

use std::collections::BTreeMap;
use std::fmt;

use crate::error::EncodeError;
use crate::instr::Instr;

/// An assembled, position-independent program: a flat list of
/// instructions plus the labels that were defined while building it.
///
/// Programs are produced by [`crate::ProgramBuilder::assemble`] or
/// [`crate::asm::assemble_text`] and consumed by the
/// [linker](crate::link::Linker), which places them into instruction-memory
/// banks.
///
/// # Example
///
/// ```
/// use wbsn_isa::{Instr, Program};
///
/// let p = Program::from_instrs(vec![Instr::Nop, Instr::Halt]);
/// assert_eq!(p.len(), 2);
/// assert_eq!(p.words()?.len(), 2);
/// # Ok::<(), wbsn_isa::IsaError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Program {
    instrs: Vec<Instr>,
    labels: BTreeMap<String, usize>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Program {
        Program::default()
    }

    /// Creates a program from a plain instruction list without labels.
    pub fn from_instrs(instrs: Vec<Instr>) -> Program {
        Program {
            instrs,
            labels: BTreeMap::new(),
        }
    }

    pub(crate) fn with_labels(instrs: Vec<Instr>, labels: BTreeMap<String, usize>) -> Program {
        Program { instrs, labels }
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the program holds no instructions.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// The instructions in program order.
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// Program-relative address of a label, if defined.
    pub fn label(&self, name: &str) -> Option<usize> {
        self.labels.get(name).copied()
    }

    /// All labels with their program-relative addresses.
    pub fn labels(&self) -> impl Iterator<Item = (&str, usize)> {
        self.labels.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Number of synchronization-ISE instructions (`SINC`/`SDEC`/`SNOP`/
    /// `SLEEP`) in the program — the numerator of Table I's code overhead.
    pub fn sync_instr_count(&self) -> usize {
        self.instrs.iter().filter(|i| i.is_sync_ise()).count()
    }

    /// Encodes every instruction into its 24-bit word.
    ///
    /// # Errors
    ///
    /// Returns the first [`EncodeError`] encountered.
    pub fn words(&self) -> Result<Vec<u32>, EncodeError> {
        self.instrs.iter().map(Instr::encode).collect()
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut by_addr: BTreeMap<usize, Vec<&str>> = BTreeMap::new();
        for (name, addr) in &self.labels {
            by_addr.entry(*addr).or_default().push(name);
        }
        for (pc, instr) in self.instrs.iter().enumerate() {
            if let Some(names) = by_addr.get(&pc) {
                for name in names {
                    writeln!(f, "{name}:")?;
                }
            }
            writeln!(f, "    {instr}")?;
        }
        Ok(())
    }
}

impl FromIterator<Instr> for Program {
    fn from_iter<T: IntoIterator<Item = Instr>>(iter: T) -> Self {
        Program::from_instrs(iter.into_iter().collect())
    }
}

impl Extend<Instr> for Program {
    fn extend<T: IntoIterator<Item = Instr>>(&mut self, iter: T) {
        self.instrs.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::Reg;

    #[test]
    fn counts_sync_instructions() {
        let p = Program::from_instrs(vec![
            Instr::sinc(0),
            Instr::add(Reg::R1, Reg::R1, Reg::R1),
            Instr::Sleep,
            Instr::sdec(0),
            Instr::Halt,
        ]);
        assert_eq!(p.sync_instr_count(), 3);
    }

    #[test]
    fn display_includes_labels() {
        let mut labels = BTreeMap::new();
        labels.insert("start".to_string(), 0);
        let p = Program::with_labels(vec![Instr::Nop, Instr::Halt], labels);
        let text = p.to_string();
        assert!(text.contains("start:"));
        assert!(text.contains("nop"));
    }

    #[test]
    fn from_iterator_and_extend() {
        let mut p: Program = [Instr::Nop].into_iter().collect();
        p.extend([Instr::Halt]);
        assert_eq!(p.len(), 2);
    }
}
