//! Error types of the ISA tool-chain.

use std::error::Error;
use std::fmt;

/// Error returned when an instruction cannot be encoded into a 24-bit word.
///
/// Carries the offending field name and value so tool-chain diagnostics can
/// point at the exact out-of-range operand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodeError {
    field: &'static str,
    value: i64,
    min: i64,
    max: i64,
}

impl EncodeError {
    pub(crate) fn range(field: &'static str, value: i64, min: i64, max: i64) -> Self {
        EncodeError {
            field,
            value,
            min,
            max,
        }
    }

    /// Name of the instruction field that was out of range.
    pub fn field(&self) -> &'static str {
        self.field
    }

    /// The value that failed to encode.
    pub fn value(&self) -> i64 {
        self.value
    }
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "field `{}` value {} outside encodable range {}..={}",
            self.field, self.value, self.min, self.max
        )
    }
}

impl Error for EncodeError {}

/// Error returned when a 24-bit word does not decode to a valid instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    word: u32,
    reason: DecodeReason,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum DecodeReason {
    UnknownOpcode(u8),
    WideWord,
}

impl DecodeError {
    pub(crate) fn unknown_opcode(word: u32, opcode: u8) -> Self {
        DecodeError {
            word,
            reason: DecodeReason::UnknownOpcode(opcode),
        }
    }

    pub(crate) fn wide_word(word: u32) -> Self {
        DecodeError {
            word,
            reason: DecodeReason::WideWord,
        }
    }

    /// The raw word that failed to decode.
    pub fn word(&self) -> u32 {
        self.word
    }
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.reason {
            DecodeReason::UnknownOpcode(op) => {
                write!(f, "word {:#08x} has unknown opcode {:#04x}", self.word, op)
            }
            DecodeReason::WideWord => write!(f, "word {:#010x} does not fit in 24 bits", self.word),
        }
    }
}

impl Error for DecodeError {}

/// Error produced while parsing assembly text or builder label references.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAsmError {
    line: Option<usize>,
    message: String,
}

impl ParseAsmError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        ParseAsmError {
            line: None,
            message: message.into(),
        }
    }

    pub(crate) fn bad_register(text: &str) -> Self {
        ParseAsmError::new(format!("invalid register name `{text}`"))
    }

    pub(crate) fn with_line(mut self, line: usize) -> Self {
        self.line.get_or_insert(line);
        self
    }

    /// 1-based source line the error occurred on, when known.
    pub fn line(&self) -> Option<usize> {
        self.line
    }

    /// Human-readable description of the problem.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for ParseAsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.line {
            Some(line) => write!(f, "line {line}: {}", self.message),
            None => f.write_str(&self.message),
        }
    }
}

impl Error for ParseAsmError {}

/// Error produced while linking sections into the instruction memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinkError {
    /// A section was assigned to a bank index outside the memory geometry.
    BankOutOfRange {
        /// Section name.
        section: String,
        /// Requested bank.
        bank: usize,
        /// Number of available banks.
        banks: usize,
    },
    /// A bank overflowed while placing a section.
    BankOverflow {
        /// Section name.
        section: String,
        /// Bank that overflowed.
        bank: usize,
        /// Words needed beyond capacity.
        excess: usize,
    },
    /// Two sections share a name.
    DuplicateSection(String),
    /// A data segment falls outside the data memory.
    DataOutOfRange {
        /// First word address of the segment.
        base: u32,
        /// Segment length in words.
        len: usize,
    },
    /// Two data segments overlap.
    DataOverlap {
        /// Address at which the overlap was detected.
        addr: u32,
    },
    /// A core was given an entry section that does not exist.
    UnknownEntrySection {
        /// Core index.
        core: usize,
        /// Section name that was not found.
        section: String,
    },
}

impl fmt::Display for LinkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkError::BankOutOfRange {
                section,
                bank,
                banks,
            } => write!(
                f,
                "section `{section}` assigned to bank {bank} but only {banks} banks exist"
            ),
            LinkError::BankOverflow {
                section,
                bank,
                excess,
            } => write!(
                f,
                "section `{section}` overflows bank {bank} by {excess} words"
            ),
            LinkError::DuplicateSection(name) => {
                write!(f, "duplicate section name `{name}`")
            }
            LinkError::DataOutOfRange { base, len } => write!(
                f,
                "data segment at {base:#06x} with {len} words exceeds data memory"
            ),
            LinkError::DataOverlap { addr } => {
                write!(f, "data segments overlap at address {addr:#06x}")
            }
            LinkError::UnknownEntrySection { core, section } => {
                write!(f, "core {core} entry refers to unknown section `{section}`")
            }
        }
    }
}

impl Error for LinkError {}

/// Umbrella error for the whole crate, convertible from every specific
/// tool-chain error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IsaError {
    /// Instruction encoding failed.
    Encode(EncodeError),
    /// Instruction decoding failed.
    Decode(DecodeError),
    /// Assembly parsing or label resolution failed.
    Parse(ParseAsmError),
    /// Linking failed.
    Link(LinkError),
}

impl fmt::Display for IsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IsaError::Encode(e) => write!(f, "encode error: {e}"),
            IsaError::Decode(e) => write!(f, "decode error: {e}"),
            IsaError::Parse(e) => write!(f, "assembly error: {e}"),
            IsaError::Link(e) => write!(f, "link error: {e}"),
        }
    }
}

impl Error for IsaError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            IsaError::Encode(e) => Some(e),
            IsaError::Decode(e) => Some(e),
            IsaError::Parse(e) => Some(e),
            IsaError::Link(e) => Some(e),
        }
    }
}

impl From<EncodeError> for IsaError {
    fn from(e: EncodeError) -> Self {
        IsaError::Encode(e)
    }
}

impl From<DecodeError> for IsaError {
    fn from(e: DecodeError) -> Self {
        IsaError::Decode(e)
    }
}

impl From<ParseAsmError> for IsaError {
    fn from(e: ParseAsmError) -> Self {
        IsaError::Parse(e)
    }
}

impl From<LinkError> for IsaError {
    fn from(e: LinkError) -> Self {
        IsaError::Link(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = EncodeError::range("imm", 5000, -2048, 2047);
        assert!(e.to_string().contains("imm"));
        assert!(e.to_string().contains("5000"));

        let d = DecodeError::unknown_opcode(0x00ff_ffff, 0x3f);
        assert!(d.to_string().contains("opcode"));

        let p = ParseAsmError::new("oops").with_line(3);
        assert_eq!(p.to_string(), "line 3: oops");

        let l = LinkError::DuplicateSection("main".into());
        assert!(l.to_string().contains("main"));
    }

    #[test]
    fn umbrella_error_wraps_sources() {
        let e: IsaError = EncodeError::range("off", 1 << 20, -(1 << 17), (1 << 17) - 1).into();
        assert!(e.source().is_some());
        assert!(e.to_string().starts_with("encode error"));
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<IsaError>();
    }
}
