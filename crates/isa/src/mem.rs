//! Architectural memory-geometry constants of the target platform.
//!
//! These mirror the experimental set-up of the paper (§IV-B): a 96 KByte
//! instruction memory organised as 32 KWords of 24 bits split into 8
//! banks, and a 64 KByte data memory organised as 32 KWords of 16 bits
//! split into 16 banks.

/// Total instruction-memory size in 24-bit words.
pub const IM_WORDS: usize = 32 * 1024;

/// Number of independently powered instruction-memory banks.
pub const IM_BANKS: usize = 8;

/// Words per instruction-memory bank.
pub const IM_BANK_WORDS: usize = IM_WORDS / IM_BANKS;

/// Total data-memory size in 16-bit words.
pub const DM_WORDS: usize = 32 * 1024;

/// Number of independently powered data-memory banks.
pub const DM_BANKS: usize = 16;

/// Words per data-memory bank.
pub const DM_BANK_WORDS: usize = DM_WORDS / DM_BANKS;

/// Width of an instruction word in bits.
pub const INSTR_BITS: u32 = 24;

/// Mask selecting the 24 valid bits of an encoded instruction.
pub const INSTR_MASK: u32 = (1 << INSTR_BITS) - 1;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_matches_paper() {
        // 96 KB of 24-bit words and 64 KB of 16-bit words.
        assert_eq!(IM_WORDS * 3, 96 * 1024);
        assert_eq!(DM_WORDS * 2, 64 * 1024);
        assert_eq!(IM_BANK_WORDS * IM_BANKS, IM_WORDS);
        assert_eq!(DM_BANK_WORDS * DM_BANKS, DM_WORDS);
    }
}
