//! Load-latency-aware post-emit scheduling.
//!
//! The three-stage pipeline charges a one-cycle stall when an
//! instruction consumes the register loaded by the immediately
//! preceding `LW` (see `wbsn-sim`'s hazard model). This pass removes
//! such stalls in software: for every load-use pair it searches the
//! following instructions for one that is independent of everything it
//! would cross and hoists it into the load-use slot, so the consumer is
//! no longer the next issue slot and the loaded value arrives in time.
//!
//! The pass is deliberately conservative — it must preserve semantics
//! on every input the tool-chain can produce, so an instruction is
//! only moved when all of the following hold:
//!
//! * **No barriers crossed.** Control transfers (`BEQ`…, `JMP`, `JAL`,
//!   `JR`), the synchronization ISE (`SINC`/`SDEC`/`SNOP`/`SLEEP`) and
//!   `HALT` end the search: the paper's synchronization protocol gives
//!   sync instructions ordering semantics with respect to *all*
//!   surrounding code, and moving across control flow would change the
//!   executed path.
//! * **No entry points crossed.** No address inside the moved-over
//!   range may be a label or a computed branch/jump target (including
//!   the return address after every `JAL`, which `JR` may target):
//!   hoisting an instruction above a join point would execute it on
//!   paths that never contained it.
//! * **No register dependences violated.** The candidate must not read
//!   a register written by a crossed instruction (RAW), nor write a
//!   register read (WAR) or written (WAW) by one. It must not read the
//!   load's destination — that would re-create the very hazard being
//!   filled — and, when the candidate is itself a load, its
//!   destination must not be consumed by the instruction that ends up
//!   after it.
//! * **No possible memory aliasing.** A candidate load may not cross a
//!   store, and a candidate store may not cross any memory operation,
//!   unless the two accesses provably differ: same (unmodified) base
//!   register with different offsets. Different base registers are
//!   assumed to alias.
//!
//! Moves are remove/insert within the program, so its length — and
//! therefore every branch offset whose source and target both lie
//! outside the moved-over range — is unchanged; the entry-point rule
//! excludes every other case.
//!
//! `JR` is assumed to target only `JAL` return addresses (the
//! tool-chain's link-register discipline); programs computing jump
//! targets by other means are outside the pass's input domain.
//!
//! # Example
//!
//! ```
//! use wbsn_isa::{schedule_program, Instr, Program, Reg};
//!
//! // lw r2, 0(r4); min r5, r5, r2  — a load-use pair; the pointer
//! // increment below is independent and fills the slot.
//! let p = Program::from_instrs(vec![
//!     Instr::lw(Reg::R2, Reg::R4, 0),
//!     Instr::min(Reg::R5, Reg::R5, Reg::R2),
//!     Instr::addi(Reg::R4, Reg::R4, 1),
//!     Instr::Halt,
//! ]);
//! let (scheduled, stats) = schedule_program(&p);
//! assert_eq!(stats.hazards_filled, 1);
//! assert_eq!(scheduled.instrs()[1], Instr::addi(Reg::R4, Reg::R4, 1));
//! ```

use std::collections::BTreeMap;

use crate::instr::Instr;
use crate::program::Program;
use crate::reg::Reg;

/// How far past the load-use slot the pass looks for a candidate.
const SEARCH_WINDOW: usize = 16;

/// What a scheduling pass did, for listings and sweep records.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScheduleStats {
    /// Load-use pairs encountered while scanning.
    pub hazards_found: usize,
    /// Pairs whose stall slot was filled with a hoisted instruction.
    pub hazards_filled: usize,
}

/// Register set as a bitmask over the eight architectural registers.
#[derive(Debug, Clone, Copy, Default)]
struct RegSet(u8);

impl RegSet {
    fn insert(&mut self, r: Reg) {
        self.0 |= 1 << r.index();
    }

    fn contains(self, r: Reg) -> bool {
        self.0 & (1 << r.index()) != 0
    }
}

fn sources_of(instr: &Instr) -> impl Iterator<Item = Reg> + '_ {
    instr.sources().into_iter().flatten()
}

/// A memory access with a statically analysable address shape.
#[derive(Debug, Clone, Copy)]
struct MemAccess {
    base: Reg,
    off: i16,
    is_store: bool,
}

impl MemAccess {
    fn of(instr: &Instr) -> Option<MemAccess> {
        match *instr {
            Instr::Lw { ra, off, .. } => Some(MemAccess {
                base: ra,
                off,
                is_store: false,
            }),
            Instr::Sw { ra, off, .. } => Some(MemAccess {
                base: ra,
                off,
                is_store: true,
            }),
            _ => None,
        }
    }

    /// Whether two accesses are *provably* disjoint: same base register
    /// (`written` proves it unmodified between them) and different
    /// offsets. Anything else is assumed to alias.
    fn provably_disjoint(self, other: MemAccess, written: RegSet) -> bool {
        self.base == other.base && self.off != other.off && !written.contains(self.base)
    }
}

/// An instruction the search may neither cross nor move: control
/// transfers (the executed path would change), the synchronization ISE
/// (ordering semantics with respect to all surrounding code) and `HALT`.
fn is_barrier(instr: &Instr) -> bool {
    instr.is_control() || instr.is_sync_ise() || matches!(instr, Instr::Halt)
}

/// Every address that control flow can enter other than by falling
/// through: labels, branch/jump targets, and the return address after
/// each `JAL` (a potential `JR` target).
fn entry_points(program: &Program) -> Vec<bool> {
    let len = program.len();
    let mut entry = vec![false; len];
    let mut mark = |addr: i64| {
        if (0..len as i64).contains(&addr) {
            entry[addr as usize] = true;
        }
    };
    for (_, addr) in program.labels() {
        mark(addr as i64);
    }
    for (pc, instr) in program.instrs().iter().enumerate() {
        let next = pc as i64 + 1;
        match *instr {
            Instr::Branch { off, .. } => mark(next + off as i64),
            Instr::Jmp { off } => mark(next + off as i64),
            Instr::Jal { off, .. } => {
                mark(next + off as i64);
                mark(next); // JR returns here
            }
            _ => {}
        }
    }
    entry
}

/// Searches `instrs[hazard + 2 ..]` for an instruction that can legally
/// be hoisted into the load-use slot at `hazard + 1`. Returns its index.
fn find_candidate(instrs: &[Instr], entry: &[bool], hazard: usize, loaded: Reg) -> Option<usize> {
    let slot = hazard + 1;
    let mut read = RegSet::default();
    let mut written = RegSet::default();
    let mut crossed_mem: Vec<MemAccess> = Vec::new();

    fn absorb(instr: &Instr, read: &mut RegSet, written: &mut RegSet, mem: &mut Vec<MemAccess>) {
        for s in sources_of(instr) {
            read.insert(s);
        }
        if let Some(d) = instr.dest() {
            written.insert(d);
        }
        if let Some(m) = MemAccess::of(instr) {
            mem.push(m);
        }
    }

    // The consumer at `slot` is the first crossed instruction; if it is
    // a barrier or a jump target, nothing may be hoisted above it.
    let consumer = &instrs[slot];
    if entry[slot] || is_barrier(consumer) {
        return None;
    }
    absorb(consumer, &mut read, &mut written, &mut crossed_mem);

    let limit = instrs.len().min(slot + 1 + SEARCH_WINDOW);
    for j in slot + 1..limit {
        let candidate = &instrs[j];
        if entry[j] || is_barrier(candidate) {
            return None; // a jump lands here, or crossing is illegal
        }
        let legal = !matches!(candidate, Instr::Nop) // a NOP gains nothing
            && !sources_of(candidate).any(|s| s == loaded || written.contains(s))
            && candidate
                .dest()
                .is_none_or(|d| !read.contains(d) && !written.contains(d))
            && MemAccess::of(candidate).is_none_or(|m| {
                crossed_mem
                    .iter()
                    .all(|&c| !(m.is_store || c.is_store) || m.provably_disjoint(c, written))
            });
        if legal {
            return Some(j);
        }
        absorb(candidate, &mut read, &mut written, &mut crossed_mem);
    }
    None
}

/// Runs the scheduling pass over `program`, returning the scheduled
/// program (labels preserved) and what the pass did.
///
/// The pass never changes the program's length, its labels, or the
/// address of any instruction outside the moved-over ranges, so images
/// built from the result stay link-compatible with unscheduled ones.
pub fn schedule_program(program: &Program) -> (Program, ScheduleStats) {
    let mut instrs = program.instrs().to_vec();
    let entry = entry_points(program);
    let mut stats = ScheduleStats::default();

    let mut i = 0;
    while i + 1 < instrs.len() {
        let Instr::Lw { rd, .. } = instrs[i] else {
            i += 1;
            continue;
        };
        if !sources_of(&instrs[i + 1]).any(|s| s == rd) {
            i += 1;
            continue;
        }
        stats.hazards_found += 1;
        if let Some(j) = find_candidate(&instrs, &entry, i, rd) {
            let hoisted = instrs.remove(j);
            instrs.insert(i + 1, hoisted);
            stats.hazards_filled += 1;
        }
        i += 1;
    }

    let labels: BTreeMap<String, usize> = program
        .labels()
        .map(|(name, addr)| (name.to_string(), addr))
        .collect();
    (Program::with_labels(instrs, labels), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;

    fn instrs(p: &Program) -> Vec<Instr> {
        p.instrs().to_vec()
    }

    /// The morphological-scan shape: the pointer increment hoists into
    /// the load-use slot and the loop stays otherwise intact.
    #[test]
    fn fills_the_scan_loop_slot() {
        let mut b = ProgramBuilder::new();
        b.label("scan").unwrap();
        b.push(Instr::lw(Reg::R2, Reg::R4, 0));
        b.push(Instr::min(Reg::R5, Reg::R5, Reg::R2));
        b.push(Instr::addi(Reg::R4, Reg::R4, 1));
        b.push(Instr::addi(Reg::R3, Reg::R3, -1));
        b.bne_to(Reg::R3, Reg::R0, "scan");
        b.push(Instr::Halt);
        let p = b.assemble().unwrap();

        let (s, stats) = schedule_program(&p);
        assert_eq!(stats.hazards_found, 1);
        assert_eq!(stats.hazards_filled, 1);
        assert_eq!(
            instrs(&s)[..3],
            [
                Instr::lw(Reg::R2, Reg::R4, 0),
                Instr::addi(Reg::R4, Reg::R4, 1),
                Instr::min(Reg::R5, Reg::R5, Reg::R2),
            ]
        );
        assert_eq!(s.len(), p.len());
        assert_eq!(s.label("scan"), Some(0));
    }

    #[test]
    fn never_hoists_across_sync_instructions() {
        for sync in [Instr::sinc(1), Instr::sdec(1), Instr::snop(1), Instr::Sleep] {
            let p = Program::from_instrs(vec![
                Instr::lw(Reg::R1, Reg::R6, 0),
                Instr::add(Reg::R2, Reg::R1, Reg::R1),
                sync,
                Instr::addi(Reg::R4, Reg::R4, 1), // independent, but gated
                Instr::Halt,
            ]);
            let (s, stats) = schedule_program(&p);
            assert_eq!(stats.hazards_found, 1);
            assert_eq!(stats.hazards_filled, 0, "must not cross {sync}");
            assert_eq!(instrs(&s), instrs(&p));
        }
    }

    #[test]
    fn never_hoists_across_control_flow() {
        let controls = [
            Instr::Branch {
                cond: crate::instr::BranchCond::Eq,
                ra: Reg::R0,
                rb: Reg::R0,
                off: 1,
            },
            Instr::Jmp { off: 1 },
            Instr::Jal {
                rd: Reg::R7,
                off: 1,
            },
            Instr::Jr { ra: Reg::R7 },
        ];
        for control in controls {
            let p = Program::from_instrs(vec![
                Instr::lw(Reg::R1, Reg::R6, 0),
                Instr::add(Reg::R2, Reg::R1, Reg::R1),
                control,
                Instr::addi(Reg::R4, Reg::R4, 1),
                Instr::Halt,
            ]);
            let (s, stats) = schedule_program(&p);
            assert_eq!(stats.hazards_filled, 0, "must not cross {control}");
            assert_eq!(instrs(&s), instrs(&p));
        }
    }

    #[test]
    fn never_hoists_across_labels_or_branch_targets() {
        // A label inside the moved-over range: another path enters at
        // `join`, which must not execute the hoisted instruction.
        let mut b = ProgramBuilder::new();
        b.push(Instr::lw(Reg::R1, Reg::R6, 0));
        b.push(Instr::add(Reg::R2, Reg::R1, Reg::R1));
        b.label("join").unwrap();
        b.push(Instr::addi(Reg::R4, Reg::R4, 1));
        b.push(Instr::Halt);
        let p = b.assemble().unwrap();
        let (s, stats) = schedule_program(&p);
        assert_eq!(stats.hazards_filled, 0);
        assert_eq!(instrs(&s), instrs(&p));

        // Same shape, but the entry point is a computed branch target
        // (backward branch from below) rather than a label.
        let p = Program::from_instrs(vec![
            Instr::lw(Reg::R1, Reg::R6, 0),
            Instr::add(Reg::R2, Reg::R1, Reg::R1),
            Instr::addi(Reg::R4, Reg::R4, 1),
            Instr::Branch {
                cond: crate::instr::BranchCond::Ne,
                ra: Reg::R4,
                rb: Reg::R0,
                off: -3, // targets the addi at index 2
            },
            Instr::Halt,
        ]);
        let (s, stats) = schedule_program(&p);
        assert_eq!(stats.hazards_filled, 0);
        assert_eq!(instrs(&s), instrs(&p));
    }

    #[test]
    fn respects_register_dependences() {
        // RAW: the candidate reads r2, which the consumer writes.
        let p = Program::from_instrs(vec![
            Instr::lw(Reg::R1, Reg::R6, 0),
            Instr::add(Reg::R2, Reg::R1, Reg::R1),
            Instr::add(Reg::R3, Reg::R2, Reg::R0),
            Instr::Halt,
        ]);
        let (s, stats) = schedule_program(&p);
        assert_eq!(stats.hazards_filled, 0);
        assert_eq!(instrs(&s), instrs(&p));

        // WAR: the candidate writes r1, which the consumer reads.
        let p = Program::from_instrs(vec![
            Instr::lw(Reg::R1, Reg::R6, 0),
            Instr::add(Reg::R2, Reg::R1, Reg::R1),
            Instr::Li {
                rd: Reg::R1,
                imm: 7,
            },
            Instr::Halt,
        ]);
        let (s, stats) = schedule_program(&p);
        assert_eq!(stats.hazards_filled, 0);
        assert_eq!(instrs(&s), instrs(&p));

        // Reading the loaded register would re-create the hazard.
        let p = Program::from_instrs(vec![
            Instr::lw(Reg::R1, Reg::R6, 0),
            Instr::add(Reg::R2, Reg::R1, Reg::R1),
            Instr::add(Reg::R3, Reg::R1, Reg::R0),
            Instr::Halt,
        ]);
        let (s, stats) = schedule_program(&p);
        assert_eq!(stats.hazards_filled, 0);
        assert_eq!(instrs(&s), instrs(&p));
    }

    #[test]
    fn memory_aliasing_blocks_unprovable_moves() {
        // A candidate store crossing a load with a different base
        // register: addresses may alias, so the move is refused.
        let p = Program::from_instrs(vec![
            Instr::lw(Reg::R1, Reg::R6, 0),
            Instr::sw(Reg::R1, Reg::R3, 0), // consumer: stores the load
            Instr::sw(Reg::R5, Reg::R4, 0), // may alias -> stays put
            Instr::Halt,
        ]);
        let (s, stats) = schedule_program(&p);
        assert_eq!(stats.hazards_filled, 0);
        assert_eq!(instrs(&s), instrs(&p));

        // Same base register, same offset: provably the same word.
        let p = Program::from_instrs(vec![
            Instr::lw(Reg::R1, Reg::R6, 0),
            Instr::sw(Reg::R1, Reg::R3, 0),
            Instr::lw(Reg::R5, Reg::R3, 0), // reads what the sw wrote
            Instr::Halt,
        ]);
        let (s, stats) = schedule_program(&p);
        assert_eq!(stats.hazards_filled, 0);
        assert_eq!(instrs(&s), instrs(&p));
    }

    #[test]
    fn provably_disjoint_accesses_may_cross() {
        // Same base register, different offsets, base unmodified: the
        // candidate load crosses the store legally.
        let p = Program::from_instrs(vec![
            Instr::lw(Reg::R1, Reg::R6, 0),
            Instr::sw(Reg::R1, Reg::R3, 1),
            Instr::lw(Reg::R5, Reg::R3, 2),
            Instr::Halt,
        ]);
        let (s, stats) = schedule_program(&p);
        assert_eq!(stats.hazards_filled, 1);
        assert_eq!(
            instrs(&s)[..3],
            [
                Instr::lw(Reg::R1, Reg::R6, 0),
                Instr::lw(Reg::R5, Reg::R3, 2),
                Instr::sw(Reg::R1, Reg::R3, 1),
            ]
        );
    }

    #[test]
    fn hoisted_load_must_not_create_a_new_hazard() {
        // The candidate load's destination r1 is read by the consumer,
        // so hoisting it would just move the stall; refused.
        let p = Program::from_instrs(vec![
            Instr::lw(Reg::R1, Reg::R6, 0),
            Instr::add(Reg::R2, Reg::R1, Reg::R1),
            Instr::lw(Reg::R1, Reg::R6, 1),
            Instr::Halt,
        ]);
        let (s, stats) = schedule_program(&p);
        assert_eq!(stats.hazards_filled, 0);
        assert_eq!(instrs(&s), instrs(&p));

        // An unrelated destination is fine.
        let p = Program::from_instrs(vec![
            Instr::lw(Reg::R1, Reg::R6, 0),
            Instr::add(Reg::R2, Reg::R1, Reg::R1),
            Instr::lw(Reg::R5, Reg::R6, 1),
            Instr::Halt,
        ]);
        let (_, stats) = schedule_program(&p);
        assert_eq!(stats.hazards_filled, 1);
    }

    #[test]
    fn preserves_length_and_labels_everywhere() {
        let mut b = ProgramBuilder::new();
        b.label("top").unwrap();
        b.push(Instr::lw(Reg::R2, Reg::R4, 0));
        b.push(Instr::min(Reg::R5, Reg::R5, Reg::R2));
        b.push(Instr::addi(Reg::R4, Reg::R4, 1));
        b.push(Instr::addi(Reg::R3, Reg::R3, -1));
        b.bne_to(Reg::R3, Reg::R0, "top");
        b.label("end").unwrap();
        b.push(Instr::Halt);
        let p = b.assemble().unwrap();
        let (s, _) = schedule_program(&p);
        assert_eq!(s.len(), p.len());
        let before: Vec<_> = p.labels().map(|(n, a)| (n.to_string(), a)).collect();
        let after: Vec<_> = s.labels().map(|(n, a)| (n.to_string(), a)).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn unfillable_hazard_is_counted_but_untouched() {
        let p = Program::from_instrs(vec![
            Instr::lw(Reg::R1, Reg::R6, 0),
            Instr::add(Reg::R2, Reg::R1, Reg::R1),
            Instr::Halt,
        ]);
        let (s, stats) = schedule_program(&p);
        assert_eq!(stats.hazards_found, 1);
        assert_eq!(stats.hazards_filled, 0);
        assert_eq!(instrs(&s), instrs(&p));
    }
}
