//! Phase markers: mapping instruction addresses back to the placed
//! section (the *mapping phase*) that owns them.
//!
//! The tool-chain's sections are the paper's mapping phases — `mf`,
//! `delineate`, `classify`, … — and their placement survives the image
//! container, so any loaded image can attribute a program counter to the
//! phase executing at that address. The observability layer builds its
//! per-phase profiler and timeline slices on this table; it is a plain
//! O(1) lookup so the simulator can consult it every cycle.

use crate::link::LinkedImage;
use crate::mem::IM_WORDS;

/// Sentinel phase index: the address belongs to no placed section.
pub const NO_PHASE: u16 = u16::MAX;

/// A dense pc → phase-index lookup table over the instruction memory.
///
/// Phase indices are positions into [`PhaseTable::names`], in the
/// image's section order. Addresses outside every section map to
/// [`NO_PHASE`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseTable {
    names: Vec<String>,
    index: Vec<u16>,
}

impl PhaseTable {
    /// Builds the table from a linked image's placed sections.
    ///
    /// # Panics
    ///
    /// Panics if the image places more than `u16::MAX - 1` sections
    /// (impossible with the platform's memory geometry).
    pub fn from_image(image: &LinkedImage) -> PhaseTable {
        let sections = image.sections();
        assert!(sections.len() < NO_PHASE as usize, "too many sections");
        let names = sections.iter().map(|s| s.name.clone()).collect();
        let mut index = vec![NO_PHASE; IM_WORDS];
        for (i, section) in sections.iter().enumerate() {
            let base = section.base as usize;
            for slot in &mut index[base..base + section.len] {
                *slot = i as u16;
            }
        }
        PhaseTable { names, index }
    }

    /// The phase names, indexable by the values of
    /// [`PhaseTable::phase_at`].
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Number of phases.
    pub fn num_phases(&self) -> usize {
        self.names.len()
    }

    /// The phase index owning `pc`, or [`NO_PHASE`].
    #[inline]
    pub fn phase_at(&self, pc: u32) -> u16 {
        self.index.get(pc as usize).copied().unwrap_or(NO_PHASE)
    }

    /// The name of phase `idx`, if it exists.
    pub fn name_of(&self, idx: u16) -> Option<&str> {
        self.names.get(idx as usize).map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::Instr;
    use crate::link::{Linker, Section};
    use crate::mem::IM_BANK_WORDS;
    use crate::program::Program;

    fn prog(n: usize) -> Program {
        Program::from_instrs(vec![Instr::Nop; n])
    }

    #[test]
    fn table_maps_sections_and_gaps() {
        let mut l = Linker::new();
        l.add_section(Section::in_bank("alpha", prog(4), 0));
        l.add_section(Section::in_bank("beta", prog(2), 1));
        l.set_entry(0, "alpha");
        let image = l.link().unwrap();
        let table = PhaseTable::from_image(&image);

        assert_eq!(table.num_phases(), 2);
        let alpha = table.phase_at(0);
        assert_eq!(table.name_of(alpha), Some("alpha"));
        assert_eq!(table.phase_at(3), alpha);
        let beta = table.phase_at(IM_BANK_WORDS as u32);
        assert_eq!(table.name_of(beta), Some("beta"));
        assert_ne!(alpha, beta);
        // The gap between the sections and out-of-range pcs are unmapped.
        assert_eq!(table.phase_at(4), NO_PHASE);
        assert_eq!(table.phase_at(IM_WORDS as u32 + 10), NO_PHASE);
        assert_eq!(table.name_of(NO_PHASE), None);
    }
}
