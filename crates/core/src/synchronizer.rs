//! The synchronizer unit: request merging, clock gating and wake-up.
//!
//! The synchronizer is the hardware half of the approach. Every cycle it
//! receives the synchronization instructions issued by the cores, merges
//! the requests directed at the same synchronization point into a single
//! consistent memory modification, decides which cores to clock-gate
//! (those that executed `SLEEP`) and which to resume (all cores flagged
//! in a point whose counter reached zero, plus cores subscribed to a
//! peripheral interrupt that just fired).
//!
//! # Wake semantics
//!
//! A point *fires* when, after the cycle's merged update, it is **armed**
//! (a `SINC` touched it since the last fire, or it was preloaded), its
//! counter is zero and at least one core is flagged. Firing wakes every
//! flagged core, clears the flags and disarms the point.
//!
//! A wake event delivered to a core that is *not* clock-gated sets a
//! pending-wake latch instead; the core's next `SLEEP` consumes the latch
//! and completes without gating (the WFE-style semantics that close the
//! race between a producer finishing early and a consumer going to
//! sleep).
//!
//! Points may also be *preloaded* with a count at configuration time and
//! given an auto-reload value, which models the building-directive option
//! of initialising synchronization points at application load.

use std::fmt;

use wbsn_isa::SyncKind;

use crate::error::SyncError;
use crate::sync_point::{CoreId, CoreSet, SyncPointValue, MAX_CORES};

/// Maximum number of distinct peripheral interrupt sources.
pub const MAX_IRQ_SOURCES: usize = 16;

#[derive(Debug, Clone, Copy, Default)]
struct PointState {
    value: SyncPointValue,
    armed: bool,
    reload: Option<(u8, CoreSet)>,
}

/// One synchronization point touched by a committed cycle — the
/// per-point detail behind the cycle's merged memory write, kept so
/// observers (the event stream, the verifier) can reconstruct exactly
/// what the hardware did without re-deriving the merge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PointTouch {
    /// The touched point.
    pub point: u16,
    /// Cores newly flagged into the point this cycle (`SINC`/`SNOP`).
    pub flagged: CoreSet,
    /// Requests merged into this point's single write.
    pub requests: u8,
    /// The update armed the point (a `SINC` was present).
    pub armed: bool,
}

/// What happened during one committed synchronizer cycle.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SyncOutcome {
    /// Cores resumed from the clock-gated state this cycle.
    pub woken: CoreSet,
    /// Cores that entered the clock-gated state this cycle.
    pub slept: CoreSet,
    /// Cores whose `SLEEP` consumed a pending wake and fell through.
    pub fell_through: CoreSet,
    /// Points that fired (counter reached zero with flags set).
    pub fired_points: Vec<u16>,
    /// For each fired point (aligned with
    /// [`SyncOutcome::fired_points`]), the cores that were flagged when
    /// it released — the wake set before pending-latch resolution.
    pub fired_wakes: Vec<CoreSet>,
    /// Per-point detail of every merged update applied this cycle.
    pub touched: Vec<PointTouch>,
    /// Number of physical shared-memory writes performed (one per touched
    /// point, regardless of how many requests were merged into it).
    pub memory_writes: usize,
}

/// Aggregate counters over the synchronizer's lifetime, used by the power
/// model and by Table I's run-time overhead accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SyncStats {
    /// Total synchronization-point instructions processed.
    pub ops: u64,
    /// Physical memory writes after merging.
    pub writes: u64,
    /// Requests saved by merging (`ops - writes` for touched points).
    pub merged: u64,
    /// Point-fire events.
    pub fires: u64,
    /// `SLEEP` requests that actually gated a core.
    pub sleeps: u64,
    /// `SLEEP` requests that fell through on a pending wake.
    pub fallthroughs: u64,
    /// Interrupt wake-ups forwarded to cores.
    pub irq_wakes: u64,
    /// Lost wake-ups: an armed point's counter reached zero with no core
    /// flagged, so the release event woke nobody (a producer completed
    /// before any consumer registered).
    pub lost_wakes: u64,
    /// Counter-invariant violations detected while applying a merged
    /// update (underflow/overflow); each also surfaces as a
    /// [`SyncError`] from [`Synchronizer::commit`].
    pub invariant_faults: u64,
}

impl fmt::Display for SyncStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ops ({} writes, {} merged), {} fires, {} sleeps (+{} fall-throughs), {} irq wakes, \
             {} lost wakes, {} invariant faults",
            self.ops, self.writes, self.merged, self.fires, self.sleeps,
            self.fallthroughs, self.irq_wakes, self.lost_wakes, self.invariant_faults
        )
    }
}

/// The synchronizer unit.
///
/// Drive it by staging the cycle's events ([`Synchronizer::submit_op`],
/// [`Synchronizer::request_sleep`], [`Synchronizer::raise_irq`]) and then
/// calling [`Synchronizer::commit`], which applies the merged updates and
/// returns the cycle's [`SyncOutcome`]. See the [crate-level
/// example](crate).
#[derive(Debug, Clone)]
pub struct Synchronizer {
    num_cores: usize,
    points: Vec<PointState>,
    gated: CoreSet,
    pending: CoreSet,
    subscriptions: [u16; MAX_CORES],
    staged_ops: Vec<(CoreId, SyncKind, u16)>,
    staged_sleeps: CoreSet,
    staged_irqs: u16,
    stats: SyncStats,
}

impl Synchronizer {
    /// Creates a synchronizer for `num_cores` cores and `num_points`
    /// synchronization points.
    ///
    /// # Errors
    ///
    /// Returns [`SyncError::BadCoreCount`] unless `1 <= num_cores <= 8`.
    pub fn new(num_cores: usize, num_points: usize) -> Result<Synchronizer, SyncError> {
        if num_cores == 0 || num_cores > MAX_CORES {
            return Err(SyncError::BadCoreCount { cores: num_cores });
        }
        Ok(Synchronizer {
            num_cores,
            points: vec![PointState::default(); num_points],
            gated: CoreSet::empty(),
            pending: CoreSet::empty(),
            subscriptions: [0; MAX_CORES],
            staged_ops: Vec::new(),
            staged_sleeps: CoreSet::empty(),
            staged_irqs: 0,
            stats: SyncStats::default(),
        })
    }

    /// Number of cores managed by this synchronizer.
    pub fn num_cores(&self) -> usize {
        self.num_cores
    }

    /// Number of configured synchronization points.
    pub fn num_points(&self) -> usize {
        self.points.len()
    }

    /// Preloads a point's counter and optionally makes it auto-reload to
    /// the same count after every fire (building-directive barriers).
    ///
    /// # Errors
    ///
    /// Returns [`SyncError::PointOutOfRange`] for an unknown point.
    pub fn preload(&mut self, point: u16, count: u8, auto_reload: bool) -> Result<(), SyncError> {
        let state = self.point_mut(point)?;
        state.value = SyncPointValue::with(state.value.flags(), count);
        state.armed = true;
        state.reload = auto_reload.then_some((count, CoreSet::empty()));
        Ok(())
    }

    /// Configures a *preloaded barrier* (a building-directive extension):
    /// the counter starts at `count`, the given participants are
    /// permanently registered, and both auto-reload after every fire.
    /// Participants then only `SDEC` when they reach the barrier and
    /// `SLEEP` — halving the per-crossing instruction overhead of the
    /// SINC/SDEC protocol.
    ///
    /// # Errors
    ///
    /// Returns [`SyncError::PointOutOfRange`] for an unknown point.
    pub fn preload_barrier(
        &mut self,
        point: u16,
        count: u8,
        participants: CoreSet,
    ) -> Result<(), SyncError> {
        let state = self.point_mut(point)?;
        state.value = SyncPointValue::with(participants, count);
        state.armed = true;
        state.reload = Some((count, participants));
        Ok(())
    }

    /// Current value of a synchronization point as stored in shared
    /// memory (what a core's `LW` of the point's address observes).
    ///
    /// # Errors
    ///
    /// Returns [`SyncError::PointOutOfRange`] for an unknown point.
    pub fn point_value(&self, point: u16) -> Result<SyncPointValue, SyncError> {
        self.points
            .get(point as usize)
            .map(|s| s.value)
            .ok_or(SyncError::PointOutOfRange {
                point,
                points: self.points.len(),
            })
    }

    /// Whether a point is armed (a `SINC` touched it since the last
    /// fire, or it was preloaded). Used by runtime deadlock diagnosis.
    ///
    /// # Errors
    ///
    /// Returns [`SyncError::PointOutOfRange`] for an unknown point.
    pub fn point_armed(&self, point: u16) -> Result<bool, SyncError> {
        self.points
            .get(point as usize)
            .map(|s| s.armed)
            .ok_or(SyncError::PointOutOfRange {
                point,
                points: self.points.len(),
            })
    }

    /// Whether `core` is currently clock-gated.
    pub fn is_gated(&self, core: CoreId) -> bool {
        self.gated.contains(core)
    }

    /// The set of clock-gated cores.
    pub fn gated(&self) -> CoreSet {
        self.gated
    }

    /// Lifetime statistics.
    pub fn stats(&self) -> SyncStats {
        self.stats
    }

    /// Subscribes `core` to the interrupt sources in `mask` (one bit per
    /// source). Writing the platform's memory-mapped subscription
    /// register lands here.
    ///
    /// # Errors
    ///
    /// Returns [`SyncError::CoreOutOfRange`] when the core is not managed
    /// by this synchronizer.
    pub fn subscribe(&mut self, core: CoreId, mask: u16) -> Result<(), SyncError> {
        self.check_core(core)?;
        self.subscriptions[core.index()] = mask;
        Ok(())
    }

    /// Current subscription mask of `core`.
    pub fn subscription(&self, core: CoreId) -> u16 {
        self.subscriptions[core.index()]
    }

    /// Stages a synchronization instruction issued by `core` this cycle.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown cores or points; nothing is staged in
    /// that case.
    pub fn submit_op(&mut self, core: CoreId, kind: SyncKind, point: u16) -> Result<(), SyncError> {
        self.check_core(core)?;
        if point as usize >= self.points.len() {
            return Err(SyncError::PointOutOfRange {
                point,
                points: self.points.len(),
            });
        }
        self.staged_ops.push((core, kind, point));
        Ok(())
    }

    /// Stages a `SLEEP` request from `core` this cycle.
    pub fn request_sleep(&mut self, core: CoreId) {
        self.staged_sleeps.insert(core);
    }

    /// Stages a peripheral interrupt from `source` this cycle.
    ///
    /// # Panics
    ///
    /// Panics if `source >= MAX_IRQ_SOURCES`.
    pub fn raise_irq(&mut self, source: usize) {
        assert!(source < MAX_IRQ_SOURCES, "interrupt source out of range");
        self.staged_irqs |= 1 << source;
    }

    /// Applies the staged events of the current cycle.
    ///
    /// The order models the hardware: merged point updates first, then
    /// fire evaluation, then interrupt forwarding, then `SLEEP`
    /// processing (so a wake produced this cycle defeats a simultaneous
    /// `SLEEP` via the pending-wake latch).
    ///
    /// # Errors
    ///
    /// Returns a counter range error when the merged update of some point
    /// is inconsistent; staged state is cleared regardless so the caller
    /// can treat the error as a detected protocol violation and stop.
    #[inline]
    pub fn commit(&mut self) -> Result<SyncOutcome, SyncError> {
        // Fast path: nothing was staged this cycle — the overwhelmingly
        // common case in the simulator's cycle loop. Skips the merge
        // scratch, whose initialization would dominate idle cycles.
        // Inlined so the caller's cycle loop pays only the three checks.
        if self.staged_ops.is_empty() && self.staged_sleeps.is_empty() && self.staged_irqs == 0 {
            return Ok(SyncOutcome::default());
        }
        self.commit_staged()
    }

    fn commit_staged(&mut self) -> Result<SyncOutcome, SyncError> {
        let ops = std::mem::take(&mut self.staged_ops);
        let sleeps = std::mem::take(&mut self.staged_sleeps);
        let irqs = std::mem::take(&mut self.staged_irqs);

        let mut outcome = SyncOutcome::default();
        let result = self.apply(ops, sleeps, irqs, &mut outcome);
        result.map(|()| outcome)
    }

    fn apply(
        &mut self,
        ops: Vec<(CoreId, SyncKind, u16)>,
        sleeps: CoreSet,
        irqs: u16,
        outcome: &mut SyncOutcome,
    ) -> Result<(), SyncError> {
        // 1. Merge and apply point updates: one write per touched point.
        let mut touched: Vec<u16> = Vec::new();
        let mut flag_sets = [CoreSet::empty(); 64];
        let mut deltas = [0i32; 64];
        let mut counts = [0u32; 64];
        let mut incs = [false; 64];
        // Points are few (tens); a linear scratch keyed by first-touch
        // order keeps this allocation-free for the common sizes.
        for (core, kind, point) in &ops {
            let slot = match touched.iter().position(|p| p == point) {
                Some(i) => i,
                None => {
                    touched.push(*point);
                    touched.len() - 1
                }
            };
            assert!(
                slot < 64,
                "more than 64 distinct points touched in one cycle"
            );
            match kind {
                SyncKind::Inc => {
                    flag_sets[slot].insert(*core);
                    deltas[slot] += 1;
                    incs[slot] = true;
                }
                SyncKind::Dec => deltas[slot] -= 1,
                SyncKind::Nop => flag_sets[slot].insert(*core),
            }
            counts[slot] += 1;
            self.stats.ops += 1;
        }

        let mut woken = CoreSet::empty();
        for (slot, &point) in touched.iter().enumerate() {
            let state = &mut self.points[point as usize];
            state.value = match state.value.apply_merged(flag_sets[slot], deltas[slot]) {
                Ok(value) => value,
                Err(e) => {
                    self.stats.invariant_faults += 1;
                    return Err(e);
                }
            };
            // Arm on SINC *presence*, not on positive net delta: a
            // same-cycle SINC/SDEC pair netting zero still means "a
            // SINC touched the point since the last fire", and the
            // merged release must fire exactly like the serial one.
            if incs[slot] {
                state.armed = true;
            }
            self.stats.writes += 1;
            self.stats.merged += (counts[slot] - 1) as u64;
            outcome.memory_writes += 1;
            outcome.touched.push(PointTouch {
                point,
                flagged: flag_sets[slot],
                requests: counts[slot].min(u8::MAX as u32) as u8,
                armed: incs[slot],
            });

            // Lost-wake detection: the counter hit zero on a decrement
            // while the point is armed but nobody is flagged — the
            // release happened with no registered consumer to wake.
            if state.armed
                && deltas[slot] < 0
                && state.value.counter() == 0
                && state.value.flags().is_empty()
            {
                self.stats.lost_wakes += 1;
            }

            // 2. Fire evaluation for this point.
            if state.armed && state.value.is_release_ready() {
                woken = woken.union(state.value.flags());
                outcome.fired_points.push(point);
                outcome.fired_wakes.push(state.value.flags());
                self.stats.fires += 1;
                let (reload, flags) = state.reload.unwrap_or((0, CoreSet::empty()));
                state.value = SyncPointValue::with(flags, reload);
                state.armed = state.reload.is_some();
            }
        }

        // 3. Interrupt forwarding.
        if irqs != 0 {
            for core in CoreId::first(self.num_cores) {
                if self.subscriptions[core.index()] & irqs != 0 {
                    woken.insert(core);
                    self.stats.irq_wakes += 1;
                }
            }
        }

        // Deliver wakes: gated cores resume, awake cores latch a pending
        // wake.
        for core in woken.iter() {
            if self.gated.contains(core) {
                self.gated.remove(core);
                outcome.woken.insert(core);
            } else {
                self.pending.insert(core);
            }
        }

        // 4. SLEEP processing (after wake delivery).
        for core in sleeps.iter() {
            if self.pending.contains(core) {
                self.pending.remove(core);
                outcome.fell_through.insert(core);
                self.stats.fallthroughs += 1;
            } else {
                self.gated.insert(core);
                outcome.slept.insert(core);
                self.stats.sleeps += 1;
            }
        }
        Ok(())
    }

    fn check_core(&self, core: CoreId) -> Result<(), SyncError> {
        if core.index() >= self.num_cores {
            return Err(SyncError::CoreOutOfRange {
                index: core.index(),
            });
        }
        Ok(())
    }

    fn point_mut(&mut self, point: u16) -> Result<&mut PointState, SyncError> {
        let points = self.points.len();
        self.points
            .get_mut(point as usize)
            .ok_or(SyncError::PointOutOfRange { point, points })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn core(i: usize) -> CoreId {
        CoreId::new(i).expect("test core in range")
    }

    fn sync(cores: usize, points: usize) -> Synchronizer {
        Synchronizer::new(cores, points).expect("valid configuration")
    }

    #[test]
    fn producer_consumer_wakeup() {
        let mut s = sync(8, 2);
        // Consumer registers and sleeps.
        s.submit_op(core(4), SyncKind::Nop, 0).unwrap();
        s.commit().unwrap();
        s.request_sleep(core(4));
        let o = s.commit().unwrap();
        assert!(o.slept.contains(core(4)));
        assert!(s.is_gated(core(4)));

        // Producers register, then complete.
        for i in 0..3 {
            s.submit_op(core(i), SyncKind::Inc, 0).unwrap();
        }
        let o = s.commit().unwrap();
        assert!(o.fired_points.is_empty());
        for i in 0..3 {
            s.submit_op(core(i), SyncKind::Dec, 0).unwrap();
        }
        let o = s.commit().unwrap();
        assert_eq!(o.fired_points, vec![0]);
        assert!(o.woken.contains(core(4)));
        assert!(!s.is_gated(core(4)));
        // Point cleared and disarmed after fire.
        assert_eq!(s.point_value(0).unwrap(), SyncPointValue::cleared());
    }

    #[test]
    fn same_cycle_requests_are_merged_into_one_write() {
        let mut s = sync(8, 1);
        for i in 0..3 {
            s.submit_op(core(i), SyncKind::Inc, 0).unwrap();
        }
        s.submit_op(core(4), SyncKind::Nop, 0).unwrap();
        let o = s.commit().unwrap();
        assert_eq!(o.memory_writes, 1);
        assert_eq!(s.stats().ops, 4);
        assert_eq!(s.stats().merged, 3);
        let v = s.point_value(0).unwrap();
        assert_eq!(v.counter(), 3);
        assert_eq!(v.flags().bits(), 0b0001_0111);
    }

    #[test]
    fn lockstep_branch_recovery() {
        // Fig. 3-b: three cores SINC before a data-dependent branch and
        // SDEC + SLEEP as they finish; the last one releases everyone.
        let mut s = sync(4, 1);
        for i in 0..3 {
            s.submit_op(core(i), SyncKind::Inc, 0).unwrap();
        }
        s.commit().unwrap();

        // Core 0 finishes first, then core 2, then core 1.
        for &i in &[0usize, 2] {
            s.submit_op(core(i), SyncKind::Dec, 0).unwrap();
            s.commit().unwrap();
            s.request_sleep(core(i));
            s.commit().unwrap();
            assert!(s.is_gated(core(i)));
        }
        s.submit_op(core(1), SyncKind::Dec, 0).unwrap();
        let o = s.commit().unwrap();
        // Cores 0 and 2 resume; core 1 (awake) gets a pending wake.
        assert!(o.woken.contains(core(0)));
        assert!(o.woken.contains(core(2)));
        assert!(!o.woken.contains(core(1)));
        // Core 1's subsequent SLEEP falls through, keeping lock-step.
        s.request_sleep(core(1));
        let o = s.commit().unwrap();
        assert!(o.fell_through.contains(core(1)));
        assert!(!s.is_gated(core(1)));
    }

    #[test]
    fn late_consumer_snop_fires_immediately() {
        // Producers already produced (armed point back at zero) before
        // the consumer registers: the SNOP must fire at once.
        let mut s = sync(8, 1);
        s.submit_op(core(0), SyncKind::Inc, 0).unwrap();
        s.commit().unwrap();
        s.submit_op(core(0), SyncKind::Dec, 0).unwrap();
        let o = s.commit().unwrap();
        // Nobody flagged except the producer itself — fires and wakes it
        // as a pending latch; that is the paper's "resume all registered
        // cores" with only the producer registered.
        assert_eq!(o.fired_points, vec![0]);

        // Now a fresh epoch where the producer finishes before the
        // consumer even registers.
        s.submit_op(core(0), SyncKind::Inc, 0).unwrap();
        s.commit().unwrap();
        s.submit_op(core(0), SyncKind::Dec, 0).unwrap();
        s.commit().unwrap();
        s.submit_op(core(4), SyncKind::Nop, 0).unwrap();
        let o = s.commit().unwrap();
        // Point disarmed by the earlier fire, so the SNOP alone must not
        // fire — the consumer will sleep and wait for the next SINC.
        assert!(o.fired_points.is_empty());
    }

    #[test]
    fn unarmed_point_never_fires_on_snop() {
        let mut s = sync(8, 1);
        s.submit_op(core(2), SyncKind::Nop, 0).unwrap();
        let o = s.commit().unwrap();
        assert!(o.fired_points.is_empty());
        s.request_sleep(core(2));
        s.commit().unwrap();
        assert!(s.is_gated(core(2)));
    }

    #[test]
    fn preloaded_auto_reload_barrier() {
        let mut s = sync(4, 1);
        s.preload(0, 2, true).unwrap();
        for round in 0..3 {
            s.submit_op(core(0), SyncKind::Nop, 0).unwrap();
            s.submit_op(core(1), SyncKind::Nop, 0).unwrap();
            s.commit().unwrap();
            s.submit_op(core(0), SyncKind::Dec, 0).unwrap();
            s.commit().unwrap();
            s.submit_op(core(1), SyncKind::Dec, 0).unwrap();
            let o = s.commit().unwrap();
            assert_eq!(o.fired_points, vec![0], "round {round}");
            assert_eq!(s.point_value(0).unwrap().counter(), 2, "auto reloaded");
        }
    }

    #[test]
    fn preloaded_barrier_needs_only_sdec() {
        let mut s = sync(4, 1);
        let participants: CoreSet = [core(0), core(1), core(2)].into_iter().collect();
        s.preload_barrier(0, 3, participants).unwrap();
        for round in 0..3 {
            // Cores 0 and 1 arrive and sleep.
            for i in 0..2 {
                s.submit_op(core(i), SyncKind::Dec, 0).unwrap();
                s.commit().unwrap();
                s.request_sleep(core(i));
                s.commit().unwrap();
            }
            // The last arrival releases everyone.
            s.submit_op(core(2), SyncKind::Dec, 0).unwrap();
            let o = s.commit().unwrap();
            assert_eq!(o.fired_points, vec![0], "round {round}");
            assert!(o.woken.contains(core(0)));
            assert!(o.woken.contains(core(1)));
            // Counter and participants reloaded.
            let v = s.point_value(0).unwrap();
            assert_eq!(v.counter(), 3);
            assert_eq!(v.flags(), participants);
            // Core 2's own sleep falls through on the pending wake.
            s.request_sleep(core(2));
            let o = s.commit().unwrap();
            assert!(o.fell_through.contains(core(2)));
        }
    }

    #[test]
    fn interrupt_subscription_and_forwarding() {
        let mut s = sync(2, 1);
        s.subscribe(core(1), 0b01).unwrap();
        s.request_sleep(core(1));
        s.commit().unwrap();
        assert!(s.is_gated(core(1)));

        // Unrelated source does not wake it.
        s.raise_irq(1);
        let o = s.commit().unwrap();
        assert!(o.woken.is_empty());
        assert!(s.is_gated(core(1)));

        // Subscribed source does.
        s.raise_irq(0);
        let o = s.commit().unwrap();
        assert!(o.woken.contains(core(1)));
        assert_eq!(s.stats().irq_wakes, 1);
    }

    #[test]
    fn irq_while_awake_sets_pending() {
        let mut s = sync(1, 1);
        s.subscribe(core(0), 1).unwrap();
        s.raise_irq(0);
        s.commit().unwrap();
        s.request_sleep(core(0));
        let o = s.commit().unwrap();
        assert!(o.fell_through.contains(core(0)));
        assert!(!s.is_gated(core(0)));
    }

    #[test]
    fn merged_net_zero_delta_is_consistent() {
        let mut s = sync(8, 1);
        s.preload(0, 0, false).unwrap();
        // Simultaneous SINC and SDEC net to zero — legal as one merged
        // modification even though serial SDEC-first would underflow.
        s.submit_op(core(0), SyncKind::Inc, 0).unwrap();
        s.submit_op(core(1), SyncKind::Dec, 0).unwrap();
        let o = s.commit().unwrap();
        assert_eq!(o.memory_writes, 1);
        assert_eq!(o.fired_points, vec![0]);
    }

    #[test]
    fn merged_update_is_atomic_at_the_synchronizer() {
        // The synchronizer-level counterpart of
        // `sync_point::tests::merged_update_is_atomic`: submission order
        // must not matter, because `apply` accumulates the cycle's net
        // delta before touching the point. Submit every SDEC *before*
        // the SINCs on a zero counter — a serial SDEC-first ordering
        // would underflow, the merged modification must not.
        let mut s = sync(8, 1);
        s.submit_op(core(3), SyncKind::Dec, 0).unwrap();
        s.submit_op(core(4), SyncKind::Dec, 0).unwrap();
        s.submit_op(core(0), SyncKind::Inc, 0).unwrap();
        s.submit_op(core(1), SyncKind::Inc, 0).unwrap();
        let o = s.commit().unwrap();
        assert_eq!(o.memory_writes, 1, "one consistent modification");
        assert_eq!(s.stats().invariant_faults, 0, "no transient underflow");
        // The merged net-zero release fires exactly like the serial
        // SINC-first ordering would: the SINC arms the point, the zero
        // counter releases, and the fire clears the word.
        assert_eq!(o.fired_points, vec![0], "net zero fires the point");
        assert_eq!(s.point_value(0).unwrap(), SyncPointValue::cleared());
    }

    #[test]
    fn underflow_is_a_protocol_violation() {
        let mut s = sync(2, 1);
        s.submit_op(core(0), SyncKind::Dec, 0).unwrap();
        assert_eq!(s.commit(), Err(SyncError::CounterUnderflow));
    }

    #[test]
    fn bad_configuration_rejected() {
        assert!(Synchronizer::new(0, 1).is_err());
        assert!(Synchronizer::new(9, 1).is_err());
        let mut s = sync(2, 2);
        assert!(s.submit_op(core(3), SyncKind::Inc, 0).is_err());
        assert!(s.submit_op(core(0), SyncKind::Inc, 2).is_err());
        assert!(s.preload(5, 1, false).is_err());
        assert!(s.point_value(9).is_err());
        assert!(s.subscribe(core(3), 1).is_err());
    }

    #[test]
    fn stats_display_mentions_every_counter() {
        let stats = SyncStats {
            ops: 1,
            writes: 2,
            merged: 3,
            fires: 4,
            sleeps: 5,
            fallthroughs: 6,
            irq_wakes: 7,
            lost_wakes: 8,
            invariant_faults: 9,
        };
        let text = stats.to_string();
        let needles = [
            "1 ops",
            "2 writes",
            "3 merged",
            "4 fires",
            "5 sleeps",
            "6 fall",
            "7 irq",
            "8 lost",
            "9 invariant",
        ];
        for needle in needles {
            assert!(text.contains(needle), "missing {needle} in `{text}`");
        }
    }

    #[test]
    fn release_with_no_registered_core_counts_a_lost_wake() {
        // Preloaded point decremented to zero before anyone registers:
        // the release event wakes nobody.
        let mut s = sync(2, 1);
        s.preload(0, 1, false).unwrap();
        s.submit_op(core(0), SyncKind::Dec, 0).unwrap();
        let o = s.commit().unwrap();
        assert!(o.fired_points.is_empty(), "no flags, nothing to fire");
        assert_eq!(s.stats().lost_wakes, 1);

        // The ordinary producer/consumer flow never loses wakes.
        let mut s = sync(2, 1);
        s.submit_op(core(1), SyncKind::Nop, 0).unwrap();
        s.submit_op(core(0), SyncKind::Inc, 0).unwrap();
        s.commit().unwrap();
        s.submit_op(core(0), SyncKind::Dec, 0).unwrap();
        let o = s.commit().unwrap();
        assert_eq!(o.fired_points, vec![0]);
        assert_eq!(s.stats().lost_wakes, 0);
    }

    #[test]
    fn invariant_faults_are_counted() {
        let mut s = sync(2, 1);
        assert_eq!(s.stats().invariant_faults, 0);
        s.submit_op(core(0), SyncKind::Dec, 0).unwrap();
        assert_eq!(s.commit(), Err(SyncError::CounterUnderflow));
        assert_eq!(s.stats().invariant_faults, 1);
    }

    #[test]
    fn point_armed_tracks_arming_and_fires() {
        let mut s = sync(2, 1);
        assert!(!s.point_armed(0).unwrap());
        s.submit_op(core(0), SyncKind::Inc, 0).unwrap();
        s.commit().unwrap();
        assert!(s.point_armed(0).unwrap());
        s.submit_op(core(0), SyncKind::Dec, 0).unwrap();
        s.commit().unwrap();
        assert!(!s.point_armed(0).unwrap(), "disarmed by the fire");
        assert!(s.point_armed(5).is_err());
    }

    #[test]
    fn distinct_points_in_one_cycle_write_separately() {
        let mut s = sync(4, 3);
        s.submit_op(core(0), SyncKind::Inc, 0).unwrap();
        s.submit_op(core(1), SyncKind::Inc, 2).unwrap();
        let o = s.commit().unwrap();
        assert_eq!(o.memory_writes, 2);
        assert_eq!(s.stats().merged, 0);
    }
}
