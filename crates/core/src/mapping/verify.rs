//! Whole-image verification of the synchronization protocol.
//!
//! [`wbsn_isa::syncflow`] checks one program in isolation; this module
//! lifts that analysis to a linked multi-core image plus its
//! [`MappingPlan`], so the diagnostics carry section names, executing
//! cores and absolute addresses, and so the plan-level insertion rules
//! of §III-B can be checked too:
//!
//! * every consumer phase must open with an `SNOP` on its consume
//!   point (the flag registration that makes the synchronizer wake it),
//! * every producer phase must signal the consumer's point with an
//!   `SINC` (or an `SDEC` when the point is a preloaded auto-reload
//!   barrier),
//! * every point the plan allocates must fit the platform's
//!   synchronization-point file.
//!
//! The presence checks only make sense for the hardware-synchronized
//! build flavour: busy-wait variants carry the same plan but signal
//! through shared memory, so callers gate them with
//! [`VerifyConfig::require_signaling`]. The per-program flow checks
//! (balanced branches, counter range) run unconditionally — a program
//! with no sync instructions passes them trivially.

use std::fmt;

use wbsn_isa::link::{LinkedImage, PlacedSection};
use wbsn_isa::syncflow::{self, SyncFlowConfig, SyncFlowDiag};
use wbsn_isa::{DecodeError, Instr, SyncKind};

use crate::mapping::MappingPlan;
use crate::task_graph::TaskGraph;
use crate::PhaseId;

/// Configuration shared by [`verify_image`] and [`verify_plan`].
#[derive(Debug, Clone)]
pub struct VerifyConfig {
    /// Size of the platform's synchronization-point file.
    pub sync_points: u16,
    /// Load-time preloads: `(point, initial counter)`.
    pub preloads: Vec<(u16, u8)>,
    /// Points configured as auto-reload barriers (building directives):
    /// cores only `SDEC` them, the hardware refills the counter.
    pub auto_reload: Vec<u16>,
    /// Whether consumer-`SNOP` / producer-`SINC` presence is required.
    /// True for the paper's hardware-synchronized builds; false for
    /// busy-wait baselines, which share the plan but never emit sync
    /// instructions.
    pub require_signaling: bool,
}

impl VerifyConfig {
    /// Hardware-synchronized build against a `sync_points`-entry file.
    pub fn new(sync_points: u16) -> VerifyConfig {
        VerifyConfig {
            sync_points,
            preloads: Vec::new(),
            auto_reload: Vec::new(),
            require_signaling: true,
        }
    }

    fn flow_config(&self) -> SyncFlowConfig {
        SyncFlowConfig {
            sync_points: Some(self.sync_points),
            preloads: self.preloads.clone(),
            auto_reload: self.auto_reload.clone(),
        }
    }
}

impl Default for VerifyConfig {
    fn default() -> VerifyConfig {
        VerifyConfig::new(16)
    }
}

/// One finding of the image/plan verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyDiag {
    /// A per-program flow violation, located in the linked image.
    Flow {
        /// Section the offending instruction belongs to.
        section: String,
        /// Cores whose entry point lies in that section.
        cores: Vec<usize>,
        /// Absolute instruction-memory address of the finding.
        addr: u32,
        /// The underlying flow diagnostic (program-relative `pc`).
        diag: SyncFlowDiag,
    },
    /// A consumer phase never registers on its consume point: the
    /// synchronizer would have no flag to wake and the produced data
    /// would be lost.
    MissingConsumerSnop {
        /// Name of the consumer phase.
        consumer: String,
        /// The consume point the plan assigned it.
        point: u16,
    },
    /// A producer phase never signals its consumer's point: the
    /// consumer would sleep forever.
    MissingProducerSignal {
        /// Name of the producer phase.
        producer: String,
        /// Name of the consumer phase it feeds.
        consumer: String,
        /// The consume point that is never signalled.
        point: u16,
    },
    /// The plan allocated a point beyond the platform's file.
    PointOutOfRange {
        /// Phase the point was allocated for.
        phase: String,
        /// The out-of-range point.
        point: u16,
    },
}

impl fmt::Display for VerifyDiag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyDiag::Flow {
                section,
                cores,
                addr,
                diag,
            } => write!(
                f,
                "section `{section}` (cores {cores:?}) at 0x{addr:04X}: {diag}"
            ),
            VerifyDiag::MissingConsumerSnop { consumer, point } => write!(
                f,
                "consumer phase `{consumer}` never executes SNOP on its \
                 consume point {point}; the synchronizer cannot wake it"
            ),
            VerifyDiag::MissingProducerSignal {
                producer,
                consumer,
                point,
            } => write!(
                f,
                "producer phase `{producer}` never signals point {point} \
                 consumed by `{consumer}`; the consumer would sleep forever"
            ),
            VerifyDiag::PointOutOfRange { phase, point } => write!(
                f,
                "plan allocates point {point} for phase `{phase}` beyond \
                 the platform's synchronization-point file"
            ),
        }
    }
}

/// Runs the per-program flow analysis over every placed section of a
/// linked image, locating findings by section, core and absolute
/// address.
pub fn verify_image(
    image: &LinkedImage,
    config: &VerifyConfig,
) -> Result<Vec<VerifyDiag>, DecodeError> {
    let flow_config = config.flow_config();
    let mut out = Vec::new();
    for section in image.sections() {
        let program = image.section_program(section)?;
        let cores = image.cores_entering(section);
        for diag in syncflow::analyze(&program, &flow_config) {
            out.push(VerifyDiag::Flow {
                section: section.name.clone(),
                cores: cores.clone(),
                addr: section.base + diag.pc() as u32,
                diag,
            });
        }
    }
    Ok(out)
}

/// Section containing the entry point of the core that `phase` is
/// mapped to.
fn section_of<'a>(
    plan: &MappingPlan,
    image: &'a LinkedImage,
    phase: PhaseId,
) -> Option<&'a PlacedSection> {
    let core = plan.core_of(phase).index();
    let entry = image.entry(core)?;
    image
        .sections()
        .iter()
        .find(|s| entry >= s.base && entry < s.base + s.len as u32)
}

/// True if `section` contains a sync instruction of `kind` on `point`.
fn contains_sync(
    image: &LinkedImage,
    section: &PlacedSection,
    kind: SyncKind,
    point: u16,
) -> Result<bool, DecodeError> {
    let program = image.section_program(section)?;
    Ok(program
        .instrs()
        .iter()
        .any(|i| matches!(i, Instr::Sync { kind: k, point: p } if *k == kind && *p == point)))
}

/// Verifies a linked image against the plan that produced it.
///
/// Runs [`verify_image`] on every section, then — when
/// [`VerifyConfig::require_signaling`] is set — checks the plan-level
/// insertion rules: consumer phases register with `SNOP`, producer
/// phases signal with `SINC` (`SDEC` for auto-reload points), and every
/// allocated point fits the platform's file.
pub fn verify_plan(
    graph: &TaskGraph,
    plan: &MappingPlan,
    image: &LinkedImage,
    config: &VerifyConfig,
) -> Result<Vec<VerifyDiag>, DecodeError> {
    let mut out = verify_image(image, config)?;

    for placement in plan.placements() {
        let phase = placement.phase;
        let name = &graph.phase(phase).name;
        for point in [plan.consume_point(phase), plan.lockstep_point(phase)]
            .into_iter()
            .flatten()
        {
            if point >= config.sync_points {
                out.push(VerifyDiag::PointOutOfRange {
                    phase: name.clone(),
                    point,
                });
            }
        }
    }

    if !config.require_signaling {
        return Ok(out);
    }

    for placement in plan.placements() {
        let consumer = placement.phase;
        let Some(point) = plan.consume_point(consumer) else {
            continue;
        };
        if point >= config.sync_points {
            continue; // already reported as out of range
        }
        let consumer_name = &graph.phase(consumer).name;
        if let Some(section) = section_of(plan, image, consumer) {
            if !contains_sync(image, section, SyncKind::Nop, point)? {
                out.push(VerifyDiag::MissingConsumerSnop {
                    consumer: consumer_name.clone(),
                    point,
                });
            }
        }
        // Auto-reload points are refilled by hardware, so a producer's
        // signal is the decrement; otherwise it is the increment.
        let signal = if config.auto_reload.contains(&point) {
            SyncKind::Dec
        } else {
            SyncKind::Inc
        };
        for producer in graph.producers_of(consumer) {
            let Some(section) = section_of(plan, image, producer) else {
                continue;
            };
            if !contains_sync(image, section, signal, point)? {
                out.push(VerifyDiag::MissingProducerSignal {
                    producer: graph.phase(producer).name.clone(),
                    consumer: consumer_name.clone(),
                    point,
                });
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::Mapper;
    use crate::task_graph::Phase;
    use wbsn_isa::assemble_text;
    use wbsn_isa::link::{Linker, Section};

    /// Producer -> consumer graph, mapped, with the given section
    /// bodies linked at the planned cores.
    fn fixture(
        producer_src: &str,
        consumer_src: &str,
    ) -> (TaskGraph, MappingPlan, LinkedImage, u16) {
        let mut graph = TaskGraph::new();
        let producer = graph
            .add_phase(Phase::acquire("producer", 0))
            .expect("phase");
        let consumer = graph.add_phase(Phase::compute("consumer")).expect("phase");
        graph.add_edge(producer, consumer).expect("edge");
        let plan = Mapper::new(4, 4, 16).map(&graph).expect("maps");
        let point = plan.consume_point(consumer).expect("consume point");

        let producer_src = producer_src.replace("{p}", &point.to_string());
        let consumer_src = consumer_src.replace("{p}", &point.to_string());
        let mut linker = Linker::new();
        linker
            .add_section(Section::in_bank(
                "producer",
                assemble_text(&producer_src).expect("assembles"),
                plan.bank_of(producer),
            ))
            .add_section(Section::in_bank(
                "consumer",
                assemble_text(&consumer_src).expect("assembles"),
                plan.bank_of(consumer),
            ))
            .set_entry(plan.core_of(producer).index(), "producer")
            .set_entry(plan.core_of(consumer).index(), "consumer");
        let image = linker.link().expect("links");
        (graph, plan, image, point)
    }

    #[test]
    fn well_formed_pair_is_clean() {
        let (graph, plan, image, _) = fixture(
            "sinc {p}\nsdec {p}\nsinc {p}\nhalt\n",
            "snop {p}\nsleep\nhalt\n",
        );
        let diags = verify_plan(&graph, &plan, &image, &VerifyConfig::new(16)).expect("decodes");
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn missing_consumer_snop_is_flagged() {
        let (graph, plan, image, point) = fixture("sinc {p}\nhalt\n", "sleep\nhalt\n");
        let diags = verify_plan(&graph, &plan, &image, &VerifyConfig::new(16)).expect("decodes");
        assert!(
            diags.iter().any(|d| matches!(
                d,
                VerifyDiag::MissingConsumerSnop { consumer, point: p }
                    if consumer == "consumer" && *p == point
            )),
            "{diags:?}"
        );
    }

    #[test]
    fn missing_producer_signal_is_flagged() {
        let (graph, plan, image, point) = fixture("halt\n", "snop {p}\nsleep\nhalt\n");
        let diags = verify_plan(&graph, &plan, &image, &VerifyConfig::new(16)).expect("decodes");
        assert!(
            diags.iter().any(|d| matches!(
                d,
                VerifyDiag::MissingProducerSignal { producer, point: p, .. }
                    if producer == "producer" && *p == point
            )),
            "{diags:?}"
        );
    }

    #[test]
    fn busy_wait_plan_skips_presence_checks() {
        // Same plan, no sync instructions anywhere: a busy-wait build.
        let (graph, plan, image, _) = fixture("halt\n", "halt\n");
        let mut config = VerifyConfig::new(16);
        config.require_signaling = false;
        let diags = verify_plan(&graph, &plan, &image, &config).expect("decodes");
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn flow_diagnostics_carry_absolute_addresses() {
        // The producer SDECs with no cover: underflow at its pc 1.
        let (graph, plan, image, point) = fixture(
            "sinc {p}\nsdec {p}\nsdec {p}\nhalt\n",
            "snop {p}\nsleep\nhalt\n",
        );
        let section = image
            .sections()
            .iter()
            .find(|s| s.name == "producer")
            .expect("placed")
            .clone();
        let diags = verify_plan(&graph, &plan, &image, &VerifyConfig::new(16)).expect("decodes");
        let flow = diags
            .iter()
            .find_map(|d| match d {
                VerifyDiag::Flow {
                    section,
                    addr,
                    diag,
                    ..
                } if section == "producer" => Some((*addr, diag.clone())),
                _ => None,
            })
            .expect("flow diagnostic");
        assert_eq!(flow.0, section.base + 2);
        assert!(
            matches!(flow.1, SyncFlowDiag::CounterUnderflow { pc: 2, point: p, .. } if p == point),
            "{diags:?}"
        );
    }

    #[test]
    fn diagnostics_render_with_section_names() {
        let (graph, plan, image, _) = fixture("halt\n", "snop {p}\nsleep\nhalt\n");
        let diags = verify_plan(&graph, &plan, &image, &VerifyConfig::new(16)).expect("decodes");
        let rendered: Vec<String> = diags.iter().map(|d| d.to_string()).collect();
        assert!(
            rendered.iter().any(|s| s.contains("producer")),
            "{rendered:?}"
        );
    }
}
