//! Error types of the synchronization methodology.

use std::error::Error;
use std::fmt;

/// Errors raised by the synchronizer unit and the synchronization-point
/// algebra.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncError {
    /// A core index exceeded the platform's flag byte.
    CoreOutOfRange {
        /// The offending index.
        index: usize,
    },
    /// A synchronization-point literal exceeded the configured number of
    /// points.
    PointOutOfRange {
        /// The offending literal.
        point: u16,
        /// Number of configured points.
        points: usize,
    },
    /// A point's up/down counter would exceed 255 — more `SINC`s than the
    /// protocol allows.
    CounterOverflow,
    /// A point's up/down counter would drop below zero — an `SDEC`
    /// without a matching `SINC` (or preloaded count).
    CounterUnderflow,
    /// The synchronizer was configured with zero cores or more cores than
    /// the flag byte can identify.
    BadCoreCount {
        /// Requested core count.
        cores: usize,
    },
}

impl fmt::Display for SyncError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            SyncError::CoreOutOfRange { index } => {
                write!(f, "core index {index} exceeds the flag byte (max 7)")
            }
            SyncError::PointOutOfRange { point, points } => write!(
                f,
                "synchronization point {point} outside configured range 0..{points}"
            ),
            SyncError::CounterOverflow => {
                f.write_str("synchronization counter overflow (more than 255 pending SINCs)")
            }
            SyncError::CounterUnderflow => {
                f.write_str("synchronization counter underflow (SDEC without matching SINC)")
            }
            SyncError::BadCoreCount { cores } => {
                write!(f, "invalid core count {cores} (expected 1..=8)")
            }
        }
    }
}

impl Error for SyncError {}

/// Errors raised while validating a task graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskGraphError {
    /// An edge referenced a phase that does not exist.
    UnknownPhase {
        /// The dangling phase index.
        index: usize,
    },
    /// The producer-consumer edges form a cycle.
    Cyclic,
    /// Two phases share a name.
    DuplicatePhase(String),
    /// An edge connects a phase to itself.
    SelfEdge {
        /// The phase with the self edge.
        index: usize,
    },
}

impl fmt::Display for TaskGraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TaskGraphError::UnknownPhase { index } => {
                write!(f, "edge references unknown phase {index}")
            }
            TaskGraphError::Cyclic => f.write_str("producer-consumer edges form a cycle"),
            TaskGraphError::DuplicatePhase(name) => {
                write!(f, "duplicate phase name `{name}`")
            }
            TaskGraphError::SelfEdge { index } => {
                write!(f, "phase {index} has a producer-consumer edge to itself")
            }
        }
    }
}

impl Error for TaskGraphError {}

/// Errors raised while mapping a task graph onto the platform.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MappingError {
    /// The graph needs more cores than the platform provides.
    NotEnoughCores {
        /// Cores required by the partitioning.
        needed: usize,
        /// Cores available.
        available: usize,
    },
    /// The graph needs more instruction banks than the platform provides.
    NotEnoughBanks {
        /// Banks required (one per phase).
        needed: usize,
        /// Banks available.
        available: usize,
    },
    /// More synchronization points are required than the synchronizer
    /// was configured with.
    NotEnoughSyncPoints {
        /// Points required.
        needed: usize,
        /// Points available.
        available: usize,
    },
    /// The task graph failed validation.
    Graph(TaskGraphError),
}

impl fmt::Display for MappingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MappingError::NotEnoughCores { needed, available } => {
                write!(f, "mapping needs {needed} cores, platform has {available}")
            }
            MappingError::NotEnoughBanks { needed, available } => write!(
                f,
                "mapping needs {needed} instruction banks, platform has {available}"
            ),
            MappingError::NotEnoughSyncPoints { needed, available } => write!(
                f,
                "mapping needs {needed} synchronization points, synchronizer has {available}"
            ),
            MappingError::Graph(e) => write!(f, "invalid task graph: {e}"),
        }
    }
}

impl Error for MappingError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            MappingError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TaskGraphError> for MappingError {
    fn from(e: TaskGraphError) -> Self {
        MappingError::Graph(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_nonempty() {
        let errors: Vec<Box<dyn Error>> = vec![
            Box::new(SyncError::CounterOverflow),
            Box::new(SyncError::PointOutOfRange {
                point: 9,
                points: 4,
            }),
            Box::new(TaskGraphError::Cyclic),
            Box::new(MappingError::NotEnoughCores {
                needed: 9,
                available: 8,
            }),
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn mapping_error_wraps_graph_error() {
        let m: MappingError = TaskGraphError::Cyclic.into();
        assert!(m.source().is_some());
    }
}
