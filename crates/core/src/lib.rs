//! The HW/SW code-synchronization methodology of Braojos et al.
//! (DATE 2014) — the paper's primary contribution.
//!
//! Three pieces make up the approach:
//!
//! * [`sync_point`] — the synchronization-point word format of Fig. 3:
//!   per-core identification flags in the most-significant bits, an
//!   up/down counter in the least-significant bits, and the merge rules
//!   applied when several cores touch the same point in one cycle.
//! * [`synchronizer`] — the lightweight synchronizer unit that merges
//!   simultaneous requests into one consistent memory modification,
//!   clock-gates cores that execute `SLEEP`, wakes every flagged core
//!   when a point's counter reaches zero, and forwards peripheral
//!   interrupts to subscribed cores.
//! * [`task_graph`] + [`mapping`] — the three-step software methodology:
//!   partition an application into phases, insert synchronization
//!   instructions (SNOP on consumers, SINC/SDEC on producers and around
//!   data-dependent branches), and map phases onto cores and
//!   instruction-memory banks.
//!
//! # Example
//!
//! Three producers and one consumer meeting at a synchronization point:
//!
//! ```
//! use wbsn_core::{CoreId, Synchronizer};
//! use wbsn_isa::SyncKind;
//!
//! # fn main() -> Result<(), wbsn_core::SyncError> {
//! let mut sync = Synchronizer::new(8, 4)?;
//! for core in 0..3 {
//!     sync.submit_op(CoreId::new(core)?, SyncKind::Inc, 0)?; // producers register
//! }
//! sync.submit_op(CoreId::new(4)?, SyncKind::Nop, 0)?; // consumer registers
//! sync.commit()?;
//!
//! sync.request_sleep(CoreId::new(4)?); // consumer goes to clock-gated mode
//! sync.commit()?;
//!
//! for core in 0..3 {
//!     sync.submit_op(CoreId::new(core)?, SyncKind::Dec, 0)?; // data ready
//! }
//! let outcome = sync.commit()?;
//! assert!(outcome.woken.contains(CoreId::new(4)?)); // consumer resumes
//! # Ok(())
//! # }
//! ```

pub mod error;
pub mod mapping;
pub mod sync_point;
pub mod synchronizer;
pub mod task_graph;

pub use error::{MappingError, SyncError, TaskGraphError};
pub use mapping::{Mapper, MappingPlan, PhasePlacement};
pub use sync_point::{CoreId, CoreSet, SyncPointValue, MAX_CORES};
pub use synchronizer::{PointTouch, SyncOutcome, SyncStats, Synchronizer};
pub use task_graph::{Phase, PhaseId, PhaseRole, TaskGraph};
