//! Application mapping: the paper's three-step methodology.
//!
//! Starting from a partitioned application ([`crate::TaskGraph`]), the
//! [`Mapper`] performs the resource assignment of §III-B step 3:
//!
//! 1. **Partitioning** is the task graph itself — one phase per core,
//!    with phases that operate in parallel on different streams grouped
//!    for lock-step execution.
//! 2. **Insertion** sites are derived here: every consumer phase with at
//!    least one producer gets a *consume point* (producers `SINC`/`SDEC`
//!    it, the consumer `SNOP`s and sleeps on it), and every lock-step
//!    group gets a *branch-recovery point* (`SINC` before a
//!    data-dependent segment, `SDEC` + `SLEEP` after it).
//! 3. **Mapping** assigns each phase a core and an instruction-memory
//!    bank, with lock-step group members sharing one bank so that their
//!    fetches broadcast, and collects the interrupt subscriptions of the
//!    acquisition phases.

pub mod verify;

use std::collections::BTreeMap;
use std::fmt;

use crate::error::MappingError;
use crate::sync_point::CoreId;
use crate::task_graph::{PhaseRole, TaskGraph};
use crate::PhaseId;

/// Placement decision for one phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhasePlacement {
    /// The placed phase.
    pub phase: PhaseId,
    /// Core executing the phase.
    pub core: CoreId,
    /// Instruction-memory bank holding the phase's code.
    pub im_bank: usize,
}

/// The complete output of the mapping step, consumed by the code
/// generators and the platform loader.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MappingPlan {
    placements: Vec<PhasePlacement>,
    consume_points: BTreeMap<PhaseId, u16>,
    lockstep_points: Vec<u16>,
    lockstep_point_of_phase: BTreeMap<PhaseId, u16>,
    subscriptions: BTreeMap<CoreId, u16>,
    points_used: usize,
}

impl MappingPlan {
    /// Placement of every phase, in phase order.
    pub fn placements(&self) -> &[PhasePlacement] {
        &self.placements
    }

    /// Core assigned to `phase`.
    ///
    /// # Panics
    ///
    /// Panics if the phase was not part of the mapped graph.
    pub fn core_of(&self, phase: PhaseId) -> CoreId {
        self.placements
            .iter()
            .find(|p| p.phase == phase)
            .expect("phase belongs to the mapped graph")
            .core
    }

    /// Instruction bank assigned to `phase`.
    ///
    /// # Panics
    ///
    /// Panics if the phase was not part of the mapped graph.
    pub fn bank_of(&self, phase: PhaseId) -> usize {
        self.placements
            .iter()
            .find(|p| p.phase == phase)
            .expect("phase belongs to the mapped graph")
            .im_bank
    }

    /// Synchronization point where `consumer`'s producers signal data
    /// availability, if the phase has producers.
    pub fn consume_point(&self, consumer: PhaseId) -> Option<u16> {
        self.consume_points.get(&consumer).copied()
    }

    /// Branch-recovery synchronization point of the lock-step group that
    /// `phase` belongs to, if any.
    pub fn lockstep_point(&self, phase: PhaseId) -> Option<u16> {
        self.lockstep_point_of_phase.get(&phase).copied()
    }

    /// One branch-recovery point per lock-step group, in group order.
    pub fn lockstep_points(&self) -> &[u16] {
        &self.lockstep_points
    }

    /// Interrupt-source subscription mask per core (acquisition phases).
    pub fn subscriptions(&self) -> impl Iterator<Item = (CoreId, u16)> + '_ {
        self.subscriptions.iter().map(|(&c, &m)| (c, m))
    }

    /// Total synchronization points allocated.
    pub fn points_used(&self) -> usize {
        self.points_used
    }

    /// Number of distinct instruction banks used — the multi-core
    /// "Active IM banks" row of Table I.
    pub fn banks_used(&self) -> usize {
        let mut banks: Vec<usize> = self.placements.iter().map(|p| p.im_bank).collect();
        banks.sort_unstable();
        banks.dedup();
        banks.len()
    }

    /// Number of cores used — the "Active Cores" row of Table I.
    pub fn cores_used(&self) -> usize {
        self.placements.len()
    }
}

impl fmt::Display for MappingPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "mapping: {} cores, {} IM banks, {} sync points",
            self.cores_used(),
            self.banks_used(),
            self.points_used()
        )?;
        for p in &self.placements {
            write!(f, "  {} -> {} (IM bank {})", p.phase, p.core, p.im_bank)?;
            if let Some(point) = self.consume_point(p.phase) {
                write!(f, ", consumes via point {point}")?;
            }
            if let Some(point) = self.lockstep_point(p.phase) {
                write!(f, ", lock-step point {point}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Maps task graphs onto a platform geometry.
///
/// # Example
///
/// ```
/// use wbsn_core::{Mapper, Phase, TaskGraph};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut g = TaskGraph::new();
/// let f0 = g.add_phase(Phase::acquire("filter0", 0))?;
/// let f1 = g.add_phase(Phase::acquire("filter1", 1))?;
/// let agg = g.add_phase(Phase::compute("aggregate"))?;
/// g.add_edge(f0, agg)?;
/// g.add_edge(f1, agg)?;
/// g.add_lockstep_group(&[f0, f1])?;
///
/// let plan = Mapper::new(8, 8, 16).map(&g)?;
/// assert_eq!(plan.cores_used(), 3);
/// assert_eq!(plan.bank_of(f0), plan.bank_of(f1)); // lock-step share a bank
/// assert!(plan.consume_point(agg).is_some());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Mapper {
    cores: usize,
    im_banks: usize,
    sync_points: usize,
}

impl Mapper {
    /// Creates a mapper for a platform with the given resources.
    pub fn new(cores: usize, im_banks: usize, sync_points: usize) -> Mapper {
        Mapper {
            cores,
            im_banks,
            sync_points,
        }
    }

    /// Produces a [`MappingPlan`] for `graph`.
    ///
    /// Cores are assigned in phase order; lock-step group members share
    /// an instruction bank; every consumer phase with producers receives
    /// a consume point and every lock-step group a branch-recovery
    /// point.
    ///
    /// # Errors
    ///
    /// Returns a [`MappingError`] when the graph is invalid or the
    /// platform lacks cores, banks or synchronization points.
    pub fn map(&self, graph: &TaskGraph) -> Result<MappingPlan, MappingError> {
        graph.validate()?;

        let needed_cores = graph.phase_count();
        if needed_cores > self.cores {
            return Err(MappingError::NotEnoughCores {
                needed: needed_cores,
                available: self.cores,
            });
        }

        // Bank assignment: one bank per lock-step group, one per
        // ungrouped phase.
        let mut bank_of_phase: BTreeMap<PhaseId, usize> = BTreeMap::new();
        let mut next_bank = 0usize;
        for group in graph.lockstep_groups() {
            for &member in group {
                bank_of_phase.insert(member, next_bank);
            }
            next_bank += 1;
        }
        for (id, _) in graph.phases() {
            bank_of_phase.entry(id).or_insert_with(|| {
                let b = next_bank;
                next_bank += 1;
                b
            });
        }
        if next_bank > self.im_banks {
            return Err(MappingError::NotEnoughBanks {
                needed: next_bank,
                available: self.im_banks,
            });
        }

        // Synchronization points: consume points first, then lock-step
        // branch-recovery points.
        let mut consume_points = BTreeMap::new();
        let mut next_point = 0u16;
        for (id, _) in graph.phases() {
            if graph.producers_of(id).next().is_some() {
                consume_points.insert(id, next_point);
                next_point += 1;
            }
        }
        let mut lockstep_points = Vec::new();
        let mut lockstep_point_of_phase = BTreeMap::new();
        for group in graph.lockstep_groups() {
            lockstep_points.push(next_point);
            for &member in group {
                lockstep_point_of_phase.insert(member, next_point);
            }
            next_point += 1;
        }
        if next_point as usize > self.sync_points {
            return Err(MappingError::NotEnoughSyncPoints {
                needed: next_point as usize,
                available: self.sync_points,
            });
        }

        // Core assignment and interrupt subscriptions.
        let mut placements = Vec::with_capacity(needed_cores);
        let mut subscriptions: BTreeMap<CoreId, u16> = BTreeMap::new();
        for (i, (id, phase)) in graph.phases().enumerate() {
            let core = CoreId::new(i).expect("core count checked above");
            placements.push(PhasePlacement {
                phase: id,
                core,
                im_bank: bank_of_phase[&id],
            });
            if let PhaseRole::Acquire { channel } = phase.role {
                *subscriptions.entry(core).or_insert(0) |= 1 << channel;
            }
        }

        Ok(MappingPlan {
            placements,
            consume_points,
            lockstep_points,
            lockstep_point_of_phase,
            subscriptions,
            points_used: next_point as usize,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task_graph::Phase;

    fn fig4_graph() -> (TaskGraph, [PhaseId; 4]) {
        let mut g = TaskGraph::new();
        let c0 = g.add_phase(Phase::acquire("cond0", 0)).unwrap();
        let c1 = g.add_phase(Phase::acquire("cond1", 1)).unwrap();
        let c2 = g.add_phase(Phase::acquire("cond2", 2)).unwrap();
        let p = g.add_phase(Phase::compute("process")).unwrap();
        g.add_edge(c0, p).unwrap();
        g.add_edge(c1, p).unwrap();
        g.add_edge(c2, p).unwrap();
        g.add_lockstep_group(&[c0, c1, c2]).unwrap();
        (g, [c0, c1, c2, p])
    }

    #[test]
    fn fig4_mapping_uses_four_cores_two_banks_two_points() {
        let (g, [c0, c1, c2, p]) = fig4_graph();
        let plan = Mapper::new(8, 8, 16).map(&g).unwrap();
        assert_eq!(plan.cores_used(), 4);
        // Conditioning phases share one bank; processing gets its own.
        assert_eq!(plan.bank_of(c0), plan.bank_of(c1));
        assert_eq!(plan.bank_of(c1), plan.bank_of(c2));
        assert_ne!(plan.bank_of(c0), plan.bank_of(p));
        assert_eq!(plan.banks_used(), 2);
        // One consume point for the processing phase, one lock-step
        // point for the conditioning group.
        assert_eq!(plan.points_used(), 2);
        let consume = plan.consume_point(p).unwrap();
        let lock = plan.lockstep_point(c0).unwrap();
        assert_ne!(consume, lock);
        assert_eq!(plan.lockstep_point(c1), Some(lock));
        assert_eq!(plan.consume_point(c0), None);
        assert_eq!(plan.lockstep_point(p), None);
    }

    #[test]
    fn distinct_cores_per_phase() {
        let (g, phases) = fig4_graph();
        let plan = Mapper::new(4, 8, 16).map(&g).unwrap();
        let mut cores: Vec<usize> = phases.iter().map(|&p| plan.core_of(p).index()).collect();
        cores.sort_unstable();
        cores.dedup();
        assert_eq!(cores.len(), 4);
    }

    #[test]
    fn acquisition_phases_subscribe_to_their_channels() {
        let (g, [c0, c1, c2, p]) = fig4_graph();
        let plan = Mapper::new(8, 8, 16).map(&g).unwrap();
        let subs: std::collections::BTreeMap<_, _> = plan.subscriptions().collect();
        assert_eq!(subs[&plan.core_of(c0)], 1 << 0);
        assert_eq!(subs[&plan.core_of(c1)], 1 << 1);
        assert_eq!(subs[&plan.core_of(c2)], 1 << 2);
        assert!(!subs.contains_key(&plan.core_of(p)));
    }

    #[test]
    fn resource_exhaustion_is_reported() {
        let (g, _) = fig4_graph();
        assert!(matches!(
            Mapper::new(3, 8, 16).map(&g),
            Err(MappingError::NotEnoughCores { needed: 4, .. })
        ));
        assert!(matches!(
            Mapper::new(8, 1, 16).map(&g),
            Err(MappingError::NotEnoughBanks { needed: 2, .. })
        ));
        assert!(matches!(
            Mapper::new(8, 8, 1).map(&g),
            Err(MappingError::NotEnoughSyncPoints { needed: 2, .. })
        ));
    }

    #[test]
    fn invalid_graph_is_rejected() {
        let mut g = TaskGraph::new();
        let a = g.add_phase(Phase::compute("a")).unwrap();
        let b = g.add_phase(Phase::compute("b")).unwrap();
        g.add_edge(a, b).unwrap();
        g.add_edge(b, a).unwrap();
        assert!(matches!(
            Mapper::new(8, 8, 16).map(&g),
            Err(MappingError::Graph(_))
        ));
    }

    #[test]
    fn display_summarises_the_plan() {
        let (g, [c0, _, _, p]) = fig4_graph();
        let plan = Mapper::new(8, 8, 16).map(&g).unwrap();
        let text = plan.to_string();
        assert!(text.contains("4 cores"));
        assert!(text.contains(&format!("{}", plan.core_of(c0))));
        assert!(text.contains("consumes via point"));
        assert!(text.contains("lock-step point"));
        let _ = p;
    }

    #[test]
    fn chain_allocates_point_per_consumer() {
        let mut g = TaskGraph::new();
        let a = g.add_phase(Phase::acquire("a", 0)).unwrap();
        let b = g.add_phase(Phase::compute("b")).unwrap();
        let c = g.add_phase(Phase::compute("c")).unwrap();
        g.add_edge(a, b).unwrap();
        g.add_edge(b, c).unwrap();
        let plan = Mapper::new(8, 8, 16).map(&g).unwrap();
        assert_eq!(plan.points_used(), 2);
        assert!(plan.consume_point(b).is_some());
        assert!(plan.consume_point(c).is_some());
        assert_ne!(plan.consume_point(b), plan.consume_point(c));
        assert_eq!(plan.banks_used(), 3);
    }
}
