//! Application task graphs: phases connected by producer-consumer edges.
//!
//! Bio-signal applications "are divided in several consecutive phases"
//! (paper §I): multiple inputs are conditioned in parallel, combined, and
//! analysed. A [`TaskGraph`] captures this structure — one [`Phase`] per
//! block of Fig. 5, producer-consumer edges between them, and *lock-step
//! groups* of phases that execute the same code on different streams and
//! can therefore share an instruction bank and benefit from broadcast.

use std::collections::BTreeSet;
use std::fmt;

use crate::error::TaskGraphError;

/// Index of a phase within its [`TaskGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PhaseId(pub usize);

impl fmt::Display for PhaseId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "phase{}", self.0)
    }
}

/// How a phase obtains its input.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PhaseRole {
    /// The phase samples a peripheral channel (e.g. one ADC lead) and is
    /// woken by its data-ready interrupt.
    Acquire {
        /// Peripheral interrupt source / channel index.
        channel: usize,
    },
    /// The phase consumes data produced by other phases.
    Compute,
}

/// One application phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Phase {
    /// Human-readable phase name (unique within the graph).
    pub name: String,
    /// Input source of the phase.
    pub role: PhaseRole,
}

impl Phase {
    /// Creates an acquisition phase fed by `channel`.
    pub fn acquire(name: impl Into<String>, channel: usize) -> Phase {
        Phase {
            name: name.into(),
            role: PhaseRole::Acquire { channel },
        }
    }

    /// Creates a compute phase fed by producer-consumer edges.
    pub fn compute(name: impl Into<String>) -> Phase {
        Phase {
            name: name.into(),
            role: PhaseRole::Compute,
        }
    }
}

/// A validated application structure: phases, producer-consumer edges and
/// lock-step groups.
///
/// # Example
///
/// The application of Fig. 1/Fig. 4 — three conditioning phases feeding
/// one processing phase:
///
/// ```
/// use wbsn_core::{Phase, PhaseId, TaskGraph};
///
/// # fn main() -> Result<(), wbsn_core::TaskGraphError> {
/// let mut g = TaskGraph::new();
/// let c0 = g.add_phase(Phase::acquire("cond0", 0))?;
/// let c1 = g.add_phase(Phase::acquire("cond1", 1))?;
/// let c2 = g.add_phase(Phase::acquire("cond2", 2))?;
/// let p = g.add_phase(Phase::compute("process"))?;
/// g.add_edge(c0, p)?;
/// g.add_edge(c1, p)?;
/// g.add_edge(c2, p)?;
/// g.add_lockstep_group(&[c0, c1, c2])?;
/// g.validate()?;
/// assert_eq!(g.producers_of(p).count(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct TaskGraph {
    phases: Vec<Phase>,
    edges: Vec<(PhaseId, PhaseId)>,
    lockstep_groups: Vec<Vec<PhaseId>>,
}

impl TaskGraph {
    /// Creates an empty graph.
    pub fn new() -> TaskGraph {
        TaskGraph::default()
    }

    /// Adds a phase and returns its identifier.
    ///
    /// # Errors
    ///
    /// Returns [`TaskGraphError::DuplicatePhase`] when the name is taken.
    pub fn add_phase(&mut self, phase: Phase) -> Result<PhaseId, TaskGraphError> {
        if self.phases.iter().any(|p| p.name == phase.name) {
            return Err(TaskGraphError::DuplicatePhase(phase.name));
        }
        self.phases.push(phase);
        Ok(PhaseId(self.phases.len() - 1))
    }

    /// Adds a producer-consumer edge.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown phases or self edges.
    pub fn add_edge(&mut self, from: PhaseId, to: PhaseId) -> Result<(), TaskGraphError> {
        self.check(from)?;
        self.check(to)?;
        if from == to {
            return Err(TaskGraphError::SelfEdge { index: from.0 });
        }
        self.edges.push((from, to));
        Ok(())
    }

    /// Declares that the given phases execute the same code on different
    /// streams and should run in lock-step (sharing one instruction bank
    /// and one branch-recovery synchronization point).
    ///
    /// # Errors
    ///
    /// Returns an error for unknown phases.
    pub fn add_lockstep_group(&mut self, members: &[PhaseId]) -> Result<(), TaskGraphError> {
        for &m in members {
            self.check(m)?;
        }
        self.lockstep_groups.push(members.to_vec());
        Ok(())
    }

    /// Number of phases.
    pub fn phase_count(&self) -> usize {
        self.phases.len()
    }

    /// The phase with identifier `id`.
    ///
    /// # Panics
    ///
    /// Panics if the identifier does not belong to this graph.
    pub fn phase(&self, id: PhaseId) -> &Phase {
        &self.phases[id.0]
    }

    /// Iterates over all phases.
    pub fn phases(&self) -> impl Iterator<Item = (PhaseId, &Phase)> {
        self.phases.iter().enumerate().map(|(i, p)| (PhaseId(i), p))
    }

    /// All producer-consumer edges.
    pub fn edges(&self) -> &[(PhaseId, PhaseId)] {
        &self.edges
    }

    /// The lock-step groups.
    pub fn lockstep_groups(&self) -> &[Vec<PhaseId>] {
        &self.lockstep_groups
    }

    /// Phases producing data for `consumer`.
    pub fn producers_of(&self, consumer: PhaseId) -> impl Iterator<Item = PhaseId> + '_ {
        self.edges
            .iter()
            .filter(move |(_, to)| *to == consumer)
            .map(|(from, _)| *from)
    }

    /// Phases consuming data from `producer`.
    pub fn consumers_of(&self, producer: PhaseId) -> impl Iterator<Item = PhaseId> + '_ {
        self.edges
            .iter()
            .filter(move |(from, _)| *from == producer)
            .map(|(_, to)| *to)
    }

    /// Checks structural invariants: all edges reference existing phases
    /// and the producer-consumer relation is acyclic.
    ///
    /// # Errors
    ///
    /// Returns the first violated [`TaskGraphError`].
    pub fn validate(&self) -> Result<(), TaskGraphError> {
        // Kahn's algorithm for cycle detection.
        let n = self.phases.len();
        let mut indegree = vec![0usize; n];
        for &(_, to) in &self.edges {
            indegree[to.0] += 1;
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut seen = 0usize;
        while let Some(i) = queue.pop() {
            seen += 1;
            for c in self.consumers_of(PhaseId(i)).collect::<BTreeSet<_>>() {
                indegree[c.0] -= 1;
                if indegree[c.0] == 0 {
                    queue.push(c.0);
                }
            }
        }
        if seen != n {
            return Err(TaskGraphError::Cyclic);
        }
        Ok(())
    }

    /// Renders the graph in Graphviz DOT format: phases as nodes
    /// (acquisition phases annotated with their channel), producer-
    /// consumer edges as arrows, lock-step groups as dashed clusters.
    pub fn to_dot(&self) -> String {
        use std::fmt::Write;
        let mut out = String::from("digraph application {\n  rankdir=LR;\n");
        for (group_idx, group) in self.lockstep_groups.iter().enumerate() {
            let _ = writeln!(out, "  subgraph cluster_{group_idx} {{");
            let _ = writeln!(out, "    style=dashed; label=\"lock-step {group_idx}\";");
            for member in group {
                let _ = writeln!(out, "    p{};", member.0);
            }
            let _ = writeln!(out, "  }}");
        }
        for (id, phase) in self.phases() {
            let label = match phase.role {
                PhaseRole::Acquire { channel } => {
                    format!("{} (ch{channel})", phase.name)
                }
                PhaseRole::Compute => phase.name.clone(),
            };
            let _ = writeln!(out, "  p{} [label=\"{label}\"];", id.0);
        }
        for (from, to) in &self.edges {
            let _ = writeln!(out, "  p{} -> p{};", from.0, to.0);
        }
        out.push_str("}\n");
        out
    }

    fn check(&self, id: PhaseId) -> Result<(), TaskGraphError> {
        if id.0 >= self.phases.len() {
            return Err(TaskGraphError::UnknownPhase { index: id.0 });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_fig4_application() {
        let mut g = TaskGraph::new();
        let a = g.add_phase(Phase::acquire("a", 0)).unwrap();
        let b = g.add_phase(Phase::acquire("b", 1)).unwrap();
        let p = g.add_phase(Phase::compute("p")).unwrap();
        g.add_edge(a, p).unwrap();
        g.add_edge(b, p).unwrap();
        g.add_lockstep_group(&[a, b]).unwrap();
        g.validate().unwrap();
        assert_eq!(g.producers_of(p).count(), 2);
        assert_eq!(g.consumers_of(a).collect::<Vec<_>>(), vec![p]);
        assert_eq!(g.phase(a).role, PhaseRole::Acquire { channel: 0 });
    }

    #[test]
    fn duplicate_phase_names_rejected() {
        let mut g = TaskGraph::new();
        g.add_phase(Phase::compute("x")).unwrap();
        assert!(matches!(
            g.add_phase(Phase::compute("x")),
            Err(TaskGraphError::DuplicatePhase(_))
        ));
    }

    #[test]
    fn self_edges_rejected() {
        let mut g = TaskGraph::new();
        let a = g.add_phase(Phase::compute("a")).unwrap();
        assert!(matches!(
            g.add_edge(a, a),
            Err(TaskGraphError::SelfEdge { .. })
        ));
    }

    #[test]
    fn unknown_phase_rejected() {
        let mut g = TaskGraph::new();
        let a = g.add_phase(Phase::compute("a")).unwrap();
        assert!(g.add_edge(a, PhaseId(5)).is_err());
        assert!(g.add_lockstep_group(&[PhaseId(9)]).is_err());
    }

    #[test]
    fn cycles_detected() {
        let mut g = TaskGraph::new();
        let a = g.add_phase(Phase::compute("a")).unwrap();
        let b = g.add_phase(Phase::compute("b")).unwrap();
        let c = g.add_phase(Phase::compute("c")).unwrap();
        g.add_edge(a, b).unwrap();
        g.add_edge(b, c).unwrap();
        g.add_edge(c, a).unwrap();
        assert_eq!(g.validate(), Err(TaskGraphError::Cyclic));
    }

    #[test]
    fn dot_export_contains_nodes_edges_and_clusters() {
        let mut g = TaskGraph::new();
        let a = g.add_phase(Phase::acquire("cond0", 0)).unwrap();
        let b = g.add_phase(Phase::acquire("cond1", 1)).unwrap();
        let p = g.add_phase(Phase::compute("process")).unwrap();
        g.add_edge(a, p).unwrap();
        g.add_edge(b, p).unwrap();
        g.add_lockstep_group(&[a, b]).unwrap();
        let dot = g.to_dot();
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("cond0 (ch0)"));
        assert!(dot.contains("p0 -> p2;"));
        assert!(dot.contains("cluster_0"));
        assert!(dot.contains("lock-step 0"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn acyclic_diamond_validates() {
        let mut g = TaskGraph::new();
        let a = g.add_phase(Phase::compute("a")).unwrap();
        let b = g.add_phase(Phase::compute("b")).unwrap();
        let c = g.add_phase(Phase::compute("c")).unwrap();
        let d = g.add_phase(Phase::compute("d")).unwrap();
        g.add_edge(a, b).unwrap();
        g.add_edge(a, c).unwrap();
        g.add_edge(b, d).unwrap();
        g.add_edge(c, d).unwrap();
        assert!(g.validate().is_ok());
    }
}
