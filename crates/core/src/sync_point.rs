//! Synchronization-point words: per-core flags plus an up/down counter.
//!
//! A synchronization point is one 16-bit word in shared data memory
//! (Fig. 3 of the paper). Its most-significant eight bits hold one
//! identification flag per core and its least-significant eight bits an
//! up/down counter:
//!
//! ```text
//!  15            8 7             0
//! +---------------+---------------+
//! | core id flags |  u/d counter  |
//! +---------------+---------------+
//! ```
//!
//! `SNOP` sets the issuing core's flag, `SINC` sets the flag *and*
//! increments the counter, `SDEC` decrements the counter without touching
//! the flags.

use std::fmt;

use wbsn_isa::SyncKind;

use crate::error::SyncError;

/// Maximum number of cores addressable by the flag byte.
pub const MAX_CORES: usize = 8;

/// Identifier of one computing core, in `0..MAX_CORES`.
///
/// # Example
///
/// ```
/// use wbsn_core::CoreId;
///
/// let c = CoreId::new(3)?;
/// assert_eq!(c.index(), 3);
/// assert!(CoreId::new(8).is_err());
/// # Ok::<(), wbsn_core::SyncError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CoreId(u8);

impl CoreId {
    /// Creates a core identifier.
    ///
    /// # Errors
    ///
    /// Returns [`SyncError::CoreOutOfRange`] when `index >= MAX_CORES`.
    pub fn new(index: usize) -> Result<CoreId, SyncError> {
        if index >= MAX_CORES {
            return Err(SyncError::CoreOutOfRange { index });
        }
        Ok(CoreId(index as u8))
    }

    /// The core's index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Iterates over the first `n` core identifiers.
    ///
    /// # Panics
    ///
    /// Panics if `n > MAX_CORES`.
    pub fn first(n: usize) -> impl Iterator<Item = CoreId> {
        assert!(n <= MAX_CORES, "at most {MAX_CORES} cores");
        (0..n).map(|i| CoreId(i as u8))
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

/// A set of cores, stored as the flag byte of a synchronization point.
///
/// # Example
///
/// ```
/// use wbsn_core::{CoreId, CoreSet};
///
/// let mut s = CoreSet::empty();
/// s.insert(CoreId::new(0)?);
/// s.insert(CoreId::new(2)?);
/// assert_eq!(s.len(), 2);
/// assert!(s.contains(CoreId::new(2)?));
/// # Ok::<(), wbsn_core::SyncError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct CoreSet(u8);

impl CoreSet {
    /// The empty set.
    pub const fn empty() -> CoreSet {
        CoreSet(0)
    }

    /// A set holding every core in `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n > MAX_CORES`.
    pub fn first(n: usize) -> CoreSet {
        assert!(n <= MAX_CORES, "at most {MAX_CORES} cores");
        CoreSet(((1u16 << n) - 1) as u8)
    }

    /// Builds a set from its raw flag byte.
    pub const fn from_bits(bits: u8) -> CoreSet {
        CoreSet(bits)
    }

    /// The raw flag byte.
    pub const fn bits(self) -> u8 {
        self.0
    }

    /// Whether the set is empty.
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of cores in the set.
    pub const fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether `core` is a member.
    pub fn contains(self, core: CoreId) -> bool {
        self.0 & (1 << core.index()) != 0
    }

    /// Adds `core` to the set.
    pub fn insert(&mut self, core: CoreId) {
        self.0 |= 1 << core.index();
    }

    /// Removes `core` from the set.
    pub fn remove(&mut self, core: CoreId) {
        self.0 &= !(1 << core.index());
    }

    /// The union of two sets.
    pub const fn union(self, other: CoreSet) -> CoreSet {
        CoreSet(self.0 | other.0)
    }

    /// The intersection of two sets.
    pub const fn intersection(self, other: CoreSet) -> CoreSet {
        CoreSet(self.0 & other.0)
    }

    /// Iterates over the member cores in index order.
    pub fn iter(self) -> impl Iterator<Item = CoreId> {
        (0..MAX_CORES as u8)
            .filter(move |i| self.0 & (1 << i) != 0)
            .map(CoreId)
    }
}

impl FromIterator<CoreId> for CoreSet {
    fn from_iter<T: IntoIterator<Item = CoreId>>(iter: T) -> Self {
        let mut s = CoreSet::empty();
        for c in iter {
            s.insert(c);
        }
        s
    }
}

impl fmt::Display for CoreSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for c in self.iter() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{}", c.index())?;
            first = false;
        }
        write!(f, "}}")
    }
}

/// The value of one synchronization point: flags in the high byte, the
/// up/down counter in the low byte.
///
/// Arithmetic is *checked*: counter overflow and underflow are protocol
/// violations surfaced as [`SyncError`]s rather than silent wrap-around,
/// because a malformed producer/consumer pairing is a software bug the
/// tool-chain wants to catch in simulation.
///
/// # Example
///
/// Fig. 3-a of the paper — cores 0, 1, 2 produce for core 4:
///
/// ```
/// use wbsn_core::{CoreId, SyncPointValue};
/// use wbsn_isa::SyncKind;
///
/// let mut p = SyncPointValue::default();
/// for i in 0..3 {
///     p = p.apply(CoreId::new(i)?, SyncKind::Inc)?;
/// }
/// p = p.apply(CoreId::new(4)?, SyncKind::Nop)?;
/// assert_eq!(p.counter(), 3);
/// assert_eq!(p.flags().len(), 4);
/// # Ok::<(), wbsn_core::SyncError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct SyncPointValue {
    flags: CoreSet,
    counter: u8,
}

impl SyncPointValue {
    /// A cleared point: no flags, counter zero.
    pub const fn cleared() -> SyncPointValue {
        SyncPointValue {
            flags: CoreSet::empty(),
            counter: 0,
        }
    }

    /// Builds a point value from flags and counter.
    pub const fn with(flags: CoreSet, counter: u8) -> SyncPointValue {
        SyncPointValue { flags, counter }
    }

    /// Reconstructs a point from its 16-bit memory word.
    pub const fn from_word(word: u16) -> SyncPointValue {
        SyncPointValue {
            flags: CoreSet::from_bits((word >> 8) as u8),
            counter: (word & 0xFF) as u8,
        }
    }

    /// The 16-bit word stored in shared data memory.
    pub const fn to_word(self) -> u16 {
        ((self.flags.bits() as u16) << 8) | self.counter as u16
    }

    /// The registered core flags.
    pub const fn flags(self) -> CoreSet {
        self.flags
    }

    /// The up/down counter.
    pub const fn counter(self) -> u8 {
        self.counter
    }

    /// Applies one synchronization instruction issued by `core`.
    ///
    /// # Errors
    ///
    /// Returns [`SyncError::CounterOverflow`] or
    /// [`SyncError::CounterUnderflow`] when the counter leaves `0..=255`.
    pub fn apply(self, core: CoreId, kind: SyncKind) -> Result<SyncPointValue, SyncError> {
        let mut next = self;
        match kind {
            SyncKind::Inc => {
                next.flags.insert(core);
                next.counter = next
                    .counter
                    .checked_add(1)
                    .ok_or(SyncError::CounterOverflow)?;
            }
            SyncKind::Dec => {
                next.counter = next
                    .counter
                    .checked_sub(1)
                    .ok_or(SyncError::CounterUnderflow)?;
            }
            SyncKind::Nop => {
                next.flags.insert(core);
            }
        }
        Ok(next)
    }

    /// Applies a whole cycle's worth of merged requests as one consistent
    /// modification: all flag insertions are OR-ed and the net counter
    /// delta (`#SINC - #SDEC`) is applied atomically, mirroring the
    /// synchronizer's request merging.
    ///
    /// # Errors
    ///
    /// Returns a counter range error when the *net* result leaves
    /// `0..=255`. Transient intra-cycle excursions are explicitly allowed
    /// — three `SDEC`s and three `SINC`s in one cycle are fine on a zero
    /// counter because the merged delta is zero.
    pub fn apply_merged(
        self,
        flags_to_set: CoreSet,
        delta: i32,
    ) -> Result<SyncPointValue, SyncError> {
        let counter = self.counter as i32 + delta;
        if counter < 0 {
            return Err(SyncError::CounterUnderflow);
        }
        if counter > u8::MAX as i32 {
            return Err(SyncError::CounterOverflow);
        }
        Ok(SyncPointValue {
            flags: self.flags.union(flags_to_set),
            counter: counter as u8,
        })
    }

    /// Whether the barrier condition holds: some cores are registered and
    /// the counter has returned to zero.
    pub const fn is_release_ready(self) -> bool {
        self.counter == 0 && !self.flags.is_empty()
    }
}

impl fmt::Display for SyncPointValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "flags={} counter={}", self.flags, self.counter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn core(i: usize) -> CoreId {
        CoreId::new(i).expect("test core in range")
    }

    #[test]
    fn fig3a_producer_consumer_value() {
        // Cores 0,1,2 jointly produce for core 4; data not yet available.
        let mut p = SyncPointValue::cleared();
        for i in 0..3 {
            p = p.apply(core(i), SyncKind::Inc).unwrap();
        }
        p = p.apply(core(4), SyncKind::Nop).unwrap();
        assert_eq!(p.counter(), 3);
        assert_eq!(p.flags().bits(), 0b0001_0111);
        assert!(!p.is_release_ready());
    }

    #[test]
    fn fig3b_branch_lockstep_value() {
        // Cores 0,1,2 entered a data-dependent branch; core 0 finished.
        let mut p = SyncPointValue::cleared();
        for i in 0..3 {
            p = p.apply(core(i), SyncKind::Inc).unwrap();
        }
        p = p.apply(core(0), SyncKind::Dec).unwrap();
        assert_eq!(p.counter(), 2);
        assert_eq!(p.flags().bits(), 0b0000_0111);
    }

    #[test]
    fn word_round_trip() {
        let p = SyncPointValue::with(CoreSet::from_bits(0b1010_0001), 42);
        assert_eq!(SyncPointValue::from_word(p.to_word()), p);
        assert_eq!(p.to_word(), 0xA12A);
    }

    #[test]
    fn sdec_leaves_flags_untouched() {
        let p = SyncPointValue::with(CoreSet::from_bits(0b11), 2);
        let q = p.apply(core(5), SyncKind::Dec).unwrap();
        assert_eq!(q.flags().bits(), 0b11);
        assert_eq!(q.counter(), 1);
    }

    #[test]
    fn counter_underflow_is_detected() {
        let p = SyncPointValue::cleared();
        assert_eq!(
            p.apply(core(0), SyncKind::Dec),
            Err(SyncError::CounterUnderflow)
        );
    }

    #[test]
    fn counter_overflow_is_detected() {
        let p = SyncPointValue::with(CoreSet::empty(), 255);
        assert_eq!(
            p.apply(core(0), SyncKind::Inc),
            Err(SyncError::CounterOverflow)
        );
    }

    #[test]
    fn merged_update_is_atomic() {
        // Merged +3 / -3 on a zero counter is legal even though a serial
        // SDEC-first ordering would underflow.
        let p = SyncPointValue::cleared();
        let q = p
            .apply_merged(CoreSet::from_bits(0b111), 0)
            .expect("net-zero delta is consistent");
        assert_eq!(q.counter(), 0);
        assert_eq!(q.flags().bits(), 0b111);
        assert!(p.apply_merged(CoreSet::empty(), -1).is_err());
        assert!(p.apply_merged(CoreSet::empty(), 256).is_err());
    }

    #[test]
    fn release_ready_needs_flags_and_zero_counter() {
        assert!(!SyncPointValue::cleared().is_release_ready());
        assert!(!SyncPointValue::with(CoreSet::from_bits(1), 1).is_release_ready());
        assert!(SyncPointValue::with(CoreSet::from_bits(1), 0).is_release_ready());
    }

    #[test]
    fn core_set_operations() {
        let a: CoreSet = [core(0), core(3)].into_iter().collect();
        let b: CoreSet = [core(3), core(5)].into_iter().collect();
        assert_eq!(a.union(b).len(), 3);
        assert_eq!(a.intersection(b).len(), 1);
        let mut c = a;
        c.remove(core(0));
        assert!(!c.contains(core(0)));
        assert_eq!(CoreSet::first(3).bits(), 0b111);
        assert_eq!(CoreSet::first(8).bits(), 0xFF);
        assert_eq!(a.to_string(), "{0,3}");
    }

    #[test]
    fn core_id_bounds() {
        assert!(CoreId::new(7).is_ok());
        assert!(CoreId::new(8).is_err());
        assert_eq!(CoreId::first(3).count(), 3);
    }
}
