//! Property tests on the synchronizer unit: arbitrary event sequences
//! never corrupt its state machine.

use proptest::prelude::*;
use wbsn_core::{CoreId, CoreSet, Synchronizer};
use wbsn_isa::SyncKind;

#[derive(Debug, Clone)]
enum Event {
    Op(usize, SyncKind, u16),
    Sleep(usize),
    Irq(usize),
    Subscribe(usize, u16),
    Commit,
}

fn any_event(cores: usize, points: u16) -> impl Strategy<Value = Event> {
    let kind = prop_oneof![
        Just(SyncKind::Inc),
        Just(SyncKind::Dec),
        Just(SyncKind::Nop)
    ];
    prop_oneof![
        (0..cores, kind, 0..points).prop_map(|(c, k, p)| Event::Op(c, k, p)),
        (0..cores).prop_map(Event::Sleep),
        (0usize..4).prop_map(Event::Irq),
        (0..cores, 0u16..16).prop_map(|(c, m)| Event::Subscribe(c, m)),
        Just(Event::Commit),
    ]
}

proptest! {
    /// Under arbitrary event streams the synchronizer never panics, the
    /// gated set only changes through explicit sleeps and wakes, and
    /// every accounting identity holds.
    #[test]
    fn synchronizer_state_machine_is_consistent(
        events in prop::collection::vec(any_event(4, 4), 0..200),
    ) {
        let mut sync = Synchronizer::new(4, 4).expect("valid configuration");
        let mut expected_gated = CoreSet::empty();
        for event in events {
            match event {
                Event::Op(core, kind, point) => {
                    let core = CoreId::new(core).expect("in range");
                    // A gated core cannot issue instructions; the
                    // platform guarantees it, so the model does too.
                    if !sync.is_gated(core) {
                        sync.submit_op(core, kind, point).expect("staged");
                    }
                }
                Event::Sleep(core) => {
                    let core = CoreId::new(core).expect("in range");
                    if !sync.is_gated(core) {
                        sync.request_sleep(core);
                    }
                }
                Event::Irq(source) => sync.raise_irq(source),
                Event::Subscribe(core, mask) => {
                    let core = CoreId::new(core).expect("in range");
                    sync.subscribe(core, mask).expect("in range");
                    prop_assert_eq!(sync.subscription(core), mask);
                }
                Event::Commit => {
                    match sync.commit() {
                        Ok(outcome) => {
                            // Woken cores were gated; slept cores were not.
                            prop_assert!(outcome
                                .woken
                                .iter()
                                .all(|c| expected_gated.contains(c)));
                            prop_assert!(outcome
                                .slept
                                .iter()
                                .all(|c| !expected_gated.contains(c)));
                            prop_assert!(outcome
                                .fell_through
                                .iter()
                                .all(|c| !expected_gated.contains(c)));
                            for c in outcome.woken.iter() {
                                expected_gated.remove(c);
                            }
                            for c in outcome.slept.iter() {
                                expected_gated.insert(c);
                            }
                            prop_assert_eq!(sync.gated(), expected_gated);
                        }
                        Err(_) => {
                            // A protocol violation (counter underflow or
                            // overflow) is a detected error, not a panic;
                            // stop driving this sequence.
                            return Ok(());
                        }
                    }
                }
            }
        }
        // Accounting identities over the whole run.
        let stats = sync.stats();
        prop_assert!(stats.writes <= stats.ops);
        prop_assert_eq!(stats.merged, stats.ops - stats.writes);
        // Every point is observable and in range.
        for point in 0..4 {
            let value = sync.point_value(point).expect("in range");
            prop_assert!(value.flags().len() <= 4);
        }
    }

    /// A complete producer/consumer epoch always releases the consumer,
    /// regardless of interleaving.
    #[test]
    fn producer_consumer_always_releases(
        producers in 1usize..4,
        snop_first in any::<bool>(),
        commit_between in any::<bool>(),
    ) {
        let consumer = CoreId::new(3).expect("in range");
        let mut sync = Synchronizer::new(4, 1).expect("valid");
        let register = |sync: &mut Synchronizer| {
            sync.submit_op(consumer, SyncKind::Nop, 0).expect("staged");
        };
        if snop_first {
            register(&mut sync);
            sync.commit().expect("consistent");
            sync.request_sleep(consumer);
            sync.commit().expect("consistent");
        }
        for p in 0..producers {
            let core = CoreId::new(p).expect("in range");
            sync.submit_op(core, SyncKind::Inc, 0).expect("staged");
            if commit_between {
                sync.commit().expect("consistent");
            }
        }
        if !snop_first {
            register(&mut sync);
        }
        sync.commit().expect("consistent");
        if !snop_first {
            sync.request_sleep(consumer);
            sync.commit().expect("consistent");
        }
        let mut released = false;
        for p in 0..producers {
            let core = CoreId::new(p).expect("in range");
            sync.submit_op(core, SyncKind::Dec, 0).expect("staged");
            let outcome = sync.commit().expect("consistent");
            released |= outcome.woken.contains(consumer);
        }
        prop_assert!(released, "the consumer must be woken by the last SDEC");
        prop_assert!(!sync.is_gated(consumer));
    }
}
