//! Property tests on the DSP substrate: morphological-operator laws,
//! filter boundedness and delineator quiescence.

use proptest::prelude::*;
use wbsn_dsp::mmd::MmdDelineator;
use wbsn_dsp::morphology::{Dilation, Erosion, MorphFilter};
use wbsn_dsp::rproj::{NearestCentroid, RandomProjection};

fn any_signal(max_len: usize) -> impl Strategy<Value = Vec<i16>> {
    prop::collection::vec(-2000i16..2000, 1..max_len)
}

proptest! {
    /// Erosion never exceeds the input sample; dilation never goes
    /// below it (flat structuring element, zero-initialised window).
    #[test]
    fn erosion_below_dilation_above(signal in any_signal(200), w in 1usize..40) {
        let mut e = Erosion::new(w);
        let mut d = Dilation::new(w);
        for &x in &signal {
            let lo = e.push(x);
            let hi = d.push(x);
            prop_assert!(lo <= x.min(0).max(lo)); // erosion ≤ min(window) ≤ x
            prop_assert!(lo <= x);
            prop_assert!(hi >= x);
            prop_assert!(lo <= hi);
        }
    }

    /// With window 1 both operators are the identity, so the filter's
    /// baseline equals the input and the noise stage averages two copies
    /// of zero — the output is identically zero.
    #[test]
    fn window_one_filter_is_null(signal in any_signal(100)) {
        let mut f = MorphFilter::new(1, 1, 1);
        for &x in &signal {
            prop_assert_eq!(f.push(x), 0);
        }
    }

    /// The erosion of a window equals the true minimum of the last `w`
    /// samples once warm.
    #[test]
    fn erosion_matches_direct_minimum(signal in any_signal(120), w in 1usize..16) {
        let mut e = Erosion::new(w);
        for (i, &x) in signal.iter().enumerate() {
            let got = e.push(x);
            if i + 1 >= w {
                let expected = signal[i + 1 - w..=i].iter().copied().min().expect("non-empty");
                prop_assert_eq!(got, expected, "at {}", i);
            }
        }
    }

    /// A signal that never crosses the detection threshold produces no
    /// fiducial points.
    #[test]
    fn delineator_is_quiet_below_threshold(signal in prop::collection::vec(-30i16..30, 1..400)) {
        let mut d = MmdDelineator::new(10, 30, 700, 50);
        // The derivative response of a bounded signal is bounded by ~4x
        // its amplitude, far below the 700 threshold here.
        prop_assert!(d.delineate(&signal).is_empty());
    }

    /// Detections never violate the refractory spacing.
    #[test]
    fn refractory_spacing_is_respected(
        spikes in prop::collection::btree_set(60usize..900, 0..8),
    ) {
        let mut signal = vec![0i16; 1000];
        for &s in &spikes {
            signal[s] = 900;
        }
        let refractory = 50usize;
        let mut d = MmdDelineator::new(10, 30, 150, refractory);
        let points = d.delineate(&signal);
        for pair in points.windows(2) {
            prop_assert!(pair[1].sample - pair[0].sample > refractory);
        }
        for p in &points {
            prop_assert!(p.onset <= p.sample);
        }
    }

    /// Projection is additive in its input (linearity over the shifted
    /// samples), which is what makes the centroid decision meaningful.
    #[test]
    fn projection_is_deterministic_and_bounded(window in prop::collection::vec(-4000i16..4000, 32)) {
        let rp = RandomProjection::new_seeded(4, 32, 99);
        let a = rp.project(&window);
        let b = rp.project(&window);
        prop_assert_eq!(&a, &b);
        // Each output is a sum of 32 samples pre-shifted by 3: bounded
        // by 32 * 500 in magnitude for this input range.
        for v in a {
            prop_assert!((v as i32).abs() <= 32 * (4000 >> 3) + 32);
        }
    }

    /// The nearest-centroid decision is symmetric: swapping the
    /// centroids flips every non-tie label.
    #[test]
    fn centroid_swap_flips_labels(
        p in prop::collection::vec(-500i16..500, 4),
        c1 in prop::collection::vec(-500i16..500, 4),
        c2 in prop::collection::vec(-500i16..500, 4),
    ) {
        use wbsn_dsp::rproj::BeatLabel;
        let fwd = NearestCentroid::new(c1.clone(), c2.clone()).classify(&p);
        let rev = NearestCentroid::new(c2.clone(), c1.clone()).classify(&p);
        let dn = NearestCentroid::l1_distance16(&p, &c1);
        let dp = NearestCentroid::l1_distance16(&p, &c2);
        if dn != dp {
            prop_assert_ne!(fwd, rev);
        } else {
            prop_assert_eq!(fwd, BeatLabel::Normal);
            prop_assert_eq!(rev, BeatLabel::Normal);
        }
    }
}
