//! Multi-scale morphological derivatives and fiducial-point detection —
//! the delineation stage of the 3L-MMD benchmark (paper ref \[10\]).
//!
//! The morphological derivative at scale `s` is
//! `d_s[n] = dilation_s[n] + erosion_s[n] - 2·x[n]`: it is strongly
//! negative at sharp peaks and near zero on slowly varying segments.
//! Combining two scales (`d_small - d_large`) sharpens the response to
//! QRS-width events while rejecting both noise (too narrow) and T waves
//! (too wide). A threshold crossing with a refractory period yields the
//! fiducial points.
//!
//! Arithmetic is wrapping 16-bit throughout, mirroring the ISA kernels.

use crate::morphology::{Dilation, Erosion};

/// Aggregates multiple conditioned leads into the single stream the
/// delineator analyses: `(|y_0| + |y_1| + … ) >> 2`, the combining phase
/// of 3L-MMD.
///
/// # Example
///
/// ```
/// use wbsn_dsp::mmd::CombinedLead;
///
/// assert_eq!(CombinedLead::combine(&[100, -100, 200]), 100);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct CombinedLead;

impl CombinedLead {
    /// Combines one sample from each lead.
    pub fn combine(samples: &[i16]) -> i16 {
        let mut acc: i16 = 0;
        for &s in samples {
            let a = if s == i16::MIN {
                i16::MAX
            } else {
                s.wrapping_abs()
            };
            acc = acc.wrapping_add(a >> 2);
        }
        acc
    }
}

/// A fiducial point emitted by the delineator: the wave onset (where
/// the derivative response first exceeded the low threshold), the
/// detection sample and the response strength.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FiducialPoint {
    /// Sample index at which the detection fired (near the wave peak).
    pub sample: usize,
    /// Sample index at which the response first rose above the low
    /// threshold — the wave-onset estimate of the paper's ref \[10\].
    pub onset: usize,
    /// Peak derivative magnitude that triggered the detection.
    pub strength: i16,
}

/// The multi-scale morphological-derivative delineator.
///
/// # Example
///
/// ```
/// use wbsn_dsp::mmd::MmdDelineator;
///
/// let mut d = MmdDelineator::standard_250hz();
/// let mut signal = vec![0i16; 300];
/// signal[150] = 800; // one sharp spike
/// signal[151] = 600;
/// let points = d.delineate(&signal);
/// assert_eq!(points.len(), 1);
/// assert!((145..=160).contains(&points[0].sample));
/// ```
#[derive(Debug, Clone)]
pub struct MmdDelineator {
    small_dil: Dilation,
    small_ero: Erosion,
    large_dil: Dilation,
    large_ero: Erosion,
    threshold: i16,
    /// Onset-tracking threshold (half the detection threshold, the
    /// arithmetic shift the kernels compute).
    th_low: i16,
    refractory: usize,
    holdoff: usize,
    position: usize,
    /// Tracked onset index; negative means none (the kernels' private
    /// word uses the same sentinel).
    onset: i32,
}

impl MmdDelineator {
    /// Creates a delineator with the two derivative scales, detection
    /// threshold and refractory period (all in samples).
    ///
    /// # Panics
    ///
    /// Panics if a scale is zero.
    pub fn new(small: usize, large: usize, threshold: i16, refractory: usize) -> MmdDelineator {
        MmdDelineator {
            small_dil: Dilation::new(small),
            small_ero: Erosion::new(small),
            large_dil: Dilation::new(large),
            large_ero: Erosion::new(large),
            threshold,
            th_low: threshold >> 1,
            refractory,
            holdoff: 0,
            position: 0,
            onset: -1,
        }
    }

    /// The standard 250 Hz configuration: 40 ms and 120 ms scales, a
    /// threshold tuned for conditioned synthetic leads, and a 200 ms
    /// refractory period (maximum physiological heart rate).
    pub fn standard_250hz() -> MmdDelineator {
        MmdDelineator::new(10, 30, 150, 50)
    }

    /// Processes one sample; returns a fiducial point when detection
    /// fires at this sample.
    pub fn push(&mut self, x: i16) -> Option<FiducialPoint> {
        let ds = self
            .small_dil
            .push(x)
            .wrapping_add(self.small_ero.push(x))
            .wrapping_sub(x.wrapping_mul(2));
        let dl = self
            .large_dil
            .push(x)
            .wrapping_add(self.large_ero.push(x))
            .wrapping_sub(x.wrapping_mul(2));
        let response = dl.wrapping_sub(ds);
        let sample = self.position;
        self.position += 1;
        if self.holdoff > 0 {
            self.holdoff -= 1;
            return None;
        }
        // Onset tracking: remember where the response first rose above
        // the low threshold; clear once it falls back below.
        if response > self.th_low {
            if self.onset < 0 {
                self.onset = sample as i32;
            }
        } else {
            self.onset = -1;
        }
        if response > self.threshold {
            self.holdoff = self.refractory;
            let onset = if self.onset >= 0 {
                self.onset as usize
            } else {
                sample
            };
            self.onset = -1;
            return Some(FiducialPoint {
                sample,
                onset,
                strength: response,
            });
        }
        None
    }

    /// Delineates a whole signal.
    pub fn delineate(&mut self, signal: &[i16]) -> Vec<FiducialPoint> {
        signal.iter().filter_map(|&x| self.push(x)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spike_train(n: usize, period: usize, amplitude: i16) -> Vec<i16> {
        (0..n)
            .map(|i| {
                if i % period == period / 2 {
                    amplitude
                } else if i % period == period / 2 + 1 {
                    amplitude / 2
                } else {
                    0
                }
            })
            .collect()
    }

    #[test]
    fn detects_each_spike_once() {
        let signal = spike_train(1000, 200, 900);
        let mut d = MmdDelineator::standard_250hz();
        let points = d.delineate(&signal);
        assert_eq!(points.len(), 5, "{points:?}");
    }

    #[test]
    fn refractory_suppresses_double_fires() {
        // Two spikes 10 samples apart: only the first detected.
        let mut signal = vec![0i16; 400];
        signal[100] = 900;
        signal[110] = 900;
        signal[300] = 900;
        let mut d = MmdDelineator::standard_250hz();
        let points = d.delineate(&signal);
        assert_eq!(points.len(), 2, "{points:?}");
    }

    #[test]
    fn flat_and_slow_signals_produce_nothing() {
        let mut d = MmdDelineator::standard_250hz();
        let slow: Vec<i16> = (0..1000).map(|i| ((i / 10) % 50) as i16).collect();
        assert!(d.delineate(&slow).is_empty());
    }

    #[test]
    fn combine_is_scaled_abs_sum() {
        assert_eq!(CombinedLead::combine(&[]), 0);
        assert_eq!(CombinedLead::combine(&[-400]), 100);
        assert_eq!(CombinedLead::combine(&[400, 400, -400]), 300);
        // i16::MIN does not overflow.
        let _ = CombinedLead::combine(&[i16::MIN, i16::MIN, i16::MIN]);
    }

    #[test]
    fn onset_precedes_the_detection() {
        let mut signal = vec![0i16; 500];
        // A ramp into a spike: the response rises gradually before the
        // detection threshold crossing.
        for (i, v) in (230..=250).zip((0..=20).map(|k| k * 40)) {
            signal[i] = v;
        }
        signal[250] = 900;
        signal[251] = 500;
        let mut d = MmdDelineator::standard_250hz();
        let points = d.delineate(&signal);
        assert_eq!(points.len(), 1, "{points:?}");
        let p = points[0];
        assert!(
            p.onset <= p.sample,
            "onset {} after peak {}",
            p.onset,
            p.sample
        );
        assert!(p.sample - p.onset <= 40, "onset unreasonably early");
    }

    #[test]
    fn onset_resets_between_detections() {
        let mut signal = vec![0i16; 800];
        signal[200] = 900;
        signal[600] = 900;
        let mut d = MmdDelineator::standard_250hz();
        let points = d.delineate(&signal);
        assert_eq!(points.len(), 2, "{points:?}");
        assert!(points[1].onset > points[0].sample, "second onset is fresh");
    }

    #[test]
    fn detection_position_is_near_the_spike() {
        let mut signal = vec![0i16; 500];
        for (i, v) in [(250usize, 800i16), (251, 500), (252, 200)] {
            signal[i] = v;
        }
        let mut d = MmdDelineator::standard_250hz();
        let points = d.delineate(&signal);
        assert_eq!(points.len(), 1);
        let p = points[0].sample;
        assert!((245..=265).contains(&p), "fired at {p}");
        assert!(points[0].strength > 150);
    }
}
