//! Streaming morphological operators and the 3L-MF conditioning filter.
//!
//! Morphological filtering removes baseline wander and impulsive noise
//! from ECG by subtracting the signal's *opening-then-closing* from the
//! signal itself (the paper's ref \[21\], Sun et al., "ECG Signal
//! Conditioning by Morphological Filtering"). Erosion and dilation are
//! running minima and maxima over a flat structuring element.
//!
//! The operators are *streaming* and *causal*: each one keeps a ring
//! buffer of the last `w` samples (initially zero) and scans it per
//! sample. This is intentionally the exact algorithm the generated ISA
//! kernels execute — naive scans, wrapping 16-bit arithmetic — so golden
//! and simulated outputs match bit-for-bit.

/// Streaming running minimum over the last `w` samples (flat structuring
/// element erosion).
///
/// # Example
///
/// ```
/// use wbsn_dsp::morphology::Erosion;
///
/// let mut e = Erosion::new(3);
/// assert_eq!(e.push(5), 0); // warm-up: zeros still in the window
/// assert_eq!(e.push(7), 0);
/// assert_eq!(e.push(6), 5);
/// assert_eq!(e.push(9), 6);
/// ```
#[derive(Debug, Clone)]
pub struct Erosion {
    buf: Vec<i16>,
    pos: usize,
}

impl Erosion {
    /// Creates an erosion with window `w`.
    ///
    /// # Panics
    ///
    /// Panics if `w == 0`.
    pub fn new(w: usize) -> Erosion {
        assert!(w > 0, "window must be non-empty");
        Erosion {
            buf: vec![0; w],
            pos: 0,
        }
    }

    /// Window length.
    pub fn window(&self) -> usize {
        self.buf.len()
    }

    /// Pushes a sample and returns the minimum of the current window.
    pub fn push(&mut self, x: i16) -> i16 {
        self.buf[self.pos] = x;
        self.pos = (self.pos + 1) % self.buf.len();
        self.buf.iter().copied().fold(i16::MAX, i16::min)
    }
}

/// Streaming running maximum over the last `w` samples (flat structuring
/// element dilation).
#[derive(Debug, Clone)]
pub struct Dilation {
    buf: Vec<i16>,
    pos: usize,
}

impl Dilation {
    /// Creates a dilation with window `w`.
    ///
    /// # Panics
    ///
    /// Panics if `w == 0`.
    pub fn new(w: usize) -> Dilation {
        assert!(w > 0, "window must be non-empty");
        Dilation {
            buf: vec![0; w],
            pos: 0,
        }
    }

    /// Window length.
    pub fn window(&self) -> usize {
        self.buf.len()
    }

    /// Pushes a sample and returns the maximum of the current window.
    pub fn push(&mut self, x: i16) -> i16 {
        self.buf[self.pos] = x;
        self.pos = (self.pos + 1) % self.buf.len();
        self.buf.iter().copied().fold(i16::MIN, i16::max)
    }
}

/// The per-lead morphological conditioning filter of 3L-MF.
///
/// Two stages, following the ref \[21\] recipe:
///
/// 1. **Baseline correction** — the baseline estimate is the closing of
///    the opening of the input (`close(open(x))`); the corrected signal
///    is `x1 = x - baseline` with wrapping 16-bit subtraction.
/// 2. **Noise suppression** — the output is the average of the opening
///    and the closing of `x1` with a small structuring element:
///    `y = (open_s(x1) + close_s(x1)) >> 1`.
///
/// All arithmetic matches the ISA datapath (`SUB`, `ADD`, `SRA`).
///
/// # Example
///
/// ```
/// use wbsn_dsp::morphology::MorphFilter;
///
/// let mut f = MorphFilter::standard_250hz();
/// // A constant signal settles to zero once the windows fill.
/// let mut last = 0;
/// for _ in 0..200 {
///     last = f.push(100);
/// }
/// assert_eq!(last, 0);
/// ```
#[derive(Debug, Clone)]
pub struct MorphFilter {
    open_erode: Erosion,
    open_dilate: Dilation,
    close_dilate: Dilation,
    close_erode: Erosion,
    ns_open_erode: Erosion,
    ns_open_dilate: Dilation,
    ns_close_dilate: Dilation,
    ns_close_erode: Erosion,
}

impl MorphFilter {
    /// Creates a filter with opening window `w_open`, closing window
    /// `w_close` and noise-suppression window `w_noise` (in samples).
    ///
    /// # Panics
    ///
    /// Panics if any window is zero.
    pub fn new(w_open: usize, w_close: usize, w_noise: usize) -> MorphFilter {
        MorphFilter {
            open_erode: Erosion::new(w_open),
            open_dilate: Dilation::new(w_open),
            close_dilate: Dilation::new(w_close),
            close_erode: Erosion::new(w_close),
            ns_open_erode: Erosion::new(w_noise),
            ns_open_dilate: Dilation::new(w_noise),
            ns_close_dilate: Dilation::new(w_noise),
            ns_close_erode: Erosion::new(w_noise),
        }
    }

    /// The standard configuration for a 250 Hz ECG: the opening window
    /// spans a QRS complex (~120 ms), the closing window a full beat
    /// segment (~200 ms), and the noise element ~20 ms, per the ref \[21\]
    /// recipe.
    pub fn standard_250hz() -> MorphFilter {
        MorphFilter::new(30, 50, 5)
    }

    /// Filters one sample.
    pub fn push(&mut self, x: i16) -> i16 {
        let opened = self.open_dilate.push(self.open_erode.push(x));
        let baseline = self.close_erode.push(self.close_dilate.push(opened));
        let x1 = x.wrapping_sub(baseline);
        let ns_open = self.ns_open_dilate.push(self.ns_open_erode.push(x1));
        let ns_close = self.ns_close_erode.push(self.ns_close_dilate.push(x1));
        ns_open.wrapping_add(ns_close) >> 1
    }

    /// Filters a whole signal (convenience around [`MorphFilter::push`]).
    pub fn filter(&mut self, signal: &[i16]) -> Vec<i16> {
        signal.iter().map(|&x| self.push(x)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erosion_tracks_window_minimum() {
        let mut e = Erosion::new(2);
        assert_eq!(e.push(3), 0);
        assert_eq!(e.push(5), 3);
        assert_eq!(e.push(-2), -2);
        assert_eq!(e.push(10), -2);
        assert_eq!(e.push(10), 10);
    }

    #[test]
    fn dilation_tracks_window_maximum() {
        let mut d = Dilation::new(2);
        assert_eq!(d.push(-3), 0);
        assert_eq!(d.push(-5), -3);
        assert_eq!(d.push(7), 7);
        assert_eq!(d.push(1), 7);
        assert_eq!(d.push(1), 1);
    }

    #[test]
    fn window_one_is_identity() {
        let mut e = Erosion::new(1);
        let mut d = Dilation::new(1);
        for x in [-5i16, 0, 3, i16::MAX, i16::MIN] {
            assert_eq!(e.push(x), x);
            assert_eq!(d.push(x), x);
        }
    }

    #[test]
    fn opening_removes_narrow_peaks() {
        // A 1-sample spike on a flat signal disappears after opening
        // (erode then dilate with window 3).
        let mut e = Erosion::new(3);
        let mut d = Dilation::new(3);
        let signal = [10i16, 10, 10, 10, 50, 10, 10, 10, 10, 10];
        let opened: Vec<i16> = signal.iter().map(|&x| d.push(e.push(x))).collect();
        // After warm-up, the spike is gone.
        assert!(opened[4..].iter().all(|&v| v == 10), "{opened:?}");
    }

    #[test]
    fn filter_removes_slow_baseline_wander() {
        // Slow ramp plus a periodic narrow pulse: the filter should keep
        // pulse energy while cancelling the ramp.
        let mut f = MorphFilter::new(8, 12, 3);
        let n = 400;
        let signal: Vec<i16> = (0..n)
            .map(|i| {
                let ramp = (i / 4) as i16; // slow baseline drift
                let pulse = if i % 40 == 0 { 300 } else { 0 };
                ramp + pulse
            })
            .collect();
        let out = f.filter(&signal);
        // Between pulses and after warm-up the output stays near zero
        // despite the drift.
        let quiet: Vec<i16> = (100..n)
            .filter(|i| (i % 40) > 12 && (i % 40) < 35)
            .map(|i| out[i])
            .collect();
        let max_quiet = quiet.iter().map(|v| v.unsigned_abs()).max().unwrap();
        // The raw ramp reaches 100 by the end of the signal; anything in
        // single digits means the drift was cancelled.
        assert!(max_quiet <= 8, "residual baseline {max_quiet}");
        // Pulses survive (the opening/closing average halves an isolated
        // spike, so expect at least ~40% of the input amplitude).
        let peak = out.iter().skip(100).copied().max().unwrap();
        assert!(peak > 120, "pulse amplitude lost: {peak}");
    }

    #[test]
    fn constant_signal_settles_to_zero() {
        let mut f = MorphFilter::standard_250hz();
        let mut last = i16::MAX;
        for _ in 0..300 {
            last = f.push(-77);
        }
        assert_eq!(last, 0);
    }

    #[test]
    #[should_panic(expected = "window must be non-empty")]
    fn zero_window_panics() {
        let _ = Erosion::new(0);
    }
}
