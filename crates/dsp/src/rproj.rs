//! Random-projection heartbeat classification — RP-CLASS (paper ref
//! \[22\], Braojos et al., "A Methodology for Embedded Classification of
//! Heartbeats Using Random Projections").
//!
//! Each detected beat's sample window is projected onto a small number of
//! random ±1 (Rademacher) directions — multiplier-free on the 16-bit
//! datapath: the projection is a signed sum of pre-shifted samples. The
//! projected point is then labelled by L1 nearest-centroid against a
//! *normal* and a *pathological* centroid learned from labelled beats.
//!
//! All arithmetic is wrapping 16-bit with explicit pre-shifts, matching
//! the generated ISA kernel bit-for-bit.

use crate::exec_abs;

/// Signed ±1 random projection matrix (`k` outputs × `w` inputs).
///
/// # Example
///
/// ```
/// use wbsn_dsp::rproj::RandomProjection;
///
/// let rp = RandomProjection::new_seeded(8, 32, 7);
/// let window = [100i16; 32];
/// let p = rp.project(&window);
/// assert_eq!(p.len(), 8);
/// ```
#[derive(Debug, Clone)]
pub struct RandomProjection {
    /// `signs[k][i]` is true for `+1`, false for `−1`.
    signs: Vec<Vec<bool>>,
    /// Right pre-shift applied to each input sample before accumulation
    /// (keeps the sum inside `i16` for windows up to 2^shift· headroom).
    pre_shift: u32,
}

impl RandomProjection {
    /// Builds a deterministic projection from a seed using a small
    /// xorshift generator (self-contained so the generated ISA data
    /// tables and this model always agree).
    ///
    /// # Panics
    ///
    /// Panics if `k` or `w` is zero.
    pub fn new_seeded(k: usize, w: usize, seed: u64) -> RandomProjection {
        assert!(k > 0 && w > 0, "projection dimensions must be non-zero");
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let signs = (0..k)
            .map(|_| (0..w).map(|_| next() & 1 == 1).collect())
            .collect();
        RandomProjection {
            signs,
            pre_shift: 3,
        }
    }

    /// Number of projection directions.
    pub fn dims(&self) -> usize {
        self.signs.len()
    }

    /// Window length.
    pub fn window(&self) -> usize {
        self.signs[0].len()
    }

    /// The pre-shift applied to inputs.
    pub fn pre_shift(&self) -> u32 {
        self.pre_shift
    }

    /// The sign of entry `(k, i)`: `+1 ⇒ true`.
    pub fn sign(&self, k: usize, i: usize) -> bool {
        self.signs[k][i]
    }

    /// Projects a beat window.
    ///
    /// # Panics
    ///
    /// Panics if `window` is shorter than the projection's input size.
    pub fn project(&self, window: &[i16]) -> Vec<i16> {
        assert!(window.len() >= self.window(), "window too short");
        self.signs
            .iter()
            .map(|row| {
                let mut acc: i16 = 0;
                for (i, &plus) in row.iter().enumerate() {
                    let v = (window[i] as i32 >> self.pre_shift) as i16;
                    acc = if plus {
                        acc.wrapping_add(v)
                    } else {
                        acc.wrapping_sub(v)
                    };
                }
                acc
            })
            .collect()
    }
}

/// Beat label produced by the classifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BeatLabel {
    /// A normal sinus beat.
    Normal,
    /// An abnormal (e.g. ventricular) beat — triggers the delineation
    /// chain in RP-CLASS.
    Pathological,
}

/// L1 nearest-centroid decision over projected beats.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NearestCentroid {
    normal: Vec<i16>,
    pathological: Vec<i16>,
}

impl NearestCentroid {
    /// Creates a classifier from two centroids.
    ///
    /// # Panics
    ///
    /// Panics if the centroids have different lengths or are empty.
    pub fn new(normal: Vec<i16>, pathological: Vec<i16>) -> NearestCentroid {
        assert_eq!(normal.len(), pathological.len(), "centroid size mismatch");
        assert!(!normal.is_empty(), "centroids must be non-empty");
        NearestCentroid {
            normal,
            pathological,
        }
    }

    /// Learns centroids as per-dimension means of labelled projections.
    ///
    /// # Panics
    ///
    /// Panics if either class has no examples.
    pub fn train(normal: &[Vec<i16>], pathological: &[Vec<i16>]) -> NearestCentroid {
        assert!(
            !normal.is_empty() && !pathological.is_empty(),
            "both classes need training examples"
        );
        let mean = |rows: &[Vec<i16>]| -> Vec<i16> {
            let dims = rows[0].len();
            (0..dims)
                .map(|d| {
                    let sum: i64 = rows.iter().map(|r| r[d] as i64).sum();
                    (sum / rows.len() as i64) as i16
                })
                .collect()
        };
        NearestCentroid::new(mean(normal), mean(pathological))
    }

    /// The learned centroids `(normal, pathological)`.
    pub fn centroids(&self) -> (&[i16], &[i16]) {
        (&self.normal, &self.pathological)
    }

    /// L1 distance between a projection and a centroid: wrapping 16-bit
    /// difference followed by a saturating absolute value — exactly the
    /// ISA `SUB` + `ABS` sequence the kernel executes.
    pub fn l1_distance(p: &[i16], c: &[i16]) -> u32 {
        p.iter()
            .zip(c)
            .map(|(&a, &b)| exec_abs(a.wrapping_sub(b)) as u32)
            .sum()
    }

    /// L1 distance accumulated on the 16-bit datapath: per-dimension
    /// `SUB` + `ABS` terms summed with wrapping 16-bit `ADD`s — the
    /// value the generated kernel actually holds in its accumulator
    /// register.
    pub fn l1_distance16(p: &[i16], c: &[i16]) -> i16 {
        p.iter().zip(c).fold(0i16, |acc, (&a, &b)| {
            acc.wrapping_add(exec_abs(a.wrapping_sub(b)))
        })
    }

    /// Labels a projected beat.
    ///
    /// The comparison replicates the kernel bit-for-bit: both distances
    /// are accumulated on the wrapping 16-bit datapath and compared as
    /// signed values.
    pub fn classify(&self, projection: &[i16]) -> BeatLabel {
        let dn = Self::l1_distance16(projection, &self.normal);
        let dp = Self::l1_distance16(projection, &self.pathological);
        if dp < dn {
            BeatLabel::Pathological
        } else {
            BeatLabel::Normal
        }
    }
}

/// The complete RP-CLASS front end: projection plus decision.
#[derive(Debug, Clone)]
pub struct RpClassifier {
    projection: RandomProjection,
    decision: NearestCentroid,
}

impl RpClassifier {
    /// Assembles a classifier.
    pub fn new(projection: RandomProjection, decision: NearestCentroid) -> RpClassifier {
        RpClassifier {
            projection,
            decision,
        }
    }

    /// The projection stage.
    pub fn projection(&self) -> &RandomProjection {
        &self.projection
    }

    /// The decision stage.
    pub fn decision(&self) -> &NearestCentroid {
        &self.decision
    }

    /// Projects and labels one beat window.
    ///
    /// # Panics
    ///
    /// Panics if the window is shorter than the projection input.
    pub fn classify_window(&self, window: &[i16]) -> BeatLabel {
        self.decision.classify(&self.projection.project(window))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn projection_is_deterministic_per_seed() {
        let a = RandomProjection::new_seeded(4, 16, 42);
        let b = RandomProjection::new_seeded(4, 16, 42);
        let c = RandomProjection::new_seeded(4, 16, 43);
        let w: Vec<i16> = (0..16).map(|i| (i * 37 - 200) as i16).collect();
        assert_eq!(a.project(&w), b.project(&w));
        assert_ne!(a.project(&w), c.project(&w));
    }

    #[test]
    fn projection_is_linear_in_shifted_inputs() {
        let rp = RandomProjection::new_seeded(3, 8, 5);
        let zero = vec![0i16; 8];
        assert_eq!(rp.project(&zero), vec![0, 0, 0]);
        // Scaling inputs by 8 (the pre-shift) scales outputs by 1 unit
        // per sample contribution.
        let ones = vec![8i16; 8];
        let p = rp.project(&ones);
        for (k, v) in p.iter().enumerate() {
            let plus = (0..8).filter(|&i| rp.sign(k, i)).count() as i16;
            let minus = 8 - plus;
            assert_eq!(*v, plus - minus);
        }
    }

    #[test]
    fn l1_distance_matches_isa_sub_abs_semantics() {
        // MIN - MAX wraps to 1, like the hardware SUB; ABS then yields 1.
        assert_eq!(NearestCentroid::l1_distance(&[i16::MIN], &[i16::MAX]), 1);
        // A wrapping difference of exactly i16::MIN saturates through ABS.
        assert_eq!(
            NearestCentroid::l1_distance(&[i16::MIN], &[0]),
            i16::MAX as u32
        );
        assert_eq!(NearestCentroid::l1_distance(&[5, -5], &[2, 2]), 10);
    }

    #[test]
    fn classify_prefers_nearer_centroid() {
        let nc = NearestCentroid::new(vec![0, 0], vec![100, 100]);
        assert_eq!(nc.classify(&[10, -10]), BeatLabel::Normal);
        assert_eq!(nc.classify(&[90, 110]), BeatLabel::Pathological);
        // Ties go to Normal (the safe default: no delineation chain).
        assert_eq!(nc.classify(&[50, 50]), BeatLabel::Normal);
    }

    #[test]
    fn train_then_classify_separates_synthetic_clusters() {
        let rp = RandomProjection::new_seeded(8, 32, 9);
        let normal_beat: Vec<i16> = (0..32).map(|i| if i == 16 { 2000 } else { 0 }).collect();
        let path_beat: Vec<i16> = (0..32)
            .map(|i| if (12..22).contains(&i) { 900 } else { 0 })
            .collect();
        let normals: Vec<Vec<i16>> = (0..10)
            .map(|j| {
                let mut b = normal_beat.clone();
                b[8] += (j * 10) as i16; // mild variation
                rp.project(&b)
            })
            .collect();
        let paths: Vec<Vec<i16>> = (0..10)
            .map(|j| {
                let mut b = path_beat.clone();
                b[8] += (j * 10) as i16;
                rp.project(&b)
            })
            .collect();
        let nc = NearestCentroid::train(&normals, &paths);
        let clf = RpClassifier::new(rp, nc);
        assert_eq!(clf.classify_window(&normal_beat), BeatLabel::Normal);
        assert_eq!(clf.classify_window(&path_beat), BeatLabel::Pathological);
    }

    #[test]
    #[should_panic(expected = "centroid size mismatch")]
    fn mismatched_centroids_panic() {
        let _ = NearestCentroid::new(vec![0], vec![0, 1]);
    }
}
