//! Application-level quality metrics: heart-rate estimation from
//! fiducial points and delineation accuracy against ground truth.
//!
//! The platform's purpose is diagnostics, so the reproduction reports not
//! only power but also whether the ported applications still *work*:
//! detection sensitivity/precision versus the synthetic generator's
//! ground truth, and the heart rate recovered from the detected beats.

use crate::ecg::BeatInfo;

/// Detection-accuracy counts of a fiducial/beat detector against ground
/// truth annotations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DetectionAccuracy {
    /// Detections matched to an annotated beat.
    pub true_positives: usize,
    /// Detections with no annotated beat nearby.
    pub false_positives: usize,
    /// Annotated beats with no detection nearby.
    pub false_negatives: usize,
}

impl DetectionAccuracy {
    /// Sensitivity (recall): `TP / (TP + FN)`.
    pub fn sensitivity(&self) -> f64 {
        let denom = self.true_positives + self.false_negatives;
        if denom == 0 {
            return 0.0;
        }
        self.true_positives as f64 / denom as f64
    }

    /// Positive predictive value (precision): `TP / (TP + FP)`.
    pub fn precision(&self) -> f64 {
        let denom = self.true_positives + self.false_positives;
        if denom == 0 {
            return 0.0;
        }
        self.true_positives as f64 / denom as f64
    }
}

/// Matches detections against annotated beats with a tolerance window
/// (in samples). Detections and annotations are matched greedily in time
/// order; each annotation accepts at most one detection.
///
/// # Example
///
/// ```
/// use wbsn_dsp::ecg::{BeatClass, BeatInfo};
/// use wbsn_dsp::metrics::match_detections;
///
/// let truth = [
///     BeatInfo { peak: 100, class: BeatClass::Normal },
///     BeatInfo { peak: 300, class: BeatClass::Normal },
/// ];
/// let acc = match_detections(&[103, 471], &truth, 20);
/// assert_eq!(acc.true_positives, 1);
/// assert_eq!(acc.false_positives, 1);
/// assert_eq!(acc.false_negatives, 1);
/// ```
pub fn match_detections(
    detections: &[usize],
    truth: &[BeatInfo],
    tolerance: usize,
) -> DetectionAccuracy {
    let mut acc = DetectionAccuracy::default();
    let mut truth_used = vec![false; truth.len()];
    for &d in detections {
        let best = truth
            .iter()
            .enumerate()
            .filter(|(i, b)| !truth_used[*i] && b.peak.abs_diff(d) <= tolerance)
            .min_by_key(|(_, b)| b.peak.abs_diff(d));
        match best {
            Some((i, _)) => {
                truth_used[i] = true;
                acc.true_positives += 1;
            }
            None => acc.false_positives += 1,
        }
    }
    acc.false_negatives = truth_used.iter().filter(|&&u| !u).count();
    acc
}

/// Mean heart rate in beats per minute from detection times.
///
/// Returns `None` with fewer than two detections.
///
/// # Example
///
/// ```
/// use wbsn_dsp::metrics::heart_rate_bpm;
///
/// // Beats every 500 samples at 500 Hz: 60 bpm.
/// let hr = heart_rate_bpm(&[0, 500, 1000, 1500], 500).unwrap();
/// assert!((hr - 60.0).abs() < 1e-9);
/// ```
pub fn heart_rate_bpm(detections: &[usize], fs: u32) -> Option<f64> {
    if detections.len() < 2 {
        return None;
    }
    let span = (detections[detections.len() - 1] - detections[0]) as f64;
    let intervals = (detections.len() - 1) as f64;
    let mean_rr_s = span / intervals / fs as f64;
    Some(60.0 / mean_rr_s)
}

/// RR-interval variability: the standard deviation of successive
/// intervals in milliseconds (a crude SDNN).
///
/// Returns `None` with fewer than three detections.
pub fn rr_std_ms(detections: &[usize], fs: u32) -> Option<f64> {
    if detections.len() < 3 {
        return None;
    }
    let rr: Vec<f64> = detections
        .windows(2)
        .map(|w| (w[1] - w[0]) as f64 / fs as f64 * 1000.0)
        .collect();
    let mean = rr.iter().sum::<f64>() / rr.len() as f64;
    let var = rr.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / rr.len() as f64;
    Some(var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ecg::{synthesize, BeatClass, EcgConfig};
    use crate::mmd::MmdDelineator;
    use crate::morphology::MorphFilter;

    #[test]
    fn perfect_detections_score_perfectly() {
        let truth = [
            BeatInfo {
                peak: 100,
                class: BeatClass::Normal,
            },
            BeatInfo {
                peak: 280,
                class: BeatClass::Pathological,
            },
        ];
        let acc = match_detections(&[99, 281], &truth, 10);
        assert_eq!(acc.true_positives, 2);
        assert_eq!(acc.false_positives, 0);
        assert_eq!(acc.false_negatives, 0);
        assert_eq!(acc.sensitivity(), 1.0);
        assert_eq!(acc.precision(), 1.0);
    }

    #[test]
    fn each_annotation_matches_at_most_once() {
        let truth = [BeatInfo {
            peak: 100,
            class: BeatClass::Normal,
        }];
        let acc = match_detections(&[98, 102], &truth, 10);
        assert_eq!(acc.true_positives, 1);
        assert_eq!(acc.false_positives, 1);
    }

    #[test]
    fn empty_inputs_are_graceful() {
        let acc = match_detections(&[], &[], 10);
        assert_eq!(acc.sensitivity(), 0.0);
        assert_eq!(acc.precision(), 0.0);
        assert_eq!(heart_rate_bpm(&[5], 250), None);
        assert_eq!(rr_std_ms(&[5, 10], 250), None);
    }

    #[test]
    fn pipeline_detection_quality_on_synthetic_ecg() {
        // The full conditioned detection pipeline should find essentially
        // every beat of a clean synthetic recording.
        let rec = synthesize(&EcgConfig {
            fs: 500,
            duration_s: 30.0,
            ..EcgConfig::healthy_60s()
        });
        let cond: Vec<i16> = MorphFilter::new(30, 50, 5).filter(&rec.leads[0]);
        let detections: Vec<usize> = MmdDelineator::new(10, 30, 700, 50)
            .delineate(&cond)
            .into_iter()
            .map(|p| p.sample)
            .collect();
        let acc = match_detections(&detections, &rec.beats, 40);
        assert!(
            acc.sensitivity() > 0.95,
            "sensitivity {:.2} (TP {} FN {})",
            acc.sensitivity(),
            acc.true_positives,
            acc.false_negatives
        );
        assert!(acc.precision() > 0.95, "precision {:.2}", acc.precision());

        let hr = heart_rate_bpm(&detections, rec.fs).expect("enough beats");
        assert!((60.0..90.0).contains(&hr), "heart rate {hr:.1} bpm");
        let sdnn = rr_std_ms(&detections, rec.fs).expect("enough beats");
        assert!(sdnn < 80.0, "variability {sdnn:.1} ms");
    }
}
