//! Fixed-point bio-signal processing: the golden models of the benchmark
//! applications, plus a synthetic multi-lead ECG source.
//!
//! The three benchmarks of the paper's evaluation are implemented here in
//! plain Rust over 16-bit wrapping arithmetic — exactly the operations
//! the generated ISA programs execute — so the platform simulator's
//! outputs can be validated bit-for-bit against these models:
//!
//! * [`morphology`] — streaming erosion/dilation/opening/closing and the
//!   three-lead morphological filter (3L-MF, the paper's ref \[21\]).
//! * [`mmd`] — multi-scale morphological derivatives with fiducial-point
//!   detection (the delineation stage of 3L-MMD, ref \[10\]).
//! * [`rproj`] — random-projection heartbeat classification with
//!   nearest-centroid decision (RP-CLASS, ref \[22\]).
//! * [`ecg`] — a seeded synthetic multi-lead ECG generator with a
//!   configurable fraction of uniformly distributed pathological beats,
//!   substituting for the CSE database (ref \[23\]) the paper used.
//!
//! # Example
//!
//! ```
//! use wbsn_dsp::ecg::{synthesize, EcgConfig};
//! use wbsn_dsp::morphology::MorphFilter;
//!
//! let rec = synthesize(&EcgConfig::short_test());
//! let mut filter = MorphFilter::standard_250hz();
//! let filtered: Vec<i16> = rec.leads[0].iter().map(|&x| filter.push(x)).collect();
//! assert_eq!(filtered.len(), rec.leads[0].len());
//! ```

pub mod ecg;
pub mod metrics;
pub mod mmd;
pub mod morphology;
pub mod rproj;

pub use ecg::{synthesize, BeatClass, BeatInfo, EcgConfig, EcgRecording};
pub use mmd::{CombinedLead, FiducialPoint, MmdDelineator};
pub use morphology::{Dilation, Erosion, MorphFilter};
pub use rproj::{BeatLabel, NearestCentroid, RandomProjection, RpClassifier};

/// Absolute value with saturation at `i16::MIN`, mirroring the platform's
/// `ABS` instruction (`|-32768|` saturates to `32767`).
///
/// # Example
///
/// ```
/// assert_eq!(wbsn_dsp::exec_abs(-5), 5);
/// assert_eq!(wbsn_dsp::exec_abs(i16::MIN), i16::MAX);
/// ```
#[inline]
pub fn exec_abs(x: i16) -> i16 {
    if x == i16::MIN {
        i16::MAX
    } else {
        x.abs()
    }
}
