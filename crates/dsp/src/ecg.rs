//! Synthetic multi-lead ECG generation.
//!
//! The paper evaluates on multi-lead recordings from the CSE database
//! (ref \[23\]), which is proprietary; this module synthesizes a
//! morphologically equivalent substitute: a PQRST beat template built
//! from Gaussian bumps, per-lead amplitude scaling, slow baseline wander,
//! measurement noise, heart-rate variability, and a configurable
//! fraction of *pathological* beats (wide-QRS, PVC-like morphology)
//! distributed uniformly — the exact knob the paper sweeps in Fig. 7.
//!
//! Generation is fully deterministic per seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Beat classification ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BeatClass {
    /// Normal sinus beat.
    Normal,
    /// PVC-like pathological beat (wide QRS, inverted T).
    Pathological,
}

/// Ground-truth information about one synthesized beat.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BeatInfo {
    /// Sample index of the R peak.
    pub peak: usize,
    /// Beat class.
    pub class: BeatClass,
}

/// Generator configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct EcgConfig {
    /// Sampling rate in Hz.
    pub fs: u32,
    /// Recording duration in seconds.
    pub duration_s: f64,
    /// Number of leads.
    pub leads: usize,
    /// Mean heart rate in beats per minute.
    pub heart_rate_bpm: f64,
    /// Fraction of pathological beats in `0.0..=1.0`.
    pub pathological_fraction: f64,
    /// Peak-to-peak amplitude of the R wave in ADC counts.
    pub r_amplitude: i16,
    /// Baseline wander amplitude in ADC counts.
    pub wander_amplitude: i16,
    /// Uniform noise amplitude in ADC counts.
    pub noise_amplitude: i16,
    /// RNG seed.
    pub seed: u64,
}

impl EcgConfig {
    /// The standard evaluation input: 60 s, 3 leads, 250 Hz, healthy
    /// subject (the Table I runs for 3L-MF and 3L-MMD).
    pub fn healthy_60s() -> EcgConfig {
        EcgConfig {
            fs: 250,
            duration_s: 60.0,
            leads: 3,
            heart_rate_bpm: 72.0,
            pathological_fraction: 0.0,
            r_amplitude: 1800,
            wander_amplitude: 300,
            noise_amplitude: 25,
            seed: 0xEC60,
        }
    }

    /// The RP-CLASS input: like [`EcgConfig::healthy_60s`] but with the
    /// given fraction of uniformly distributed abnormal beats (20% for
    /// Table I; swept in Fig. 7).
    pub fn pathological_60s(fraction: f64) -> EcgConfig {
        EcgConfig {
            pathological_fraction: fraction,
            ..EcgConfig::healthy_60s()
        }
    }

    /// A fast configuration for unit tests and doc examples (4 s).
    pub fn short_test() -> EcgConfig {
        EcgConfig {
            duration_s: 4.0,
            ..EcgConfig::healthy_60s()
        }
    }

    /// Total samples per lead.
    pub fn samples(&self) -> usize {
        (self.fs as f64 * self.duration_s) as usize
    }
}

/// A synthesized recording with ground truth.
#[derive(Debug, Clone, PartialEq)]
pub struct EcgRecording {
    /// One sample vector per lead.
    pub leads: Vec<Vec<i16>>,
    /// Ground-truth beats in time order.
    pub beats: Vec<BeatInfo>,
    /// Sampling rate, copied from the configuration.
    pub fs: u32,
}

impl EcgRecording {
    /// Fraction of beats that are pathological.
    pub fn pathological_fraction(&self) -> f64 {
        if self.beats.is_empty() {
            return 0.0;
        }
        self.beats
            .iter()
            .filter(|b| b.class == BeatClass::Pathological)
            .count() as f64
            / self.beats.len() as f64
    }
}

impl EcgRecording {
    /// Serializes the recording as CSV: a header row
    /// (`sample,lead0,lead1,...`), one row per sample, followed by
    /// comment lines (`# beat,<peak>,<N|P>`) carrying the ground-truth
    /// annotations.
    pub fn to_csv(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        out.push_str("sample");
        for l in 0..self.leads.len() {
            let _ = write!(out, ",lead{l}");
        }
        out.push('\n');
        let n = self.leads.iter().map(Vec::len).min().unwrap_or(0);
        for i in 0..n {
            let _ = write!(out, "{i}");
            for lead in &self.leads {
                let _ = write!(out, ",{}", lead[i]);
            }
            out.push('\n');
        }
        for beat in &self.beats {
            let class = match beat.class {
                BeatClass::Normal => 'N',
                BeatClass::Pathological => 'P',
            };
            let _ = writeln!(out, "# beat,{},{}", beat.peak, class);
        }
        out
    }

    /// Parses a recording from the CSV format written by
    /// [`EcgRecording::to_csv`]. `fs` is recorded alongside since the
    /// format does not carry it.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line.
    pub fn from_csv(text: &str, fs: u32) -> Result<EcgRecording, String> {
        let mut lines = text.lines();
        let header = lines.next().ok_or("empty input")?;
        let lead_count = header.split(',').count().saturating_sub(1);
        if lead_count == 0 {
            return Err("header declares no leads".to_string());
        }
        let mut leads = vec![Vec::new(); lead_count];
        let mut beats = Vec::new();
        for (no, line) in lines.enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix("# beat,") {
                let mut parts = rest.split(',');
                let peak: usize = parts
                    .next()
                    .and_then(|p| p.parse().ok())
                    .ok_or_else(|| format!("line {}: bad beat annotation", no + 2))?;
                let class = match parts.next() {
                    Some("N") => BeatClass::Normal,
                    Some("P") => BeatClass::Pathological,
                    _ => return Err(format!("line {}: bad beat class", no + 2)),
                };
                beats.push(BeatInfo { peak, class });
                continue;
            }
            let mut parts = line.split(',');
            let _sample = parts.next();
            for (l, value) in parts.enumerate() {
                if l >= lead_count {
                    return Err(format!("line {}: too many columns", no + 2));
                }
                let v: i16 = value
                    .parse()
                    .map_err(|_| format!("line {}: bad sample `{value}`", no + 2))?;
                leads[l].push(v);
            }
        }
        Ok(EcgRecording { leads, beats, fs })
    }
}

fn gaussian(t: f64, center: f64, width: f64, amplitude: f64) -> f64 {
    let d = (t - center) / width;
    amplitude * (-0.5 * d * d).exp()
}

/// PQRST template value at phase `t ∈ [0, 1)` of a beat.
fn beat_waveform(t: f64, class: BeatClass, r_amplitude: f64) -> f64 {
    match class {
        BeatClass::Normal => {
            gaussian(t, 0.18, 0.025, 0.12 * r_amplitude) // P
                + gaussian(t, 0.295, 0.008, -0.18 * r_amplitude) // Q
                + gaussian(t, 0.31, 0.010, r_amplitude) // R
                + gaussian(t, 0.33, 0.009, -0.25 * r_amplitude) // S
                + gaussian(t, 0.52, 0.045, 0.28 * r_amplitude) // T
        }
        BeatClass::Pathological => {
            // PVC-like: no P wave, wide and tall QRS, inverted T.
            gaussian(t, 0.30, 0.035, 1.25 * r_amplitude)
                + gaussian(t, 0.38, 0.030, -0.45 * r_amplitude)
                + gaussian(t, 0.56, 0.055, -0.32 * r_amplitude)
        }
    }
}

/// Synthesizes a recording.
///
/// # Panics
///
/// Panics if the configuration has zero leads, a non-positive duration
/// or a pathological fraction outside `0.0..=1.0`.
///
/// # Example
///
/// ```
/// use wbsn_dsp::ecg::{synthesize, EcgConfig};
///
/// let rec = synthesize(&EcgConfig::short_test());
/// assert_eq!(rec.leads.len(), 3);
/// assert!(rec.beats.len() >= 4); // ~72 bpm over 4 s
/// ```
pub fn synthesize(config: &EcgConfig) -> EcgRecording {
    assert!(config.leads > 0, "at least one lead");
    assert!(config.duration_s > 0.0, "positive duration");
    assert!(
        (0.0..=1.0).contains(&config.pathological_fraction),
        "fraction in 0..=1"
    );
    let mut rng = StdRng::seed_from_u64(config.seed);
    let n = config.samples();
    let fs = config.fs as f64;
    let mean_rr = 60.0 / config.heart_rate_bpm * fs; // samples per beat

    // Schedule beats with mild heart-rate variability.
    let mut beats = Vec::new();
    let mut onset = mean_rr * 0.3;
    while onset + mean_rr < n as f64 {
        let class = if rng.gen_bool(config.pathological_fraction) {
            BeatClass::Pathological
        } else {
            BeatClass::Normal
        };
        let rr = mean_rr * rng.gen_range(0.92..1.08);
        beats.push((onset, rr, class));
        onset += rr;
    }

    // Per-lead projection gains (leads view the same dipole differently).
    let lead_gains: Vec<f64> = (0..config.leads).map(|l| 1.0 - 0.18 * l as f64).collect();

    let mut leads = vec![vec![0i16; n]; config.leads];
    let mut truth = Vec::with_capacity(beats.len());
    for &(onset, rr, class) in &beats {
        let peak = (onset + 0.31 * rr) as usize;
        truth.push(BeatInfo {
            peak: peak.min(n - 1),
            class,
        });
        let start = onset as usize;
        let len = rr as usize;
        for i in 0..len.min(n - start) {
            let t = i as f64 / rr;
            let v = beat_waveform(t, class, config.r_amplitude as f64);
            for (l, lead) in leads.iter_mut().enumerate() {
                let scaled = v * lead_gains[l];
                lead[start + i] = lead[start + i].saturating_add(scaled as i16);
            }
        }
    }

    // Baseline wander (respiration, ~0.3 Hz) and uniform noise.
    let wander_f = 0.3;
    for (l, lead) in leads.iter_mut().enumerate() {
        let phase = l as f64 * 0.7;
        for (i, s) in lead.iter_mut().enumerate() {
            let t = i as f64 / fs;
            let wander = config.wander_amplitude as f64
                * (2.0 * std::f64::consts::PI * wander_f * t + phase).sin();
            let noise = if config.noise_amplitude > 0 {
                rng.gen_range(-(config.noise_amplitude as i32)..=config.noise_amplitude as i32)
            } else {
                0
            };
            *s = s.saturating_add(wander as i16).saturating_add(noise as i16);
        }
    }

    EcgRecording {
        leads,
        beats: truth,
        fs: config.fs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a = synthesize(&EcgConfig::short_test());
        let b = synthesize(&EcgConfig::short_test());
        assert_eq!(a, b);
        let c = synthesize(&EcgConfig {
            seed: 99,
            ..EcgConfig::short_test()
        });
        assert_ne!(a.leads, c.leads);
    }

    #[test]
    fn beat_rate_matches_configuration() {
        let rec = synthesize(&EcgConfig::healthy_60s());
        // 72 bpm over 60 s ⇒ ~70 beats (minus edge effects).
        assert!(
            (62..=75).contains(&rec.beats.len()),
            "got {} beats",
            rec.beats.len()
        );
        assert_eq!(rec.pathological_fraction(), 0.0);
    }

    #[test]
    fn pathological_fraction_is_respected() {
        for f in [0.2, 0.5, 1.0] {
            let rec = synthesize(&EcgConfig {
                duration_s: 120.0,
                ..EcgConfig::pathological_60s(f)
            });
            let measured = rec.pathological_fraction();
            assert!(
                (measured - f).abs() < 0.12,
                "asked {f}, measured {measured}"
            );
        }
    }

    #[test]
    fn leads_are_scaled_copies_plus_noise() {
        let rec = synthesize(&EcgConfig::short_test());
        let max0 = rec.leads[0].iter().copied().max().unwrap();
        let max2 = rec.leads[2].iter().copied().max().unwrap();
        assert!(max0 > max2, "lead gains decrease");
        assert!(max0 > 1000, "R peaks visible");
    }

    #[test]
    fn r_peaks_land_near_ground_truth() {
        let rec = synthesize(&EcgConfig {
            noise_amplitude: 0,
            wander_amplitude: 0,
            ..EcgConfig::short_test()
        });
        for beat in &rec.beats {
            if beat.class != BeatClass::Normal {
                continue;
            }
            // The local maximum within ±10 samples of the annotation is
            // essentially the annotated peak.
            let lo = beat.peak.saturating_sub(10);
            let hi = (beat.peak + 10).min(rec.leads[0].len() - 1);
            let (argmax, _) = rec.leads[0][lo..=hi]
                .iter()
                .enumerate()
                .max_by_key(|(_, v)| **v)
                .unwrap();
            let peak = lo + argmax;
            assert!(
                (peak as i64 - beat.peak as i64).abs() <= 5,
                "annotation {} vs argmax {peak}",
                beat.peak
            );
        }
    }

    #[test]
    fn csv_round_trip_preserves_everything() {
        let rec = synthesize(&EcgConfig::short_test());
        let csv = rec.to_csv();
        let back = EcgRecording::from_csv(&csv, rec.fs).expect("parses");
        assert_eq!(back, rec);
    }

    #[test]
    fn csv_rejects_malformed_input() {
        assert!(EcgRecording::from_csv("", 250).is_err());
        assert!(EcgRecording::from_csv("sample,lead0\n0,notanumber\n", 250).is_err());
        assert!(EcgRecording::from_csv("sample,lead0\n0,1\n# beat,x,N\n", 250).is_err());
        assert!(EcgRecording::from_csv("sample,lead0\n0,1,2\n", 250).is_err());
    }

    #[test]
    #[should_panic(expected = "fraction in 0..=1")]
    fn bad_fraction_panics() {
        let _ = synthesize(&EcgConfig {
            pathological_fraction: 1.5,
            ..EcgConfig::short_test()
        });
    }
}
