//! Pure instruction semantics: the 16-bit datapath.

use wbsn_isa::{AluImmOp, AluOp};

/// Computes a register-register ALU operation on 16-bit values.
///
/// Shifts use the low four bits of `b`; `Mul`/`Mulh` are the low and high
/// halves of the signed 32-bit product; `Min`/`Max` are signed.
///
/// # Example
///
/// ```
/// use wbsn_isa::AluOp;
/// use wbsn_sim::exec::alu;
///
/// assert_eq!(alu(AluOp::Add, 0xFFFF, 2), 1); // wrapping
/// assert_eq!(alu(AluOp::Min, 0xFFFF, 1), 0xFFFF); // -1 < 1 signed
/// ```
pub fn alu(op: AluOp, a: u16, b: u16) -> u16 {
    let sa = a as i16;
    let sb = b as i16;
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::And => a & b,
        AluOp::Or => a | b,
        AluOp::Xor => a ^ b,
        AluOp::Sll => a << (b & 0xF),
        AluOp::Srl => a >> (b & 0xF),
        AluOp::Sra => (sa >> (b & 0xF)) as u16,
        AluOp::Mul => (sa as i32).wrapping_mul(sb as i32) as u16,
        AluOp::Mulh => (((sa as i32).wrapping_mul(sb as i32)) >> 16) as u16,
        AluOp::Min => sa.min(sb) as u16,
        AluOp::Max => sa.max(sb) as u16,
        AluOp::Slt => (sa < sb) as u16,
        AluOp::Sltu => (a < b) as u16,
    }
}

/// Computes a register-immediate ALU operation.
///
/// `Addi` sign-extends its immediate (already carried as `i16`), the
/// logical forms use the zero-extended 12-bit immediate, and shifts the
/// low four bits.
pub fn alu_imm(op: AluImmOp, a: u16, imm: i16) -> u16 {
    match op {
        AluImmOp::Addi => a.wrapping_add(imm as u16),
        AluImmOp::Andi => a & (imm as u16),
        AluImmOp::Ori => a | (imm as u16),
        AluImmOp::Xori => a ^ (imm as u16),
        AluImmOp::Slli => a << (imm as u16 & 0xF),
        AluImmOp::Srli => a >> (imm as u16 & 0xF),
        AluImmOp::Srai => ((a as i16) >> (imm as u16 & 0xF)) as u16,
    }
}

/// Absolute value with saturation at the most negative input.
///
/// `|-32768|` does not fit in `i16`, so the hardware saturates to
/// `32767`.
pub fn abs16(a: u16) -> u16 {
    let s = a as i16;
    if s == i16::MIN {
        i16::MAX as u16
    } else {
        s.unsigned_abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_sub_wrap() {
        assert_eq!(alu(AluOp::Add, 0x7FFF, 1), 0x8000);
        assert_eq!(alu(AluOp::Sub, 0, 1), 0xFFFF);
    }

    #[test]
    fn shifts_use_low_nibble() {
        assert_eq!(alu(AluOp::Sll, 1, 4), 16);
        assert_eq!(alu(AluOp::Sll, 1, 20), 16, "shift amount masked");
        assert_eq!(alu(AluOp::Srl, 0x8000, 15), 1);
        assert_eq!(alu(AluOp::Sra, 0x8000, 15), 0xFFFF, "arithmetic fills sign");
    }

    #[test]
    fn mul_and_mulh_form_signed_product() {
        let a = -300i16;
        let b = 250i16;
        let product = (a as i32) * (b as i32);
        let lo = alu(AluOp::Mul, a as u16, b as u16);
        let hi = alu(AluOp::Mulh, a as u16, b as u16);
        let rebuilt = ((hi as i16 as i32) << 16) | lo as i32 & 0xFFFF;
        assert_eq!(rebuilt, product);
    }

    #[test]
    fn min_max_signed() {
        assert_eq!(alu(AluOp::Min, (-5i16) as u16, 3), (-5i16) as u16);
        assert_eq!(alu(AluOp::Max, (-5i16) as u16, 3), 3);
    }

    #[test]
    fn set_less_than_signed_vs_unsigned() {
        assert_eq!(alu(AluOp::Slt, 0xFFFF, 0), 1);
        assert_eq!(alu(AluOp::Sltu, 0xFFFF, 0), 0);
    }

    #[test]
    fn imm_forms() {
        assert_eq!(alu_imm(AluImmOp::Addi, 10, -3), 7);
        assert_eq!(alu_imm(AluImmOp::Ori, 0xF0, 0x0F), 0xFF);
        assert_eq!(alu_imm(AluImmOp::Srai, 0x8000u16, 8), 0xFF80);
        assert_eq!(alu_imm(AluImmOp::Xori, 0xFF, 0xFF), 0);
        assert_eq!(alu_imm(AluImmOp::Andi, 0x1234, 0xFF), 0x34);
        assert_eq!(alu_imm(AluImmOp::Slli, 3, 2), 12);
        assert_eq!(alu_imm(AluImmOp::Srli, 0x8000u16, 8), 0x80);
    }

    #[test]
    fn abs_saturates() {
        assert_eq!(abs16((-5i16) as u16), 5);
        assert_eq!(abs16(5), 5);
        assert_eq!(abs16(0x8000), 0x7FFF);
    }
}
