//! The simulator's bridge to the observability layer.
//!
//! With the default `obs` feature the module re-exports [`wbsn_obs`]'s
//! handle and types, so `Platform` instruments its cycle loops through
//! real hooks. With the feature disabled it defines a zero-sized stub
//! with the identical method surface whose hooks compile to nothing, so
//! every call site in `platform.rs` stays unconditional either way.

#[cfg(feature = "obs")]
pub use wbsn_obs::{
    AdcEvent, CountingSink, Event, EventSink, Histogram, Obs, ObsConfig, ObsCore, ObsSummary,
    PhaseCounters, PhaseEvent, PhaseProfiler, PhaseRow, PowerEvent, StallCause, SyncEvent,
    TimedEvent, TraceJsonSink, UNMAPPED_PHASE,
};

#[cfg(not(feature = "obs"))]
mod stub {
    use wbsn_core::SyncOutcome;
    use wbsn_isa::SyncKind;

    /// Stall-cause taxonomy (stub mirror of `wbsn_obs::StallCause`).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum StallCause {
        /// Lost instruction-memory arbitration.
        ImConflict,
        /// Lost data-memory arbitration.
        DmConflict,
        /// Load-use hazard interlock.
        LoadUseHazard,
    }

    /// Inert stand-in for the observability handle: every hook is a
    /// no-op and the recorder is never present.
    #[derive(Debug, Default)]
    pub struct Obs;

    impl Obs {
        /// A disabled handle.
        pub const fn off() -> Obs {
            Obs
        }

        /// Always false without the `obs` feature.
        pub fn enabled(&self) -> bool {
            false
        }

        /// No-op hook.
        #[inline(always)]
        pub fn active_cycle(&mut self, _cycle: u64, _core: usize, _pc: u32) {}

        /// No-op hook.
        #[inline(always)]
        pub fn stall(&mut self, _cycle: u64, _core: usize, _cause: StallCause) {}

        /// No-op hook.
        #[inline(always)]
        pub fn bubble(&mut self, _cycle: u64, _core: usize) {}

        /// No-op hook.
        #[inline(always)]
        pub fn retire(&mut self, _cycle: u64, _core: usize) {}

        /// No-op hook.
        #[inline(always)]
        pub fn sync_op(&mut self, _cycle: u64, _core: usize, _kind: SyncKind, _point: u16) {}

        /// No-op hook.
        #[inline(always)]
        pub fn sleep_op(&mut self, _cycle: u64, _core: usize) {}

        /// No-op hook.
        #[inline(always)]
        pub fn sync_outcome(&mut self, _cycle: u64, _outcome: &SyncOutcome) {}

        /// No-op hook.
        #[inline(always)]
        pub fn adc_sample(&mut self, _cycle: u64, _mask: u16) {}

        /// No-op hook.
        #[inline(always)]
        pub fn im_access(&mut self, _cycle: u64, _bank: usize) {}

        /// No-op hook.
        #[inline(always)]
        pub fn dm_access(&mut self, _cycle: u64, _bank: usize) {}

        /// No-op hook.
        #[inline(always)]
        pub fn finish(&mut self, _cycle: u64) {}
    }
}

#[cfg(not(feature = "obs"))]
pub use stub::{Obs, StallCause};
