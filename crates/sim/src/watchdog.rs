//! Runtime watchdog: deadlock and stalled-progress detection with a
//! post-mortem dump.
//!
//! A synchronization bug on real hardware is silent: every core is
//! clock-gated, nothing retires, and the node just stops. The
//! platform's watchdog ([`crate::Platform::set_watchdog`]) turns that
//! silence into a diagnosis. Two conditions trip it:
//!
//! * **Deadlock** — every live core is clock-gated, no ADC event is
//!   pending, and at least one gated core is flagged in a
//!   synchronization point: it registered for a wake that no running
//!   core can ever deliver. (Gated cores with no registration are the
//!   workload's intentional final sleep and still exit
//!   [`crate::RunExit::Quiescent`].)
//! * **Stall** — the configured number of cycles elapsed without a
//!   single instruction retiring anywhere, while the platform is not in
//!   an accounted idle skip.
//!
//! Instead of hanging (or mis-reporting an exit), the run returns
//! [`crate::SimError::Watchdog`] carrying a [`PostMortem`]: per-core
//! architectural state, every synchronization-point word with its armed
//! bit, and — when tracing is enabled — the last retired instructions.
//! When an observability recorder ([`crate::Platform::enable_obs`]) is
//! attached, the dump also carries the tail of the typed event stream
//! and the per-(core, phase) cycle attribution, so the report names the
//! mapping phase each core died in.

use std::fmt;

use wbsn_core::SyncPointValue;

use crate::trace::TraceEvent;

/// What tripped the watchdog.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WatchdogTrip {
    /// All live cores are gated; the listed cores are flagged in
    /// synchronization points that can never fire.
    Deadlock {
        /// Cores waiting on a wake that cannot be delivered.
        waiting: Vec<usize>,
    },
    /// No instruction retired for the configured budget.
    Stall {
        /// The stall budget that was exceeded, in cycles.
        budget: u64,
    },
}

impl fmt::Display for WatchdogTrip {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WatchdogTrip::Deadlock { waiting } => write!(
                f,
                "deadlock — cores {waiting:?} are clock-gated on synchronization \
                 points no running core can signal"
            ),
            WatchdogTrip::Stall { budget } => {
                write!(f, "stall — no instruction retired for {budget} cycles")
            }
        }
    }
}

/// Architectural state of one core at trip time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreDump {
    /// Core index.
    pub core: usize,
    /// Program counter.
    pub pc: u32,
    /// The core executed `HALT`.
    pub halted: bool,
    /// The core is clock-gated.
    pub gated: bool,
    /// The core had a linked entry point.
    pub present: bool,
}

/// One synchronization-point word at trip time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PointDump {
    /// Point index.
    pub point: u16,
    /// The point's word (flags + counter).
    pub value: SyncPointValue,
    /// The synchronizer's armed bit for the point.
    pub armed: bool,
}

/// Cycles and instructions attributed to one `(core, phase)` pair at
/// trip time (from the observability profiler).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseAttribution {
    /// The core.
    pub core: usize,
    /// The mapping-phase (section) name.
    pub phase: String,
    /// Active cycles the core spent in the phase.
    pub active_cycles: u64,
    /// Instructions the core retired in the phase.
    pub instructions: u64,
}

/// Everything the watchdog captured when it tripped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PostMortem {
    /// Cycle at which the trip was detected.
    pub cycle: u64,
    /// The tripping condition.
    pub trip: WatchdogTrip,
    /// Per-core architectural state.
    pub cores: Vec<CoreDump>,
    /// Every synchronization-point word.
    pub points: Vec<PointDump>,
    /// The last retired instructions, oldest first (empty unless
    /// tracing was enabled).
    pub trace_tail: Vec<TraceEvent>,
    /// The tail of the observability event stream, rendered one line
    /// per event, oldest first (empty unless a recorder with an event
    /// ring was attached).
    pub obs_tail: Vec<String>,
    /// Per-(core, phase) cycle attribution (empty unless a recorder
    /// with the profiler was attached).
    pub phase_profile: Vec<PhaseAttribution>,
}

impl fmt::Display for PostMortem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} at cycle {}", self.trip, self.cycle)?;
        for c in &self.cores {
            if !c.present {
                continue;
            }
            let state = if c.halted {
                "halted"
            } else if c.gated {
                "gated"
            } else {
                "running"
            };
            writeln!(f, "  core {}: pc {:#06x} {}", c.core, c.pc, state)?;
        }
        for p in &self.points {
            writeln!(
                f,
                "  point {:>2}: flags {:#010b} counter {}{}",
                p.point,
                p.value.flags().bits(),
                p.value.counter(),
                if p.armed { " armed" } else { "" }
            )?;
        }
        if !self.trace_tail.is_empty() {
            writeln!(f, "  last retirements:")?;
            for event in &self.trace_tail {
                writeln!(f, "    {event}")?;
            }
        }
        if !self.obs_tail.is_empty() {
            writeln!(f, "  last events:")?;
            for line in &self.obs_tail {
                writeln!(f, "    {line}")?;
            }
        }
        if !self.phase_profile.is_empty() {
            writeln!(f, "  phase attribution:")?;
            for row in &self.phase_profile {
                writeln!(
                    f,
                    "    core {} in {}: {} active cycles, {} instructions",
                    row.core, row.phase, row.active_cycles, row.instructions
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wbsn_core::CoreSet;

    #[test]
    fn post_mortem_renders_cores_points_and_trace() {
        let pm = PostMortem {
            cycle: 42,
            trip: WatchdogTrip::Deadlock { waiting: vec![1] },
            cores: vec![
                CoreDump {
                    core: 0,
                    pc: 0x4,
                    halted: true,
                    gated: false,
                    present: true,
                },
                CoreDump {
                    core: 1,
                    pc: 0x10,
                    halted: false,
                    gated: true,
                    present: true,
                },
                CoreDump {
                    core: 2,
                    pc: 0,
                    halted: false,
                    gated: true,
                    present: false,
                },
            ],
            points: vec![PointDump {
                point: 0,
                value: SyncPointValue::with(CoreSet::first(2), 3),
                armed: true,
            }],
            trace_tail: Vec::new(),
            obs_tail: vec!["[        40] core1 slept".to_string()],
            phase_profile: vec![PhaseAttribution {
                core: 1,
                phase: "delineate".to_string(),
                active_cycles: 30,
                instructions: 12,
            }],
        };
        let text = pm.to_string();
        assert!(text.contains("deadlock"));
        assert!(text.contains("cycle 42"));
        assert!(text.contains("core 1: pc 0x0010 gated"));
        assert!(text.contains("counter 3 armed"));
        assert!(!text.contains("core 2"), "absent cores are omitted");
        assert!(text.contains("last events:"));
        assert!(text.contains("core1 slept"));
        assert!(text.contains("core 1 in delineate: 30 active cycles, 12 instructions"));
    }

    #[test]
    fn stall_trip_renders_budget() {
        let trip = WatchdogTrip::Stall { budget: 500 };
        assert!(trip.to_string().contains("500 cycles"));
    }
}
