//! Address Translation Unit: shared/private data-memory division.
//!
//! Each core is equipped with a combinational ATU "consisting of a
//! multiplexor that appends a unique tag per core when an access to the
//! private section is requested" (paper §IV-A). Addresses below the
//! shared limit are *shared* and interleaved across all banks (which is
//! why every data bank must stay powered in the multi-core platform);
//! addresses at or above the limit are *private*: each core's window maps
//! onto a contiguous slice of physical memory, so different cores'
//! private data live in different banks and never conflict.
//!
//! The single-core baseline has no ATU: the flat address space maps
//! contiguously onto the banks, letting unused banks power off.

use wbsn_isa::{DM_BANKS, DM_BANK_WORDS, DM_WORDS};

use crate::error::FaultKind;
use crate::mmio::MMIO_BASE;

/// Physical location of a data word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DmLocation {
    /// Bank index.
    pub bank: usize,
    /// Word row within the bank.
    pub row: usize,
}

/// Where a data-memory access lands after translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DmTarget {
    /// Banked memory (shared or private section).
    Memory {
        /// The physical location.
        location: DmLocation,
        /// Whether the access hit the shared section.
        shared: bool,
    },
    /// The synchronization-point region (served by the synchronizer).
    SyncPoint(u16),
    /// The memory-mapped I/O window.
    Mmio(u32),
}

/// The address translation unit of one platform instance.
#[derive(Debug, Clone, Copy)]
pub struct Atu {
    shared_words: u32,
    sync_base: u32,
    sync_points: usize,
    /// Private words available to each core.
    priv_words_per_core: u32,
    /// Rows per bank reserved for the interleaved shared section.
    shared_rows: u32,
    flat: bool,
}

impl Atu {
    /// Builds the ATU for a platform.
    ///
    /// `flat` (single-core baseline) disables translation entirely: the
    /// whole address space maps contiguously onto the banks, except the
    /// MMIO window and the synchronization-point region, which are decoded
    /// the same way on both platforms.
    pub fn new(
        cores: usize,
        shared_words: u32,
        sync_base: u32,
        sync_points: usize,
        flat: bool,
    ) -> Atu {
        let shared_rows = shared_words.div_ceil(DM_BANKS as u32);
        let priv_total = DM_WORDS as u32 - shared_rows * DM_BANKS as u32;
        Atu {
            shared_words,
            sync_base,
            sync_points,
            priv_words_per_core: if flat { 0 } else { priv_total / cores as u32 },
            shared_rows,
            flat,
        }
    }

    /// Private words available to each core.
    pub fn private_words_per_core(&self) -> u32 {
        self.priv_words_per_core
    }

    /// First core-visible address of the private section.
    pub fn private_base(&self) -> u32 {
        self.shared_words
    }

    /// Translates a core-visible address.
    ///
    /// # Errors
    ///
    /// Returns the [`FaultKind`] describing the violation for
    /// out-of-range and out-of-window accesses.
    pub fn translate(&self, core: usize, addr: u32) -> Result<DmTarget, FaultKind> {
        if addr >= DM_WORDS as u32 {
            return Err(FaultKind::DmOutOfRange);
        }
        if addr >= MMIO_BASE {
            return Ok(DmTarget::Mmio(addr));
        }
        if addr >= self.sync_base && addr < self.sync_base + self.sync_points as u32 {
            return Ok(DmTarget::SyncPoint((addr - self.sync_base) as u16));
        }
        if self.flat {
            return Ok(DmTarget::Memory {
                location: DmLocation {
                    bank: addr as usize / DM_BANK_WORDS,
                    row: addr as usize % DM_BANK_WORDS,
                },
                shared: true,
            });
        }
        if addr < self.shared_words {
            // Shared section: interleaved across all banks.
            return Ok(DmTarget::Memory {
                location: DmLocation {
                    bank: addr as usize % DM_BANKS,
                    row: addr as usize / DM_BANKS,
                },
                shared: true,
            });
        }
        // Private section: the ATU appends the core tag, landing the
        // access in the core's contiguous slice of the leftover rows.
        let offset = addr - self.shared_words;
        if offset >= self.priv_words_per_core {
            return Err(FaultKind::PrivateOutOfRange);
        }
        let rows_per_bank = DM_BANK_WORDS as u32 - self.shared_rows;
        let phys = core as u32 * self.priv_words_per_core + offset;
        let bank = (phys / rows_per_bank) as usize;
        let row = (self.shared_rows + phys % rows_per_bank) as usize;
        Ok(DmTarget::Memory {
            location: DmLocation { bank, row },
            shared: false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn atu_mc() -> Atu {
        // 8 cores, 4K shared words, 16 sync points at 0x10.
        Atu::new(8, 0x1000, 0x10, 16, false)
    }

    #[test]
    fn shared_addresses_interleave_across_banks() {
        let atu = atu_mc();
        for addr in [0u32, 1, 2, 15, 16, 17, 0xFFF] {
            if (0x10..0x20).contains(&addr) {
                continue; // sync region
            }
            match atu.translate(0, addr).unwrap() {
                DmTarget::Memory { location, shared } => {
                    assert!(shared);
                    assert_eq!(location.bank, addr as usize % DM_BANKS);
                    assert_eq!(location.row, addr as usize / DM_BANKS);
                }
                other => panic!("unexpected target {other:?}"),
            }
        }
    }

    #[test]
    fn sync_region_is_intercepted() {
        let atu = atu_mc();
        assert_eq!(atu.translate(3, 0x10), Ok(DmTarget::SyncPoint(0)));
        assert_eq!(atu.translate(3, 0x1F), Ok(DmTarget::SyncPoint(15)));
        assert!(matches!(
            atu.translate(3, 0x20),
            Ok(DmTarget::Memory { .. })
        ));
    }

    #[test]
    fn mmio_window_is_decoded_before_translation() {
        let atu = atu_mc();
        assert_eq!(atu.translate(0, 0x7F00), Ok(DmTarget::Mmio(0x7F00)));
        // Also on the flat baseline.
        let flat = Atu::new(1, 0, 0x10, 16, true);
        assert_eq!(flat.translate(0, 0x7F00), Ok(DmTarget::Mmio(0x7F00)));
    }

    #[test]
    fn private_sections_of_distinct_cores_never_collide() {
        let atu = atu_mc();
        let base = atu.private_base();
        let mut seen = std::collections::HashSet::new();
        for core in 0..8 {
            for offset in [0u32, 1, 100, atu.private_words_per_core() - 1] {
                match atu.translate(core, base + offset).unwrap() {
                    DmTarget::Memory { location, shared } => {
                        assert!(!shared);
                        assert!(
                            seen.insert((location.bank, location.row)),
                            "core {core} offset {offset} collided"
                        );
                        assert!(location.row >= 0x1000 / DM_BANKS);
                    }
                    other => panic!("unexpected target {other:?}"),
                }
            }
        }
    }

    #[test]
    fn same_private_address_maps_per_core() {
        let atu = atu_mc();
        let a = atu.translate(0, atu.private_base()).unwrap();
        let b = atu.translate(1, atu.private_base()).unwrap();
        assert_ne!(a, b, "the tag distinguishes the cores");
    }

    #[test]
    fn private_overflow_faults() {
        let atu = atu_mc();
        let bad = atu.private_base() + atu.private_words_per_core();
        // The address may fall into MMIO space instead; pick a core-visible
        // address below MMIO that overflows the private window.
        if bad < MMIO_BASE {
            assert_eq!(atu.translate(0, bad), Err(FaultKind::PrivateOutOfRange));
        }
        assert_eq!(
            atu.translate(0, DM_WORDS as u32),
            Err(FaultKind::DmOutOfRange)
        );
    }

    #[test]
    fn flat_mapping_is_contiguous() {
        let atu = Atu::new(1, 0, 0x10, 16, true);
        match atu.translate(0, 5000).unwrap() {
            DmTarget::Memory { location, .. } => {
                assert_eq!(location.bank, 5000 / DM_BANK_WORDS);
                assert_eq!(location.row, 5000 % DM_BANK_WORDS);
            }
            other => panic!("unexpected target {other:?}"),
        }
    }

    #[test]
    fn private_capacity_accounts_for_shared_rows() {
        let atu = atu_mc();
        let shared_rows = 0x1000u32.div_ceil(16);
        let expected = (DM_WORDS as u32 - shared_rows * 16) / 8;
        assert_eq!(atu.private_words_per_core(), expected);
    }
}
