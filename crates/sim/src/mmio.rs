//! Memory-mapped peripheral registers.
//!
//! Peripherals are "interfaced using memory-mapped registers located in
//! shared DM" (paper §IV-B). The window occupies the top 256 words of the
//! address space and is decoded before the Address Translation Unit, so
//! every core sees the same registers.

/// First word address of the memory-mapped I/O window.
pub const MMIO_BASE: u32 = 0x7F00;

/// One past the last MMIO address.
pub const MMIO_END: u32 = 0x8000;

/// Read-only: latest sample of ADC channel `ch` at `ADC_DATA_BASE + ch`.
pub const ADC_DATA_BASE: u32 = 0x7F00;

/// Read-only: low 16 bits of the sample sequence counter of channel `ch`
/// at `ADC_SEQ_BASE + ch`. Software detects a fresh sample by comparing
/// against the previously observed value (used heavily by the busy-wait
/// variants).
pub const ADC_SEQ_BASE: u32 = 0x7F10;

/// Write-only: the issuing core's interrupt subscription mask (one bit
/// per peripheral source). Writes are routed to the synchronizer.
pub const SYNC_SUBSCRIBE: u32 = 0x7F20;

/// Read-only: the issuing core's current subscription mask.
pub const SYNC_SUBSCRIPTION: u32 = 0x7F21;

/// Read-only: the issuing core's index. Lock-step groups execute one
/// shared binary from one instruction bank (so their fetches broadcast);
/// per-core parameters such as the ADC channel are derived from this
/// register at start-up.
pub const CORE_ID: u32 = 0x7F22;

/// Maximum number of ADC channels addressable in the window.
pub const MAX_ADC_CHANNELS: usize = 16;

/// Classifies an MMIO address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MmioReg {
    /// `ADC_DATA_BASE + channel`.
    AdcData(usize),
    /// `ADC_SEQ_BASE + channel`.
    AdcSeq(usize),
    /// The subscription write register.
    Subscribe,
    /// The subscription read-back register.
    Subscription,
    /// The issuing core's index register.
    CoreId,
}

impl MmioReg {
    /// Decodes an address inside the MMIO window.
    ///
    /// Returns `None` for unmapped window addresses.
    pub fn decode(addr: u32) -> Option<MmioReg> {
        match addr {
            a if (ADC_DATA_BASE..ADC_DATA_BASE + MAX_ADC_CHANNELS as u32).contains(&a) => {
                Some(MmioReg::AdcData((a - ADC_DATA_BASE) as usize))
            }
            a if (ADC_SEQ_BASE..ADC_SEQ_BASE + MAX_ADC_CHANNELS as u32).contains(&a) => {
                Some(MmioReg::AdcSeq((a - ADC_SEQ_BASE) as usize))
            }
            SYNC_SUBSCRIBE => Some(MmioReg::Subscribe),
            SYNC_SUBSCRIPTION => Some(MmioReg::Subscription),
            CORE_ID => Some(MmioReg::CoreId),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decodes_known_registers() {
        assert_eq!(
            MmioReg::decode(ADC_DATA_BASE + 2),
            Some(MmioReg::AdcData(2))
        );
        assert_eq!(MmioReg::decode(ADC_SEQ_BASE), Some(MmioReg::AdcSeq(0)));
        assert_eq!(MmioReg::decode(SYNC_SUBSCRIBE), Some(MmioReg::Subscribe));
        assert_eq!(
            MmioReg::decode(SYNC_SUBSCRIPTION),
            Some(MmioReg::Subscription)
        );
        assert_eq!(MmioReg::decode(CORE_ID), Some(MmioReg::CoreId));
        assert_eq!(MmioReg::decode(0x7FFF), None);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn window_is_inside_address_space() {
        assert!(MMIO_END as usize <= wbsn_isa::DM_WORDS);
        assert!(MMIO_BASE < MMIO_END);
    }
}
