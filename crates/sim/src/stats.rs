//! Architectural event counters consumed by the power model.

use wbsn_core::SyncStats;
use wbsn_isa::{DM_BANKS, IM_BANKS};

/// Per-core cycle and instruction accounting.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CoreStats {
    /// Instructions retired.
    pub instructions: u64,
    /// Cycles the core was clocked (executing, stalled or bubbling).
    pub active_cycles: u64,
    /// Cycles lost to instruction-memory arbitration.
    pub stall_im: u64,
    /// Cycles lost to data-memory arbitration.
    pub stall_dm: u64,
    /// Cycles lost to load-use hazards.
    pub stall_hazard: u64,
    /// Pipeline bubbles after taken control transfers.
    pub bubbles: u64,
    /// Cycles spent clock-gated.
    pub gated_cycles: u64,
    /// Synchronization-point instructions executed (`SINC`/`SDEC`/`SNOP`).
    pub sync_ops: u64,
    /// `SLEEP` instructions executed.
    pub sleeps: u64,
    /// Largest number of active cycles observed within one ADC sampling
    /// period — the per-core real-time requirement.
    pub max_window_active: u64,
    /// Active cycles in the current (incomplete) ADC window.
    pub window_active: u64,
}

impl CoreStats {
    /// Total cycles the core existed (active + gated).
    pub fn total_cycles(&self) -> u64 {
        self.active_cycles + self.gated_cycles
    }

    /// Fraction of existence spent clocked.
    pub fn duty_cycle(&self) -> f64 {
        let total = self.total_cycles();
        if total == 0 {
            0.0
        } else {
            self.active_cycles as f64 / total as f64
        }
    }
}

/// Per-bank access accounting for one memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BankStats {
    /// Physical read accesses per bank.
    pub reads: Vec<u64>,
    /// Physical write accesses per bank.
    pub writes: Vec<u64>,
    /// Requests served for free by broadcast merging.
    pub broadcasts: u64,
    /// Requests that lost arbitration (stall cycles).
    pub conflicts: u64,
}

impl BankStats {
    /// Creates counters for `banks` banks.
    pub fn new(banks: usize) -> BankStats {
        BankStats {
            reads: vec![0; banks],
            writes: vec![0; banks],
            broadcasts: 0,
            conflicts: 0,
        }
    }

    /// Total physical accesses (reads + writes) across banks.
    pub fn accesses(&self) -> u64 {
        self.reads.iter().sum::<u64>() + self.writes.iter().sum::<u64>()
    }

    /// Banks with at least one access — the power model's candidates for
    /// staying powered in the single-core baseline.
    pub fn touched_banks(&self) -> usize {
        self.reads
            .iter()
            .zip(&self.writes)
            .filter(|(r, w)| **r + **w > 0)
            .count()
    }

    /// Fraction of satisfied requests that were served by broadcast, in
    /// percent — Table I's "IM/DM Broadcast (%)".
    pub fn broadcast_percent(&self) -> f64 {
        let served = self.accesses() + self.broadcasts;
        if served == 0 {
            0.0
        } else {
            100.0 * self.broadcasts as f64 / served as f64
        }
    }
}

/// All counters of one simulation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimStats {
    /// Total simulated cycles.
    pub cycles: u64,
    /// Per-core counters.
    pub cores: Vec<CoreStats>,
    /// Instruction-memory counters.
    pub im: BankStats,
    /// Data-memory counters.
    pub dm: BankStats,
    /// Crossbar traversals on the instruction side (granted requests).
    pub xbar_im: u64,
    /// Crossbar traversals on the data side.
    pub xbar_dm: u64,
    /// Loads served from the synchronization-point region.
    pub sync_region_reads: u64,
    /// Merged point writes performed by the synchronizer.
    pub sync_region_writes: u64,
    /// MMIO register reads.
    pub mmio_reads: u64,
    /// MMIO register writes.
    pub mmio_writes: u64,
    /// ADC samples delivered.
    pub adc_samples: u64,
    /// ADC samples lost to overruns (real-time violations).
    pub adc_overruns: u64,
}

impl SimStats {
    /// Creates zeroed statistics for `cores` cores.
    pub fn new(cores: usize) -> SimStats {
        SimStats {
            cycles: 0,
            cores: vec![CoreStats::default(); cores],
            im: BankStats::new(IM_BANKS),
            dm: BankStats::new(DM_BANKS),
            xbar_im: 0,
            xbar_dm: 0,
            sync_region_reads: 0,
            sync_region_writes: 0,
            mmio_reads: 0,
            mmio_writes: 0,
            adc_samples: 0,
            adc_overruns: 0,
        }
    }

    /// Sum of active cycles over all cores.
    pub fn total_active_cycles(&self) -> u64 {
        self.cores.iter().map(|c| c.active_cycles).sum()
    }

    /// Sum of executed synchronization-ISE instructions (`SINC`/`SDEC`/
    /// `SNOP`/`SLEEP`) over all cores.
    pub fn total_sync_instrs(&self) -> u64 {
        self.cores.iter().map(|c| c.sync_ops + c.sleeps).sum()
    }

    /// Run-time overhead of the synchronization ISE in percent of the
    /// active cycles — Table I's "Run-time Overhead (%)".
    pub fn runtime_overhead_percent(&self) -> f64 {
        let active = self.total_active_cycles();
        if active == 0 {
            0.0
        } else {
            100.0 * self.total_sync_instrs() as f64 / active as f64
        }
    }

    /// The worst per-core real-time requirement: max active cycles within
    /// one ADC sampling window across all cores.
    pub fn worst_window_active(&self) -> u64 {
        self.cores
            .iter()
            .map(|c| c.max_window_active.max(c.window_active))
            .max()
            .unwrap_or(0)
    }
}

/// JSON shape for an `f64`: always carries a decimal point or exponent
/// so the value round-trips as a float; non-finite values become
/// `null`.
fn jf(value: f64) -> String {
    if !value.is_finite() {
        return "null".to_string();
    }
    let s = format!("{value}");
    if s.contains('.') || s.contains('e') || s.contains('E') {
        s
    } else {
        format!("{s}.0")
    }
}

fn bank_json(bank: &BankStats) -> String {
    let list = |values: &[u64]| -> String {
        let items: Vec<String> = values.iter().map(u64::to_string).collect();
        format!("[{}]", items.join(", "))
    };
    format!(
        "{{\"reads\": {}, \"writes\": {}, \"broadcasts\": {}, \"conflicts\": {}, \"broadcast_percent\": {}}}",
        list(&bank.reads),
        list(&bank.writes),
        bank.broadcasts,
        bank.conflicts,
        jf(bank.broadcast_percent()),
    )
}

/// Serializes a run's statistics — [`SimStats`] plus the synchronizer's
/// [`SyncStats`] — as a stable, schema-tagged JSON document
/// (`wbsn-stats/1`). Key order is fixed so the output is
/// byte-reproducible for golden-file tests and scripted consumers
/// (`wbsn-run --stats-json`).
pub fn stats_json(stats: &SimStats, sync: &SyncStats) -> String {
    let mut out = String::from("{\n  \"schema\": \"wbsn-stats/1\",\n");
    out.push_str(&format!("  \"cycles\": {},\n", stats.cycles));
    out.push_str("  \"cores\": [\n");
    for (idx, c) in stats.cores.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"core\": {}, \"instructions\": {}, \"active_cycles\": {}, \"stall_im\": {}, \
             \"stall_dm\": {}, \"stall_hazard\": {}, \"bubbles\": {}, \"gated_cycles\": {}, \
             \"sync_ops\": {}, \"sleeps\": {}, \"max_window_active\": {}, \"duty_cycle\": {}}}{}\n",
            idx,
            c.instructions,
            c.active_cycles,
            c.stall_im,
            c.stall_dm,
            c.stall_hazard,
            c.bubbles,
            c.gated_cycles,
            c.sync_ops,
            c.sleeps,
            c.max_window_active.max(c.window_active),
            jf(c.duty_cycle()),
            if idx + 1 < stats.cores.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!("  \"im\": {},\n", bank_json(&stats.im)));
    out.push_str(&format!("  \"dm\": {},\n", bank_json(&stats.dm)));
    out.push_str(&format!("  \"xbar_im\": {},\n", stats.xbar_im));
    out.push_str(&format!("  \"xbar_dm\": {},\n", stats.xbar_dm));
    out.push_str(&format!(
        "  \"sync_region_reads\": {},\n",
        stats.sync_region_reads
    ));
    out.push_str(&format!(
        "  \"sync_region_writes\": {},\n",
        stats.sync_region_writes
    ));
    out.push_str(&format!("  \"mmio_reads\": {},\n", stats.mmio_reads));
    out.push_str(&format!("  \"mmio_writes\": {},\n", stats.mmio_writes));
    out.push_str(&format!("  \"adc_samples\": {},\n", stats.adc_samples));
    out.push_str(&format!("  \"adc_overruns\": {},\n", stats.adc_overruns));
    out.push_str(&format!(
        "  \"total_active_cycles\": {},\n",
        stats.total_active_cycles()
    ));
    out.push_str(&format!(
        "  \"runtime_overhead_percent\": {},\n",
        jf(stats.runtime_overhead_percent())
    ));
    out.push_str(&format!(
        "  \"worst_window_active\": {},\n",
        stats.worst_window_active()
    ));
    out.push_str(&format!(
        "  \"sync\": {{\"ops\": {}, \"writes\": {}, \"merged\": {}, \"fires\": {}, \
         \"sleeps\": {}, \"fallthroughs\": {}, \"irq_wakes\": {}, \"lost_wakes\": {}, \
         \"invariant_faults\": {}}}\n",
        sync.ops,
        sync.writes,
        sync.merged,
        sync.fires,
        sync.sleeps,
        sync.fallthroughs,
        sync.irq_wakes,
        sync.lost_wakes,
        sync.invariant_faults,
    ));
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broadcast_percent() {
        let mut b = BankStats::new(4);
        b.reads[0] = 6;
        b.broadcasts = 4;
        assert!((b.broadcast_percent() - 40.0).abs() < 1e-9);
        assert_eq!(BankStats::new(2).broadcast_percent(), 0.0);
    }

    #[test]
    fn touched_banks() {
        let mut b = BankStats::new(4);
        b.reads[1] = 1;
        b.writes[3] = 2;
        assert_eq!(b.touched_banks(), 2);
        assert_eq!(b.accesses(), 3);
    }

    #[test]
    fn runtime_overhead() {
        let mut s = SimStats::new(2);
        s.cores[0].active_cycles = 90;
        s.cores[1].active_cycles = 10;
        s.cores[0].sync_ops = 1;
        s.cores[1].sleeps = 1;
        assert!((s.runtime_overhead_percent() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn duty_cycle() {
        let c = CoreStats {
            active_cycles: 25,
            gated_cycles: 75,
            ..CoreStats::default()
        };
        assert!((c.duty_cycle() - 0.25).abs() < 1e-12);
        assert_eq!(CoreStats::default().duty_cycle(), 0.0);
    }

    #[test]
    fn worst_window_includes_open_window() {
        let mut s = SimStats::new(2);
        s.cores[0].max_window_active = 10;
        s.cores[1].window_active = 42;
        assert_eq!(s.worst_window_active(), 42);
    }

    #[test]
    fn stats_json_is_stable_and_typed() {
        let mut s = SimStats::new(2);
        s.cycles = 100;
        s.cores[0].instructions = 40;
        s.cores[0].active_cycles = 50;
        s.cores[1].gated_cycles = 100;
        s.im.reads[0] = 40;
        let sync = SyncStats {
            ops: 3,
            writes: 2,
            merged: 1,
            ..SyncStats::default()
        };
        let text = stats_json(&s, &sync);
        assert!(text.contains("\"schema\": \"wbsn-stats/1\""));
        assert!(text.contains("\"cycles\": 100"));
        assert!(
            text.contains("\"duty_cycle\": 1.0"),
            "floats keep a decimal point"
        );
        assert!(text.contains("\"merged\": 1"));
        // Byte-stable: the same inputs serialize identically.
        assert_eq!(text, stats_json(&s, &sync));
    }

    #[test]
    fn jf_shapes_floats() {
        assert_eq!(jf(2.0), "2.0");
        assert_eq!(jf(0.25), "0.25");
        assert_eq!(jf(f64::NAN), "null");
        assert_eq!(jf(f64::INFINITY), "null");
    }
}
