//! Architectural event counters consumed by the power model.

use wbsn_isa::{DM_BANKS, IM_BANKS};

/// Per-core cycle and instruction accounting.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CoreStats {
    /// Instructions retired.
    pub instructions: u64,
    /// Cycles the core was clocked (executing, stalled or bubbling).
    pub active_cycles: u64,
    /// Cycles lost to instruction-memory arbitration.
    pub stall_im: u64,
    /// Cycles lost to data-memory arbitration.
    pub stall_dm: u64,
    /// Cycles lost to load-use hazards.
    pub stall_hazard: u64,
    /// Pipeline bubbles after taken control transfers.
    pub bubbles: u64,
    /// Cycles spent clock-gated.
    pub gated_cycles: u64,
    /// Synchronization-point instructions executed (`SINC`/`SDEC`/`SNOP`).
    pub sync_ops: u64,
    /// `SLEEP` instructions executed.
    pub sleeps: u64,
    /// Largest number of active cycles observed within one ADC sampling
    /// period — the per-core real-time requirement.
    pub max_window_active: u64,
    /// Active cycles in the current (incomplete) ADC window.
    pub window_active: u64,
}

impl CoreStats {
    /// Total cycles the core existed (active + gated).
    pub fn total_cycles(&self) -> u64 {
        self.active_cycles + self.gated_cycles
    }

    /// Fraction of existence spent clocked.
    pub fn duty_cycle(&self) -> f64 {
        let total = self.total_cycles();
        if total == 0 {
            0.0
        } else {
            self.active_cycles as f64 / total as f64
        }
    }
}

/// Per-bank access accounting for one memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BankStats {
    /// Physical read accesses per bank.
    pub reads: Vec<u64>,
    /// Physical write accesses per bank.
    pub writes: Vec<u64>,
    /// Requests served for free by broadcast merging.
    pub broadcasts: u64,
    /// Requests that lost arbitration (stall cycles).
    pub conflicts: u64,
}

impl BankStats {
    /// Creates counters for `banks` banks.
    pub fn new(banks: usize) -> BankStats {
        BankStats {
            reads: vec![0; banks],
            writes: vec![0; banks],
            broadcasts: 0,
            conflicts: 0,
        }
    }

    /// Total physical accesses (reads + writes) across banks.
    pub fn accesses(&self) -> u64 {
        self.reads.iter().sum::<u64>() + self.writes.iter().sum::<u64>()
    }

    /// Banks with at least one access — the power model's candidates for
    /// staying powered in the single-core baseline.
    pub fn touched_banks(&self) -> usize {
        self.reads
            .iter()
            .zip(&self.writes)
            .filter(|(r, w)| **r + **w > 0)
            .count()
    }

    /// Fraction of satisfied requests that were served by broadcast, in
    /// percent — Table I's "IM/DM Broadcast (%)".
    pub fn broadcast_percent(&self) -> f64 {
        let served = self.accesses() + self.broadcasts;
        if served == 0 {
            0.0
        } else {
            100.0 * self.broadcasts as f64 / served as f64
        }
    }
}

/// All counters of one simulation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimStats {
    /// Total simulated cycles.
    pub cycles: u64,
    /// Per-core counters.
    pub cores: Vec<CoreStats>,
    /// Instruction-memory counters.
    pub im: BankStats,
    /// Data-memory counters.
    pub dm: BankStats,
    /// Crossbar traversals on the instruction side (granted requests).
    pub xbar_im: u64,
    /// Crossbar traversals on the data side.
    pub xbar_dm: u64,
    /// Loads served from the synchronization-point region.
    pub sync_region_reads: u64,
    /// Merged point writes performed by the synchronizer.
    pub sync_region_writes: u64,
    /// MMIO register reads.
    pub mmio_reads: u64,
    /// MMIO register writes.
    pub mmio_writes: u64,
    /// ADC samples delivered.
    pub adc_samples: u64,
    /// ADC samples lost to overruns (real-time violations).
    pub adc_overruns: u64,
}

impl SimStats {
    /// Creates zeroed statistics for `cores` cores.
    pub fn new(cores: usize) -> SimStats {
        SimStats {
            cycles: 0,
            cores: vec![CoreStats::default(); cores],
            im: BankStats::new(IM_BANKS),
            dm: BankStats::new(DM_BANKS),
            xbar_im: 0,
            xbar_dm: 0,
            sync_region_reads: 0,
            sync_region_writes: 0,
            mmio_reads: 0,
            mmio_writes: 0,
            adc_samples: 0,
            adc_overruns: 0,
        }
    }

    /// Sum of active cycles over all cores.
    pub fn total_active_cycles(&self) -> u64 {
        self.cores.iter().map(|c| c.active_cycles).sum()
    }

    /// Sum of executed synchronization-ISE instructions (`SINC`/`SDEC`/
    /// `SNOP`/`SLEEP`) over all cores.
    pub fn total_sync_instrs(&self) -> u64 {
        self.cores.iter().map(|c| c.sync_ops + c.sleeps).sum()
    }

    /// Run-time overhead of the synchronization ISE in percent of the
    /// active cycles — Table I's "Run-time Overhead (%)".
    pub fn runtime_overhead_percent(&self) -> f64 {
        let active = self.total_active_cycles();
        if active == 0 {
            0.0
        } else {
            100.0 * self.total_sync_instrs() as f64 / active as f64
        }
    }

    /// The worst per-core real-time requirement: max active cycles within
    /// one ADC sampling window across all cores.
    pub fn worst_window_active(&self) -> u64 {
        self.cores
            .iter()
            .map(|c| c.max_window_active.max(c.window_active))
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broadcast_percent() {
        let mut b = BankStats::new(4);
        b.reads[0] = 6;
        b.broadcasts = 4;
        assert!((b.broadcast_percent() - 40.0).abs() < 1e-9);
        assert_eq!(BankStats::new(2).broadcast_percent(), 0.0);
    }

    #[test]
    fn touched_banks() {
        let mut b = BankStats::new(4);
        b.reads[1] = 1;
        b.writes[3] = 2;
        assert_eq!(b.touched_banks(), 2);
        assert_eq!(b.accesses(), 3);
    }

    #[test]
    fn runtime_overhead() {
        let mut s = SimStats::new(2);
        s.cores[0].active_cycles = 90;
        s.cores[1].active_cycles = 10;
        s.cores[0].sync_ops = 1;
        s.cores[1].sleeps = 1;
        assert!((s.runtime_overhead_percent() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn duty_cycle() {
        let c = CoreStats {
            active_cycles: 25,
            gated_cycles: 75,
            ..CoreStats::default()
        };
        assert!((c.duty_cycle() - 0.25).abs() < 1e-12);
        assert_eq!(CoreStats::default().duty_cycle(), 0.0);
    }

    #[test]
    fn worst_window_includes_open_window() {
        let mut s = SimStats::new(2);
        s.cores[0].max_window_active = 10;
        s.cores[1].window_active = 42;
        assert_eq!(s.worst_window_active(), 42);
    }
}
