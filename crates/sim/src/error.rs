//! Simulator error types: configuration errors, memory faults and
//! synchronization protocol violations.

use std::error::Error;
use std::fmt;

use wbsn_core::SyncError;

use crate::watchdog::PostMortem;

/// Why a memory access faulted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Data address outside the 32 KWord space.
    DmOutOfRange,
    /// Private-section access beyond the core's private allocation.
    PrivateOutOfRange,
    /// Store into the synchronizer-owned point region (points are only
    /// modified through the ISE).
    WriteToSyncRegion,
    /// Access to an unmapped MMIO window address.
    MmioUnmapped,
    /// Store to a read-only MMIO register.
    MmioReadOnly,
    /// Program counter left the instruction memory.
    ImOutOfRange,
    /// Fetched word does not decode to a valid instruction.
    BadInstruction,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FaultKind::DmOutOfRange => "data address out of range",
            FaultKind::PrivateOutOfRange => "private section overflow",
            FaultKind::WriteToSyncRegion => "store into synchronization-point region",
            FaultKind::MmioUnmapped => "unmapped MMIO address",
            FaultKind::MmioReadOnly => "store to read-only MMIO register",
            FaultKind::ImOutOfRange => "program counter out of range",
            FaultKind::BadInstruction => "invalid instruction word",
        };
        f.write_str(s)
    }
}

/// A memory or fetch fault raised by one core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fault {
    /// Index of the faulting core.
    pub core: usize,
    /// Program counter of the faulting instruction.
    pub pc: u32,
    /// The offending address (for fetch faults, equals `pc`).
    pub addr: u32,
    /// Classification of the fault.
    pub kind: FaultKind,
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "core {} at pc {:#06x}: {} (addr {:#06x})",
            self.core, self.pc, self.kind, self.addr
        )
    }
}

impl Error for Fault {}

/// Invalid platform configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// Core count outside `1..=8`.
    BadCoreCount(usize),
    /// Decoder interconnect requires exactly one core.
    DecoderNeedsSingleCore(usize),
    /// Shared section does not fit the data memory (with the MMIO window
    /// and at least one private word per core).
    SharedTooLarge(u32),
    /// The synchronization-point region extends beyond the shared
    /// section.
    SyncRegionOutsideShared {
        /// Configured region base.
        base: u32,
        /// Number of points.
        points: usize,
        /// Shared-section limit.
        shared: u32,
    },
    /// More ADC channels than the MMIO window supports.
    TooManyAdcChannels(usize),
    /// ADC period must be non-zero.
    ZeroAdcPeriod,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ConfigError::BadCoreCount(n) => write!(f, "core count {n} outside 1..=8"),
            ConfigError::DecoderNeedsSingleCore(n) => {
                write!(f, "decoder interconnect requires one core, got {n}")
            }
            ConfigError::SharedTooLarge(n) => {
                write!(f, "shared section of {n} words does not fit data memory")
            }
            ConfigError::SyncRegionOutsideShared {
                base,
                points,
                shared,
            } => write!(
                f,
                "sync points at {base:#06x}..+{points} exceed shared limit {shared:#06x}"
            ),
            ConfigError::TooManyAdcChannels(n) => {
                write!(f, "{n} ADC channels exceed the MMIO window")
            }
            ConfigError::ZeroAdcPeriod => f.write_str("ADC period must be non-zero"),
        }
    }
}

impl Error for ConfigError {}

/// Umbrella simulator error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A core faulted.
    Fault(Fault),
    /// The synchronizer detected a protocol violation.
    Sync(SyncError),
    /// The platform configuration is invalid.
    Config(ConfigError),
    /// The runtime watchdog tripped (deadlock or stalled progress); the
    /// post-mortem captures the platform state at trip time.
    Watchdog(Box<PostMortem>),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Fault(e) => write!(f, "fault: {e}"),
            SimError::Sync(e) => write!(f, "synchronization violation: {e}"),
            SimError::Config(e) => write!(f, "configuration error: {e}"),
            SimError::Watchdog(pm) => write!(f, "watchdog: {pm}"),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Fault(e) => Some(e),
            SimError::Sync(e) => Some(e),
            SimError::Config(e) => Some(e),
            SimError::Watchdog(_) => None,
        }
    }
}

impl From<Fault> for SimError {
    fn from(e: Fault) -> Self {
        SimError::Fault(e)
    }
}

impl From<SyncError> for SimError {
    fn from(e: SyncError) -> Self {
        SimError::Sync(e)
    }
}

impl From<ConfigError> for SimError {
    fn from(e: ConfigError) -> Self {
        SimError::Config(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_mention_core_and_address() {
        let f = Fault {
            core: 3,
            pc: 0x123,
            addr: 0x456,
            kind: FaultKind::DmOutOfRange,
        };
        let text = f.to_string();
        assert!(text.contains("core 3"));
        assert!(text.contains("0x0456"));
    }

    #[test]
    fn umbrella_wraps_sources() {
        let e: SimError = SyncError::CounterUnderflow.into();
        assert!(e.source().is_some());
        let e: SimError = ConfigError::ZeroAdcPeriod.into();
        assert!(!e.to_string().is_empty());
    }
}
