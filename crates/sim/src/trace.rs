//! Execution tracing: a bounded ring of retired instructions and the
//! stalls between them.
//!
//! Tracing is the debugging companion of the platform: when enabled it
//! records the last `capacity` entries — retirements (cycle, core,
//! program counter and decoded instruction) interleaved with the cycles
//! a core *failed* to retire and why (instruction-memory conflict,
//! data-memory conflict, load-use hazard) — which is usually what one
//! needs to diagnose a misbehaving kernel: why a core slept, which
//! branch diverged, what a lock-step group was fetching when it lost
//! alignment, and what kept it from advancing.

use std::collections::VecDeque;
use std::fmt;

use wbsn_isa::Instr;

use crate::obs::StallCause;

/// One retired instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Cycle of retirement.
    pub cycle: u64,
    /// Core that retired the instruction.
    pub core: usize,
    /// Program counter of the instruction.
    pub pc: u32,
    /// The decoded instruction.
    pub instr: Instr,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>10}] core{} {:#06x}: {}",
            self.cycle, self.core, self.pc, self.instr
        )
    }
}

/// One cycle a core failed to retire, with the reason.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StallRecord {
    /// The stalled cycle.
    pub cycle: u64,
    /// The stalled core.
    pub core: usize,
    /// Program counter the core was held at.
    pub pc: u32,
    /// Why it could not retire.
    pub cause: StallCause,
}

impl StallRecord {
    fn cause_label(&self) -> &'static str {
        match self.cause {
            StallCause::ImConflict => "im conflict",
            StallCause::DmConflict => "dm conflict",
            StallCause::LoadUseHazard => "load-use hazard",
        }
    }
}

impl fmt::Display for StallRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>10}] core{} {:#06x}: ~~ stall ({})",
            self.cycle,
            self.core,
            self.pc,
            self.cause_label()
        )
    }
}

/// One ring entry: a retirement or a stalled cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEntry {
    /// An instruction retired.
    Retire(TraceEvent),
    /// The core was held this cycle.
    Stall(StallRecord),
}

impl TraceEntry {
    /// The entry's core.
    pub fn core(&self) -> usize {
        match self {
            TraceEntry::Retire(e) => e.core,
            TraceEntry::Stall(s) => s.core,
        }
    }

    /// The entry's cycle.
    pub fn cycle(&self) -> u64 {
        match self {
            TraceEntry::Retire(e) => e.cycle,
            TraceEntry::Stall(s) => s.cycle,
        }
    }
}

impl fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEntry::Retire(e) => e.fmt(f),
            TraceEntry::Stall(s) => s.fmt(f),
        }
    }
}

/// A bounded retirement-and-stall trace.
#[derive(Debug, Clone)]
pub struct Tracer {
    ring: VecDeque<TraceEntry>,
    capacity: usize,
    core_mask: u8,
}

impl Tracer {
    /// Creates a tracer holding the last `capacity` entries for the cores
    /// in `core_mask` (bit per core).
    pub fn new(capacity: usize, core_mask: u8) -> Tracer {
        Tracer {
            ring: VecDeque::with_capacity(capacity.min(1 << 20)),
            capacity,
            core_mask,
        }
    }

    /// Whether `core` is traced.
    pub fn traces(&self, core: usize) -> bool {
        self.core_mask & (1 << core) != 0
    }

    fn push(&mut self, entry: TraceEntry) {
        if !self.traces(entry.core()) {
            return;
        }
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
        }
        self.ring.push_back(entry);
    }

    /// Records one retirement.
    pub fn record(&mut self, event: TraceEvent) {
        self.push(TraceEntry::Retire(event));
    }

    /// Records one stalled cycle.
    pub fn record_stall(&mut self, stall: StallRecord) {
        self.push(TraceEntry::Stall(stall));
    }

    /// The recorded retirements, oldest first (stall entries are
    /// skipped, keeping this iterator cycle-exact with the retirement
    /// stream the differential oracle compares).
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.ring.iter().filter_map(|entry| match entry {
            TraceEntry::Retire(e) => Some(e),
            TraceEntry::Stall(_) => None,
        })
    }

    /// All recorded entries — retirements and stalls — oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &TraceEntry> {
        self.ring.iter()
    }

    /// Number of recorded entries (retirements and stalls).
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Renders the trace as a listing.
    pub fn listing(&self) -> String {
        let mut out = String::new();
        for entry in &self.ring {
            use std::fmt::Write;
            let _ = writeln!(out, "{entry}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wbsn_isa::{Instr, Reg};

    fn event(cycle: u64, core: usize) -> TraceEvent {
        TraceEvent {
            cycle,
            core,
            pc: 0x40 + cycle as u32,
            instr: Instr::add(Reg::R1, Reg::R2, Reg::R3),
        }
    }

    #[test]
    fn ring_keeps_the_most_recent_events() {
        let mut t = Tracer::new(3, 0xFF);
        for cycle in 0..5 {
            t.record(event(cycle, 0));
        }
        let cycles: Vec<u64> = t.events().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![2, 3, 4]);
    }

    #[test]
    fn core_mask_filters() {
        let mut t = Tracer::new(8, 0b01);
        t.record(event(0, 0));
        t.record(event(1, 1));
        t.record_stall(StallRecord {
            cycle: 2,
            core: 1,
            pc: 0x10,
            cause: StallCause::DmConflict,
        });
        assert_eq!(t.len(), 1);
        assert!(t.traces(0));
        assert!(!t.traces(1));
    }

    #[test]
    fn listing_contains_pcs_and_mnemonics() {
        let mut t = Tracer::new(4, 0xFF);
        t.record(event(7, 2));
        let listing = t.listing();
        assert!(listing.contains("core2"));
        assert!(listing.contains("add r1, r2, r3"));
        assert!(!t.is_empty());
    }

    #[test]
    fn stalls_interleave_but_events_stay_retirements_only() {
        let mut t = Tracer::new(8, 0xFF);
        t.record(event(1, 0));
        t.record_stall(StallRecord {
            cycle: 2,
            core: 0,
            pc: 0x42,
            cause: StallCause::ImConflict,
        });
        t.record(event(3, 0));

        assert_eq!(t.len(), 3);
        // The retirement iterator and its Display format are unchanged.
        let retired: Vec<u64> = t.events().map(|e| e.cycle).collect();
        assert_eq!(retired, vec![1, 3]);
        let listing = t.listing();
        assert!(listing.contains("~~ stall (im conflict)"));
        // A retirement line renders exactly as before.
        assert!(listing.contains(&format!("{}", event(1, 0))));
    }

    #[test]
    fn stall_records_render_each_cause() {
        for (cause, label) in [
            (StallCause::ImConflict, "im conflict"),
            (StallCause::DmConflict, "dm conflict"),
            (StallCause::LoadUseHazard, "load-use hazard"),
        ] {
            let s = StallRecord {
                cycle: 9,
                core: 3,
                pc: 0x80,
                cause,
            };
            assert!(s.to_string().contains(label));
            assert_eq!(TraceEntry::Stall(s).core(), 3);
            assert_eq!(TraceEntry::Stall(s).cycle(), 9);
        }
    }
}
