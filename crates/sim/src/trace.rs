//! Execution tracing: a bounded ring of retired instructions.
//!
//! Tracing is the debugging companion of the platform: when enabled it
//! records the last `capacity` retirements (cycle, core, program counter
//! and decoded instruction), which is usually what one needs to diagnose
//! a misbehaving kernel — why a core slept, which branch diverged, what
//! a lock-step group was fetching when it lost alignment.

use std::collections::VecDeque;
use std::fmt;

use wbsn_isa::Instr;

/// One retired instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Cycle of retirement.
    pub cycle: u64,
    /// Core that retired the instruction.
    pub core: usize,
    /// Program counter of the instruction.
    pub pc: u32,
    /// The decoded instruction.
    pub instr: Instr,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>10}] core{} {:#06x}: {}",
            self.cycle, self.core, self.pc, self.instr
        )
    }
}

/// A bounded retirement trace.
#[derive(Debug, Clone)]
pub struct Tracer {
    ring: VecDeque<TraceEvent>,
    capacity: usize,
    core_mask: u8,
}

impl Tracer {
    /// Creates a tracer holding the last `capacity` events for the cores
    /// in `core_mask` (bit per core).
    pub fn new(capacity: usize, core_mask: u8) -> Tracer {
        Tracer {
            ring: VecDeque::with_capacity(capacity.min(1 << 20)),
            capacity,
            core_mask,
        }
    }

    /// Whether `core` is traced.
    pub fn traces(&self, core: usize) -> bool {
        self.core_mask & (1 << core) != 0
    }

    /// Records one retirement.
    pub fn record(&mut self, event: TraceEvent) {
        if !self.traces(event.core) {
            return;
        }
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
        }
        self.ring.push_back(event);
    }

    /// The recorded events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.ring.iter()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Renders the trace as a listing.
    pub fn listing(&self) -> String {
        let mut out = String::new();
        for event in &self.ring {
            use std::fmt::Write;
            let _ = writeln!(out, "{event}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wbsn_isa::{Instr, Reg};

    fn event(cycle: u64, core: usize) -> TraceEvent {
        TraceEvent {
            cycle,
            core,
            pc: 0x40 + cycle as u32,
            instr: Instr::add(Reg::R1, Reg::R2, Reg::R3),
        }
    }

    #[test]
    fn ring_keeps_the_most_recent_events() {
        let mut t = Tracer::new(3, 0xFF);
        for cycle in 0..5 {
            t.record(event(cycle, 0));
        }
        let cycles: Vec<u64> = t.events().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![2, 3, 4]);
    }

    #[test]
    fn core_mask_filters() {
        let mut t = Tracer::new(8, 0b01);
        t.record(event(0, 0));
        t.record(event(1, 1));
        assert_eq!(t.len(), 1);
        assert!(t.traces(0));
        assert!(!t.traces(1));
    }

    #[test]
    fn listing_contains_pcs_and_mnemonics() {
        let mut t = Tracer::new(4, 0xFF);
        t.record(event(7, 2));
        let listing = t.listing();
        assert!(listing.contains("core2"));
        assert!(listing.contains("add r1, r2, r3"));
        assert!(!t.is_empty());
    }
}
