//! The platform: cores, memories, crossbars, ATU, synchronizer and ADC
//! wired together by a cycle-accurate event loop.

use wbsn_core::{CoreId, Synchronizer};
use wbsn_isa::{DecodedImage, DecodedInstr, Instr, LinkedImage, MemClass, IM_WORDS};

use crate::adc::Adc;
use crate::atu::{Atu, DmTarget};
use crate::config::{InterconnectKind, PlatformConfig};
use crate::cpu::{Core, MemIntent, Retire};
use crate::error::{Fault, FaultKind, SimError};
use crate::memory::{DataMemory, InstrMemory};
use crate::mmio::MmioReg;
#[cfg(feature = "obs")]
use crate::obs::ObsConfig;
use crate::obs::{Obs, StallCause};
use crate::stats::SimStats;
use crate::trace::{StallRecord, TraceEvent, Tracer};
use crate::watchdog::{CoreDump, PhaseAttribution, PointDump, PostMortem, WatchdogTrip};
use crate::xbar::{arbitrate_into, Grant, Request};

/// Why a [`Platform::run`] call returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunExit {
    /// Every core executed `HALT`.
    AllHalted,
    /// All remaining cores are clock-gated and no further event (ADC
    /// sample or synchronization) can ever wake them — the workload is
    /// finished.
    Quiescent,
    /// The cycle budget was exhausted first.
    CycleLimit,
    /// A core reached a breakpoint (the instruction at that address has
    /// not executed yet).
    Breakpoint {
        /// The stopped core.
        core: usize,
        /// The breakpoint address.
        pc: u32,
    },
    /// A watched data address was written.
    Watchpoint {
        /// The writing core.
        core: usize,
        /// The watched (core-visible) address.
        addr: u32,
    },
}

#[derive(Debug)]
struct Slot {
    core: Core,
    /// Fetched (predecoded) instruction waiting to execute (set while
    /// stalled on hazards or data-memory arbitration).
    held: Option<DecodedInstr>,
    /// The next cycle is a taken-branch fetch bubble.
    bubble: bool,
    /// The core participates in the workload (an entry point was linked).
    present: bool,
}

/// What a held instruction resolved to this cycle.
#[derive(Debug, Clone, Copy)]
enum Ready {
    NoMem,
    Load(u16),
    Store,
}

/// Per-cycle work buffers, reused across [`Platform::step`] calls so the
/// hot loop performs no heap allocation once warmed up.
#[derive(Debug, Default)]
struct StepScratch {
    fetch_reqs: Vec<Request>,
    fetch_grants: Vec<Grant>,
    ready: Vec<(usize, Ready)>,
    dm_reqs: Vec<Request>,
    dm_meta: Vec<(usize, DmTarget, Option<u16>)>,
    dm_grants: Vec<Grant>,
}

/// The simulated WBSN platform.
///
/// See the [crate-level example](crate) for the typical
/// assemble–link–run flow.
#[derive(Debug)]
pub struct Platform {
    config: PlatformConfig,
    atu: Atu,
    im: InstrMemory,
    decoded: DecodedImage,
    dm: DataMemory,
    slots: Vec<Slot>,
    scratch: StepScratch,
    /// Re-decode the binary word on every fetch instead of using the
    /// predecoded image — the differential oracle for the fast path.
    #[cfg(any(test, feature = "slow-decode"))]
    slow_decode: bool,
    synchronizer: Synchronizer,
    adc: Adc,
    stats: SimStats,
    tracer: Option<Tracer>,
    /// Observability recorder; a disabled handle is a `None` check per
    /// hook (and a no-op stub without the `obs` feature).
    obs: Obs,
    breakpoints: Vec<u32>,
    watchpoints: Vec<u32>,
    watch_hit: Option<(usize, u32)>,
    /// Stall budget in cycles; `None` disables the watchdog.
    watchdog: Option<u64>,
    /// Last cycle at which progress (an instruction retirement or an
    /// accounted idle skip) was observed.
    last_progress_cycle: u64,
    /// Total retired instructions at the last progress observation.
    last_instr_total: u64,
    /// Number of present cores (fixed at construction).
    live_count: usize,
    /// Present cores that have executed `HALT` (halting is sticky).
    halted_count: usize,
    /// Running total of retired instructions across all cores, kept
    /// incrementally so the watchdog check is O(1) per cycle.
    instr_retired: u64,
    /// The platform may have just become fully idle: set when a core
    /// sleeps or halts, cleared when an idleness check fails. Lets the
    /// run loop skip the per-cycle idleness scan in the common case.
    idle_candidate: bool,
}

impl Platform {
    /// Builds a platform from a configuration and a linked image.
    ///
    /// Cores without a linked entry point are treated as absent (they
    /// never clock). Initial data-memory segments are loaded through
    /// core 0's address map.
    ///
    /// # Errors
    ///
    /// Returns configuration errors, faults for initial data falling into
    /// reserved regions, and synchronizer construction errors.
    pub fn new(config: PlatformConfig, image: &LinkedImage) -> Result<Platform, SimError> {
        config.validate()?;
        let flat = config.interconnect == InterconnectKind::Decoder;
        let atu = Atu::new(
            config.cores,
            config.shared_words,
            config.sync_base,
            config.sync_points,
            flat,
        );
        let im = InstrMemory::from_image(image.im_words());
        let decoded = DecodedImage::from_words(image.im_words());
        let mut dm = DataMemory::new();
        for (addr, word) in image.dm_init() {
            match atu.translate(0, addr) {
                Ok(DmTarget::Memory { location, .. }) => dm.write(location, word),
                _ => {
                    return Err(Fault {
                        core: 0,
                        pc: 0,
                        addr,
                        kind: FaultKind::DmOutOfRange,
                    }
                    .into())
                }
            }
        }
        let synchronizer = Synchronizer::new(config.cores, config.sync_points)?;
        let slots = (0..config.cores)
            .map(|id| {
                let entry = image.entry(id);
                let mut core = Core::new(id, entry.unwrap_or(0));
                let present = entry.is_some();
                if !present {
                    // Absent cores stay permanently off.
                    core.set_gated(true);
                }
                Slot {
                    core,
                    held: None,
                    bubble: false,
                    present,
                }
            })
            .collect();
        let adc = Adc::new(config.adc, Vec::new());
        let stats = SimStats::new(config.cores);
        let live_count = (0..config.cores)
            .filter(|&id| image.entry(id).is_some())
            .count();
        Ok(Platform {
            config,
            atu,
            im,
            decoded,
            dm,
            slots,
            scratch: StepScratch::default(),
            #[cfg(any(test, feature = "slow-decode"))]
            slow_decode: false,
            synchronizer,
            adc,
            stats,
            tracer: None,
            obs: Obs::off(),
            breakpoints: Vec::new(),
            watchpoints: Vec::new(),
            watch_hit: None,
            watchdog: None,
            last_progress_cycle: 0,
            last_instr_total: 0,
            live_count,
            halted_count: 0,
            instr_retired: 0,
            // Checked (and cleared if false) on the first loop iteration.
            idle_candidate: true,
        })
    }

    /// Replaces the ADC sample streams (one per channel). Call before
    /// running.
    pub fn set_adc_streams(&mut self, streams: Vec<Vec<i16>>) {
        self.adc = Adc::new(self.config.adc, streams);
    }

    /// Preloads a synchronization point (a building directive).
    ///
    /// # Errors
    ///
    /// Returns an error for unknown points.
    pub fn preload_sync_point(
        &mut self,
        point: u16,
        count: u8,
        auto_reload: bool,
    ) -> Result<(), SimError> {
        self.synchronizer
            .preload(point, count, auto_reload)
            .map_err(SimError::from)
    }

    /// Configures a preloaded auto-reload barrier on a synchronization
    /// point (a building directive; see
    /// [`Synchronizer::preload_barrier`]).
    ///
    /// # Errors
    ///
    /// Returns an error for unknown points.
    pub fn preload_barrier(
        &mut self,
        point: u16,
        count: u8,
        participants: wbsn_core::CoreSet,
    ) -> Result<(), SimError> {
        self.synchronizer
            .preload_barrier(point, count, participants)
            .map_err(SimError::from)
    }

    /// Switches instruction fetch to the legacy decode-per-cycle path:
    /// every fetch re-decodes the 24-bit word from the instruction
    /// memory instead of using the image predecoded at load time.
    ///
    /// This is the differential oracle for the predecoded fast path —
    /// architectural state, statistics and traces must be identical
    /// either way. Only available in tests and under the `slow-decode`
    /// feature; production builds always use the fast path.
    #[cfg(any(test, feature = "slow-decode"))]
    pub fn set_slow_decode(&mut self, slow: bool) {
        self.slow_decode = slow;
    }

    /// Enables or disables the memory→execute forwarding path.
    ///
    /// With forwarding on, a consumer issued immediately after a load
    /// of one of its sources no longer pays the one-cycle load-use
    /// hazard stall. Defaults to off in both presets, matching the
    /// paper's pipeline.
    pub fn set_forwarding(&mut self, on: bool) {
        self.config.forwarding = on;
    }

    /// Enables retirement tracing: the last `capacity` retirements of
    /// the cores selected by `core_mask` (bit per core) are kept in a
    /// ring readable through [`Platform::trace`].
    pub fn enable_trace(&mut self, capacity: usize, core_mask: u8) {
        self.tracer = Some(Tracer::new(capacity, core_mask));
    }

    /// The retirement trace, if tracing was enabled.
    pub fn trace(&self) -> Option<&Tracer> {
        self.tracer.as_ref()
    }

    /// Attaches an observability recorder: from the next cycle on, the
    /// platform emits the typed event stream (synchronizer, power,
    /// phase, ADC, stall runs) into the sinks selected by `config`.
    ///
    /// Call [`Platform::finish_obs`] after the last cycle to flush open
    /// stall runs and gated intervals before reading results.
    #[cfg(feature = "obs")]
    pub fn enable_obs(&mut self, config: ObsConfig) {
        self.obs.enable(self.config.cores, config);
    }

    /// The observability handle (disabled unless
    /// [`Platform::enable_obs`] was called; always inert without the
    /// `obs` feature).
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// The observability handle, mutable (for attaching custom sinks).
    pub fn obs_mut(&mut self) -> &mut Obs {
        &mut self.obs
    }

    /// Ends the observation: flushes open stall runs, attributes open
    /// gated intervals, and lets sinks close open timeline slices.
    /// Idempotent; a no-op when observability is disabled.
    pub fn finish_obs(&mut self) {
        self.obs.finish(self.stats.cycles);
    }

    /// Adds an instruction breakpoint: [`Platform::run`] stops with
    /// [`RunExit::Breakpoint`] when any core is about to execute `pc`.
    pub fn add_breakpoint(&mut self, pc: u32) {
        if !self.breakpoints.contains(&pc) {
            self.breakpoints.push(pc);
        }
    }

    /// Adds a data watchpoint: [`Platform::run`] stops with
    /// [`RunExit::Watchpoint`] after any core writes the (core-visible)
    /// address.
    pub fn add_watchpoint(&mut self, addr: u32) {
        if !self.watchpoints.contains(&addr) {
            self.watchpoints.push(addr);
        }
    }

    /// Arms the runtime watchdog: [`Platform::run`] returns
    /// [`SimError::Watchdog`] with a [`PostMortem`] instead of exiting
    /// [`RunExit::Quiescent`] when gated cores wait on synchronization
    /// points that can never fire, and instead of spinning when no
    /// instruction retires for `stall_cycles` cycles.
    ///
    /// The watchdog is off by default so that workloads ending in an
    /// intentional final sleep keep their quiescent exit.
    pub fn set_watchdog(&mut self, stall_cycles: u64) {
        self.watchdog = Some(stall_cycles.max(1));
        self.last_progress_cycle = self.stats.cycles;
        self.last_instr_total = self.instr_retired;
    }

    /// Present, unhalted, gated cores that are flagged in at least one
    /// synchronization point — cores expecting a wake.
    fn sync_waiters(&self) -> Vec<usize> {
        let mut flagged = wbsn_core::CoreSet::empty();
        for point in 0..self.config.sync_points as u16 {
            if let Ok(value) = self.synchronizer.point_value(point) {
                flagged = flagged.union(value.flags());
            }
        }
        self.slots
            .iter()
            .enumerate()
            .filter(|(idx, slot)| {
                slot.present
                    && !slot.core.is_halted()
                    && slot.core.is_gated()
                    && CoreId::new(*idx).is_ok_and(|c| flagged.contains(c))
            })
            .map(|(idx, _)| idx)
            .collect()
    }

    /// Captures the platform state for a watchdog report.
    fn post_mortem(&self, trip: WatchdogTrip) -> PostMortem {
        let cores = self
            .slots
            .iter()
            .enumerate()
            .map(|(idx, slot)| CoreDump {
                core: idx,
                pc: slot.core.pc(),
                halted: slot.core.is_halted(),
                gated: slot.core.is_gated(),
                present: slot.present,
            })
            .collect();
        let points = (0..self.config.sync_points as u16)
            .map(|point| PointDump {
                point,
                value: self
                    .synchronizer
                    .point_value(point)
                    .expect("configured point"),
                armed: self
                    .synchronizer
                    .point_armed(point)
                    .expect("configured point"),
            })
            .collect();
        let trace_tail = self
            .tracer
            .as_ref()
            .map(|t| t.events().copied().collect())
            .unwrap_or_default();
        let (obs_tail, phase_profile) = self.obs_post_mortem();
        PostMortem {
            cycle: self.stats.cycles,
            trip,
            cores,
            points,
            trace_tail,
            obs_tail,
            phase_profile,
        }
    }

    /// The observability half of a post-mortem: the rendered tail of the
    /// event ring and the per-(core, phase) attribution, when a recorder
    /// with those sinks is attached.
    #[cfg(feature = "obs")]
    fn obs_post_mortem(&self) -> (Vec<String>, Vec<PhaseAttribution>) {
        let Some(recorder) = self.obs.recorder() else {
            return (Vec::new(), Vec::new());
        };
        let obs_tail = recorder.tail_rendered(16);
        let phase_profile = recorder
            .profiler()
            .map(|profiler| {
                profiler
                    .rows()
                    .into_iter()
                    .map(|row| PhaseAttribution {
                        core: row.core,
                        phase: row.phase,
                        active_cycles: row.counters.active_cycles,
                        instructions: row.counters.instructions,
                    })
                    .collect()
            })
            .unwrap_or_default();
        (obs_tail, phase_profile)
    }

    #[cfg(not(feature = "obs"))]
    fn obs_post_mortem(&self) -> (Vec<String>, Vec<PhaseAttribution>) {
        (Vec::new(), Vec::new())
    }

    /// The accumulated statistics.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// The synchronizer (for inspection in tests and harnesses).
    pub fn synchronizer(&self) -> &Synchronizer {
        &self.synchronizer
    }

    /// The platform configuration.
    pub fn config(&self) -> &PlatformConfig {
        &self.config
    }

    /// A core's architectural state.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn core(&self, core: usize) -> &Core {
        &self.slots[core].core
    }

    /// ADC overruns observed so far.
    pub fn adc_overruns(&self) -> u64 {
        self.adc.overruns()
    }

    /// Reads a data word through core 0's address map (test/harness
    /// convenience).
    ///
    /// # Errors
    ///
    /// Returns a fault for untranslatable addresses.
    pub fn peek_dm(&self, addr: u32) -> Result<u16, SimError> {
        self.peek_dm_for_core(0, addr)
    }

    /// Reads a data word through `core`'s address map.
    ///
    /// # Errors
    ///
    /// Returns a fault for untranslatable addresses.
    pub fn peek_dm_for_core(&self, core: usize, addr: u32) -> Result<u16, SimError> {
        match self.atu.translate(core, addr) {
            Ok(DmTarget::Memory { location, .. }) => Ok(self.dm.read(location)),
            Ok(DmTarget::SyncPoint(p)) => Ok(self
                .synchronizer
                .point_value(p)
                .map(|v| v.to_word())
                .map_err(SimError::from)?),
            Ok(DmTarget::Mmio(_)) => Ok(0),
            Err(kind) => Err(Fault {
                core,
                pc: self.slots[core].core.pc(),
                addr,
                kind,
            }
            .into()),
        }
    }

    /// Writes a data word through `core`'s address map (loader/test
    /// convenience).
    ///
    /// # Errors
    ///
    /// Returns a fault for untranslatable or reserved addresses.
    pub fn poke_dm_for_core(&mut self, core: usize, addr: u32, value: u16) -> Result<(), SimError> {
        match self.atu.translate(core, addr) {
            Ok(DmTarget::Memory { location, .. }) => {
                self.dm.write(location, value);
                Ok(())
            }
            Ok(_) => Err(Fault {
                core,
                pc: 0,
                addr,
                kind: FaultKind::WriteToSyncRegion,
            }
            .into()),
            Err(kind) => Err(Fault {
                core,
                pc: 0,
                addr,
                kind,
            }
            .into()),
        }
    }

    /// Runs until every core halts, the platform becomes quiescent, or
    /// `max_cycles` elapse.
    ///
    /// When every live core is clock-gated, the loop fast-forwards to the
    /// next ADC event instead of stepping empty cycles, charging the
    /// skipped time to the gated counters — this is what makes minutes of
    /// simulated bio-signal time affordable.
    ///
    /// # Errors
    ///
    /// Returns the first fault or synchronization protocol violation.
    pub fn run(&mut self, max_cycles: u64) -> Result<RunExit, SimError> {
        while self.stats.cycles < max_cycles {
            if self.halted_count == self.live_count {
                debug_assert!(self.all_halted());
                return Ok(RunExit::AllHalted);
            }
            if !self.breakpoints.is_empty() {
                for slot in &self.slots {
                    if slot.present
                        && !slot.core.is_halted()
                        && !slot.core.is_gated()
                        && slot.held.is_none()
                        && self.breakpoints.contains(&slot.core.pc())
                    {
                        return Ok(RunExit::Breakpoint {
                            core: slot.core.id(),
                            pc: slot.core.pc(),
                        });
                    }
                }
            }
            // Idleness can only begin on a cycle in which a core slept or
            // halted; `idle_candidate` tracks that so the scan is skipped
            // while cores are running.
            if self.idle_candidate && !self.all_idle() {
                self.idle_candidate = false;
            }
            if self.idle_candidate {
                match self.adc.next_tick() {
                    Some(tick) if tick < max_cycles => {
                        let now = self.stats.cycles;
                        if tick > now {
                            let skip = tick - now;
                            for slot in &mut self.slots {
                                if slot.present && !slot.core.is_halted() {
                                    self.stats.cores[slot.core.id()].gated_cycles += skip;
                                }
                            }
                            self.stats.cycles = tick;
                            // An accounted idle skip is progress, not a
                            // stall.
                            self.last_progress_cycle = self.stats.cycles;
                        }
                    }
                    _ => {
                        if self.watchdog.is_some() {
                            let waiting = self.sync_waiters();
                            if !waiting.is_empty() {
                                return Err(SimError::Watchdog(Box::new(
                                    self.post_mortem(WatchdogTrip::Deadlock { waiting }),
                                )));
                            }
                        }
                        return Ok(RunExit::Quiescent);
                    }
                }
            }
            self.step()?;
            if let Some((core, addr)) = self.watch_hit.take() {
                return Ok(RunExit::Watchpoint { core, addr });
            }
            if let Some(budget) = self.watchdog {
                let instr_total = self.instr_retired;
                if instr_total != self.last_instr_total {
                    self.last_instr_total = instr_total;
                    self.last_progress_cycle = self.stats.cycles;
                } else if self.stats.cycles - self.last_progress_cycle > budget {
                    return Err(SimError::Watchdog(Box::new(
                        self.post_mortem(WatchdogTrip::Stall { budget }),
                    )));
                }
            }
        }
        Ok(RunExit::CycleLimit)
    }

    fn all_halted(&self) -> bool {
        self.slots.iter().all(|s| !s.present || s.core.is_halted())
    }

    fn all_idle(&self) -> bool {
        self.slots.iter().all(|s| {
            !s.present || s.core.is_halted() || (s.core.is_gated() && s.held.is_none() && !s.bubble)
        })
    }

    /// Advances the platform clock to `target` with every live core
    /// clock-gated — used by harnesses to account a fixed wall-clock
    /// observation window after the workload quiesces (leakage and the
    /// clock trunk keep accruing).
    pub fn idle_until(&mut self, target: u64) {
        if target <= self.stats.cycles {
            return;
        }
        let skip = target - self.stats.cycles;
        for slot in &self.slots {
            if slot.present && !slot.core.is_halted() {
                self.stats.cores[slot.core.id()].gated_cycles += skip;
            }
        }
        self.stats.cycles = target;
    }

    /// Executes exactly one cycle.
    ///
    /// # Errors
    ///
    /// Returns the first fault or synchronization protocol violation.
    pub fn step(&mut self) -> Result<(), SimError> {
        if self.slots.len() == 1 {
            return self.step_one();
        }
        let cycle = self.stats.cycles;
        let crossbar = self.config.interconnect == InterconnectKind::Crossbar;
        // 1. ADC sampling and interrupt forwarding.
        let irq_mask = self.adc.tick(cycle);
        if irq_mask != 0 {
            self.stats.adc_samples += 1;
            self.obs.adc_sample(cycle, irq_mask);
            for source in 0..16 {
                if irq_mask & (1 << source) != 0 {
                    self.synchronizer.raise_irq(source);
                }
            }
            // Close the real-time accounting window.
            for cs in &mut self.stats.cores {
                cs.max_window_active = cs.max_window_active.max(cs.window_active);
                cs.window_active = 0;
            }
            // Overruns only advance when a sample latches, so the
            // snapshot is refreshed here rather than every cycle.
            self.stats.adc_overruns = self.adc.overruns();
        }

        // 2. Cycle accounting and fetch requests.
        self.scratch.fetch_reqs.clear();
        for (idx, slot) in self.slots.iter_mut().enumerate() {
            if !slot.present || slot.core.is_halted() {
                continue;
            }
            let cs = &mut self.stats.cores[idx];
            if slot.core.is_gated() {
                cs.gated_cycles += 1;
                continue;
            }
            cs.active_cycles += 1;
            cs.window_active += 1;
            self.obs.active_cycle(cycle, idx, slot.core.pc());
            if slot.bubble {
                slot.bubble = false;
                cs.bubbles += 1;
                self.obs.bubble(cycle, idx);
                continue;
            }
            if slot.held.is_some() {
                continue;
            }
            let pc = slot.core.pc();
            if pc as usize >= IM_WORDS {
                return Err(Fault {
                    core: idx,
                    pc,
                    addr: pc,
                    kind: FaultKind::ImOutOfRange,
                }
                .into());
            }
            self.scratch.fetch_reqs.push(Request {
                core: idx,
                bank: InstrMemory::bank_of(pc),
                addr: pc,
                write: false,
            });
        }

        // 3. Instruction-side arbitration (a decoder never conflicts).
        if crossbar {
            arbitrate_into(
                &self.scratch.fetch_reqs,
                cycle as usize,
                self.config.broadcast,
                &mut self.scratch.fetch_grants,
            );
        } else {
            self.scratch.fetch_grants.clear();
            self.scratch
                .fetch_grants
                .resize(self.scratch.fetch_reqs.len(), Grant::Access);
        }
        for req_idx in 0..self.scratch.fetch_grants.len() {
            let grant = self.scratch.fetch_grants[req_idx];
            let slot_idx = self.scratch.fetch_reqs[req_idx].core;
            let pc = self.scratch.fetch_reqs[req_idx].addr;
            match grant {
                Grant::Access | Grant::Broadcast => {
                    if grant == Grant::Access {
                        self.stats.im.reads[self.scratch.fetch_reqs[req_idx].bank] += 1;
                    } else {
                        self.stats.im.broadcasts += 1;
                    }
                    if crossbar {
                        self.stats.xbar_im += 1;
                    }
                    let decoded = self.fetch_decoded(pc);
                    let instr = decoded.ok_or(SimError::Fault(Fault {
                        core: slot_idx,
                        pc,
                        addr: pc,
                        kind: FaultKind::BadInstruction,
                    }))?;
                    debug_assert!(self.im.fetch(pc).is_some());
                    self.obs
                        .im_access(cycle, self.scratch.fetch_reqs[req_idx].bank);
                    self.slots[slot_idx].held = Some(instr);
                }
                Grant::Stall => {
                    self.stats.im.conflicts += 1;
                    self.stats.cores[slot_idx].stall_im += 1;
                    // The dead fetch cycle covers the load latency: the
                    // eventual consumer is no longer the immediately next
                    // issue slot, so a surviving hazard latch must not
                    // charge a phantom stall on top of the IM stall.
                    self.slots[slot_idx].core.clear_hazard();
                    self.obs.stall(cycle, slot_idx, StallCause::ImConflict);
                    if let Some(tracer) = &mut self.tracer {
                        tracer.record_stall(StallRecord {
                            cycle,
                            core: slot_idx,
                            pc,
                            cause: StallCause::ImConflict,
                        });
                    }
                }
            }
        }

        // 4. Hazards and memory intents for every held instruction.
        self.scratch.ready.clear();
        self.scratch.dm_reqs.clear();
        self.scratch.dm_meta.clear();
        for idx in 0..self.slots.len() {
            let slot = &mut self.slots[idx];
            if !slot.present || slot.core.is_halted() || slot.core.is_gated() || slot.bubble {
                continue;
            }
            let Some(decoded) = slot.held else { continue };
            if !self.config.forwarding && slot.core.has_load_use_hazard_mask(decoded.src_mask) {
                slot.core.clear_hazard();
                let pc = slot.core.pc();
                self.stats.cores[idx].stall_hazard += 1;
                self.obs.stall(cycle, idx, StallCause::LoadUseHazard);
                if let Some(tracer) = &mut self.tracer {
                    tracer.record_stall(StallRecord {
                        cycle,
                        core: idx,
                        pc,
                        cause: StallCause::LoadUseHazard,
                    });
                }
                continue;
            }
            if decoded.mem == MemClass::None {
                self.scratch.ready.push((idx, Ready::NoMem));
                continue;
            }
            let intent = slot
                .core
                .mem_intent(&decoded.instr)
                .expect("memory class implies an intent");
            let (addr, store) = match intent {
                MemIntent::Load { addr } => (addr, None),
                MemIntent::Store { addr, value } => (addr, Some(value)),
            };
            let target = self.atu.translate(idx, addr).map_err(|kind| -> SimError {
                Fault {
                    core: idx,
                    pc: slot.core.pc(),
                    addr,
                    kind,
                }
                .into()
            })?;
            match target {
                DmTarget::Memory { location, .. } => {
                    self.scratch.dm_reqs.push(Request {
                        core: idx,
                        bank: location.bank,
                        addr,
                        write: store.is_some(),
                    });
                    self.scratch.dm_meta.push((idx, target, store));
                }
                DmTarget::SyncPoint(point) => {
                    if store.is_some() {
                        return Err(Fault {
                            core: idx,
                            pc: slot.core.pc(),
                            addr,
                            kind: FaultKind::WriteToSyncRegion,
                        }
                        .into());
                    }
                    let word = self.synchronizer.point_value(point)?.to_word();
                    self.stats.sync_region_reads += 1;
                    self.scratch.ready.push((idx, Ready::Load(word)));
                }
                DmTarget::Mmio(mmio_addr) => {
                    let value = self.access_mmio(idx, mmio_addr, store)?;
                    match store {
                        Some(_) => self.scratch.ready.push((idx, Ready::Store)),
                        None => self.scratch.ready.push((idx, Ready::Load(value))),
                    }
                }
            }
        }

        // 5. Data-side arbitration and physical accesses.
        if crossbar {
            arbitrate_into(
                &self.scratch.dm_reqs,
                cycle as usize,
                self.config.broadcast,
                &mut self.scratch.dm_grants,
            );
        } else {
            self.scratch.dm_grants.clear();
            self.scratch
                .dm_grants
                .resize(self.scratch.dm_reqs.len(), Grant::Access);
        }
        // Broadcast loads observe the winner's value; resolve accesses in
        // grant order: all reads of one address see the pre-write value
        // only if no write won — writes and reads of the same address
        // never both win in one cycle, so read-after-write hazards within
        // a cycle cannot occur.
        for i in 0..self.scratch.dm_grants.len() {
            let grant = self.scratch.dm_grants[i];
            let (slot_idx, target, store) = self.scratch.dm_meta[i];
            let DmTarget::Memory { location, .. } = target else {
                unreachable!("only banked targets are arbitrated");
            };
            match grant {
                Grant::Access => {
                    if crossbar {
                        self.stats.xbar_dm += 1;
                    }
                    self.obs.dm_access(cycle, location.bank);
                    match store {
                        Some(value) => {
                            self.stats.dm.writes[location.bank] += 1;
                            self.dm.write(location, value);
                            if !self.watchpoints.is_empty() {
                                let addr = self.scratch.dm_reqs[i].addr;
                                if self.watchpoints.contains(&addr) {
                                    self.watch_hit = Some((slot_idx, addr));
                                }
                            }
                            self.scratch.ready.push((slot_idx, Ready::Store));
                        }
                        None => {
                            self.stats.dm.reads[location.bank] += 1;
                            self.scratch
                                .ready
                                .push((slot_idx, Ready::Load(self.dm.read(location))));
                        }
                    }
                }
                Grant::Broadcast => {
                    if crossbar {
                        self.stats.xbar_dm += 1;
                    }
                    self.stats.dm.broadcasts += 1;
                    self.obs.dm_access(cycle, location.bank);
                    self.scratch
                        .ready
                        .push((slot_idx, Ready::Load(self.dm.read(location))));
                }
                Grant::Stall => {
                    self.stats.dm.conflicts += 1;
                    self.stats.cores[slot_idx].stall_dm += 1;
                    self.obs.stall(cycle, slot_idx, StallCause::DmConflict);
                    if let Some(tracer) = &mut self.tracer {
                        tracer.record_stall(StallRecord {
                            cycle,
                            core: slot_idx,
                            pc: self.slots[slot_idx].core.pc(),
                            cause: StallCause::DmConflict,
                        });
                    }
                }
            }
        }

        // 6. Retirement.
        for i in 0..self.scratch.ready.len() {
            let (slot_idx, r) = self.scratch.ready[i];
            let slot = &mut self.slots[slot_idx];
            let decoded = slot.held.take().expect("ready instructions were held");
            let instr = decoded.instr;
            let load_value = match r {
                Ready::Load(v) => Some(v),
                _ => None,
            };
            self.stats.cores[slot_idx].instructions += 1;
            self.instr_retired += 1;
            self.obs.retire(cycle, slot_idx);
            match instr {
                Instr::Sync { kind, point } => {
                    self.stats.cores[slot_idx].sync_ops += 1;
                    self.obs.sync_op(cycle, slot_idx, kind, point);
                }
                Instr::Sleep => {
                    self.stats.cores[slot_idx].sleeps += 1;
                    self.obs.sleep_op(cycle, slot_idx);
                }
                _ => {}
            }
            if let Some(tracer) = &mut self.tracer {
                tracer.record(TraceEvent {
                    cycle,
                    core: slot_idx,
                    pc: slot.core.pc(),
                    instr,
                });
            }
            match slot.core.retire(instr, load_value) {
                Retire::Next => {}
                Retire::Halt => {
                    self.halted_count += 1;
                    self.idle_candidate = true;
                }
                Retire::Taken => slot.bubble = true,
                Retire::Sync { kind, point } => {
                    self.synchronizer
                        .submit_op(CoreId::new(slot_idx)?, kind, point)?;
                }
                Retire::Sleep => {
                    self.synchronizer.request_sleep(CoreId::new(slot_idx)?);
                }
            }
        }

        // 7. Synchronizer commit: gating and wake-up.
        let outcome = self.synchronizer.commit()?;
        self.obs.sync_outcome(cycle, &outcome);
        self.stats.sync_region_writes += outcome.memory_writes as u64;
        if !outcome.slept.is_empty() {
            self.idle_candidate = true;
        }
        for core in outcome.slept.iter() {
            self.slots[core.index()].core.set_gated(true);
        }
        for core in outcome.woken.iter() {
            let slot = &mut self.slots[core.index()];
            slot.core.set_gated(false);
            // Invariant guard: a load retired just before a sleep must
            // not charge the first post-wake instruction a hazard stall.
            slot.core.clear_hazard();
        }

        self.stats.cycles += 1;
        Ok(())
    }

    /// Single-slot specialization of [`Platform::step`]: with one core
    /// there is never an arbitration conflict, so the request/grant
    /// machinery and its scratch buffers collapse into straight-line
    /// code. Every stat and fault must mirror the general path exactly —
    /// the differential oracle tests compare the two cycle for cycle.
    fn step_one(&mut self) -> Result<(), SimError> {
        let cycle = self.stats.cycles;
        let crossbar = self.config.interconnect == InterconnectKind::Crossbar;

        // ADC sampling and interrupt forwarding.
        let irq_mask = self.adc.tick(cycle);
        if irq_mask != 0 {
            self.stats.adc_samples += 1;
            self.obs.adc_sample(cycle, irq_mask);
            for source in 0..16 {
                if irq_mask & (1 << source) != 0 {
                    self.synchronizer.raise_irq(source);
                }
            }
            let cs = &mut self.stats.cores[0];
            cs.max_window_active = cs.max_window_active.max(cs.window_active);
            cs.window_active = 0;
            self.stats.adc_overruns = self.adc.overruns();
        }

        'exec: {
            // Cycle accounting and fetch.
            if !self.slots[0].present || self.slots[0].core.is_halted() {
                break 'exec;
            }
            if self.slots[0].core.is_gated() {
                self.stats.cores[0].gated_cycles += 1;
                break 'exec;
            }
            {
                let cs = &mut self.stats.cores[0];
                cs.active_cycles += 1;
                cs.window_active += 1;
            }
            self.obs.active_cycle(cycle, 0, self.slots[0].core.pc());
            if self.slots[0].bubble {
                self.slots[0].bubble = false;
                self.stats.cores[0].bubbles += 1;
                self.obs.bubble(cycle, 0);
                break 'exec;
            }
            if self.slots[0].held.is_none() {
                let pc = self.slots[0].core.pc();
                if pc as usize >= IM_WORDS {
                    return Err(Fault {
                        core: 0,
                        pc,
                        addr: pc,
                        kind: FaultKind::ImOutOfRange,
                    }
                    .into());
                }
                // A lone fetch always wins its bank.
                self.stats.im.reads[InstrMemory::bank_of(pc)] += 1;
                self.obs.im_access(cycle, InstrMemory::bank_of(pc));
                if crossbar {
                    self.stats.xbar_im += 1;
                }
                let decoded = self.fetch_decoded(pc).ok_or(SimError::Fault(Fault {
                    core: 0,
                    pc,
                    addr: pc,
                    kind: FaultKind::BadInstruction,
                }))?;
                self.slots[0].held = Some(decoded);
            }

            // Hazard check and memory resolution.
            let decoded = self.slots[0].held.expect("fetched or previously held");
            if !self.config.forwarding
                && self.slots[0]
                    .core
                    .has_load_use_hazard_mask(decoded.src_mask)
            {
                self.slots[0].core.clear_hazard();
                let pc = self.slots[0].core.pc();
                self.stats.cores[0].stall_hazard += 1;
                self.obs.stall(cycle, 0, StallCause::LoadUseHazard);
                if let Some(tracer) = &mut self.tracer {
                    tracer.record_stall(StallRecord {
                        cycle,
                        core: 0,
                        pc,
                        cause: StallCause::LoadUseHazard,
                    });
                }
                break 'exec;
            }
            let ready = if decoded.mem == MemClass::None {
                Ready::NoMem
            } else {
                let intent = self.slots[0]
                    .core
                    .mem_intent(&decoded.instr)
                    .expect("memory class implies an intent");
                let (addr, store) = match intent {
                    MemIntent::Load { addr } => (addr, None),
                    MemIntent::Store { addr, value } => (addr, Some(value)),
                };
                let target = self.atu.translate(0, addr).map_err(|kind| -> SimError {
                    Fault {
                        core: 0,
                        pc: self.slots[0].core.pc(),
                        addr,
                        kind,
                    }
                    .into()
                })?;
                match target {
                    // A lone request always wins arbitration.
                    DmTarget::Memory { location, .. } => {
                        if crossbar {
                            self.stats.xbar_dm += 1;
                        }
                        self.obs.dm_access(cycle, location.bank);
                        match store {
                            Some(value) => {
                                self.stats.dm.writes[location.bank] += 1;
                                self.dm.write(location, value);
                                if !self.watchpoints.is_empty() && self.watchpoints.contains(&addr)
                                {
                                    self.watch_hit = Some((0, addr));
                                }
                                Ready::Store
                            }
                            None => {
                                self.stats.dm.reads[location.bank] += 1;
                                Ready::Load(self.dm.read(location))
                            }
                        }
                    }
                    DmTarget::SyncPoint(point) => {
                        if store.is_some() {
                            return Err(Fault {
                                core: 0,
                                pc: self.slots[0].core.pc(),
                                addr,
                                kind: FaultKind::WriteToSyncRegion,
                            }
                            .into());
                        }
                        let word = self.synchronizer.point_value(point)?.to_word();
                        self.stats.sync_region_reads += 1;
                        Ready::Load(word)
                    }
                    DmTarget::Mmio(mmio_addr) => {
                        let value = self.access_mmio(0, mmio_addr, store)?;
                        match store {
                            Some(_) => Ready::Store,
                            None => Ready::Load(value),
                        }
                    }
                }
            };

            // Retirement.
            let decoded = self.slots[0]
                .held
                .take()
                .expect("ready instruction was held");
            let instr = decoded.instr;
            let load_value = match ready {
                Ready::Load(v) => Some(v),
                _ => None,
            };
            self.stats.cores[0].instructions += 1;
            self.instr_retired += 1;
            self.obs.retire(cycle, 0);
            match instr {
                Instr::Sync { kind, point } => {
                    self.stats.cores[0].sync_ops += 1;
                    self.obs.sync_op(cycle, 0, kind, point);
                }
                Instr::Sleep => {
                    self.stats.cores[0].sleeps += 1;
                    self.obs.sleep_op(cycle, 0);
                }
                _ => {}
            }
            if let Some(tracer) = &mut self.tracer {
                tracer.record(TraceEvent {
                    cycle,
                    core: 0,
                    pc: self.slots[0].core.pc(),
                    instr,
                });
            }
            match self.slots[0].core.retire(instr, load_value) {
                Retire::Next => {}
                Retire::Halt => {
                    self.halted_count += 1;
                    self.idle_candidate = true;
                }
                Retire::Taken => self.slots[0].bubble = true,
                Retire::Sync { kind, point } => {
                    self.synchronizer.submit_op(CoreId::new(0)?, kind, point)?;
                }
                Retire::Sleep => {
                    self.synchronizer.request_sleep(CoreId::new(0)?);
                }
            }
        }

        // Synchronizer commit: gating and wake-up.
        let outcome = self.synchronizer.commit()?;
        self.obs.sync_outcome(cycle, &outcome);
        self.stats.sync_region_writes += outcome.memory_writes as u64;
        if !outcome.slept.is_empty() {
            self.idle_candidate = true;
        }
        for core in outcome.slept.iter() {
            self.slots[core.index()].core.set_gated(true);
        }
        for core in outcome.woken.iter() {
            let slot = &mut self.slots[core.index()];
            slot.core.set_gated(false);
            // Invariant guard, mirroring the multi-core path.
            slot.core.clear_hazard();
        }

        self.stats.cycles += 1;
        Ok(())
    }

    /// Resolves the instruction at `pc`: predecoded fast path by
    /// default, decode-per-cycle when the oracle path is selected.
    #[inline]
    fn fetch_decoded(&self, pc: u32) -> Option<DecodedInstr> {
        #[cfg(any(test, feature = "slow-decode"))]
        if self.slow_decode {
            return self
                .im
                .fetch(pc)
                .and_then(|w| Instr::decode(w).ok())
                .map(DecodedInstr::new);
        }
        self.decoded.get(pc).copied()
    }

    fn access_mmio(&mut self, core: usize, addr: u32, store: Option<u16>) -> Result<u16, SimError> {
        let pc = self.slots[core].core.pc();
        let fault = |kind: FaultKind| -> SimError {
            Fault {
                core,
                pc,
                addr,
                kind,
            }
            .into()
        };
        let reg = MmioReg::decode(addr).ok_or_else(|| fault(FaultKind::MmioUnmapped))?;
        match store {
            Some(value) => {
                self.stats.mmio_writes += 1;
                match reg {
                    MmioReg::Subscribe => {
                        self.synchronizer.subscribe(CoreId::new(core)?, value)?;
                        Ok(0)
                    }
                    _ => Err(fault(FaultKind::MmioReadOnly)),
                }
            }
            None => {
                self.stats.mmio_reads += 1;
                match reg {
                    MmioReg::AdcData(ch) => Ok(self.adc.read_data(ch)),
                    MmioReg::AdcSeq(ch) => Ok(self.adc.read_seq(ch)),
                    MmioReg::Subscription => Ok(self.synchronizer.subscription(CoreId::new(core)?)),
                    MmioReg::CoreId => Ok(core as u16),
                    MmioReg::Subscribe => Ok(0),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wbsn_isa::{assemble_text, Linker, Section};

    fn single_core_platform(asm: &str) -> Platform {
        let program = assemble_text(asm).expect("test program assembles");
        let mut linker = Linker::new();
        linker.add_section(Section::new("main", program));
        linker.set_entry(0, "main");
        let image = linker.link().expect("test program links");
        Platform::new(PlatformConfig::single_core(), &image).expect("platform builds")
    }

    #[test]
    fn arithmetic_program_produces_result() {
        let mut p = single_core_platform(
            "li r1, 6\n\
             li r2, 7\n\
             mul r3, r1, r2\n\
             sw r3, 0x100(r0)\n\
             halt\n",
        );
        assert_eq!(p.run(1000).unwrap(), RunExit::AllHalted);
        assert_eq!(p.peek_dm(0x100).unwrap(), 42);
        assert_eq!(p.stats().cores[0].instructions, 5);
    }

    #[test]
    fn loop_timing_counts_bubbles() {
        // 4 iterations of a 2-instruction loop with a taken branch each
        // time except the last.
        let mut p = single_core_platform(
            "li r1, 4\n\
             loop: addi r1, r1, -1\n\
             bne r1, r0, loop\n\
             halt\n",
        );
        assert_eq!(p.run(1000).unwrap(), RunExit::AllHalted);
        let cs = &p.stats().cores[0];
        assert_eq!(cs.instructions, 1 + 4 * 2 + 1);
        assert_eq!(cs.bubbles, 3, "three taken branches");
    }

    #[test]
    fn load_use_hazard_costs_a_cycle() {
        let mut p = single_core_platform(
            "li r1, 0x40\n\
             sw r1, 0x40(r0)\n\
             lw r2, 0x40(r0)\n\
             add r3, r2, r2\n\
             halt\n",
        );
        assert_eq!(p.run(1000).unwrap(), RunExit::AllHalted);
        let cs = &p.stats().cores[0];
        assert_eq!(cs.stall_hazard, 1);
        assert_eq!(p.core(0).reg(wbsn_isa::Reg::R3), 0x80);
    }

    #[test]
    fn forwarding_waives_the_load_use_stall() {
        // Same program as `load_use_hazard_costs_a_cycle`, but with the
        // memory→execute bypass on: the back-to-back load-use pair must
        // cost no hazard stall and still compute the right value.
        let mut p = single_core_platform(
            "li r1, 0x40\n\
             sw r1, 0x40(r0)\n\
             lw r2, 0x40(r0)\n\
             add r3, r2, r2\n\
             halt\n",
        );
        p.set_forwarding(true);
        assert_eq!(p.run(1000).unwrap(), RunExit::AllHalted);
        let cs = &p.stats().cores[0];
        assert_eq!(cs.stall_hazard, 0);
        assert_eq!(p.core(0).reg(wbsn_isa::Reg::R3), 0x80);
    }

    #[test]
    fn im_conflict_between_load_and_consumer_charges_no_phantom_hazard() {
        // Core 1 shares IM bank 0 with core 0, which runs a long nop
        // sled and therefore fetches every cycle; the rotating arbiter
        // grants core 1 only one fetch in eight, so at least one
        // IM-conflict stall is guaranteed between core 1's `lw` and the
        // dependent `add`. That dead cycle already covers the load
        // latency, so a surviving hazard latch must not charge a stall
        // on top of the IM stall.
        let sled = "nop\n".repeat(120) + "halt\n";
        let hog = assemble_text(&sled).unwrap();
        let loaduse = assemble_text(
            "li r1, 0x2A\n\
             sw r1, 0x100(r0)\n\
             lw r2, 0x100(r0)\n\
             add r3, r2, r2\n\
             sw r3, 0x101(r0)\n\
             halt\n",
        )
        .unwrap();
        let mut linker = Linker::new();
        linker.add_section(Section::in_bank("hog", hog, 0));
        linker.add_section(Section::in_bank("loaduse", loaduse, 0));
        linker.set_entry(0, "hog");
        linker.set_entry(1, "loaduse");
        let image = linker.link().unwrap();
        let mut p = Platform::new(PlatformConfig::multi_core(), &image).unwrap();
        assert_eq!(p.run(10_000).unwrap(), RunExit::AllHalted);
        let cs = &p.stats().cores[1];
        assert!(cs.stall_im > 0, "the bank conflict must have happened");
        assert_eq!(
            cs.stall_hazard, 0,
            "the IM-stall dead cycle covers the load latency"
        );
        assert_eq!(p.peek_dm(0x101).unwrap(), 0x54);
    }

    #[test]
    fn taken_branch_squash_clears_the_hazard_latch() {
        // A jump right after the load: the consumer of the loaded
        // register issues after the taken-branch bubble, so the latch
        // set by the `lw` must not charge it a phantom hazard stall.
        let mut p = single_core_platform(
            "li r1, 7\n\
             sw r1, 0x40(r0)\n\
             lw r2, 0x40(r0)\n\
             jmp target\n\
             nop\n\
             target: add r3, r2, r2\n\
             sw r3, 0x41(r0)\n\
             halt\n",
        );
        assert_eq!(p.run(1000).unwrap(), RunExit::AllHalted);
        let cs = &p.stats().cores[0];
        assert_eq!(cs.stall_hazard, 0);
        assert_eq!(cs.bubbles, 1, "one taken jump");
        assert_eq!(p.peek_dm(0x41).unwrap(), 14);
    }

    #[test]
    fn wake_after_sleep_charges_no_phantom_hazard() {
        // Load, subscribe, sleep; the first instructions after the wake
        // consume the pre-sleep loaded register. Any latch surviving the
        // gated interval would charge a phantom stall here.
        let mut p = single_core_platform(
            "li r1, 9\n\
             sw r1, 0x40(r0)\n\
             li r1, 1\n\
             lui r2, 0x7F\n\
             ori r2, r2, 0x20\n\
             sw r1, 0(r2)\n\
             lw r4, 0x40(r0)\n\
             sleep\n\
             add r3, r4, r4\n\
             sw r3, 0x200(r0)\n\
             halt\n",
        );
        p.set_adc_streams(vec![vec![55]]);
        assert_eq!(p.run(100_000).unwrap(), RunExit::AllHalted);
        let cs = &p.stats().cores[0];
        assert!(cs.gated_cycles > 0, "core slept until the sample");
        assert_eq!(cs.stall_hazard, 0);
        assert_eq!(p.peek_dm(0x200).unwrap(), 18);
    }

    #[test]
    fn decoder_platform_counts_memory_accesses() {
        let mut p = single_core_platform(
            "li r1, 1\n\
             sw r1, 0x50(r0)\n\
             lw r2, 0x50(r0)\n\
             halt\n",
        );
        p.run(100).unwrap();
        assert_eq!(p.stats().dm.accesses(), 2);
        assert_eq!(p.stats().xbar_dm, 0, "decoders are not crossbars");
        assert!(p.stats().im.accesses() >= 4);
    }

    #[test]
    fn quiescent_exit_when_no_work_remains() {
        // Subscribe to nothing and sleep forever: with no ADC streams the
        // platform is immediately quiescent after the sleep.
        let mut p = single_core_platform("sleep\nhalt\n");
        assert_eq!(p.run(10_000).unwrap(), RunExit::Quiescent);
        assert!(p.stats().cycles < 100);
    }

    #[test]
    fn cycle_limit_exit() {
        let mut p = single_core_platform("loop: jmp loop\n");
        assert_eq!(p.run(500).unwrap(), RunExit::CycleLimit);
        assert!(p.stats().cycles >= 500);
    }

    #[test]
    fn adc_wakeup_flow() {
        // Subscribe to channel 0, sleep, then read data on wake.
        let mut p = single_core_platform(
            "li r1, 1\n\
             lui r2, 0x7F\n\
             ori r2, r2, 0x20\n\
             sw r1, 0(r2)\n\
             sleep\n\
             lui r3, 0x7F\n\
             lw r4, 0(r3)\n\
             sw r4, 0x200(r0)\n\
             halt\n",
        );
        p.set_adc_streams(vec![vec![1234]]);
        assert_eq!(p.run(100_000).unwrap(), RunExit::AllHalted);
        assert_eq!(p.peek_dm(0x200).unwrap(), 1234);
        assert_eq!(p.stats().adc_samples, 1);
        let cs = &p.stats().cores[0];
        assert!(cs.gated_cycles > 0, "core slept until the sample");
    }

    #[test]
    fn fault_on_store_to_sync_region() {
        let mut p = single_core_platform("li r1, 5\nsw r1, 0x10(r0)\nhalt\n");
        let err = p.run(100).unwrap_err();
        assert!(matches!(
            err,
            SimError::Fault(Fault {
                kind: FaultKind::WriteToSyncRegion,
                ..
            })
        ));
    }

    #[test]
    fn fault_on_unmapped_mmio() {
        let mut p = single_core_platform(
            "lui r2, 0x7F\n\
             ori r2, r2, 0xFF\n\
             lw r1, 0(r2)\n\
             halt\n",
        );
        let err = p.run(100).unwrap_err();
        assert!(matches!(
            err,
            SimError::Fault(Fault {
                kind: FaultKind::MmioUnmapped,
                ..
            })
        ));
    }

    #[test]
    fn sync_point_region_is_readable() {
        let mut p = single_core_platform("lw r1, 0x10(r0)\nsw r1, 0x300(r0)\nhalt\n");
        p.preload_sync_point(0, 3, false).unwrap();
        p.run(100).unwrap();
        assert_eq!(p.peek_dm(0x300).unwrap(), 3);
        assert_eq!(p.stats().sync_region_reads, 1);
    }

    #[test]
    fn orphaned_snop_trips_the_deadlock_watchdog() {
        // The core registers on point 0 and sleeps, but nothing will
        // ever signal the point. Without the watchdog this reads as a
        // quiescent exit; with it, a deadlock post-mortem.
        let mut p = single_core_platform("snop 0\nsleep\nhalt\n");
        p.set_watchdog(10_000);
        p.enable_trace(16, 0xFF);
        let err = p.run(1_000_000).unwrap_err();
        let SimError::Watchdog(pm) = err else {
            panic!("expected watchdog trip, got {err:?}");
        };
        assert_eq!(pm.trip, WatchdogTrip::Deadlock { waiting: vec![0] });
        assert!(pm.cores[0].gated);
        assert!(pm.points[0].value.flags().bits() & 1 != 0, "core 0 flagged");
        assert!(!pm.trace_tail.is_empty(), "trace tail captured");
        assert!(pm.to_string().contains("deadlock"));
    }

    #[test]
    fn intentional_final_sleep_stays_quiescent_under_watchdog() {
        // No sync-point registration: the sleep is the workload's end.
        let mut p = single_core_platform("sleep\nhalt\n");
        p.set_watchdog(10_000);
        assert_eq!(p.run(1_000_000).unwrap(), RunExit::Quiescent);
    }

    #[test]
    fn watchdog_off_preserves_quiescent_exit() {
        let mut p = single_core_platform("snop 0\nsleep\nhalt\n");
        assert_eq!(p.run(1_000_000).unwrap(), RunExit::Quiescent);
    }

    #[test]
    fn watchdog_spares_gated_waits_that_do_resolve() {
        // Producer/consumer on one core pair: the consumer's wait is
        // signalled, so the watchdog must not trip.
        let producer = assemble_text("sinc 0\nsdec 0\nhalt\n").unwrap();
        let consumer = assemble_text("snop 0\nsleep\nhalt\n").unwrap();
        let mut linker = Linker::new();
        linker.add_section(Section::in_bank("producer", producer, 0));
        linker.add_section(Section::in_bank("consumer", consumer, 1));
        linker.set_entry(0, "producer");
        linker.set_entry(1, "consumer");
        let image = linker.link().unwrap();
        let mut p = Platform::new(PlatformConfig::multi_core(), &image).unwrap();
        p.set_watchdog(10_000);
        assert_eq!(p.run(100_000).unwrap(), RunExit::AllHalted);
    }

    #[test]
    fn absent_cores_never_clock() {
        let program = assemble_text("halt\n").unwrap();
        let mut linker = Linker::new();
        linker.add_section(Section::new("main", program));
        linker.set_entry(0, "main");
        let image = linker.link().unwrap();
        let mut p = Platform::new(PlatformConfig::multi_core(), &image).unwrap();
        assert_eq!(p.run(1000).unwrap(), RunExit::AllHalted);
        for idx in 1..8 {
            assert_eq!(p.stats().cores[idx].active_cycles, 0);
            assert_eq!(p.stats().cores[idx].instructions, 0);
        }
    }
}
