//! One 16-bit RISC core: register file, program counter and retirement
//! semantics.
//!
//! Timing (stalls, bubbles, arbitration) is handled by the platform's
//! cycle loop; the [`Core`] itself is the architectural state plus the
//! pure retirement function. The three-stage pipeline with forwarding is
//! modelled by its visible timing effects: one instruction per cycle, a
//! one-cycle bubble after taken control transfers, and a one-cycle
//! load-use stall when an instruction consumes the register loaded by the
//! immediately preceding `LW`.

use wbsn_isa::{Instr, Reg, SyncKind};

use crate::exec::{abs16, alu, alu_imm};

/// What the platform must do after a core retires an instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Retire {
    /// Plain sequential retirement.
    Next,
    /// A control transfer was taken (the platform charges the fetch
    /// bubble).
    Taken,
    /// A synchronization instruction must be submitted to the
    /// synchronizer.
    Sync {
        /// Which point update to perform.
        kind: SyncKind,
        /// Target synchronization point.
        point: u16,
    },
    /// The core requests clock gating.
    Sleep,
    /// The core halted.
    Halt,
}

/// A data-memory intention derived from an instruction before execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemIntent {
    /// Load from `addr` into the instruction's destination.
    Load {
        /// Core-visible word address.
        addr: u32,
    },
    /// Store `value` to `addr`.
    Store {
        /// Core-visible word address.
        addr: u32,
        /// The 16-bit value to store.
        value: u16,
    },
}

/// Architectural state of one core.
#[derive(Debug, Clone)]
pub struct Core {
    id: usize,
    regs: [u16; 8],
    pc: u32,
    halted: bool,
    gated: bool,
    /// Destination of the immediately preceding load, for load-use
    /// hazard detection.
    hazard: Option<Reg>,
}

impl Core {
    /// Creates a core starting at `entry`.
    pub fn new(id: usize, entry: u32) -> Core {
        Core {
            id,
            regs: [0; 8],
            pc: entry,
            halted: false,
            gated: false,
            hazard: None,
        }
    }

    /// The core's index.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Current program counter.
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Reads a register.
    pub fn reg(&self, r: Reg) -> u16 {
        self.regs[r.index()]
    }

    /// Writes a register (used by loaders and tests).
    pub fn set_reg(&mut self, r: Reg, value: u16) {
        self.regs[r.index()] = value;
    }

    /// Whether the core has executed `HALT`.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Whether the core is clock-gated.
    pub fn is_gated(&self) -> bool {
        self.gated
    }

    /// Updates the clock-gating state (driven by the synchronizer).
    pub fn set_gated(&mut self, gated: bool) {
        self.gated = gated;
    }

    /// Whether `instr` would consume the register loaded by the
    /// immediately preceding `LW` (a one-cycle stall, unless the
    /// platform models a memory→execute bypass — see
    /// `PlatformConfig::forwarding`).
    pub fn has_load_use_hazard(&self, instr: &Instr) -> bool {
        match self.hazard {
            Some(dest) => instr.sources().iter().flatten().any(|&s| s == dest),
            None => false,
        }
    }

    /// Mask form of [`Core::has_load_use_hazard`], for predecoded
    /// instructions: `src_mask` has bit `i` set when register `r<i>` is
    /// a source operand (see [`wbsn_isa::DecodedInstr::src_mask`]).
    #[inline]
    pub fn has_load_use_hazard_mask(&self, src_mask: u8) -> bool {
        match self.hazard {
            Some(dest) => src_mask & (1 << dest.index()) != 0,
            None => false,
        }
    }

    /// Clears the hazard latch (the stall was charged).
    pub fn clear_hazard(&mut self) {
        self.hazard = None;
    }

    /// The instruction's data-memory intention, with the effective
    /// address computed from current register state.
    pub fn mem_intent(&self, instr: &Instr) -> Option<MemIntent> {
        match *instr {
            Instr::Lw { ra, off, .. } => Some(MemIntent::Load {
                addr: effective_addr(self.reg(ra), off),
            }),
            Instr::Sw { rs, ra, off } => Some(MemIntent::Store {
                addr: effective_addr(self.reg(ra), off),
                value: self.reg(rs),
            }),
            _ => None,
        }
    }

    /// Retires `instr`, updating registers and the program counter.
    ///
    /// `load_value` must carry the loaded word for `LW` instructions.
    ///
    /// # Panics
    ///
    /// Panics if `instr` is a load but `load_value` is `None` (the
    /// platform resolves memory before retiring).
    pub fn retire(&mut self, instr: Instr, load_value: Option<u16>) -> Retire {
        let next_pc = self.pc + 1;
        self.hazard = None;
        let retire = match instr {
            Instr::Nop => Retire::Next,
            Instr::Halt => {
                self.halted = true;
                Retire::Halt
            }
            Instr::Sleep => Retire::Sleep,
            Instr::Sync { kind, point } => Retire::Sync { kind, point },
            Instr::Alu { op, rd, ra, rb } => {
                self.regs[rd.index()] = alu(op, self.reg(ra), self.reg(rb));
                Retire::Next
            }
            Instr::Mov { rd, ra } => {
                self.regs[rd.index()] = self.reg(ra);
                Retire::Next
            }
            Instr::Abs { rd, ra } => {
                self.regs[rd.index()] = abs16(self.reg(ra));
                Retire::Next
            }
            Instr::AluImm { op, rd, ra, imm } => {
                self.regs[rd.index()] = alu_imm(op, self.reg(ra), imm);
                Retire::Next
            }
            Instr::Li { rd, imm } => {
                self.regs[rd.index()] = imm as u16;
                Retire::Next
            }
            Instr::Lui { rd, imm } => {
                self.regs[rd.index()] = (imm as u16) << 8;
                Retire::Next
            }
            Instr::Lw { rd, .. } => {
                let value = load_value.expect("platform resolves loads before retiring");
                self.regs[rd.index()] = value;
                self.hazard = Some(rd);
                Retire::Next
            }
            Instr::Sw { .. } => Retire::Next,
            Instr::Branch { cond, ra, rb, off } => {
                if cond.eval(self.reg(ra), self.reg(rb)) {
                    self.pc = add_offset(next_pc, off as i32);
                    return Retire::Taken;
                }
                Retire::Next
            }
            Instr::Jmp { off } => {
                self.pc = add_offset(next_pc, off);
                return Retire::Taken;
            }
            Instr::Jal { rd, off } => {
                self.regs[rd.index()] = next_pc as u16;
                self.pc = add_offset(next_pc, off as i32);
                return Retire::Taken;
            }
            Instr::Jr { ra } => {
                self.pc = self.reg(ra) as u32;
                return Retire::Taken;
            }
        };
        self.pc = next_pc;
        retire
    }
}

#[inline]
fn effective_addr(base: u16, off: i16) -> u32 {
    base.wrapping_add(off as u16) as u32
}

#[inline]
fn add_offset(pc: u32, off: i32) -> u32 {
    (pc as i64 + off as i64) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use wbsn_isa::BranchCond;

    fn core() -> Core {
        Core::new(0, 0x100)
    }

    #[test]
    fn sequential_retirement_advances_pc() {
        let mut c = core();
        assert_eq!(c.retire(Instr::Nop, None), Retire::Next);
        assert_eq!(c.pc(), 0x101);
    }

    #[test]
    fn alu_writes_destination() {
        let mut c = core();
        c.set_reg(Reg::R2, 20);
        c.set_reg(Reg::R3, 22);
        c.retire(Instr::add(Reg::R1, Reg::R2, Reg::R3), None);
        assert_eq!(c.reg(Reg::R1), 42);
    }

    #[test]
    fn branch_taken_and_not_taken() {
        let mut c = core();
        c.set_reg(Reg::R1, 1);
        let taken = c.retire(
            Instr::Branch {
                cond: BranchCond::Ne,
                ra: Reg::R1,
                rb: Reg::R0,
                off: 10,
            },
            None,
        );
        assert_eq!(taken, Retire::Taken);
        assert_eq!(c.pc(), 0x100 + 1 + 10);

        let pc = c.pc();
        let not_taken = c.retire(
            Instr::Branch {
                cond: BranchCond::Eq,
                ra: Reg::R1,
                rb: Reg::R0,
                off: 10,
            },
            None,
        );
        assert_eq!(not_taken, Retire::Next);
        assert_eq!(c.pc(), pc + 1);
    }

    #[test]
    fn backward_branch() {
        let mut c = core();
        c.set_reg(Reg::R1, 1);
        c.retire(
            Instr::Branch {
                cond: BranchCond::Ne,
                ra: Reg::R1,
                rb: Reg::R0,
                off: -5,
            },
            None,
        );
        assert_eq!(c.pc(), 0x100 + 1 - 5);
    }

    #[test]
    fn jal_links_and_jr_returns() {
        let mut c = core();
        c.retire(
            Instr::Jal {
                rd: Reg::R7,
                off: 50,
            },
            None,
        );
        assert_eq!(c.reg(Reg::R7), 0x101);
        assert_eq!(c.pc(), 0x101 + 50);
        c.retire(Instr::Jr { ra: Reg::R7 }, None);
        assert_eq!(c.pc(), 0x101);
    }

    #[test]
    fn load_sets_hazard_and_next_user_stalls() {
        let mut c = core();
        c.retire(Instr::lw(Reg::R1, Reg::R0, 4), Some(99));
        assert_eq!(c.reg(Reg::R1), 99);
        assert!(c.has_load_use_hazard(&Instr::add(Reg::R2, Reg::R1, Reg::R0)));
        assert!(!c.has_load_use_hazard(&Instr::add(Reg::R2, Reg::R3, Reg::R4)));
        // The mask form agrees with the register form.
        use wbsn_isa::DecodedInstr;
        let dep = DecodedInstr::new(Instr::add(Reg::R2, Reg::R1, Reg::R0));
        let indep = DecodedInstr::new(Instr::add(Reg::R2, Reg::R3, Reg::R4));
        assert!(c.has_load_use_hazard_mask(dep.src_mask));
        assert!(!c.has_load_use_hazard_mask(indep.src_mask));
        // A non-dependent retire clears the latch.
        c.retire(Instr::Nop, None);
        assert!(!c.has_load_use_hazard(&Instr::add(Reg::R2, Reg::R1, Reg::R0)));
    }

    #[test]
    fn mem_intents_compute_effective_addresses() {
        let mut c = core();
        c.set_reg(Reg::R2, 100);
        c.set_reg(Reg::R4, 7);
        assert_eq!(
            c.mem_intent(&Instr::lw(Reg::R1, Reg::R2, -4)),
            Some(MemIntent::Load { addr: 96 })
        );
        assert_eq!(
            c.mem_intent(&Instr::sw(Reg::R4, Reg::R2, 4)),
            Some(MemIntent::Store {
                addr: 104,
                value: 7
            })
        );
        assert_eq!(c.mem_intent(&Instr::Nop), None);
    }

    #[test]
    fn halt_is_sticky() {
        let mut c = core();
        assert_eq!(c.retire(Instr::Halt, None), Retire::Halt);
        assert!(c.is_halted());
    }

    #[test]
    fn sync_and_sleep_are_forwarded() {
        let mut c = core();
        assert_eq!(
            c.retire(Instr::sinc(3), None),
            Retire::Sync {
                kind: SyncKind::Inc,
                point: 3
            }
        );
        assert_eq!(c.retire(Instr::Sleep, None), Retire::Sleep);
        assert_eq!(c.pc(), 0x102);
    }
}
