//! Crossbar arbitration with request broadcasting.
//!
//! The crossbars follow the logarithmic-interconnect scheme of the
//! paper's reference \[19\]: accesses are combinational (single-cycle) and
//! fully connect cores to banks. The paper's modification is
//! *broadcasting*: "multiple read requests from the same location in
//! memory and in the same clock cycle have to be merged into a single
//! memory access".
//!
//! Arbitration happens per bank and per cycle. All read requests for one
//! address form a *group*; the highest-priority group wins the bank, its
//! first member performs the physical access ([`Grant::Access`]) and the
//! other members receive the broadcast data for free
//! ([`Grant::Broadcast`]). Requests to the same bank but other addresses
//! lose and retry next cycle ([`Grant::Stall`]). A rotating priority
//! pointer keeps the arbitration fair.

/// One memory request submitted to a crossbar.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Issuing core.
    pub core: usize,
    /// Target bank.
    pub bank: usize,
    /// Full word address (used for merge detection).
    pub addr: u32,
    /// Whether this is a store (stores never merge).
    pub write: bool,
}

/// Arbitration result for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Grant {
    /// The request performs the physical bank access.
    Access,
    /// The request is served by another core's simultaneous access to
    /// the same address (broadcast).
    Broadcast,
    /// The request lost arbitration and must retry next cycle.
    Stall,
}

/// Arbitrates one cycle's requests.
///
/// `rotation` is the cycle's round-robin priority offset; the caller
/// advances it every cycle. With `broadcast` disabled, same-address reads
/// no longer merge and serialize like ordinary conflicts (the ablation
/// the paper's Fig. 6 discussion implies).
///
/// Returns one [`Grant`] per request, in input order.
///
/// # Example
///
/// ```
/// use wbsn_sim::xbar::{arbitrate, Grant, Request};
///
/// // Two cores fetch the same word: one access, one broadcast.
/// let reqs = [
///     Request { core: 0, bank: 1, addr: 4096, write: false },
///     Request { core: 1, bank: 1, addr: 4096, write: false },
/// ];
/// let grants = arbitrate(&reqs, 0, true);
/// assert_eq!(grants, vec![Grant::Access, Grant::Broadcast]);
/// ```
pub fn arbitrate(requests: &[Request], rotation: usize, broadcast: bool) -> Vec<Grant> {
    let mut grants = Vec::new();
    arbitrate_into(requests, rotation, broadcast, &mut grants);
    grants
}

/// Allocation-free form of [`arbitrate`]: clears `grants` and fills it
/// with one [`Grant`] per request, reusing the vector's capacity. The
/// simulator's cycle loop calls this twice per cycle, so the grant
/// buffer must not be reallocated each time.
pub fn arbitrate_into(
    requests: &[Request],
    rotation: usize,
    broadcast: bool,
    grants: &mut Vec<Grant>,
) {
    grants.clear();
    // A lone request can never conflict: grant it without scanning.
    if requests.len() <= 1 {
        grants.resize(requests.len(), Grant::Access);
        return;
    }
    // Lockstep fast path: every request reads the same word (cores
    // executing the same code in phase). One access, the rest broadcast.
    let first = requests[0];
    if broadcast
        && !first.write
        && requests[1..]
            .iter()
            .all(|r| r.bank == first.bank && r.addr == first.addr && !r.write)
    {
        let rot = rotation % 8;
        let winner = requests
            .iter()
            .enumerate()
            .min_by_key(|(_, r)| (r.core + 8 - rot) % 8)
            .map(|(i, _)| i)
            .unwrap_or(0);
        grants.resize(requests.len(), Grant::Broadcast);
        grants[winner] = Grant::Access;
        return;
    }
    grants.resize(requests.len(), Grant::Stall);
    // Few requests per cycle (≤ 8 cores): quadratic scans are cheaper
    // than hashing. Banks fit in a u64 arbitration bitmask.
    let mut banks_done: u64 = 0;
    for i in 0..requests.len() {
        let bank = requests[i].bank;
        debug_assert!(bank < 64, "bank index fits the arbitration mask");
        if banks_done & (1 << bank) != 0 {
            continue;
        }
        banks_done |= 1 << bank;
        // Pick the winning request for this bank: the member with the
        // highest rotating priority.
        let rot = rotation % 8;
        let mut winner = i;
        let mut winner_priority = usize::MAX;
        for (j, r) in requests.iter().enumerate() {
            if r.bank != bank {
                continue;
            }
            let priority = (r.core + 8 - rot) % 8;
            if priority < winner_priority {
                winner_priority = priority;
                winner = j;
            }
        }
        let w = requests[winner];
        grants[winner] = Grant::Access;
        if broadcast && !w.write {
            // Merge every same-address read into the winner's access.
            for (j, r) in requests.iter().enumerate() {
                if j != winner && r.bank == bank && r.addr == w.addr && !r.write {
                    grants[j] = Grant::Broadcast;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(core: usize, bank: usize, addr: u32, write: bool) -> Request {
        Request {
            core,
            bank,
            addr,
            write,
        }
    }

    #[test]
    fn disjoint_banks_all_proceed() {
        let reqs = [
            req(0, 0, 0, false),
            req(1, 1, 5000, false),
            req(2, 2, 9000, true),
        ];
        let g = arbitrate(&reqs, 0, true);
        assert_eq!(g, vec![Grant::Access; 3]);
    }

    #[test]
    fn same_bank_different_address_conflicts() {
        let reqs = [req(0, 3, 100, false), req(1, 3, 116, false)];
        let g = arbitrate(&reqs, 0, true);
        assert_eq!(g, vec![Grant::Access, Grant::Stall]);
    }

    #[test]
    fn rotation_changes_the_winner() {
        let reqs = [req(0, 3, 100, false), req(1, 3, 116, false)];
        let g = arbitrate(&reqs, 1, true);
        assert_eq!(g, vec![Grant::Stall, Grant::Access]);
    }

    #[test]
    fn broadcast_merges_all_same_address_reads() {
        let reqs = [
            req(0, 2, 64, false),
            req(1, 2, 64, false),
            req(2, 2, 64, false),
            req(3, 2, 80, false),
        ];
        let g = arbitrate(&reqs, 0, true);
        assert_eq!(
            g,
            vec![
                Grant::Access,
                Grant::Broadcast,
                Grant::Broadcast,
                Grant::Stall
            ]
        );
    }

    #[test]
    fn broadcast_disabled_serializes_same_address() {
        let reqs = [req(0, 2, 64, false), req(1, 2, 64, false)];
        let g = arbitrate(&reqs, 0, false);
        assert_eq!(g, vec![Grant::Access, Grant::Stall]);
    }

    #[test]
    fn writes_never_merge() {
        let reqs = [req(0, 2, 64, true), req(1, 2, 64, true)];
        let g = arbitrate(&reqs, 0, true);
        assert_eq!(g, vec![Grant::Access, Grant::Stall]);
        // A read cannot ride on a write either.
        let reqs = [req(0, 2, 64, true), req(1, 2, 64, false)];
        let g = arbitrate(&reqs, 0, true);
        assert_eq!(g, vec![Grant::Access, Grant::Stall]);
    }

    #[test]
    fn write_winner_blocks_readers_of_other_addresses() {
        let reqs = [req(2, 5, 32, true), req(3, 5, 33, false)];
        // rotation 2 gives core 2 top priority.
        let g = arbitrate(&reqs, 2, true);
        assert_eq!(g, vec![Grant::Access, Grant::Stall]);
    }

    #[test]
    fn empty_request_list() {
        assert!(arbitrate(&[], 0, true).is_empty());
    }
}
