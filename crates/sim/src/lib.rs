//! Cycle-level simulator of the multi-core WBSN platform.
//!
//! This crate is the substrate the DATE 2014 paper evaluated on: a set of
//! 16-bit RISC cores connected to multi-banked instruction and data
//! memories through broadcasting crossbars (or simple decoders in the
//! single-core baseline), an Address Translation Unit dividing the data
//! memory into interleaved-shared and per-core private sections, a
//! three-channel ADC with data-ready interrupts, and the
//! [synchronizer unit](wbsn_core::Synchronizer) orchestrating clock
//! gating and wake-up.
//!
//! The simulator executes real binaries produced by the
//! [`wbsn_isa`] tool-chain and records every architectural event the
//! power model integrates: per-core active/stall/gated cycles, per-bank
//! memory accesses, broadcast merges, crossbar traversals, and
//! synchronizer traffic.
//!
//! # Example
//!
//! ```
//! use wbsn_isa::{assemble_text, Linker, Section};
//! use wbsn_sim::{Platform, PlatformConfig, RunExit};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = assemble_text(
//!     "li r1, 21\n\
//!      add r1, r1, r1\n\
//!      sw r1, 0x40(r0)\n\
//!      halt\n",
//! )?;
//! let mut linker = Linker::new();
//! linker.add_section(Section::new("main", program));
//! linker.set_entry(0, "main");
//! let image = linker.link()?;
//!
//! let config = PlatformConfig::single_core();
//! let mut platform = Platform::new(config, &image)?;
//! let exit = platform.run(10_000)?;
//! assert_eq!(exit, RunExit::AllHalted);
//! assert_eq!(platform.peek_dm(0x40)?, 42);
//! # Ok(())
//! # }
//! ```

pub mod adc;
pub mod atu;
pub mod config;
pub mod cpu;
pub mod error;
pub mod exec;
pub mod memory;
pub mod mmio;
pub mod obs;
pub mod platform;
pub mod stats;
pub mod trace;
pub mod watchdog;
pub mod xbar;

pub use adc::AdcConfig;
pub use config::{InterconnectKind, PlatformConfig};
pub use error::{ConfigError, Fault, FaultKind, SimError};
pub use obs::{Obs, StallCause};
#[cfg(feature = "obs")]
pub use obs::{ObsConfig, ObsSummary};
pub use platform::{Platform, RunExit};
pub use stats::{stats_json, BankStats, CoreStats, SimStats};
pub use trace::{StallRecord, TraceEntry, TraceEvent, Tracer};
pub use watchdog::{CoreDump, PhaseAttribution, PointDump, PostMortem, WatchdogTrip};
