//! Banked instruction and data memories.
//!
//! Both memories are divided into independently powered banks so that
//! unused banks can be switched off (paper §III-A). The structs here are
//! plain storage: arbitration, broadcasting and access counting live in
//! the platform's cycle loop, which records per-bank activity in
//! [`crate::stats::SimStats`].

use wbsn_isa::{DM_BANKS, DM_BANK_WORDS, IM_BANKS, IM_BANK_WORDS, IM_WORDS};

use crate::atu::DmLocation;

/// The instruction memory: 32 KWords × 24 bits in 8 banks.
#[derive(Debug, Clone)]
pub struct InstrMemory {
    words: Vec<u32>,
}

impl InstrMemory {
    /// Creates an instruction memory initialised from a full image.
    ///
    /// # Panics
    ///
    /// Panics if the image is not exactly [`IM_WORDS`] long.
    pub fn from_image(words: &[u32]) -> InstrMemory {
        assert_eq!(words.len(), IM_WORDS, "image must cover the whole memory");
        InstrMemory {
            words: words.to_vec(),
        }
    }

    /// The word at `addr`, or `None` outside the memory.
    #[inline]
    pub fn fetch(&self, addr: u32) -> Option<u32> {
        self.words.get(addr as usize).copied()
    }

    /// Bank that `addr` belongs to.
    #[inline]
    pub fn bank_of(addr: u32) -> usize {
        addr as usize / IM_BANK_WORDS
    }

    /// Number of banks.
    pub const fn banks() -> usize {
        IM_BANKS
    }
}

/// The data memory: 32 KWords × 16 bits in 16 banks, addressed physically
/// by `(bank, row)` after the ATU.
#[derive(Debug, Clone)]
pub struct DataMemory {
    banks: Vec<Vec<u16>>,
}

impl Default for DataMemory {
    fn default() -> Self {
        DataMemory::new()
    }
}

impl DataMemory {
    /// Creates a zeroed data memory.
    pub fn new() -> DataMemory {
        DataMemory {
            banks: vec![vec![0u16; DM_BANK_WORDS]; DM_BANKS],
        }
    }

    /// Reads the word at a physical location.
    ///
    /// # Panics
    ///
    /// Panics on a location outside the geometry (locations come from the
    /// ATU, which validates them).
    #[inline]
    pub fn read(&self, loc: DmLocation) -> u16 {
        self.banks[loc.bank][loc.row]
    }

    /// Writes the word at a physical location.
    ///
    /// # Panics
    ///
    /// Panics on a location outside the geometry.
    #[inline]
    pub fn write(&mut self, loc: DmLocation, value: u16) {
        self.banks[loc.bank][loc.row] = value;
    }

    /// Number of banks.
    pub const fn banks() -> usize {
        DM_BANKS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn im_bank_mapping_is_contiguous() {
        assert_eq!(InstrMemory::bank_of(0), 0);
        assert_eq!(InstrMemory::bank_of(IM_BANK_WORDS as u32 - 1), 0);
        assert_eq!(InstrMemory::bank_of(IM_BANK_WORDS as u32), 1);
        assert_eq!(InstrMemory::bank_of(IM_WORDS as u32 - 1), IM_BANKS - 1);
    }

    #[test]
    fn im_fetch_bounds() {
        let im = InstrMemory::from_image(&vec![7u32; IM_WORDS]);
        assert_eq!(im.fetch(0), Some(7));
        assert_eq!(im.fetch(IM_WORDS as u32), None);
    }

    #[test]
    fn dm_read_write() {
        let mut dm = DataMemory::new();
        let loc = DmLocation { bank: 3, row: 17 };
        assert_eq!(dm.read(loc), 0);
        dm.write(loc, 0xBEEF);
        assert_eq!(dm.read(loc), 0xBEEF);
        // Other banks unaffected.
        assert_eq!(dm.read(DmLocation { bank: 4, row: 17 }), 0);
    }
}
