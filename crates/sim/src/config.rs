//! Platform configuration: geometry, interconnect and directives.

use wbsn_isa::DM_WORDS;

use crate::adc::AdcConfig;
use crate::error::ConfigError;
use crate::mmio::{MAX_ADC_CHANNELS, MMIO_BASE};

/// Interconnect between the cores and the memories.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InterconnectKind {
    /// Fully connected logarithmic-interconnect crossbars with request
    /// merging (multi-core target architecture).
    Crossbar,
    /// Simple address decoders (single-core baseline); no arbitration is
    /// needed and a higher clock frequency is attainable at equal
    /// voltage.
    Decoder,
}

/// Complete platform configuration.
///
/// The defaults mirror the paper's experimental set-up: 8 cores, 8 IM
/// banks, 16 DM banks, a 3-channel ADC, crossbar interconnect with
/// broadcast, and a shared data-memory section in the low addresses.
///
/// # Example
///
/// ```
/// use wbsn_sim::{InterconnectKind, PlatformConfig};
///
/// let mc = PlatformConfig::multi_core();
/// assert_eq!(mc.cores, 8);
/// assert_eq!(mc.interconnect, InterconnectKind::Crossbar);
///
/// let sc = PlatformConfig::single_core();
/// assert_eq!(sc.cores, 1);
/// assert_eq!(sc.interconnect, InterconnectKind::Decoder);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlatformConfig {
    /// Number of computing cores (1..=8).
    pub cores: usize,
    /// Interconnect flavour.
    pub interconnect: InterconnectKind,
    /// Whether simultaneous same-address reads merge into one access
    /// (the paper's broadcasting; disable for ablation).
    pub broadcast: bool,
    /// Size of the shared data-memory section in words; addresses below
    /// this limit are shared and interleaved across all banks.
    pub shared_words: u32,
    /// Whether the pipeline forwards load results from the memory stage
    /// to the execute stage. When enabled, a back-to-back load-use pair
    /// costs no hazard stall; when disabled (the paper's baseline), the
    /// consumer of a just-loaded register stalls one cycle.
    pub forwarding: bool,
    /// Number of synchronization points managed by the synchronizer.
    pub sync_points: usize,
    /// First shared address of the synchronization-point region.
    pub sync_base: u32,
    /// ADC peripheral configuration.
    pub adc: AdcConfig,
}

impl PlatformConfig {
    /// The paper's 8-core target architecture.
    pub fn multi_core() -> PlatformConfig {
        PlatformConfig {
            cores: 8,
            interconnect: InterconnectKind::Crossbar,
            broadcast: true,
            forwarding: false,
            shared_words: 0x1000,
            sync_points: 16,
            sync_base: 0x0010,
            adc: AdcConfig::default(),
        }
    }

    /// The paper's single-core baseline: same memories, decoders instead
    /// of crossbars.
    pub fn single_core() -> PlatformConfig {
        PlatformConfig {
            cores: 1,
            interconnect: InterconnectKind::Decoder,
            broadcast: false,
            forwarding: false,
            // The baseline has no shared/private division (no ATU): the
            // whole memory is one flat space.
            shared_words: 0,
            sync_points: 16,
            sync_base: 0x0010,
            adc: AdcConfig::default(),
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns the first violated [`ConfigError`].
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.cores == 0 || self.cores > 8 {
            return Err(ConfigError::BadCoreCount(self.cores));
        }
        if self.interconnect == InterconnectKind::Decoder && self.cores != 1 {
            return Err(ConfigError::DecoderNeedsSingleCore(self.cores));
        }
        if self.shared_words > MMIO_BASE {
            return Err(ConfigError::SharedTooLarge(self.shared_words));
        }
        if self.shared_words > 0 || self.cores > 1 {
            // With an ATU present, the sync region must live in shared
            // memory so every core can observe the points.
            let end = self.sync_base as usize + self.sync_points;
            if self.cores > 1 && end > self.shared_words as usize {
                return Err(ConfigError::SyncRegionOutsideShared {
                    base: self.sync_base,
                    points: self.sync_points,
                    shared: self.shared_words,
                });
            }
        }
        if self.sync_base as usize + self.sync_points > DM_WORDS {
            return Err(ConfigError::SharedTooLarge(self.sync_base));
        }
        if self.adc.channels > MAX_ADC_CHANNELS {
            return Err(ConfigError::TooManyAdcChannels(self.adc.channels));
        }
        if self.adc.period_cycles == 0 {
            return Err(ConfigError::ZeroAdcPeriod);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        PlatformConfig::multi_core().validate().unwrap();
        PlatformConfig::single_core().validate().unwrap();
    }

    #[test]
    fn decoder_rejects_multiple_cores() {
        let mut c = PlatformConfig::multi_core();
        c.interconnect = InterconnectKind::Decoder;
        assert_eq!(c.validate(), Err(ConfigError::DecoderNeedsSingleCore(8)));
    }

    #[test]
    fn bad_core_counts_rejected() {
        let mut c = PlatformConfig::multi_core();
        c.cores = 0;
        assert!(c.validate().is_err());
        c.cores = 9;
        assert!(c.validate().is_err());
    }

    #[test]
    fn sync_region_must_be_shared_on_multi_core() {
        let mut c = PlatformConfig::multi_core();
        c.sync_base = c.shared_words; // just past the shared limit
        assert!(matches!(
            c.validate(),
            Err(ConfigError::SyncRegionOutsideShared { .. })
        ));
    }

    #[test]
    fn shared_section_cannot_cover_mmio() {
        let mut c = PlatformConfig::multi_core();
        c.shared_words = MMIO_BASE + 1;
        assert!(matches!(c.validate(), Err(ConfigError::SharedTooLarge(_))));
    }

    #[test]
    fn adc_validation() {
        let mut c = PlatformConfig::multi_core();
        c.adc.channels = MAX_ADC_CHANNELS + 1;
        assert!(c.validate().is_err());
        let mut c = PlatformConfig::multi_core();
        c.adc.period_cycles = 0;
        assert!(c.validate().is_err());
    }
}
