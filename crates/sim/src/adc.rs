//! The multi-channel ADC peripheral.
//!
//! A three-channel ADC samples the bio-signal "at a constant frequency
//! and provid\[es\] a data-ready interrupt that will be connected to the
//! synchronizer" (paper §III-B). The simulator's ADC replays preloaded
//! sample streams: every `period_cycles` it latches the next sample of
//! each channel into its data register, bumps the per-channel sequence
//! counter and raises the channel's interrupt source.
//!
//! An *overrun* is recorded when a sample is overwritten before any core
//! read it — the real-time violation detector used when searching for
//! the minimum feasible clock frequency.

/// ADC configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdcConfig {
    /// Number of channels (leads).
    pub channels: usize,
    /// Sampling period in platform clock cycles.
    pub period_cycles: u64,
    /// Cycle of the first sample.
    pub start_cycle: u64,
}

impl Default for AdcConfig {
    fn default() -> Self {
        AdcConfig {
            channels: 3,
            // 250 Hz at a 1 MHz clock.
            period_cycles: 4000,
            start_cycle: 100,
        }
    }
}

/// The ADC peripheral state.
#[derive(Debug, Clone)]
pub struct Adc {
    config: AdcConfig,
    streams: Vec<Vec<i16>>,
    position: usize,
    data: Vec<u16>,
    seq: Vec<u16>,
    read_since_latch: Vec<bool>,
    overruns: u64,
    samples_delivered: u64,
    next_tick: Option<u64>,
}

impl Adc {
    /// Creates an ADC replaying `streams` (one per channel).
    ///
    /// Channels without a stream produce zero samples for as long as the
    /// longest stream lasts.
    ///
    /// # Panics
    ///
    /// Panics if more streams than channels are supplied.
    pub fn new(config: AdcConfig, streams: Vec<Vec<i16>>) -> Adc {
        assert!(
            streams.len() <= config.channels,
            "more streams than channels"
        );
        let channels = config.channels;
        let start = config.start_cycle;
        let has_samples = streams.iter().any(|s| !s.is_empty());
        Adc {
            config,
            streams,
            position: 0,
            data: vec![0; channels],
            seq: vec![0; channels],
            read_since_latch: vec![true; channels],
            overruns: 0,
            samples_delivered: 0,
            next_tick: has_samples.then_some(start),
        }
    }

    /// Cycle of the next sample latch, or `None` when the streams are
    /// exhausted.
    pub fn next_tick(&self) -> Option<u64> {
        self.next_tick
    }

    /// Total samples latched so far (per channel).
    pub fn samples_delivered(&self) -> u64 {
        self.samples_delivered
    }

    /// Samples overwritten before being read.
    pub fn overruns(&self) -> u64 {
        self.overruns
    }

    /// Remaining stream length.
    pub fn samples_total(&self) -> usize {
        self.streams.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Advances to `cycle`; latches new samples and returns the raised
    /// interrupt-source mask (bit per channel), or 0.
    #[inline]
    pub fn tick(&mut self, cycle: u64) -> u16 {
        // Inlined fast path: between samples (the overwhelmingly common
        // case) this is two compares in the caller's cycle loop.
        match self.next_tick {
            Some(next) if cycle >= next => self.latch(next),
            _ => 0,
        }
    }

    /// Latches the sample due at `next`; returns the raised
    /// interrupt-source mask.
    fn latch(&mut self, next: u64) -> u16 {
        let total = self.samples_total();
        if self.position >= total {
            self.next_tick = None;
            return 0;
        }
        let mut mask = 0u16;
        for ch in 0..self.config.channels {
            let sample = self
                .streams
                .get(ch)
                .and_then(|s| s.get(self.position))
                .copied()
                .unwrap_or(0);
            if !self.read_since_latch[ch] {
                self.overruns += 1;
            }
            self.data[ch] = sample as u16;
            self.seq[ch] = self.seq[ch].wrapping_add(1);
            self.read_since_latch[ch] = false;
            mask |= 1 << ch;
        }
        self.position += 1;
        self.samples_delivered += 1;
        self.next_tick = if self.position < total {
            Some(next + self.config.period_cycles)
        } else {
            None
        };
        mask
    }

    /// Reads the data register of `channel`, clearing its overrun latch.
    pub fn read_data(&mut self, channel: usize) -> u16 {
        if channel < self.data.len() {
            self.read_since_latch[channel] = true;
            self.data[channel]
        } else {
            0
        }
    }

    /// Reads the sequence counter of `channel`.
    pub fn read_seq(&self, channel: usize) -> u16 {
        self.seq.get(channel).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn adc(period: u64, streams: Vec<Vec<i16>>) -> Adc {
        Adc::new(
            AdcConfig {
                channels: 3,
                period_cycles: period,
                start_cycle: 10,
            },
            streams,
        )
    }

    #[test]
    fn latches_on_schedule() {
        let mut a = adc(100, vec![vec![1, 2], vec![-5, -6]]);
        assert_eq!(a.tick(9), 0);
        assert_eq!(a.tick(10), 0b111);
        assert_eq!(a.read_data(0), 1);
        assert_eq!(a.read_data(1), (-5i16) as u16);
        assert_eq!(a.read_data(2), 0); // channel without stream
        assert_eq!(a.read_seq(0), 1);
        assert_eq!(a.next_tick(), Some(110));
        assert_eq!(a.tick(110), 0b111);
        assert_eq!(a.read_data(0), 2);
        assert_eq!(a.next_tick(), None, "streams exhausted");
        assert_eq!(a.tick(210), 0);
        assert_eq!(a.samples_delivered(), 2);
    }

    #[test]
    fn overrun_detection() {
        let mut a = adc(10, vec![vec![1, 2, 3]]);
        assert_eq!(a.tick(10), 0b111);
        a.read_data(0); // channel 0 read in time
        assert_eq!(a.tick(20), 0b111);
        assert_eq!(a.tick(30), 0b111);
        // Channel 0 missed one sample (latched at 20, overwritten at 30);
        // channels 1 and 2 were never read and miss two each.
        assert_eq!(a.overruns(), 1 + 2 * 2);
    }

    #[test]
    fn late_tick_catches_up_once() {
        let mut a = adc(10, vec![vec![7, 8]]);
        // Jumping far past the deadline latches the next pending sample.
        assert_eq!(a.tick(35), 0b111);
        assert_eq!(a.read_data(0), 7);
        assert_eq!(a.next_tick(), Some(20));
    }

    #[test]
    fn seq_starts_at_zero() {
        let a = adc(10, vec![vec![1]]);
        assert_eq!(a.read_seq(0), 0);
        assert_eq!(a.read_seq(9), 0);
    }
}
