//! Tracing, arbitration-conflict accounting and fault paths on the full
//! platform.

use wbsn_isa::{assemble_text, Linker, Section};
use wbsn_sim::{Platform, PlatformConfig, RunExit};

fn multi(sections: Vec<(&str, &str, usize)>, entries: &[(usize, &str)]) -> Platform {
    let mut linker = Linker::new();
    for (name, src, bank) in sections {
        linker.add_section(Section::in_bank(
            name,
            assemble_text(src).expect("assembles"),
            bank,
        ));
    }
    for &(core, section) in entries {
        linker.set_entry(core, section);
    }
    let image = linker.link().expect("links");
    Platform::new(PlatformConfig::multi_core(), &image).expect("builds")
}

#[test]
fn trace_records_retirements_in_order() {
    let mut p = multi(
        vec![(
            "main",
            "li r1, 2\nadd r1, r1, r1\nsw r1, 0x40(r0)\nhalt\n",
            0,
        )],
        &[(0, "main")],
    );
    p.enable_trace(16, 0b1);
    assert_eq!(p.run(100).unwrap(), RunExit::AllHalted);
    let trace = p.trace().expect("enabled");
    let listing = trace.listing();
    assert_eq!(trace.len(), 4);
    assert!(listing.contains("li r1, 2"));
    assert!(listing.contains("halt"));
    // Cycles are non-decreasing.
    let cycles: Vec<u64> = trace.events().map(|e| e.cycle).collect();
    assert!(cycles.windows(2).all(|w| w[0] <= w[1]));
}

#[test]
fn trace_mask_excludes_other_cores() {
    let mut p = multi(
        vec![("a", "halt\n", 0), ("b", "nop\nhalt\n", 1)],
        &[(0, "a"), (1, "b")],
    );
    p.enable_trace(16, 0b10);
    p.run(100).unwrap();
    let trace = p.trace().expect("enabled");
    assert!(trace.events().all(|e| e.core == 1));
    assert_eq!(trace.len(), 2);
}

/// Two cores looping over different addresses in the same instruction
/// bank conflict on every fetch; the arbitration counters must show it
/// and both programs must still finish correctly.
#[test]
fn same_bank_different_address_fetches_conflict() {
    let body_a = "li r1, 50\nla: addi r1, r1, -1\nbne r1, r0, la\nsw r1, 0x40(r0)\nhalt\n";
    let body_b = "li r2, 50\nlb: addi r2, r2, -1\nbne r2, r0, lb\nsw r2, 0x41(r0)\nhalt\n";
    // Both in bank 0, at different offsets.
    let mut linker = Linker::new();
    linker.add_section(Section::in_bank("a", assemble_text(body_a).unwrap(), 0));
    linker.add_section(Section::in_bank("b", assemble_text(body_b).unwrap(), 0));
    linker.set_entry(0, "a");
    linker.set_entry(1, "b");
    let image = linker.link().unwrap();
    let mut p = Platform::new(PlatformConfig::multi_core(), &image).unwrap();
    assert_eq!(p.run(10_000).unwrap(), RunExit::AllHalted);
    let stats = p.stats();
    assert!(
        stats.im.conflicts > 50,
        "expected sustained fetch conflicts, got {}",
        stats.im.conflicts
    );
    assert_eq!(stats.im.broadcasts, 0, "different addresses never merge");
    assert!(stats.cores[0].stall_im + stats.cores[1].stall_im > 50);
    assert_eq!(p.peek_dm(0x40).unwrap(), 0);
    assert_eq!(p.peek_dm(0x41).unwrap(), 0);
}

/// Two cores hammering the same shared data bank conflict on stores;
/// correctness is preserved through retries.
#[test]
fn shared_data_bank_conflicts_retry_correctly() {
    // Addresses 0x40 and 0x50 are both ≡ 0 (mod 16): same bank.
    let a = "li r1, 100\nli r3, 7\nla: sw r3, 0x40(r0)\naddi r1, r1, -1\nbne r1, r0, la\nhalt\n";
    let b = "li r1, 100\nli r3, 9\nlb: sw r3, 0x50(r0)\naddi r1, r1, -1\nbne r1, r0, lb\nhalt\n";
    let mut p = multi(vec![("a", a, 0), ("b", b, 1)], &[(0, "a"), (1, "b")]);
    assert_eq!(p.run(10_000).unwrap(), RunExit::AllHalted);
    assert!(
        p.stats().dm.conflicts > 0,
        "stores to one bank must collide"
    );
    assert_eq!(p.peek_dm(0x40).unwrap(), 7);
    assert_eq!(p.peek_dm(0x50).unwrap(), 9);
}

#[test]
fn idle_until_accounts_gated_time() {
    let mut p = multi(vec![("main", "sleep\nhalt\n", 0)], &[(0, "main")]);
    assert_eq!(p.run(1_000).unwrap(), RunExit::Quiescent);
    let before = p.stats().cycles;
    p.idle_until(50_000);
    assert_eq!(p.stats().cycles, 50_000);
    assert!(p.stats().cores[0].gated_cycles >= 50_000 - before);
    // Idling backwards is a no-op.
    p.idle_until(10);
    assert_eq!(p.stats().cycles, 50_000);
}

#[test]
fn private_out_of_range_faults() {
    // The multi-core private window is ~3 KWords; address 0x7000 is
    // beyond it (but below the MMIO window).
    let src = "lui r2, 0x70\nlw r1, 0(r2)\nhalt\n";
    let mut p = multi(vec![("main", src, 0)], &[(0, "main")]);
    let err = p.run(100).unwrap_err();
    assert!(matches!(
        err,
        wbsn_sim::SimError::Fault(wbsn_sim::Fault {
            kind: wbsn_sim::FaultKind::PrivateOutOfRange,
            ..
        })
    ));
}

#[test]
fn breakpoints_stop_before_execution_and_resume() {
    let mut p = multi(
        vec![(
            "main",
            "li r1, 1\nli r2, 2\nadd r3, r1, r2\nsw r3, 0x40(r0)\nhalt\n",
            0,
        )],
        &[(0, "main")],
    );
    // Break at the `add` (program-relative pc 2).
    p.add_breakpoint(2);
    let exit = p.run(1000).unwrap();
    assert_eq!(exit, RunExit::Breakpoint { core: 0, pc: 2 });
    // The add has not executed yet.
    assert_eq!(p.core(0).reg(wbsn_isa::Reg::R3), 0);
    assert_eq!(p.core(0).reg(wbsn_isa::Reg::R2), 2);
    // Stepping once executes it; then the run continues to completion.
    p.step().unwrap();
    assert_eq!(p.core(0).reg(wbsn_isa::Reg::R3), 3);
    assert_eq!(p.run(1000).unwrap(), RunExit::AllHalted);
    assert_eq!(p.peek_dm(0x40).unwrap(), 3);
}

#[test]
fn watchpoints_stop_on_the_writing_core() {
    let a = "li r1, 7\nsw r1, 0x60(r0)\nhalt\n";
    let b = "li r1, 9\nnop\nnop\nnop\nnop\nsw r1, 0x61(r0)\nhalt\n";
    let mut p = multi(vec![("a", a, 0), ("b", b, 1)], &[(0, "a"), (1, "b")]);
    p.add_watchpoint(0x61);
    let exit = p.run(1000).unwrap();
    assert_eq!(
        exit,
        RunExit::Watchpoint {
            core: 1,
            addr: 0x61
        }
    );
    // The write itself completed.
    assert_eq!(p.peek_dm(0x61).unwrap(), 9);
    assert_eq!(p.run(1000).unwrap(), RunExit::AllHalted);
}
