//! Property tests on the execution unit: the 16-bit datapath agrees
//! with a wide-arithmetic reference for every operation and operand.

use proptest::prelude::*;
use wbsn_isa::{AluImmOp, AluOp};
use wbsn_sim::exec::{abs16, alu, alu_imm};

proptest! {
    #[test]
    fn alu_matches_wide_reference(a in any::<u16>(), b in any::<u16>()) {
        let (sa, sb) = (a as i16 as i32, b as i16 as i32);
        prop_assert_eq!(alu(AluOp::Add, a, b), (sa + sb) as u16);
        prop_assert_eq!(alu(AluOp::Sub, a, b), (sa - sb) as u16);
        prop_assert_eq!(alu(AluOp::And, a, b), a & b);
        prop_assert_eq!(alu(AluOp::Or, a, b), a | b);
        prop_assert_eq!(alu(AluOp::Xor, a, b), a ^ b);
        let sh = (b & 0xF) as u32;
        prop_assert_eq!(alu(AluOp::Sll, a, b), ((a as u32) << sh) as u16);
        prop_assert_eq!(alu(AluOp::Srl, a, b), a >> sh);
        prop_assert_eq!(alu(AluOp::Sra, a, b), ((a as i16) >> sh) as u16);
        let product = sa * sb;
        prop_assert_eq!(alu(AluOp::Mul, a, b), product as u16);
        prop_assert_eq!(alu(AluOp::Mulh, a, b), (product >> 16) as u16);
        prop_assert_eq!(alu(AluOp::Min, a, b), sa.min(sb) as u16);
        prop_assert_eq!(alu(AluOp::Max, a, b), sa.max(sb) as u16);
        prop_assert_eq!(alu(AluOp::Slt, a, b), (sa < sb) as u16);
        prop_assert_eq!(alu(AluOp::Sltu, a, b), (a < b) as u16);
    }

    #[test]
    fn mul_mulh_reassemble_the_full_product(a in any::<u16>(), b in any::<u16>()) {
        let lo = alu(AluOp::Mul, a, b) as i32 & 0xFFFF;
        let hi = alu(AluOp::Mulh, a, b) as i16 as i32;
        prop_assert_eq!((hi << 16) | lo, (a as i16 as i32) * (b as i16 as i32));
    }

    #[test]
    fn imm_forms_match_register_forms(a in any::<u16>(), imm in 0i16..4096) {
        prop_assert_eq!(alu_imm(AluImmOp::Andi, a, imm), alu(AluOp::And, a, imm as u16));
        prop_assert_eq!(alu_imm(AluImmOp::Ori, a, imm), alu(AluOp::Or, a, imm as u16));
        prop_assert_eq!(alu_imm(AluImmOp::Xori, a, imm), alu(AluOp::Xor, a, imm as u16));
        let sh = imm & 0xF;
        prop_assert_eq!(alu_imm(AluImmOp::Slli, a, sh), alu(AluOp::Sll, a, sh as u16));
        prop_assert_eq!(alu_imm(AluImmOp::Srli, a, sh), alu(AluOp::Srl, a, sh as u16));
        prop_assert_eq!(alu_imm(AluImmOp::Srai, a, sh), alu(AluOp::Sra, a, sh as u16));
    }

    #[test]
    fn addi_sign_extends(a in any::<u16>(), imm in -2048i16..2048) {
        prop_assert_eq!(
            alu_imm(AluImmOp::Addi, a, imm),
            (a as i16).wrapping_add(imm) as u16
        );
    }

    #[test]
    fn abs_is_nonnegative_and_fixed_on_min(a in any::<u16>()) {
        let r = abs16(a) as i16;
        prop_assert!(r >= 0);
        if a as i16 != i16::MIN {
            prop_assert_eq!(r, (a as i16).abs());
        } else {
            prop_assert_eq!(r, i16::MAX);
        }
    }
}
