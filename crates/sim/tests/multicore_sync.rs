//! End-to-end multi-core tests: real binaries exercising the
//! producer-consumer and lock-step protocols on the full platform.

use wbsn_isa::{assemble_text, Linker, Section};
use wbsn_sim::{Platform, PlatformConfig, RunExit};

fn build_platform(sections: Vec<(&str, &str, usize)>, entries: &[(usize, &str)]) -> Platform {
    let mut linker = Linker::new();
    for (name, src, bank) in sections {
        let program = assemble_text(src).expect("program assembles");
        linker.add_section(Section::in_bank(name, program, bank));
    }
    for &(core, section) in entries {
        linker.set_entry(core, section);
    }
    let image = linker.link().expect("programs link");
    Platform::new(PlatformConfig::multi_core(), &image).expect("platform builds")
}

/// Three producers each write one word to shared memory and SINC/SDEC a
/// point; one consumer SNOPs, sleeps and sums the values after waking.
#[test]
fn producer_consumer_pipeline() {
    let producer = |value: i32, slot: u32| {
        format!(
            "sinc 0\n\
             li r1, {value}\n\
             sw r1, {slot}(r0)\n\
             sdec 0\n\
             halt\n"
        )
    };
    let consumer = "snop 0\n\
                    sleep\n\
                    lw r1, 0x100(r0)\n\
                    lw r2, 0x101(r0)\n\
                    lw r3, 0x102(r0)\n\
                    add r1, r1, r2\n\
                    add r1, r1, r3\n\
                    sw r1, 0x110(r0)\n\
                    halt\n";
    let p0 = producer(10, 0x100);
    let p1 = producer(20, 0x101);
    let p2 = producer(30, 0x102);
    let mut platform = build_platform(
        vec![
            ("p0", &p0, 0),
            ("p1", &p1, 0),
            ("p2", &p2, 0),
            ("consumer", consumer, 1),
        ],
        &[(0, "p0"), (1, "p1"), (2, "p2"), (3, "consumer")],
    );
    assert_eq!(platform.run(10_000).unwrap(), RunExit::AllHalted);
    assert_eq!(platform.peek_dm(0x110).unwrap(), 60);
    // The consumer slept while the producers worked.
    assert!(platform.stats().cores[3].gated_cycles > 0);
    // The synchronizer fired exactly once.
    assert_eq!(platform.synchronizer().stats().fires, 1);
}

/// Two cores running identical code in the same bank fetch in lock-step:
/// most instruction fetches must merge into broadcasts.
#[test]
fn lockstep_fetch_broadcasts() {
    let body = "li r1, 200\n\
                loop: addi r1, r1, -1\n\
                bne r1, r0, loop\n\
                halt\n";
    let mut platform = build_platform(vec![("phase", body, 2)], &[(0, "phase"), (1, "phase")]);
    assert_eq!(platform.run(10_000).unwrap(), RunExit::AllHalted);
    let im = &platform.stats().im;
    // Both cores execute the same ~400 instructions from the same
    // addresses in the same cycles: each cycle one access + one
    // broadcast.
    assert!(
        im.broadcasts > 350,
        "expected massive fetch merging, got {}",
        im.broadcasts
    );
    assert!((im.broadcast_percent() - 50.0).abs() < 5.0);
}

/// Same program with broadcasting disabled: every co-fetch serializes, so
/// there are no broadcasts and many conflicts.
#[test]
fn broadcast_ablation_serializes() {
    let body = "li r1, 50\n\
                loop: addi r1, r1, -1\n\
                bne r1, r0, loop\n\
                halt\n";
    let program = assemble_text(body).unwrap();
    let mut linker = Linker::new();
    linker.add_section(Section::in_bank("phase", program, 2));
    linker.set_entry(0, "phase");
    linker.set_entry(1, "phase");
    let image = linker.link().unwrap();
    let mut config = PlatformConfig::multi_core();
    config.broadcast = false;
    let mut platform = Platform::new(config, &image).unwrap();
    assert_eq!(platform.run(10_000).unwrap(), RunExit::AllHalted);
    assert_eq!(platform.stats().im.broadcasts, 0);
    assert!(platform.stats().im.conflicts > 50);
}

/// Branch lock-step recovery: two cores take data-dependent paths of
/// different lengths, then re-synchronize with SINC/SDEC + SLEEP. After
/// the barrier both re-execute shared code in the same cycles again.
#[test]
fn lockstep_recovery_across_branches() {
    // Core 0 runs a long branch body; core 1 a short one. Both enter
    // with SINC and leave with SDEC + SLEEP.
    let long = "sinc 1\n\
                li r1, 40\n\
                w0: addi r1, r1, -1\n\
                bne r1, r0, w0\n\
                sdec 1\n\
                sleep\n\
                li r5, 1\n\
                sw r5, 0x120(r0)\n\
                halt\n";
    let short = "sinc 1\n\
                 sdec 1\n\
                 sleep\n\
                 li r5, 1\n\
                 sw r5, 0x121(r0)\n\
                 halt\n";
    let mut platform = build_platform(
        vec![("long", long, 0), ("short", short, 1)],
        &[(0, "long"), (1, "short")],
    );
    assert_eq!(platform.run(10_000).unwrap(), RunExit::AllHalted);
    assert_eq!(platform.peek_dm(0x120).unwrap(), 1);
    assert_eq!(platform.peek_dm(0x121).unwrap(), 1);
    // The short core slept while the long one finished its branch body.
    assert!(platform.stats().cores[1].gated_cycles > 20);
    assert_eq!(platform.synchronizer().stats().fires, 1);
}

/// Private sections isolate cores: both write "the same" private address
/// but read back their own values.
#[test]
fn private_memory_isolation() {
    let cfg = PlatformConfig::multi_core();
    let private_base = cfg.shared_words; // first private word
    let writer = |value: i32, out: u32| {
        format!(
            "li r2, {private_base}\n\
             li r1, {value}\n\
             sw r1, 0(r2)\n\
             lw r3, 0(r2)\n\
             sw r3, {out}(r0)\n\
             halt\n"
        )
    };
    // Both cores run concurrently, write "the same" private address and
    // report their readback to different shared slots.
    let w0 = writer(111, 0x130);
    let w1 = writer(222, 0x131);
    let mut platform = build_platform(
        vec![("w0", &w0, 0), ("w1", &w1, 1)],
        &[(0, "w0"), (1, "w1")],
    );
    assert_eq!(platform.run(10_000).unwrap(), RunExit::AllHalted);
    assert_eq!(platform.peek_dm(0x130).unwrap(), 111);
    assert_eq!(platform.peek_dm(0x131).unwrap(), 222);
    // The physical private copies are distinct per core.
    assert_eq!(platform.peek_dm_for_core(0, private_base).unwrap(), 111);
    assert_eq!(platform.peek_dm_for_core(1, private_base).unwrap(), 222);
}

/// Busy-wait producer/consumer without the synchronization ISE: the
/// consumer polls a shared flag. Functionally equivalent, but the
/// consumer burns active cycles instead of sleeping.
#[test]
fn busy_wait_polling_costs_active_cycles() {
    let producer = "li r1, 300\n\
                    w0: addi r1, r1, -1\n\
                    bne r1, r0, w0\n\
                    li r2, 42\n\
                    sw r2, 0x140(r0)\n\
                    li r3, 1\n\
                    sw r3, 0x141(r0)\n\
                    halt\n";
    let consumer = "poll: lw r1, 0x141(r0)\n\
                    beq r1, r0, poll\n\
                    lw r2, 0x140(r0)\n\
                    sw r2, 0x142(r0)\n\
                    halt\n";
    let mut platform = build_platform(
        vec![("prod", producer, 0), ("cons", consumer, 1)],
        &[(0, "prod"), (1, "cons")],
    );
    assert_eq!(platform.run(100_000).unwrap(), RunExit::AllHalted);
    assert_eq!(platform.peek_dm(0x142).unwrap(), 42);
    let cons = &platform.stats().cores[1];
    assert_eq!(cons.gated_cycles, 0, "no clock gating without SLEEP");
    assert!(
        cons.active_cycles > 500,
        "polling burns cycles: {}",
        cons.active_cycles
    );
}
