//! Differential proof that the two load-use hazard checks agree.
//!
//! The platform has two hazard predicates: [`Core::has_load_use_hazard`]
//! walks the instruction's `sources()` directly, while
//! [`Core::has_load_use_hazard_mask`] tests the predecoded
//! [`DecodedInstr::src_mask`] bitmask on the fast path. The simulator
//! relies on them being interchangeable; this suite proves it for every
//! decodable instruction — exhaustively over all opcode/register-field
//! combinations (including `Sw` store-data and branch source registers,
//! which live in unusual encoding fields) and by random sampling over
//! the full 24-bit word space.

use proptest::prelude::*;
use wbsn_isa::{DecodedInstr, Instr, Reg};
use wbsn_sim::cpu::Core;

/// A core whose hazard latch holds `rd`, as if `lw rd, 0(r0)` just
/// retired.
fn core_with_latched(rd: Reg) -> Core {
    let mut c = Core::new(0, 0);
    c.retire(Instr::lw(rd, Reg::R0, 0), Some(0));
    c
}

/// Asserts the instruction-walking and mask forms agree for `instr`
/// under every possible latch state (each of the 8 registers, plus no
/// latch at all).
fn assert_forms_agree(instr: Instr) {
    let mask = DecodedInstr::new(instr).src_mask;
    for latch in Reg::ALL {
        let c = core_with_latched(latch);
        assert_eq!(
            c.has_load_use_hazard(&instr),
            c.has_load_use_hazard_mask(mask),
            "hazard forms disagree for {instr:?} with latch {latch:?}",
        );
    }
    let clean = Core::new(0, 0);
    assert!(!clean.has_load_use_hazard(&instr));
    assert!(!clean.has_load_use_hazard_mask(mask));
}

/// Every opcode with every register-field combination: opcodes occupy
/// bits 18..24 and the three register fields bits 9..18, so sweeping
/// those with representative low bits covers every operand shape the
/// decoder can produce — `Sw` keeps its store-data register in the
/// "rd" field and branches keep both sources in the "rd"/"ra" fields,
/// exactly the shapes a naive mask builder would get wrong.
#[test]
fn hazard_forms_agree_on_every_opcode_and_register_shape() {
    let mut decodable = 0u32;
    for opcode in 0u32..0x40 {
        for regs in 0u32..512 {
            for low in [0u32, 0x1FF] {
                let word = (opcode << 18) | (regs << 9) | low;
                let Ok(instr) = Instr::decode(word) else {
                    continue;
                };
                decodable += 1;
                assert_forms_agree(instr);
            }
        }
    }
    assert!(decodable > 0, "the sweep decoded nothing");
}

proptest! {
    #[test]
    fn hazard_forms_agree_on_random_words(word in 0u32..1 << 24) {
        if let Ok(instr) = Instr::decode(word) {
            assert_forms_agree(instr);
        }
    }
}
