//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no cargo-registry access, so the workspace
//! vendors the subset of the `criterion 0.5` surface its benches use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::sample_size`],
//! [`BenchmarkGroup::throughput`], [`BenchmarkGroup::bench_function`],
//! [`BenchmarkGroup::finish`], [`Bencher::iter`], [`BenchmarkId`],
//! [`Throughput`] and the [`criterion_group!`]/[`criterion_main!`]
//! macros. Timing is a plain wall-clock mean over the sampled
//! iterations — enough for coarse throughput numbers, without
//! criterion's statistics, plotting or CLI.

use std::fmt;
use std::time::Instant;

/// Re-exported for convenience, as upstream does.
pub use std::hint::black_box;

/// Work-per-iteration declaration used to derive throughput rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus an optional parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter value.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> BenchmarkId {
        BenchmarkId {
            id: name.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> BenchmarkId {
        BenchmarkId { id: name }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Drives one benchmark's iterations.
pub struct Bencher {
    samples: u64,
    nanos_per_iter: f64,
}

impl Bencher {
    /// Times `routine`, keeping its result live via [`black_box`].
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One warm-up call, then the timed samples.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.nanos_per_iter = start.elapsed().as_nanos() as f64 / self.samples as f64;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: u64,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark sample count.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.samples = samples.max(1) as u64;
        self
    }

    /// Declares the work performed per iteration.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: self.samples,
            nanos_per_iter: 0.0,
        };
        f(&mut bencher);
        let per_iter = bencher.nanos_per_iter;
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if per_iter > 0.0 => {
                format!("  {:.1} Kelem/s", n as f64 / per_iter * 1e6)
            }
            Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
                format!(
                    "  {:.1} MiB/s",
                    n as f64 / per_iter * 1e9 / (1 << 20) as f64
                )
            }
            _ => String::new(),
        };
        println!("{}/{id}: {:.0} ns/iter{rate}", self.name, per_iter);
        self
    }

    /// Ends the group (kept for API parity; reporting is per-benchmark).
    pub fn finish(self) {}
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion;

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: 20,
            throughput: None,
            _criterion: self,
        }
    }
}

/// Declares a group function calling each benchmark target in turn.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
