//! Offline stand-in for the `threadpool` crate.
//!
//! The build environment has no registry access, so this vendored shim
//! provides the deterministic subset the sweep engine needs: a
//! fixed-size pool of worker threads draining one shared job queue.
//!
//! Semantics mirror the real crate where it matters:
//!
//! * [`ThreadPool::new`] spawns exactly `n` OS threads up front.
//! * [`ThreadPool::execute`] enqueues a job; any idle worker picks it up
//!   in FIFO order.
//! * [`ThreadPool::join`] blocks until every queued job has finished.
//! * Dropping the pool closes the queue and joins the workers.
//!
//! A panicking job poisons nothing: the worker catches the unwind and
//! keeps draining the queue, and [`ThreadPool::panic_count`] reports how
//! many jobs panicked.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Counters shared between the pool handle and its workers, used by
/// [`ThreadPool::join`] to detect the all-idle/queue-empty state.
#[derive(Default)]
struct PoolState {
    /// Jobs enqueued but not yet finished (running or queued).
    pending: AtomicUsize,
    /// Jobs whose closure panicked.
    panicked: AtomicUsize,
    /// Signalled every time a job finishes.
    done: Condvar,
    /// Guard for the `done` condvar (holds no data of its own).
    lock: Mutex<()>,
}

/// A fixed-size pool of worker threads draining a FIFO job queue.
pub struct ThreadPool {
    sender: Option<mpsc::Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    state: Arc<PoolState>,
}

impl ThreadPool {
    /// Creates a pool with `n` worker threads.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize) -> ThreadPool {
        assert!(n > 0, "a thread pool needs at least one worker");
        let (sender, receiver) = mpsc::channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let state = Arc::new(PoolState::default());
        let workers = (0..n)
            .map(|i| {
                let receiver = Arc::clone(&receiver);
                let state = Arc::clone(&state);
                std::thread::Builder::new()
                    .name(format!("pool-worker-{i}"))
                    .spawn(move || loop {
                        // Hold the receiver lock only while dequeuing so
                        // other workers can grab the next job while this
                        // one runs.
                        let job = match receiver.lock().unwrap().recv() {
                            Ok(job) => job,
                            Err(_) => return, // queue closed
                        };
                        if catch_unwind(AssertUnwindSafe(job)).is_err() {
                            state.panicked.fetch_add(1, Ordering::SeqCst);
                        }
                        state.pending.fetch_sub(1, Ordering::SeqCst);
                        let _guard = state.lock.lock().unwrap();
                        state.done.notify_all();
                    })
                    .expect("spawning a pool worker")
            })
            .collect();
        ThreadPool {
            sender: Some(sender),
            workers,
            state,
        }
    }

    /// Number of worker threads.
    pub fn max_count(&self) -> usize {
        self.workers.len()
    }

    /// Enqueues a job for execution by the next free worker.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        self.state.pending.fetch_add(1, Ordering::SeqCst);
        self.sender
            .as_ref()
            .expect("pool queue open")
            .send(Box::new(job))
            .expect("pool workers alive");
    }

    /// Blocks until every enqueued job has finished (the pool stays
    /// usable afterwards).
    pub fn join(&self) {
        let mut guard = self.state.lock.lock().unwrap();
        while self.state.pending.load(Ordering::SeqCst) > 0 {
            guard = self.state.done.wait(guard).unwrap();
        }
    }

    /// Jobs that panicked since the pool was created.
    pub fn panic_count(&self) -> usize {
        self.state.panicked.load(Ordering::SeqCst)
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Closing the channel makes every worker's recv fail once the
        // queue drains, so they exit after finishing in-flight work.
        self.sender.take();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_every_job_once() {
        let pool = ThreadPool::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let counter = Arc::clone(&counter);
            pool.execute(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.join();
        assert_eq!(counter.load(Ordering::SeqCst), 100);
        assert_eq!(pool.panic_count(), 0);
    }

    #[test]
    fn single_worker_preserves_fifo_order() {
        let pool = ThreadPool::new(1);
        let order = Arc::new(Mutex::new(Vec::new()));
        for i in 0..16 {
            let order = Arc::clone(&order);
            pool.execute(move || order.lock().unwrap().push(i));
        }
        pool.join();
        assert_eq!(*order.lock().unwrap(), (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn survives_panicking_jobs() {
        let pool = ThreadPool::new(2);
        let counter = Arc::new(AtomicUsize::new(0));
        for i in 0..10 {
            let counter = Arc::clone(&counter);
            pool.execute(move || {
                if i % 2 == 0 {
                    panic!("job {i} fails");
                }
                counter.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.join();
        assert_eq!(counter.load(Ordering::SeqCst), 5);
        assert_eq!(pool.panic_count(), 5);
    }

    #[test]
    fn join_is_reusable() {
        let pool = ThreadPool::new(2);
        pool.join(); // nothing queued: returns immediately
        let counter = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&counter);
        pool.execute(move || {
            c.fetch_add(1, Ordering::SeqCst);
        });
        pool.join();
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_is_rejected() {
        let _ = ThreadPool::new(0);
    }
}
