//! Offline stand-in for the `rand` crate.
//!
//! The build container has no access to a cargo registry, so the
//! workspace vendors the tiny subset of the `rand 0.8` API it actually
//! uses: `rngs::StdRng`, [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_bool`] and [`Rng::gen_range`] over integer and float
//! ranges. The generator is a fixed splitmix64/xoshiro-style stream —
//! deterministic per seed, which is all the ECG synthesizer and the
//! test harnesses require. It makes no statistical-quality or security
//! claims beyond that.

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32-bit word of the stream.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A seedable generator.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics when `p` is not within `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        unit_f64(self.next_u64()) < p
    }

    /// Samples uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(&mut |n| sample_words(self, n))
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

fn sample_words<R: RngCore + ?Sized>(rng: &mut R, _n: usize) -> u64 {
    rng.next_u64()
}

fn unit_f64(word: u64) -> f64 {
    // 53 uniform mantissa bits in [0, 1).
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range that a uniform value can be drawn from.
pub trait SampleRange<T> {
    /// Draws one value using the supplied word source.
    fn sample_from(self, words: &mut dyn FnMut(usize) -> u64) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, words: &mut dyn FnMut(usize) -> u64) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (words(1) as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from(self, words: &mut dyn FnMut(usize) -> u64) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (words(1) as u128 % span) as i128) as $t
            }
        }
    )+};
}

int_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! float_sample_range {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, words: &mut dyn FnMut(usize) -> u64) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let u = unit_f64(words(1)) as $t;
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from(self, words: &mut dyn FnMut(usize) -> u64) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let u = unit_f64(words(1)) as $t;
                lo + u * (hi - lo)
            }
        }
    )+};
}

float_sample_range!(f32, f64);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: a splitmix64 stream.
    ///
    /// Deterministic per seed; not the upstream ChaCha-based `StdRng`,
    /// but the workspace only relies on determinism.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen_range(0u32..1000), b.gen_range(0u32..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&x));
            let f = rng.gen_range(0.92f64..1.08);
            assert!((0.92..1.08).contains(&f));
            let u = rng.gen_range(3usize..9);
            assert!((3..9).contains(&u));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
