//! The usual imports: `use proptest::prelude::*;`.

pub use crate::arbitrary::{any, Arbitrary};
pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

/// Namespaced strategy modules (`prop::collection::vec`, ...).
pub mod prop {
    pub use crate::collection;
    pub use crate::strategy;
}
