//! Offline stand-in for the `proptest` crate.
//!
//! The build container cannot reach a cargo registry, so the workspace
//! vendors a small, self-contained property-testing engine exposing the
//! subset of the `proptest 1.x` surface its tests use:
//!
//! * the [`proptest!`] macro with `arg in strategy` bindings,
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`],
//! * [`arbitrary::any`] for primitives, integer/float range strategies,
//!   tuple strategies, [`strategy::Just`], [`prop_oneof!`],
//!   [`Strategy::prop_map`] and [`Strategy::boxed`],
//! * [`collection::vec`] and [`collection::btree_set`].
//!
//! Inputs are drawn from a deterministic per-test stream (seeded from
//! the test name) so failures reproduce; there is no shrinking — the
//! failing inputs are printed instead. Case count defaults to 64 and
//! can be overridden with `PROPTEST_CASES`.

pub mod arbitrary;
pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

/// Defines property tests: each function runs its body for many
/// generated inputs.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run_cases(stringify!($name), |__wbsn_rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), __wbsn_rng);)+
                    let __wbsn_reporter = $crate::test_runner::InputReporter::new({
                        let mut s = String::new();
                        $(s.push_str(&format!(
                            "  {} = {:?}\n",
                            stringify!($arg),
                            &$arg
                        ));)+
                        s
                    });
                    // Bodies may early-out with `return Ok(())`, as with
                    // upstream proptest; assertion macros panic instead
                    // of returning `Err`.
                    let __wbsn_result: ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = __wbsn_result {
                        panic!("property rejected: {:?}", e);
                    }
                    ::std::mem::drop(__wbsn_reporter);
                });
            }
        )+
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            panic!("property assertion failed: {}", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            panic!($($fmt)+);
        }
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            panic!(
                "property assertion failed: {} == {}\n  left: {:?}\n  right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            );
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            panic!(
                "{}\n  left: {:?}\n  right: {:?}",
                format!($($fmt)+),
                l,
                r
            );
        }
    }};
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            panic!(
                "property assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            );
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            panic!("{}\n  both: {:?}", format!($($fmt)+), l);
        }
    }};
}

/// Chooses uniformly between several strategies producing the same
/// value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
