//! Deterministic case runner behind the [`proptest!`] macro.

/// Explicit case rejection (bodies may `return Ok(())` to accept early;
/// returning `Err` fails the property).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCaseError(pub String);

/// The word stream inputs are drawn from: splitmix64, seeded per test.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a stream from a 64-bit seed.
    pub fn from_seed(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// Returns the next word of the stream.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics when `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty sampling domain");
        self.next_u64() % bound
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Number of cases per property (`PROPTEST_CASES` overrides).
pub fn case_count() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

fn seed_for(name: &str) -> u64 {
    // FNV-1a over the test name: stable across runs and platforms.
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Runs `case` for [`case_count`] deterministic inputs.
pub fn run_cases(name: &str, mut case: impl FnMut(&mut TestRng)) {
    let mut rng = TestRng::from_seed(seed_for(name));
    for index in 0..case_count() {
        let mut case_rng = TestRng::from_seed(rng.next_u64() ^ index as u64);
        case(&mut case_rng);
    }
}

/// Prints the generated inputs when a case panics.
///
/// Formatting happens eagerly so the case body stays free to consume
/// the bound values.
pub struct InputReporter {
    rendered: String,
}

impl InputReporter {
    /// Wraps the rendered inputs of the current case.
    pub fn new(rendered: String) -> InputReporter {
        InputReporter { rendered }
    }
}

impl Drop for InputReporter {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!("proptest case inputs:\n{}", self.rendered);
        }
    }
}
