//! Value-generation strategies.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// Something that can generate values of an associated type.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between several boxed strategies ([`prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over `options`.
    ///
    /// # Panics
    ///
    /// Panics when `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let index = rng.below(self.options.len() as u64) as usize;
        self.options[index].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )+};
}

int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! float_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + (rng.unit_f64() as $t) * (hi - lo)
            }
        }
    )+};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// A strategy wrapper around [`crate::arbitrary::Arbitrary`] types.
pub struct Any<T> {
    _marker: PhantomData<fn() -> T>,
}

impl<T> Any<T> {
    pub(crate) fn new() -> Any<T> {
        Any {
            _marker: PhantomData,
        }
    }
}

impl<T: crate::arbitrary::Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}
