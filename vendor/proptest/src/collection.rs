//! Collection strategies: `vec` and `btree_set`.

use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// An element-count specification.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max_inclusive: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        let span = (self.max_inclusive - self.min + 1) as u64;
        self.min + rng.below(span) as usize
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange {
            min: n,
            max_inclusive: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max_inclusive: *r.end(),
        }
    }
}

/// Generates vectors whose length is drawn from `size` and whose
/// elements come from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// The result of [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generates ordered sets whose size is drawn from `size`.
///
/// When the element domain is too small to reach the drawn size, the
/// set saturates at however many distinct values the attempt budget
/// produced (mirroring upstream's best-effort behaviour).
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// The result of [`btree_set`].
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = self.size.pick(rng);
        let mut set = BTreeSet::new();
        let mut attempts = 0usize;
        while set.len() < target && attempts < target.saturating_mul(64).max(64) {
            set.insert(self.element.generate(rng));
            attempts += 1;
        }
        set
    }
}
