//! `any::<T>()` support for primitive types.

use crate::strategy::Any;
use crate::test_runner::TestRng;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one value from the type's whole domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any::new()
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}

int_arbitrary!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);
