//! Measures raw simulator throughput (simulated cycles per wall-clock
//! second) for the single-core and multi-core 3L-MF builds — the
//! repo's quick interpreter-speed probe.
//!
//! Usage: `cargo run --release --example sim_throughput [seconds]`

use std::time::Instant;

use wbsn_dsp::ecg::{synthesize, EcgConfig};
use wbsn_kernels::{build_mf, Arch, BuildOptions};

fn main() {
    let seconds: f64 = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(5.0);
    let rec = synthesize(&EcgConfig {
        duration_s: seconds,
        ..EcgConfig::healthy_60s()
    });
    for arch in [Arch::SingleCore, Arch::MultiCore] {
        let options = BuildOptions {
            adc_period_cycles: 4600,
            ..BuildOptions::default()
        };
        let app = build_mf(arch, &options).expect("MF builds");
        let samples = rec.leads[0].len() as u64;
        let total = app.config.adc.start_cycle + samples * options.adc_period_cycles;
        let mut platform = app.platform(rec.leads.clone()).expect("platform builds");
        let start = Instant::now();
        platform.run(total).expect("runs clean");
        let wall = start.elapsed().as_secs_f64();
        let cycles = platform.stats().cycles;
        println!(
            "{arch:?}: {cycles} cycles in {wall:.3} s  ->  {:.2} Mcycles/s",
            cycles as f64 / wall / 1e6
        );
    }
}
