//! Building your *own* application on the platform — the complete
//! methodology, end to end, on something that is not one of the paper's
//! benchmarks: a two-channel activity monitor where two acquisition
//! phases compute per-channel moving averages and a third phase raises
//! an alarm when both channels exceed a threshold simultaneously.
//!
//! The walk-through mirrors §III-B of the paper:
//! 1. partition the application into phases (task graph),
//! 2. map phases onto cores, banks and synchronization points,
//! 3. generate the phase code with the insertion rules applied,
//! 4. link, load and run.
//!
//! Run with: `cargo run --release --example custom_app`

use wbsn::core::{Mapper, Phase, TaskGraph};
use wbsn::isa::{BranchCond, Instr, Linker, ProgramBuilder, Reg, Section};
use wbsn::sim::mmio::{ADC_DATA_BASE, ADC_SEQ_BASE, SYNC_SUBSCRIBE};
use wbsn::sim::{Platform, PlatformConfig};

const WINDOW: i16 = 8; // moving-average window (power of two)
const THRESHOLD: i16 = 120; // alarm threshold on the channel averages
const AVG_BASE: u32 = 0x100; // shared: per-channel averages
const ALARM_COUNT: u32 = 0x102; // shared: number of alarms raised
const SAMPLE_COUNT: u32 = 0x103; // shared: samples processed by channel 0

/// Step 3a: the acquisition phase — identical binary for both channels,
/// parameterized by the CORE_ID register exactly like the paper's
/// lock-step groups.
fn build_averager(consume_point: u16, lockstep_point: u16) -> wbsn::isa::Program {
    let mut b = ProgramBuilder::new();
    // Private layout: 0 = last_seq, 1 = running sum, 2.. = pointers.
    b.load_const(Reg::R0, 0);
    b.load_const(Reg::R6, 0x1800); // private base
                                   // ch = CORE_ID; precompute &ADC_SEQ[ch], &ADC_DATA[ch], &avg[ch].
    b.load_const(Reg::R2, 0x7F22); // CORE_ID
    b.push(Instr::lw(Reg::R5, Reg::R2, 0));
    b.load_const(Reg::R2, ADC_SEQ_BASE as u16);
    b.push(Instr::add(Reg::R2, Reg::R2, Reg::R5));
    b.push(Instr::sw(Reg::R2, Reg::R6, 2));
    b.load_const(Reg::R2, ADC_DATA_BASE as u16);
    b.push(Instr::add(Reg::R2, Reg::R2, Reg::R5));
    b.push(Instr::sw(Reg::R2, Reg::R6, 3));
    b.load_const(Reg::R2, AVG_BASE as u16);
    b.push(Instr::add(Reg::R2, Reg::R2, Reg::R5));
    b.push(Instr::sw(Reg::R2, Reg::R6, 4));
    // Subscribe to the channel's data-ready interrupt.
    b.load_const(Reg::R2, 1);
    b.push(Instr::Alu {
        op: wbsn::isa::AluOp::Sll,
        rd: Reg::R2,
        ra: Reg::R2,
        rb: Reg::R5,
    });
    b.load_const(Reg::R3, SYNC_SUBSCRIBE as u16);
    b.push(Instr::sw(Reg::R2, Reg::R3, 0));

    b.label("loop").expect("unique label");
    b.push(Instr::Sleep);
    // Fresh sample?
    b.push(Instr::lw(Reg::R2, Reg::R6, 2));
    b.push(Instr::lw(Reg::R1, Reg::R2, 0));
    b.push(Instr::lw(Reg::R3, Reg::R6, 0));
    b.branch_to(BranchCond::Eq, Reg::R1, Reg::R3, "loop");
    b.push(Instr::sw(Reg::R1, Reg::R6, 0));
    // Insertion rule: producers SINC when they start computing, and the
    // lock-step pair re-aligns through its barrier point.
    b.push(Instr::sinc(consume_point));
    b.push(Instr::sinc(lockstep_point));
    // Exponential moving average: sum += x - sum/WINDOW; avg = sum/WINDOW.
    b.push(Instr::lw(Reg::R2, Reg::R6, 3));
    b.push(Instr::lw(Reg::R1, Reg::R2, 0)); // x
    b.push(Instr::lw(Reg::R2, Reg::R6, 1)); // sum
    b.push(Instr::srai(
        Reg::R3,
        Reg::R2,
        WINDOW.trailing_zeros() as i16,
    ));
    b.push(Instr::sub(Reg::R2, Reg::R2, Reg::R3));
    b.push(Instr::add(Reg::R2, Reg::R2, Reg::R1));
    b.push(Instr::sw(Reg::R2, Reg::R6, 1));
    b.push(Instr::srai(
        Reg::R1,
        Reg::R2,
        WINDOW.trailing_zeros() as i16,
    ));
    b.push(Instr::lw(Reg::R2, Reg::R6, 4));
    b.push(Instr::sw(Reg::R1, Reg::R2, 0)); // publish avg[ch]
                                            // Barrier, then signal the consumer.
    b.push(Instr::sdec(lockstep_point));
    b.push(Instr::Sleep);
    b.push(Instr::sdec(consume_point));
    b.jmp_to("loop");
    b.assemble().expect("averager assembles")
}

/// Step 3b: the alarm phase — the consumer: SNOP + SLEEP, then compare
/// both averages against the threshold.
fn build_alarm(consume_point: u16) -> wbsn::isa::Program {
    let mut b = ProgramBuilder::new();
    b.load_const(Reg::R0, 0);
    b.label("loop").expect("unique label");
    b.push(Instr::snop(consume_point));
    b.push(Instr::Sleep);
    b.load_const(Reg::R2, AVG_BASE as u16);
    b.push(Instr::lw(Reg::R1, Reg::R2, 0));
    b.push(Instr::lw(Reg::R3, Reg::R2, 1));
    // Count processed rounds.
    b.load_const(Reg::R2, SAMPLE_COUNT as u16);
    b.push(Instr::lw(Reg::R4, Reg::R2, 0));
    b.push(Instr::addi(Reg::R4, Reg::R4, 1));
    b.push(Instr::sw(Reg::R4, Reg::R2, 0));
    // Alarm when min(avg0, avg1) > THRESHOLD.
    b.push(Instr::min(Reg::R1, Reg::R1, Reg::R3));
    b.load_const_i16(Reg::R3, THRESHOLD);
    b.branch_to(BranchCond::Ge, Reg::R3, Reg::R1, "loop"); // below threshold
    b.load_const(Reg::R2, ALARM_COUNT as u16);
    b.push(Instr::lw(Reg::R4, Reg::R2, 0));
    b.push(Instr::addi(Reg::R4, Reg::R4, 1));
    b.push(Instr::sw(Reg::R4, Reg::R2, 0));
    b.jmp_to("loop");
    b.assemble().expect("alarm assembles")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Step 1: partition.
    let mut graph = TaskGraph::new();
    let avg0 = graph.add_phase(Phase::acquire("avg0", 0))?;
    let avg1 = graph.add_phase(Phase::acquire("avg1", 1))?;
    let alarm = graph.add_phase(Phase::compute("alarm"))?;
    graph.add_edge(avg0, alarm)?;
    graph.add_edge(avg1, alarm)?;
    graph.add_lockstep_group(&[avg0, avg1])?;

    // Step 2: map.
    let plan = Mapper::new(8, 8, 16).map(&graph)?;
    let consume = plan.consume_point(alarm).expect("alarm has producers");
    let lockstep = plan.lockstep_point(avg0).expect("group has a barrier");
    println!(
        "mapping: {} cores, {} IM banks, {} sync points (consume {consume}, barrier {lockstep})",
        plan.cores_used(),
        plan.banks_used(),
        plan.points_used()
    );

    // Step 3 + 4: generate, link, load.
    let mut linker = Linker::new();
    linker.add_section(Section::in_bank(
        "averager",
        build_averager(consume, lockstep),
        plan.bank_of(avg0),
    ));
    linker.add_section(Section::in_bank(
        "alarm",
        build_alarm(consume),
        plan.bank_of(alarm),
    ));
    linker.set_entry(plan.core_of(avg0).index(), "averager");
    linker.set_entry(plan.core_of(avg1).index(), "averager");
    linker.set_entry(plan.core_of(alarm).index(), "alarm");
    let image = linker.link()?;

    let mut config = PlatformConfig::multi_core();
    config.adc.channels = 2;
    config.adc.period_cycles = 2_000;
    let mut platform = Platform::new(config, &image)?;

    // Two synthetic activity channels: quiet, then a joint burst.
    let n = 2_000usize;
    let channel = |phase: usize| -> Vec<i16> {
        (0..n)
            .map(|i| {
                let base = if (800..1400).contains(&i) { 200 } else { 40 };
                base + ((i * 7 + phase * 13) % 11) as i16
            })
            .collect()
    };
    platform.set_adc_streams(vec![channel(0), channel(1)]);
    platform.run(2_000 * (n as u64 + 4))?;

    let rounds = platform.peek_dm(SAMPLE_COUNT)?;
    let alarms = platform.peek_dm(ALARM_COUNT)?;
    let stats = platform.stats();
    println!("rounds processed : {rounds}");
    println!("alarms raised    : {alarms}");
    println!(
        "avg0 {} / avg1 {} (final)",
        platform.peek_dm(AVG_BASE)? as i16,
        platform.peek_dm(AVG_BASE + 1)? as i16
    );
    println!(
        "IM broadcast {:.1}%  |  alarm-core duty {:.2}%  |  sync overhead {:.2}%",
        stats.im.broadcast_percent(),
        100.0 * stats.cores[plan.core_of(alarm).index()].duty_cycle(),
        stats.runtime_overhead_percent()
    );
    assert!(alarms > 0, "the joint burst must raise alarms");
    assert!(rounds as usize >= n - 2);
    Ok(())
}
