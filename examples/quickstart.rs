//! Quickstart: assemble a tiny producer-consumer application with the
//! synchronization ISE, run it on the multi-core platform, and inspect
//! the synchronizer's behaviour.
//!
//! Run with: `cargo run --example quickstart`

use wbsn::isa::{assemble_text, Linker, Section};
use wbsn::sim::{Platform, PlatformConfig, RunExit};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two producers compute halves of a sum; a consumer SNOPs on the
    // synchronization point, sleeps, and combines the results once both
    // producers have SDEC'd — the mechanism of the paper's Fig. 3-a.
    let producer_a = assemble_text(
        "sinc 0          ; register as producer\n\
         li   r1, 0\n\
         li   r2, 100\n\
         acc: add  r1, r1, r2\n\
         addi r2, r2, -1\n\
         bne  r2, r0, acc\n\
         sw   r1, 0x100(r0)\n\
         sdec 0          ; data ready\n\
         halt\n",
    )?;
    let producer_b = assemble_text(
        "sinc 0\n\
         li   r1, 21\n\
         add  r1, r1, r1\n\
         sw   r1, 0x101(r0)\n\
         sdec 0\n\
         halt\n",
    )?;
    let consumer = assemble_text(
        "snop 0          ; subscribe to the point\n\
         sleep           ; clock-gate until the counter reaches zero\n\
         lw   r1, 0x100(r0)\n\
         lw   r2, 0x101(r0)\n\
         add  r1, r1, r2\n\
         sw   r1, 0x102(r0)\n\
         halt\n",
    )?;

    let mut linker = Linker::new();
    linker.add_section(Section::in_bank("producer_a", producer_a, 0));
    linker.add_section(Section::in_bank("producer_b", producer_b, 1));
    linker.add_section(Section::in_bank("consumer", consumer, 2));
    linker.set_entry(0, "producer_a");
    linker.set_entry(1, "producer_b");
    linker.set_entry(2, "consumer");
    let image = linker.link()?;

    let mut platform = Platform::new(PlatformConfig::multi_core(), &image)?;
    let exit = platform.run(100_000)?;
    assert_eq!(exit, RunExit::AllHalted);

    let sum_a = platform.peek_dm(0x100)?;
    let sum_b = platform.peek_dm(0x101)?;
    let total = platform.peek_dm(0x102)?;
    println!("producer A: {sum_a}  (sum of 1..=100)");
    println!("producer B: {sum_b}");
    println!("consumer  : {total}");
    assert_eq!(total, sum_a + sum_b);

    let stats = platform.stats();
    let sync = platform.synchronizer().stats();
    println!();
    println!("cycles simulated        : {}", stats.cycles);
    println!("consumer gated cycles   : {}", stats.cores[2].gated_cycles);
    println!("synchronizer fires      : {}", sync.fires);
    println!("requests merged         : {}", sync.merged);
    println!(
        "run-time sync overhead  : {:.2}%",
        stats.runtime_overhead_percent()
    );
    Ok(())
}
