//! RP-CLASS in action: a six-core heartbeat monitor whose four-core
//! delineation chain wakes up only for pathological beats.
//!
//! Run with: `cargo run --release --example pathological_monitor`

use wbsn::dsp::ecg::{synthesize, EcgConfig};
use wbsn::kernels::{build_rpclass, layout, Arch, BuildOptions, ClassifierParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("training the random-projection classifier offline...");
    let params = ClassifierParams::default_trained();
    let options = BuildOptions {
        // A generous sampling period so the single build works for every
        // input mix in this demo.
        adc_period_cycles: 16_000,
        ..BuildOptions::default()
    };
    let app = build_rpclass(Arch::MultiCore, &options, &params)?;

    for fraction in [0.0, 0.3] {
        let recording = synthesize(&EcgConfig {
            fs: 500,
            duration_s: 8.0,
            pathological_fraction: fraction,
            seed: 0xD0C7,
            ..EcgConfig::healthy_60s()
        });
        let samples = recording.leads[0].len() as u64;
        let budget = app.config.adc.start_cycle + (samples + 8) * app.config.adc.period_cycles;
        let mut platform = app.platform(recording.leads.clone())?;
        platform.run(budget)?;

        let beats = platform.peek_dm(layout::BEAT_COUNT)?;
        let pathological = platform.peek_dm(layout::PATH_COUNT)?;
        let events = platform.peek_dm(layout::EVENT_COUNT)?;
        println!(
            "\n=== input with {:.0}% abnormal beats ===",
            fraction * 100.0
        );
        println!("beats classified      : {beats} ({pathological} pathological)");
        println!("delineation events    : {events}");
        let stats = platform.stats();
        let names = [
            "classifier",
            "conditioner0",
            "chain cond1",
            "chain cond2",
            "chain combine",
            "chain delineate",
        ];
        for (core, name) in names.iter().enumerate() {
            println!(
                "  {name:<16} duty {:5.2}%",
                100.0 * stats.cores[core].duty_cycle()
            );
        }
    }
    println!("\nthe chain's duty rises only when abnormalities are present —");
    println!("the non-uniform workload the paper's Fig. 7 sweeps.");
    Ok(())
}
