//! The 3L-MMD pipeline end to end: synthesize a three-lead ECG, run the
//! five-core delineation application on the simulated platform, and
//! check its fiducial points against the golden Rust model.
//!
//! Run with: `cargo run --release --example ecg_pipeline`

use wbsn::dsp::ecg::{synthesize, EcgConfig};
use wbsn::kernels::golden::{golden_combined, golden_fiducials, golden_filtered};
use wbsn::kernels::{build_mmd, layout, Arch, BuildOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let recording = synthesize(&EcgConfig {
        fs: 500,
        duration_s: 4.0,
        ..EcgConfig::healthy_60s()
    });
    println!(
        "synthesized {} samples x {} leads, {} beats",
        recording.leads[0].len(),
        recording.leads.len(),
        recording.beats.len()
    );

    let app = build_mmd(Arch::MultiCore, &BuildOptions::default())?;
    println!(
        "{}",
        app.plan.as_ref().expect("multi-core build has a plan")
    );
    println!("code overhead {:.2}%", app.code_overhead_percent());

    let samples = recording.leads[0].len() as u64;
    let budget = app.config.adc.start_cycle + (samples + 8) * app.config.adc.period_cycles;
    let mut platform = app.platform(recording.leads.clone())?;
    platform.run(budget)?;

    // Fiducial points found by the platform.
    let events = platform.peek_dm(layout::EVENT_COUNT)? as usize;
    println!("\nfiducial points detected on the platform: {events}");
    for i in 0..events {
        let slot = layout::EVENT_RING + 4 * (i as u32 & (layout::EVENT_RING_LEN - 1));
        let onset = platform.peek_dm(slot)?;
        let sample = platform.peek_dm(slot + 1)?;
        let strength = platform.peek_dm(slot + 2)? as i16;
        println!("  event {i}: onset {onset}, peak {sample}, strength {strength}");
    }

    // Cross-check against the golden model.
    let golden = golden_fiducials(&golden_combined(&golden_filtered(&recording)));
    assert_eq!(events, golden.len(), "platform and golden model agree");
    println!("golden model agrees: {} fiducial points", golden.len());

    let stats = platform.stats();
    println!(
        "\nIM broadcast: {:.1}%  |  synchronizer fires: {}  |  run-time overhead: {:.2}%",
        stats.im.broadcast_percent(),
        platform.synchronizer().stats().fires,
        stats.runtime_overhead_percent()
    );
    for core in 0..app.active_cores {
        println!(
            "core {core}: duty {:5.1}%  ({} instructions)",
            100.0 * stats.cores[core].duty_cycle(),
            stats.cores[core].instructions
        );
    }
    Ok(())
}
