; Load-use hazard demo: a morphological-style scan whose hot loop has a
; back-to-back `lw` → `min` pair, the dominant stall shape of the
; generated kernels. Assembled twice by the observability smoke job —
; plain and with `--schedule` — to prove the load-latency-aware
; scheduler cuts the hazard-stall bucket on a committed workload:
;   wbsn-asm -o scan.img examples/asm/scan.asm
;   wbsn-asm --schedule -o scan-sched.img examples/asm/scan.asm
;   wbsn-run --profile scan.img
.equ N, 16
.equ BASE, 0x80
.equ RESULT, 0xA0
    ; Fill BASE..BASE+N with N..1.
    li r1, N
    li r4, BASE
fill:
    sw r1, 0(r4)
    addi r4, r4, 1
    addi r1, r1, -1
    bne r1, r0, fill
    ; Scan for the minimum; `min` consumes the word loaded one slot
    ; earlier, so every iteration stalls a cycle unless the scheduler
    ; hoists an independent pointer/counter update into the slot.
    li r4, BASE
    li r3, N
    li r5, 0x7FF
scan:
    lw r2, 0(r4)
    min r5, r5, r2
    addi r4, r4, 1
    addi r3, r3, -1
    bne r3, r0, scan
    sw r5, RESULT(r0)
    halt
