; Lead-2 conditioning phase: the middle arm of the group.
.equ ROUNDS, 4
.equ BODY, 30
.equ STAMP, 0x102
    li r3, ROUNDS
round:
    sinc 0
    li r1, BODY
body:
    addi r1, r1, -1
    bne r1, r0, body
    sdec 0
    sleep
    addi r3, r3, -1
    bne r3, r0, round
    li r2, 1
    sw r2, STAMP(r0)
    halt
