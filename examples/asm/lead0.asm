; Lead-0 conditioning phase of the observability demo: the slowest arm
; of a three-core lock-step group (Fig. 3-b shape). Each core enters the
; barrier with SINC, runs a data-dependent body of its own length, and
; leaves through SDEC + SLEEP; the synchronizer wakes everyone when the
; last one arrives. Build with:
;   wbsn-asm --lint -o demo.img \
;     examples/asm/lead0.asm:0 examples/asm/lead1.asm:1 examples/asm/lead2.asm:2 \
;     --entry 0=lead0 --entry 1=lead1 --entry 2=lead2
.equ ROUNDS, 4
.equ BODY, 60
.equ STAMP, 0x100
    li r3, ROUNDS
round:
    sinc 0
    li r1, BODY
body:
    addi r1, r1, -1
    bne r1, r0, body
    sdec 0
    sleep
    addi r3, r3, -1
    bne r3, r0, round
    li r2, 1
    sw r2, STAMP(r0)
    halt
