; Lead-1 conditioning phase: the fastest arm of the group. It reaches
; the barrier first and spends most of its time clock-gated — the sleep
; slices on its Perfetto track.
.equ ROUNDS, 4
.equ BODY, 5
.equ STAMP, 0x101
    li r3, ROUNDS
round:
    sinc 0
    li r1, BODY
body:
    addi r1, r1, -1
    bne r1, r0, body
    sdec 0
    sleep
    addi r3, r3, -1
    bne r3, r0, round
    li r2, 1
    sw r2, STAMP(r0)
    halt
