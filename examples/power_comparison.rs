//! The headline experiment in miniature: measure the 3L-MF benchmark on
//! the single-core baseline and the multi-core platform with the
//! proposed synchronization, and print the Fig. 6-style power
//! decomposition of both.
//!
//! Run with: `cargo run --release --example power_comparison`

use wbsn_bench::{measure, BenchmarkId, ExperimentConfig, RunVariant};
use wbsn_kernels::ClassifierParams;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = ExperimentConfig {
        duration_s: 10.0,
        ..ExperimentConfig::default()
    };
    let params = ClassifierParams::default_trained();

    let sc = measure(BenchmarkId::Mf, RunVariant::SingleCore, &config, &params)?;
    let mc = measure(BenchmarkId::Mf, RunVariant::MultiCoreSync, &config, &params)?;

    for m in [&sc, &mc] {
        println!("=== {} on {} ===", m.benchmark.name(), m.variant.label());
        println!(
            "clock {:.1} MHz at {:.1} V, {} cores, IM broadcast {:.1}%",
            m.clock_hz / 1e6,
            m.voltage,
            m.active_cores,
            m.im_broadcast_percent
        );
        println!("{}", m.breakdown);
        println!();
    }
    let saving = 100.0 * (1.0 - mc.power_uw() / sc.power_uw());
    println!("multi-core saving: {saving:.1}%  (the paper reports up to 40% for this benchmark)");
    Ok(())
}
