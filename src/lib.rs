//! Facade crate re-exporting the whole WBSN reproduction workspace.
//!
//! This crate exists so that examples and cross-crate integration tests
//! can depend on a single name. See the individual crates for the actual
//! functionality:
//!
//! * [`isa`] — instruction set, assembler, builder, linker.
//! * [`core`] — synchronization points, synchronizer unit, task graphs
//!   and application mapping (the paper's contribution).
//! * [`sim`] — the cycle-level multi-core WBSN platform simulator.
//! * [`power`] — energy characterization, VFS and power breakdown.
//! * [`dsp`] — golden fixed-point bio-signal processing and the
//!   synthetic multi-lead ECG generator.
//! * [`kernels`] — the 3L-MF, 3L-MMD and RP-CLASS benchmark
//!   applications as generated ISA programs.

pub use wbsn_core as core;
pub use wbsn_dsp as dsp;
pub use wbsn_isa as isa;
pub use wbsn_kernels as kernels;
pub use wbsn_power as power;
pub use wbsn_sim as sim;
