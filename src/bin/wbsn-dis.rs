//! Command-line disassembler for WBSN images.
//!
//! ```text
//! USAGE: wbsn-dis <image.img>
//! ```

use std::process::ExitCode;

use wbsn::isa::{disasm, image};

fn main() -> ExitCode {
    let Some(input) = std::env::args().nth(1) else {
        eprintln!("usage: wbsn-dis <image.img>");
        return ExitCode::from(2);
    };
    let bytes = match std::fs::read(&input) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("wbsn-dis: cannot read {input}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let linked = match image::from_bytes(&bytes) {
        Ok(i) => i,
        Err(e) => {
            eprintln!("wbsn-dis: {input}: {e}");
            return ExitCode::FAILURE;
        }
    };
    for section in linked.sections() {
        let entry = linked
            .entries()
            .filter(|(_, addr)| *addr == section.base)
            .map(|(core, _)| format!(" <- core {core}"))
            .collect::<String>();
        println!(
            "section {} @ {:#06x} (bank {}){entry}:",
            section.name,
            section.base,
            section.base as usize / wbsn::isa::IM_BANK_WORDS
        );
        let words: Vec<u32> = (0..section.len)
            .map(|offset| linked.instr_word(section.base + offset as u32))
            .collect();
        for line in disasm::disassemble(&words, section.base) {
            println!("  {line}");
        }
        println!();
    }
    let init: Vec<(u32, u16)> = linked.dm_init().collect();
    if !init.is_empty() {
        println!("initial data ({} words):", init.len());
        for (addr, word) in init {
            println!("  {addr:#06x}: {word:#06x}");
        }
    }
    ExitCode::SUCCESS
}
