//! Command-line platform runner: load a WBSN image and execute it.
//!
//! ```text
//! USAGE: wbsn-run [OPTIONS] <image.img>
//!
//!   --single-core        decoder baseline (default: 8-core platform)
//!   --forwarding         model a memory→execute bypass: back-to-back
//!                        load-use pairs cost no hazard stall
//!   --cycles <N>         cycle budget (default: 1,000,000)
//!   --check              statically verify the image's synchronization
//!                        protocol before running; violations abort
//!   --watchdog-cycles N  arm the runtime watchdog: a deadlock or N
//!                        cycles without progress exits with a
//!                        post-mortem dump instead of hanging
//!   --dump <addr:len>    print a data-memory range after the run (repeatable)
//!   --trace <N>          keep and print the last N retirements
//!   --break <pc>         stop when any core is about to execute pc (repeatable)
//!   --watch <addr>       stop after any core writes addr (repeatable)
//!   --trace-json <path>  write a Chrome/Perfetto trace_event timeline
//!                        (open it in ui.perfetto.dev)
//!   --profile            print the per-(core, phase) cycle attribution
//!                        table and event-stream summary after the run
//!   --stats-json <path>  write SimStats + SyncStats as stable JSON
//! ```

use std::process::ExitCode;

use wbsn::core::mapping::verify::{verify_image, VerifyConfig};
use wbsn::isa::{image, PhaseTable};
use wbsn::sim::{stats_json, ObsConfig, Platform, PlatformConfig};

fn usage() -> ExitCode {
    eprintln!(
        "usage: wbsn-run [--single-core] [--forwarding] [--cycles N] [--check] [--watchdog-cycles N] [--dump addr:len]... [--trace N] [--break pc]... [--watch addr]... [--trace-json path] [--profile] [--stats-json path] <image.img>"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut single_core = false;
    let mut forwarding = false;
    let mut cycles: u64 = 1_000_000;
    let mut check = false;
    let mut watchdog: Option<u64> = None;
    let mut dumps: Vec<(u32, u32)> = Vec::new();
    let mut trace: Option<usize> = None;
    let mut breakpoints: Vec<u32> = Vec::new();
    let mut watchpoints: Vec<u32> = Vec::new();
    let mut trace_json: Option<String> = None;
    let mut profile = false;
    let mut stats_json_path: Option<String> = None;
    let mut input: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--single-core" => single_core = true,
            "--forwarding" => forwarding = true,
            "--check" => check = true,
            "--cycles" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => cycles = n,
                None => return usage(),
            },
            "--watchdog-cycles" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => watchdog = Some(n),
                None => return usage(),
            },
            "--trace" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => trace = Some(n),
                None => return usage(),
            },
            "--break" => match args.next().and_then(|v| parse_int(&v).ok()) {
                Some(pc) => breakpoints.push(pc),
                None => return usage(),
            },
            "--watch" => match args.next().and_then(|v| parse_int(&v).ok()) {
                Some(addr) => watchpoints.push(addr),
                None => return usage(),
            },
            "--dump" => {
                let Some(spec) = args.next() else {
                    return usage();
                };
                let Some((addr, len)) = spec.split_once(':') else {
                    return usage();
                };
                match (parse_int(addr), parse_int(len)) {
                    (Ok(a), Ok(l)) => dumps.push((a, l)),
                    _ => return usage(),
                }
            }
            "--trace-json" => match args.next() {
                Some(path) => trace_json = Some(path),
                None => return usage(),
            },
            "--profile" => profile = true,
            "--stats-json" => match args.next() {
                Some(path) => stats_json_path = Some(path),
                None => return usage(),
            },
            "-h" | "--help" => return usage(),
            path => input = Some(path.to_string()),
        }
    }
    let Some(input) = input else { return usage() };

    let bytes = match std::fs::read(&input) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("wbsn-run: cannot read {input}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let linked = match image::from_bytes(&bytes) {
        Ok(i) => i,
        Err(e) => {
            eprintln!("wbsn-run: {input}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let config = if single_core {
        PlatformConfig::single_core()
    } else {
        PlatformConfig::multi_core()
    };
    if check {
        let verify_config = VerifyConfig::new(config.sync_points as u16);
        match verify_image(&linked, &verify_config) {
            Ok(diags) if diags.is_empty() => {
                println!("check: synchronization protocol OK");
            }
            Ok(diags) => {
                for diag in &diags {
                    eprintln!("wbsn-run: check: {diag}");
                }
                eprintln!(
                    "wbsn-run: {input}: {} synchronization protocol violation(s)",
                    diags.len()
                );
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("wbsn-run: check: {input}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let mut platform = match Platform::new(config, &linked) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("wbsn-run: {e}");
            return ExitCode::FAILURE;
        }
    };
    platform.set_forwarding(forwarding);
    if let Some(capacity) = trace {
        platform.enable_trace(capacity, 0xFF);
    }
    if let Some(stall_cycles) = watchdog {
        platform.set_watchdog(stall_cycles);
    }
    for pc in breakpoints {
        platform.add_breakpoint(pc);
    }
    for addr in watchpoints {
        platform.add_watchpoint(addr);
    }
    if profile || trace_json.is_some() {
        platform.enable_obs(ObsConfig {
            counting: true,
            profile,
            trace: trace_json.is_some(),
            ring: 256,
            phases: Some(PhaseTable::from_image(&linked)),
        });
    }

    match platform.run(cycles) {
        Ok(exit) => {
            let stats = platform.stats();
            println!("exit: {exit:?} after {} cycles", stats.cycles);
            for (core, cs) in stats.cores.iter().enumerate() {
                if cs.instructions == 0 {
                    continue;
                }
                println!(
                    "core {core}: {} instructions, {} active / {} gated cycles, duty {:.1}%",
                    cs.instructions,
                    cs.active_cycles,
                    cs.gated_cycles,
                    100.0 * cs.duty_cycle()
                );
            }
            let sync = platform.synchronizer().stats();
            println!(
                "IM accesses {} (broadcast {:.1}%), DM accesses {}, sync fires {}",
                stats.im.accesses(),
                stats.im.broadcast_percent(),
                stats.dm.accesses(),
                sync.fires
            );
            if sync.lost_wakes > 0 || sync.invariant_faults > 0 {
                println!(
                    "sync detectors: {} lost wake(s), {} counter invariant fault(s)",
                    sync.lost_wakes, sync.invariant_faults
                );
            }
        }
        Err(e) => {
            eprintln!("wbsn-run: {e}");
            if let Some(tracer) = platform.trace() {
                eprintln!("--- last retirements ---");
                eprint!("{}", tracer.listing());
            }
            // A partial timeline is still worth opening in Perfetto:
            // flush whatever the recorder saw before the failure.
            platform.finish_obs();
            if let Some(path) = &trace_json {
                if let Err(code) = write_trace_json(&platform, path) {
                    return code;
                }
            }
            return ExitCode::FAILURE;
        }
    }
    platform.finish_obs();
    if let Some(path) = &trace_json {
        if let Err(code) = write_trace_json(&platform, path) {
            return code;
        }
    }
    if profile {
        print_profile(&platform);
    }
    if let Some(path) = &stats_json_path {
        let json = stats_json(platform.stats(), &platform.synchronizer().stats());
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("wbsn-run: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("stats-json: wrote {path}");
    }

    for (addr, len) in dumps {
        print!("dm[{addr:#06x}..{:#06x}]:", addr + len);
        for offset in 0..len {
            match platform.peek_dm(addr + offset) {
                Ok(word) => print!(" {word:#06x}"),
                Err(_) => print!(" ????"),
            }
        }
        println!();
    }
    if let Some(tracer) = platform.trace() {
        println!("--- last retirements ---");
        print!("{}", tracer.listing());
    }
    ExitCode::SUCCESS
}

fn write_trace_json(platform: &Platform, path: &str) -> Result<(), ExitCode> {
    let Some(json) = platform.obs().recorder().and_then(|r| r.trace_json()) else {
        return Ok(());
    };
    let events = platform
        .obs()
        .recorder()
        .and_then(|r| r.trace_sink())
        .map_or(0, |s| s.len());
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("wbsn-run: cannot write {path}: {e}");
        return Err(ExitCode::FAILURE);
    }
    println!("trace-json: wrote {events} events to {path}");
    Ok(())
}

fn print_profile(platform: &Platform) {
    let Some(recorder) = platform.obs().recorder() else {
        return;
    };
    if let Some(profiler) = recorder.profiler() {
        println!("--- phase profile ---");
        print!("{}", profiler.render());
    }
    if let Some(counting) = recorder.counting() {
        println!("--- event summary ---");
        let s = counting.summary();
        println!(
            "sleeps: {} (p50 {} / p99 {} cycles), sync gap p50 {} / p99 {} cycles",
            s.sleep_count,
            s.sleep_p50_cycles,
            s.sleep_p99_cycles,
            s.sync_gap_p50_cycles,
            s.sync_gap_p99_cycles
        );
        println!(
            "stalls: im {} / dm {} / hazard {} cycles (run p99 {})",
            s.stall_im_cycles, s.stall_dm_cycles, s.stall_hazard_cycles, s.stall_run_p99_cycles
        );
        if let Some((cause, cycles)) = counting.worst_stall_cause() {
            println!("worst stall cause: {cause} ({cycles} cycles)");
        }
        println!(
            "releases {}, merges saved {}, fallthroughs {}, adc samples {}, irq forwards {}",
            counting.releases,
            counting.merges_saved,
            counting.fallthroughs,
            counting.adc_samples,
            counting.irq_forwards
        );
    }
}

fn parse_int(text: &str) -> Result<u32, std::num::ParseIntError> {
    match text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
        Some(hex) => u32::from_str_radix(hex, 16),
        None => text.parse(),
    }
}
