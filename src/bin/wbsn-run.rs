//! Command-line platform runner: load a WBSN image and execute it.
//!
//! ```text
//! USAGE: wbsn-run [OPTIONS] <image.img>
//!
//!   --single-core        decoder baseline (default: 8-core platform)
//!   --cycles <N>         cycle budget (default: 1,000,000)
//!   --check              statically verify the image's synchronization
//!                        protocol before running; violations abort
//!   --watchdog-cycles N  arm the runtime watchdog: a deadlock or N
//!                        cycles without progress exits with a
//!                        post-mortem dump instead of hanging
//!   --dump <addr:len>    print a data-memory range after the run (repeatable)
//!   --trace <N>          keep and print the last N retirements
//!   --break <pc>         stop when any core is about to execute pc (repeatable)
//!   --watch <addr>       stop after any core writes addr (repeatable)
//! ```

use std::process::ExitCode;

use wbsn::core::mapping::verify::{verify_image, VerifyConfig};
use wbsn::isa::image;
use wbsn::sim::{Platform, PlatformConfig};

fn usage() -> ExitCode {
    eprintln!(
        "usage: wbsn-run [--single-core] [--cycles N] [--check] [--watchdog-cycles N] [--dump addr:len]... [--trace N] [--break pc]... [--watch addr]... <image.img>"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut single_core = false;
    let mut cycles: u64 = 1_000_000;
    let mut check = false;
    let mut watchdog: Option<u64> = None;
    let mut dumps: Vec<(u32, u32)> = Vec::new();
    let mut trace: Option<usize> = None;
    let mut breakpoints: Vec<u32> = Vec::new();
    let mut watchpoints: Vec<u32> = Vec::new();
    let mut input: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--single-core" => single_core = true,
            "--check" => check = true,
            "--cycles" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => cycles = n,
                None => return usage(),
            },
            "--watchdog-cycles" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => watchdog = Some(n),
                None => return usage(),
            },
            "--trace" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => trace = Some(n),
                None => return usage(),
            },
            "--break" => match args.next().and_then(|v| parse_int(&v).ok()) {
                Some(pc) => breakpoints.push(pc),
                None => return usage(),
            },
            "--watch" => match args.next().and_then(|v| parse_int(&v).ok()) {
                Some(addr) => watchpoints.push(addr),
                None => return usage(),
            },
            "--dump" => {
                let Some(spec) = args.next() else {
                    return usage();
                };
                let Some((addr, len)) = spec.split_once(':') else {
                    return usage();
                };
                match (parse_int(addr), parse_int(len)) {
                    (Ok(a), Ok(l)) => dumps.push((a, l)),
                    _ => return usage(),
                }
            }
            "-h" | "--help" => return usage(),
            path => input = Some(path.to_string()),
        }
    }
    let Some(input) = input else { return usage() };

    let bytes = match std::fs::read(&input) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("wbsn-run: cannot read {input}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let linked = match image::from_bytes(&bytes) {
        Ok(i) => i,
        Err(e) => {
            eprintln!("wbsn-run: {input}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let config = if single_core {
        PlatformConfig::single_core()
    } else {
        PlatformConfig::multi_core()
    };
    if check {
        let verify_config = VerifyConfig::new(config.sync_points as u16);
        match verify_image(&linked, &verify_config) {
            Ok(diags) if diags.is_empty() => {
                println!("check: synchronization protocol OK");
            }
            Ok(diags) => {
                for diag in &diags {
                    eprintln!("wbsn-run: check: {diag}");
                }
                eprintln!(
                    "wbsn-run: {input}: {} synchronization protocol violation(s)",
                    diags.len()
                );
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("wbsn-run: check: {input}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let mut platform = match Platform::new(config, &linked) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("wbsn-run: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(capacity) = trace {
        platform.enable_trace(capacity, 0xFF);
    }
    if let Some(stall_cycles) = watchdog {
        platform.set_watchdog(stall_cycles);
    }
    for pc in breakpoints {
        platform.add_breakpoint(pc);
    }
    for addr in watchpoints {
        platform.add_watchpoint(addr);
    }

    match platform.run(cycles) {
        Ok(exit) => {
            let stats = platform.stats();
            println!("exit: {exit:?} after {} cycles", stats.cycles);
            for (core, cs) in stats.cores.iter().enumerate() {
                if cs.instructions == 0 {
                    continue;
                }
                println!(
                    "core {core}: {} instructions, {} active / {} gated cycles, duty {:.1}%",
                    cs.instructions,
                    cs.active_cycles,
                    cs.gated_cycles,
                    100.0 * cs.duty_cycle()
                );
            }
            let sync = platform.synchronizer().stats();
            println!(
                "IM accesses {} (broadcast {:.1}%), DM accesses {}, sync fires {}",
                stats.im.accesses(),
                stats.im.broadcast_percent(),
                stats.dm.accesses(),
                sync.fires
            );
            if sync.lost_wakes > 0 || sync.invariant_faults > 0 {
                println!(
                    "sync detectors: {} lost wake(s), {} counter invariant fault(s)",
                    sync.lost_wakes, sync.invariant_faults
                );
            }
        }
        Err(e) => {
            eprintln!("wbsn-run: {e}");
            if let Some(tracer) = platform.trace() {
                eprintln!("--- last retirements ---");
                eprint!("{}", tracer.listing());
            }
            return ExitCode::FAILURE;
        }
    }

    for (addr, len) in dumps {
        print!("dm[{addr:#06x}..{:#06x}]:", addr + len);
        for offset in 0..len {
            match platform.peek_dm(addr + offset) {
                Ok(word) => print!(" {word:#06x}"),
                Err(_) => print!(" ????"),
            }
        }
        println!();
    }
    if let Some(tracer) = platform.trace() {
        println!("--- last retirements ---");
        print!("{}", tracer.listing());
    }
    ExitCode::SUCCESS
}

fn parse_int(text: &str) -> Result<u32, std::num::ParseIntError> {
    match text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
        Some(hex) => u32::from_str_radix(hex, 16),
        None => text.parse(),
    }
}
