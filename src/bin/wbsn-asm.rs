//! Command-line assembler + linker: turn `.asm` sources into a loadable
//! WBSN image.
//!
//! ```text
//! USAGE: wbsn-asm [OPTIONS] <file[:bank]>...
//!
//!   -o <out.img>            output path (default: a.img)
//!   --lint                  check the synchronization protocol; style
//!                           findings are warnings, sync-flow violations
//!                           (unbalanced SINC/SDEC, counter range,
//!                           unallocated points) reject the build
//!   --schedule              run the load-latency-aware scheduler over
//!                           every section: load-use slots are filled
//!                           with later independent instructions
//!   --entry <core=section>  entry point (repeatable; section = file stem)
//!   --data <addr=v,v,...>   initial data-memory segment (repeatable)
//!
//! Each input file becomes one section named after its stem; an optional
//! `:bank` suffix pins it to an instruction bank (the paper's building
//! directive), otherwise the linker packs first-fit.
//! ```

use std::path::Path;
use std::process::ExitCode;

use wbsn::isa::{
    assemble_text, image, lint, schedule_program, syncflow, DataSegment, Linker, Section,
};

fn usage() -> ExitCode {
    eprintln!("usage: wbsn-asm [-o out.img] [--lint] [--schedule] [--entry core=section]... [--data addr=v,v,..]... <file[:bank]>...");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut out = "a.img".to_string();
    let mut run_lint = false;
    let mut schedule = false;
    let mut entries: Vec<(usize, String)> = Vec::new();
    let mut data: Vec<DataSegment> = Vec::new();
    let mut inputs: Vec<(String, Option<usize>)> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-o" => match args.next() {
                Some(path) => out = path,
                None => return usage(),
            },
            "--entry" => {
                let Some(spec) = args.next() else {
                    return usage();
                };
                let Some((core, section)) = spec.split_once('=') else {
                    return usage();
                };
                let Ok(core) = core.parse() else {
                    return usage();
                };
                entries.push((core, section.to_string()));
            }
            "--data" => {
                let Some(spec) = args.next() else {
                    return usage();
                };
                let Some((addr, values)) = spec.split_once('=') else {
                    return usage();
                };
                let Ok(addr) = parse_int(addr) else {
                    return usage();
                };
                let words: Result<Vec<u16>, _> = values
                    .split(',')
                    .map(|v| parse_int(v).map(|x| x as u16))
                    .collect();
                let Ok(words) = words else { return usage() };
                data.push(DataSegment::new(addr, words));
            }
            "--lint" => run_lint = true,
            "--schedule" => schedule = true,
            "-h" | "--help" => return usage(),
            path => {
                let (file, bank) = match path.rsplit_once(':') {
                    Some((file, bank)) if bank.chars().all(|c| c.is_ascii_digit()) => {
                        (file.to_string(), bank.parse().ok())
                    }
                    _ => (path.to_string(), None),
                };
                inputs.push((file, bank));
            }
        }
    }
    if inputs.is_empty() {
        return usage();
    }

    let mut linker = Linker::new();
    let mut first_section = None;
    let mut violations = 0usize;
    for (file, bank) in &inputs {
        let source = match std::fs::read_to_string(file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("wbsn-asm: cannot read {file}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let program = match assemble_text(&source) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("wbsn-asm: {file}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if run_lint {
            for warning in lint::lint(&program, &lint::LintConfig::default()) {
                eprintln!("wbsn-asm: {file}: warning: {warning}");
            }
            let config =
                syncflow::SyncFlowConfig::with_sync_points(lint::LintConfig::default().sync_points);
            for diag in syncflow::analyze(&program, &config) {
                eprintln!("wbsn-asm: {file}: error: {diag}");
                violations += 1;
            }
        }
        let program = if schedule {
            let (scheduled, stats) = schedule_program(&program);
            if stats.hazards_found > 0 {
                eprintln!(
                    "wbsn-asm: {file}: schedule: filled {}/{} load-use slot(s)",
                    stats.hazards_filled, stats.hazards_found
                );
            }
            scheduled
        } else {
            program
        };
        let name = Path::new(file)
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("main")
            .to_string();
        first_section.get_or_insert(name.clone());
        match bank {
            Some(bank) => linker.add_section(Section::in_bank(name, program, *bank)),
            None => linker.add_section(Section::new(name, program)),
        };
    }
    if violations > 0 {
        eprintln!(
            "wbsn-asm: rejected: {violations} synchronization protocol violation(s); no image written"
        );
        return ExitCode::FAILURE;
    }
    for segment in data {
        linker.add_data(segment);
    }
    if entries.is_empty() {
        linker.set_entry(0, first_section.expect("at least one input"));
    }
    for (core, section) in entries {
        linker.set_entry(core, section);
    }

    let linked = match linker.link() {
        Ok(image) => image,
        Err(e) => {
            eprintln!("wbsn-asm: link error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = std::fs::write(&out, image::to_bytes(&linked)) {
        eprintln!("wbsn-asm: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "{out}: {} sections, {} words of code ({} sync), {} IM bank(s), {} entries",
        linked.sections().len(),
        linked.code_words(),
        linked.sync_words(),
        linked.active_im_banks(),
        linked.entries().count(),
    );
    ExitCode::SUCCESS
}

fn parse_int(text: &str) -> Result<u32, std::num::ParseIntError> {
    match text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
        Some(hex) => u32::from_str_radix(hex, 16),
        None => text.parse(),
    }
}
