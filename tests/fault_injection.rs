//! Failure injection: the platform must detect and report — never
//! mask — corrupted binaries, protocol violations and degraded inputs.

use wbsn::core::SyncError;
use wbsn::dsp::ecg::{synthesize, EcgConfig};
use wbsn::isa::{assemble_text, image, Linker, Section};
use wbsn::kernels::{build_mf, Arch, BuildOptions};
use wbsn::sim::{FaultKind, Platform, PlatformConfig, SimError};

fn platform_from(src: &str) -> Platform {
    let mut linker = Linker::new();
    linker.add_section(Section::new("main", assemble_text(src).expect("assembles")));
    linker.set_entry(0, "main");
    let image = linker.link().expect("links");
    Platform::new(PlatformConfig::multi_core(), &image).expect("builds")
}

#[test]
fn sdec_underflow_is_a_detected_protocol_violation() {
    let mut p = platform_from("sdec 0\nhalt\n");
    let err = p.run(100).unwrap_err();
    assert!(matches!(err, SimError::Sync(SyncError::CounterUnderflow)));
}

#[test]
fn runaway_pc_faults() {
    // Fall off the end of the section into zeroed memory: NOPs execute
    // until the PC leaves the bank's code... the zero word *is* a NOP
    // encoding, so the core walks to the end of the instruction memory
    // and faults there.
    let mut p = platform_from("nop\n");
    let err = p.run(200_000).unwrap_err();
    assert!(matches!(
        err,
        SimError::Fault(wbsn::sim::Fault {
            kind: FaultKind::ImOutOfRange,
            ..
        })
    ));
}

#[test]
fn corrupted_image_word_is_rejected_at_load() {
    let app = build_mf(Arch::MultiCore, &BuildOptions::default()).expect("builds");
    let mut bytes = image::to_bytes(&app.image);
    // Flip bits in the middle of the first section's code.
    let offset = 40;
    bytes[offset] ^= 0xFF;
    bytes[offset + 1] ^= 0xFF;
    assert!(image::from_bytes(&bytes).is_err());
}

#[test]
fn missing_adc_channels_degrade_gracefully() {
    // Only lead 0 has data; leads 1 and 2 read zeros. The application
    // must still meet real time and produce a full lead-0 stream.
    let rec = synthesize(&EcgConfig {
        fs: 500,
        duration_s: 2.0,
        ..EcgConfig::healthy_60s()
    });
    let app = build_mf(
        Arch::MultiCore,
        &BuildOptions {
            adc_period_cycles: 16_000,
            ..BuildOptions::default()
        },
    )
    .expect("builds");
    let samples = rec.leads[0].len() as u64;
    let mut platform = app
        .platform(vec![rec.leads[0].clone()])
        .expect("platform builds");
    platform
        .run(app.config.adc.start_cycle + (samples + 8) * app.config.adc.period_cycles)
        .expect("runs");
    assert_eq!(platform.adc_overruns(), 0);
    let count0 = platform
        .peek_dm(wbsn::kernels::layout::LEAD_COUNT_BASE)
        .expect("count");
    assert!(count0 as u64 >= samples - 1);
    // The silent leads settle to a zero-filtered stream.
    let count2 = platform
        .peek_dm(wbsn::kernels::layout::LEAD_COUNT_BASE + 2)
        .expect("count");
    assert!(count2 as u64 >= samples - 1);
}

#[test]
fn overrun_detection_fires_under_starvation() {
    // A deliberately starved platform (period shorter than the per-sample
    // work) must *report* overruns rather than silently dropping samples.
    let rec = synthesize(&EcgConfig {
        fs: 500,
        duration_s: 1.0,
        ..EcgConfig::healthy_60s()
    });
    let app = build_mf(
        Arch::SingleCore,
        &BuildOptions {
            adc_period_cycles: 500, // far below the ~4300-cycle workload
            ..BuildOptions::default()
        },
    )
    .expect("builds");
    let samples = rec.leads[0].len() as u64;
    let mut platform = app.platform(rec.leads.clone()).expect("platform builds");
    platform
        .run(app.config.adc.start_cycle + (samples + 8) * app.config.adc.period_cycles)
        .expect("runs");
    assert!(platform.adc_overruns() > 0, "starvation must be visible");
}

#[test]
fn store_to_reserved_regions_faults() {
    for (src, kind) in [
        (
            "li r1, 1\nsw r1, 0x10(r0)\nhalt\n",
            FaultKind::WriteToSyncRegion,
        ),
        (
            "lui r2, 0x7F\nli r1, 1\nsw r1, 0(r2)\nhalt\n",
            FaultKind::MmioReadOnly,
        ),
    ] {
        let mut p = platform_from(src);
        let err = p.run(100).unwrap_err();
        match err {
            SimError::Fault(fault) => assert_eq!(fault.kind, kind),
            other => panic!("expected a fault, got {other}"),
        }
    }
}
