//! End-to-end test of the command-line tool-chain: `wbsn-asm` assembles
//! and links sources into an image, `wbsn-run` executes it, `wbsn-dis`
//! disassembles it.

use std::process::Command;

fn write(path: &std::path::Path, content: &str) {
    std::fs::write(path, content).expect("test file writable");
}

#[test]
fn assemble_run_disassemble_round_trip() {
    let dir = std::env::temp_dir().join(format!("wbsn-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let prod = dir.join("prod.asm");
    let cons = dir.join("cons.asm");
    let img = dir.join("demo.img");
    write(
        &prod,
        "sinc 0\nli r1, 6\nli r2, 7\nmul r3, r1, r2\nsw r3, 0x100(r0)\nsdec 0\nhalt\n",
    );
    write(
        &cons,
        "snop 0\nsleep\nlw r1, 0x100(r0)\nadd r1, r1, r1\nsw r1, 0x101(r0)\nhalt\n",
    );

    let asm = Command::new(env!("CARGO_BIN_EXE_wbsn-asm"))
        .arg("-o")
        .arg(&img)
        .args(["--entry", "0=prod", "--entry", "1=cons"])
        .arg(format!("{}:0", prod.display()))
        .arg(format!("{}:1", cons.display()))
        .output()
        .expect("wbsn-asm runs");
    assert!(asm.status.success(), "asm: {:?}", asm);
    let stdout = String::from_utf8_lossy(&asm.stdout);
    assert!(stdout.contains("2 sections"), "{stdout}");
    assert!(stdout.contains("(4 sync)"), "{stdout}");

    let run = Command::new(env!("CARGO_BIN_EXE_wbsn-run"))
        .args(["--dump", "0x100:2"])
        .arg(&img)
        .output()
        .expect("wbsn-run runs");
    assert!(run.status.success(), "run: {:?}", run);
    let stdout = String::from_utf8_lossy(&run.stdout);
    assert!(stdout.contains("AllHalted"), "{stdout}");
    assert!(stdout.contains("0x002a 0x0054"), "{stdout}");
    assert!(stdout.contains("sync fires 1"), "{stdout}");

    let dis = Command::new(env!("CARGO_BIN_EXE_wbsn-dis"))
        .arg(&img)
        .output()
        .expect("wbsn-dis runs");
    assert!(dis.status.success(), "dis: {:?}", dis);
    let stdout = String::from_utf8_lossy(&dis.stdout);
    assert!(stdout.contains("section prod"), "{stdout}");
    assert!(stdout.contains("sinc 0"), "{stdout}");
    assert!(stdout.contains("<- core 1"), "{stdout}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bad_inputs_fail_cleanly() {
    let missing = Command::new(env!("CARGO_BIN_EXE_wbsn-asm"))
        .arg("/nonexistent/input.asm")
        .output()
        .expect("runs");
    assert!(!missing.status.success());

    let bad_image = Command::new(env!("CARGO_BIN_EXE_wbsn-run"))
        .arg("/dev/null")
        .output()
        .expect("runs");
    assert!(!bad_image.status.success());
    // An empty file fails the header read before the magic check.
    assert!(String::from_utf8_lossy(&bad_image.stderr).contains("truncated"));
}
