//! End-to-end test of the command-line tool-chain: `wbsn-asm` assembles
//! and links sources into an image, `wbsn-run` executes it, `wbsn-dis`
//! disassembles it.

use std::process::Command;

fn write(path: &std::path::Path, content: &str) {
    std::fs::write(path, content).expect("test file writable");
}

#[test]
fn assemble_run_disassemble_round_trip() {
    let dir = std::env::temp_dir().join(format!("wbsn-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let prod = dir.join("prod.asm");
    let cons = dir.join("cons.asm");
    let img = dir.join("demo.img");
    write(
        &prod,
        "sinc 0\nli r1, 6\nli r2, 7\nmul r3, r1, r2\nsw r3, 0x100(r0)\nsdec 0\nhalt\n",
    );
    write(
        &cons,
        "snop 0\nsleep\nlw r1, 0x100(r0)\nadd r1, r1, r1\nsw r1, 0x101(r0)\nhalt\n",
    );

    let asm = Command::new(env!("CARGO_BIN_EXE_wbsn-asm"))
        .arg("-o")
        .arg(&img)
        .args(["--entry", "0=prod", "--entry", "1=cons"])
        .arg(format!("{}:0", prod.display()))
        .arg(format!("{}:1", cons.display()))
        .output()
        .expect("wbsn-asm runs");
    assert!(asm.status.success(), "asm: {:?}", asm);
    let stdout = String::from_utf8_lossy(&asm.stdout);
    assert!(stdout.contains("2 sections"), "{stdout}");
    assert!(stdout.contains("(4 sync)"), "{stdout}");

    let run = Command::new(env!("CARGO_BIN_EXE_wbsn-run"))
        .args(["--dump", "0x100:2"])
        .arg(&img)
        .output()
        .expect("wbsn-run runs");
    assert!(run.status.success(), "run: {:?}", run);
    let stdout = String::from_utf8_lossy(&run.stdout);
    assert!(stdout.contains("AllHalted"), "{stdout}");
    assert!(stdout.contains("0x002a 0x0054"), "{stdout}");
    assert!(stdout.contains("sync fires 1"), "{stdout}");

    let dis = Command::new(env!("CARGO_BIN_EXE_wbsn-dis"))
        .arg(&img)
        .output()
        .expect("wbsn-dis runs");
    assert!(dis.status.success(), "dis: {:?}", dis);
    let stdout = String::from_utf8_lossy(&dis.stdout);
    assert!(stdout.contains("section prod"), "{stdout}");
    assert!(stdout.contains("sinc 0"), "{stdout}");
    assert!(stdout.contains("<- core 1"), "{stdout}");

    let _ = std::fs::remove_dir_all(&dir);
}

/// The observability flags end to end on the committed demo sources:
/// assemble `examples/asm/`, run with `--trace-json`/`--profile`/
/// `--stats-json`, and validate both JSON artifacts with the obs
/// crate's own parser (the same check CI's `obs-smoke` job performs
/// with `wbsn-trace-check`).
#[test]
fn observability_flags_round_trip() {
    let dir = std::env::temp_dir().join(format!("wbsn-obs-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let img = dir.join("demo.img");
    let trace = dir.join("trace.json");
    let stats = dir.join("stats.json");
    let asm_dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/asm");

    let asm = Command::new(env!("CARGO_BIN_EXE_wbsn-asm"))
        .arg("--lint")
        .arg("-o")
        .arg(&img)
        .args([
            "--entry", "0=lead0", "--entry", "1=lead1", "--entry", "2=lead2",
        ])
        .arg(format!("{}:0", asm_dir.join("lead0.asm").display()))
        .arg(format!("{}:1", asm_dir.join("lead1.asm").display()))
        .arg(format!("{}:2", asm_dir.join("lead2.asm").display()))
        .output()
        .expect("wbsn-asm runs");
    assert!(asm.status.success(), "asm: {asm:?}");

    let run = Command::new(env!("CARGO_BIN_EXE_wbsn-run"))
        .arg("--trace-json")
        .arg(&trace)
        .arg("--profile")
        .arg("--stats-json")
        .arg(&stats)
        .arg(&img)
        .output()
        .expect("wbsn-run runs");
    assert!(run.status.success(), "run: {run:?}");
    let stdout = String::from_utf8_lossy(&run.stdout);
    assert!(stdout.contains("AllHalted"), "{stdout}");
    assert!(stdout.contains("phase profile"), "{stdout}");
    assert!(stdout.contains("lead0"), "{stdout}");
    assert!(stdout.contains("sleeps:"), "{stdout}");

    let trace_text = std::fs::read_to_string(&trace).expect("trace written");
    let root = wbsn_obs::json::parse(&trace_text).expect("valid trace JSON");
    let events = root
        .get("traceEvents")
        .and_then(|v| v.as_arr())
        .expect("traceEvents");
    assert!(!events.is_empty());
    assert!(trace_text.contains("\"lead1\""), "phase slices are named");

    let stats_text = std::fs::read_to_string(&stats).expect("stats written");
    let root = wbsn_obs::json::parse(&stats_text).expect("valid stats JSON");
    assert_eq!(
        root.get("schema").and_then(|v| v.as_str()),
        Some("wbsn-stats/1")
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bad_inputs_fail_cleanly() {
    let missing = Command::new(env!("CARGO_BIN_EXE_wbsn-asm"))
        .arg("/nonexistent/input.asm")
        .output()
        .expect("runs");
    assert!(!missing.status.success());

    let bad_image = Command::new(env!("CARGO_BIN_EXE_wbsn-run"))
        .arg("/dev/null")
        .output()
        .expect("runs");
    assert!(!bad_image.status.success());
    // An empty file fails the header read before the magic check.
    assert!(String::from_utf8_lossy(&bad_image.stderr).contains("truncated"));
}
