//! Differential oracles for the simulator's equivalence claims:
//!
//! * **SC vs MC** — the single-core baseline and the multi-core mapping
//!   of every benchmark run the *same* DSP algorithms, so their shared
//!   outputs (filtered rings, delineation events, beat labels and every
//!   progress counter) must be identical word for word, across input
//!   seeds and pathologies. This is what makes the paper's power
//!   comparison meaningful: both platforms do the same work. (RP-CLASS
//!   compares its classification outputs — see [`rp_class_signature`].)
//! * **fast vs slow decode** — the predecoded fast path must be
//!   architecturally invisible: statistics and retirement traces equal
//!   to the legacy decode-per-cycle path (compiled in via the
//!   `slow-decode` feature) on every benchmark.
//! * **scheduled vs unscheduled** — the load-latency-aware scheduler
//!   reorders instructions but must never change what is computed:
//!   scheduled images produce byte-identical DSP outputs on every input
//!   seed, while spending fewer hazard-stall cycles.

use wbsn::dsp::ecg::{synthesize, EcgConfig, EcgRecording};
use wbsn::kernels::{
    build_mf, build_mmd, build_rpclass, layout, Arch, BuildOptions, BuiltApp, ClassifierParams,
    SyncApproach,
};
use wbsn::sim::Platform;

fn recording(seed: u64, fraction: f64) -> EcgRecording {
    synthesize(&EcgConfig {
        fs: 500,
        duration_s: 2.0,
        pathological_fraction: fraction,
        seed,
        ..EcgConfig::healthy_60s()
    })
}

fn options() -> BuildOptions {
    BuildOptions {
        approach: SyncApproach::Hardware,
        adc_period_cycles: 16_000,
        ..BuildOptions::default()
    }
}

fn scheduled_options() -> BuildOptions {
    BuildOptions {
        schedule: true,
        ..options()
    }
}

fn apps(arch: Arch) -> Vec<BuiltApp> {
    apps_with(arch, &options())
}

fn apps_with(arch: Arch, options: &BuildOptions) -> Vec<BuiltApp> {
    let params = ClassifierParams::default_trained();
    vec![
        build_mf(arch, options).expect("mf builds"),
        build_mmd(arch, options).expect("mmd builds"),
        build_rpclass(arch, options, &params).expect("rpclass builds"),
    ]
}

fn run(app: &BuiltApp, leads: Vec<Vec<i16>>) -> Platform {
    let samples = leads[0].len() as u64;
    let budget = app.config.adc.start_cycle + (samples + 8) * app.config.adc.period_cycles;
    let mut platform = app.platform(leads).expect("platform builds");
    platform.run(budget).expect("no faults");
    assert_eq!(platform.adc_overruns(), 0, "real time met");
    platform
}

/// Every shared word the DSP chain produces, in a fixed order: the
/// progress counters, each lead's filtered ring, the combined stream,
/// the fiducial events and the beat labels.
fn dsp_signature(platform: &Platform) -> Vec<(u32, u16)> {
    let mut words: Vec<u32> = Vec::new();
    words.extend((0..3).map(|l| layout::LEAD_COUNT_BASE + l));
    words.extend([
        layout::COMBINED_COUNT,
        layout::EVENT_COUNT,
        layout::BEAT_COUNT,
        layout::PATH_COUNT,
    ]);
    for lead in 0..3 {
        words.extend((0..layout::OUT_RING_LEN).map(|i| layout::out_ring(lead) + i));
    }
    words.extend((0..layout::COMBINED_RING_LEN).map(|i| layout::COMBINED_RING + i));
    words.extend((0..4 * layout::EVENT_RING_LEN).map(|i| layout::EVENT_RING + i));
    words.extend((0..layout::LABEL_RING_LEN).map(|i| layout::LABEL_RING + i));
    peek_all(platform, words)
}

/// The classification outputs of RP-CLASS: the continuously-conditioned
/// lead 0, the trigger words and the per-beat verdicts. The delineation
/// side (leads 1/2, combined stream, fiducial events) is deliberately
/// *not* part of this signature: the single-core program buffers leads
/// 1/2 raw and conditions them lazily per triggered burst, so its
/// delineation filters see different warm-up than the multi-core chain's
/// continuous conditioning — an intended divergence of the mapping, not
/// a bug (DESIGN.md's Fig. 5c discussion).
fn rp_class_signature(platform: &Platform) -> Vec<(u32, u16)> {
    let mut words: Vec<u32> = vec![
        layout::LEAD_COUNT_BASE,
        layout::TRIG_FLAG,
        layout::TRIG_SEQ,
        layout::BEAT_COUNT,
        layout::PATH_COUNT,
    ];
    words.extend((0..layout::OUT_RING_LEN).map(|i| layout::out_ring(0) + i));
    words.extend((0..layout::LABEL_RING_LEN).map(|i| layout::LABEL_RING + i));
    peek_all(platform, words)
}

fn peek_all(platform: &Platform, words: Vec<u32>) -> Vec<(u32, u16)> {
    words
        .into_iter()
        .map(|addr| (addr, platform.peek_dm(addr).expect("shared word readable")))
        .collect()
}

fn signature_for(app: &BuiltApp, platform: &Platform) -> Vec<(u32, u16)> {
    if app.name == "RP-CLASS" {
        rp_class_signature(platform)
    } else {
        dsp_signature(platform)
    }
}

#[test]
fn single_core_and_multi_core_produce_identical_dsp_outputs() {
    for (seed, fraction) in [(0xA11CE, 0.0), (0xB0B5EED, 0.3), (0xC0FFEE, 1.0)] {
        let rec = recording(seed, fraction);
        for (sc, mc) in apps(Arch::SingleCore).iter().zip(apps(Arch::MultiCore)) {
            let sc_sig = signature_for(sc, &run(sc, rec.leads.clone()));
            let mc_sig = signature_for(sc, &run(&mc, rec.leads.clone()));
            // Progress first: identical counters mean identical amounts
            // of work before any word-level comparison.
            for i in 0..5 {
                assert_eq!(
                    sc_sig[i], mc_sig[i],
                    "{} seed {seed:#x}: counter {i} diverged",
                    sc.name
                );
            }
            let diverging = sc_sig
                .iter()
                .zip(&mc_sig)
                .filter(|(a, b)| a != b)
                .map(|(a, _)| a.0)
                .collect::<Vec<_>>();
            assert!(
                diverging.is_empty(),
                "{} seed {seed:#x} fraction {fraction}: SC and MC outputs diverge at {} shared words (first at {:#06x})",
                sc.name,
                diverging.len(),
                diverging[0]
            );
        }
    }
}

#[test]
fn scheduled_images_produce_identical_dsp_outputs() {
    for (seed, fraction) in [(0xA11CE, 0.0), (0xB0B5EED, 0.3), (0xC0FFEE, 1.0)] {
        let rec = recording(seed, fraction);
        for arch in [Arch::SingleCore, Arch::MultiCore] {
            for (plain, scheduled) in apps(arch).iter().zip(apps_with(arch, &scheduled_options())) {
                let base = run(plain, rec.leads.clone());
                let sched = run(&scheduled, rec.leads.clone());
                assert_eq!(
                    signature_for(plain, &base),
                    signature_for(plain, &sched),
                    "{} {arch:?} seed {seed:#x}: scheduling changed the DSP outputs",
                    plain.name
                );
                let before: u64 = base.stats().cores.iter().map(|c| c.stall_hazard).sum();
                let after: u64 = sched.stats().cores.iter().map(|c| c.stall_hazard).sum();
                assert!(
                    after <= before,
                    "{} {arch:?} seed {seed:#x}: scheduling added hazard stalls ({before} -> {after})",
                    plain.name
                );
            }
        }
    }
}

/// Runs one app with the given decode path; tracing captures the last
/// 4096 retirements of every core.
fn run_traced(app: &BuiltApp, leads: Vec<Vec<i16>>, slow: bool) -> Platform {
    let samples = leads[0].len() as u64;
    let budget = app.config.adc.start_cycle + (samples + 8) * app.config.adc.period_cycles;
    let mut platform = app.platform(leads).expect("platform builds");
    platform.set_slow_decode(slow);
    platform.enable_trace(4096, 0xFF);
    platform.run(budget).expect("no faults");
    platform
}

#[test]
fn predecoded_fast_path_matches_the_decode_per_cycle_oracle() {
    let rec = recording(0xDECADE, 0.25);
    for arch in [Arch::SingleCore, Arch::MultiCore] {
        for app in apps(arch) {
            let fast = run_traced(&app, rec.leads.clone(), false);
            let slow = run_traced(&app, rec.leads.clone(), true);
            assert_eq!(
                fast.stats(),
                slow.stats(),
                "{} {arch:?}: statistics diverge between decode paths",
                app.name
            );
            let fast_tail: Vec<_> = fast.trace().expect("traced").events().collect();
            let slow_tail: Vec<_> = slow.trace().expect("traced").events().collect();
            assert_eq!(
                fast_tail, slow_tail,
                "{} {arch:?}: retirement traces diverge between decode paths",
                app.name
            );
            assert_eq!(
                dsp_signature(&fast),
                dsp_signature(&slow),
                "{} {arch:?}: outputs diverge between decode paths",
                app.name
            );
        }
    }
}
