//! Cross-crate property tests on the core invariants of the
//! synchronization mechanism, the address translation unit and the
//! crossbar arbitration.

use proptest::prelude::*;
use wbsn::core::{CoreId, CoreSet, SyncPointValue};
use wbsn::isa::SyncKind;
use wbsn::sim::atu::{Atu, DmTarget};
use wbsn::sim::xbar::{arbitrate, Grant, Request};

fn any_core() -> impl Strategy<Value = CoreId> {
    (0usize..8).prop_map(|i| CoreId::new(i).expect("index in range"))
}

fn any_kind() -> impl Strategy<Value = SyncKind> {
    prop_oneof![
        Just(SyncKind::Inc),
        Just(SyncKind::Dec),
        Just(SyncKind::Nop)
    ]
}

proptest! {
    /// Merged application equals sequential application whenever the
    /// sequential order never underflows (the merge is "a single and
    /// consistent memory modification").
    #[test]
    fn merged_update_equals_any_consistent_serialization(
        ops in prop::collection::vec((any_core(), any_kind()), 0..12),
        start in 0u8..200,
    ) {
        let initial = SyncPointValue::with(CoreSet::empty(), start);
        // Sequential, Incs first (an order that cannot underflow if the
        // merged net is consistent).
        let mut incs_first = ops.clone();
        incs_first.sort_by_key(|(_, kind)| matches!(kind, SyncKind::Dec));
        let mut sequential = initial;
        let mut ok = true;
        for (core, kind) in &incs_first {
            match sequential.apply(*core, *kind) {
                Ok(next) => sequential = next,
                Err(_) => { ok = false; break; }
            }
        }
        // Merged.
        let mut flags = CoreSet::empty();
        let mut delta = 0i32;
        for (core, kind) in &ops {
            match kind {
                SyncKind::Inc => { flags.insert(*core); delta += 1; }
                SyncKind::Dec => delta -= 1,
                SyncKind::Nop => flags.insert(*core),
            }
        }
        match initial.apply_merged(flags, delta) {
            Ok(merged) => {
                prop_assert!(ok, "merged succeeded, incs-first order must too");
                prop_assert_eq!(merged, sequential);
            }
            Err(_) => prop_assert!(!ok, "merged failed, so must the serialization"),
        }
    }

    /// Synchronization-point words round-trip through their memory
    /// representation.
    #[test]
    fn sync_point_word_round_trip(word in any::<u16>()) {
        prop_assert_eq!(SyncPointValue::from_word(word).to_word(), word);
    }

    /// The ATU is injective: no two (core, address) pairs may reach the
    /// same physical banked location unless they are the same shared
    /// address.
    #[test]
    fn atu_translation_is_injective(
        addr_a in 0u32..0x7F00,
        addr_b in 0u32..0x7F00,
        core_a in 0usize..8,
        core_b in 0usize..8,
    ) {
        let atu = Atu::new(8, 0x1800, 0x10, 16, false);
        let (ta, tb) = (atu.translate(core_a, addr_a), atu.translate(core_b, addr_b));
        if let (Ok(DmTarget::Memory { location: la, .. }), Ok(DmTarget::Memory { location: lb, .. })) = (ta, tb) {
            if la == lb {
                // Same physical word: either the same shared address or
                // the same private word of the same core.
                prop_assert_eq!(addr_a, addr_b);
                if addr_a >= 0x1800 {
                    prop_assert_eq!(core_a, core_b);
                }
            }
        }
    }

    /// Crossbar arbitration: per bank, exactly one request gets the
    /// physical access; broadcasts only ever join a read of the same
    /// address; nothing is both granted and stalled.
    #[test]
    fn arbitration_grants_one_access_per_bank(
        reqs in prop::collection::vec(
            (0usize..8, 0usize..16, 0u32..64, any::<bool>()),
            1..8,
        ),
        rotation in 0usize..8,
        broadcast in any::<bool>(),
    ) {
        // One request per core, as the pipeline guarantees.
        let mut seen = [false; 8];
        let requests: Vec<Request> = reqs
            .into_iter()
            .filter(|(core, ..)| !std::mem::replace(&mut seen[*core], true))
            .map(|(core, bank, addr, write)| Request { core, bank, addr, write })
            .collect();
        let grants = arbitrate(&requests, rotation, broadcast);
        prop_assert_eq!(grants.len(), requests.len());
        for bank in 0..16 {
            let in_bank: Vec<usize> = (0..requests.len())
                .filter(|&i| requests[i].bank == bank)
                .collect();
            if in_bank.is_empty() {
                continue;
            }
            let accesses = in_bank.iter().filter(|&&i| grants[i] == Grant::Access).count();
            prop_assert_eq!(accesses, 1, "bank {} must grant exactly once", bank);
            let winner = *in_bank
                .iter()
                .find(|&&i| grants[i] == Grant::Access)
                .expect("counted above");
            for &i in &in_bank {
                if grants[i] == Grant::Broadcast {
                    prop_assert!(broadcast, "broadcast only when enabled");
                    prop_assert!(!requests[i].write, "writes never merge");
                    prop_assert!(!requests[winner].write, "cannot ride a write");
                    prop_assert_eq!(requests[i].addr, requests[winner].addr);
                }
            }
        }
    }

    /// Fairness: under persistent contention, every core eventually wins
    /// arbitration within one full rotation.
    #[test]
    fn arbitration_rotation_is_fair(cores in prop::collection::btree_set(0usize..8, 2..8)) {
        let requests: Vec<Request> = cores
            .iter()
            .map(|&core| Request { core, bank: 0, addr: core as u32, write: false })
            .collect();
        let mut winners = std::collections::BTreeSet::new();
        for rotation in 0..8 {
            let grants = arbitrate(&requests, rotation, true);
            for (i, grant) in grants.iter().enumerate() {
                if *grant == Grant::Access {
                    winners.insert(requests[i].core);
                }
            }
        }
        prop_assert_eq!(winners, cores);
    }
}
