//! Golden-trace coverage of the disassembler:
//!
//! * **roundtrip** — every instruction word of every kernel image
//!   disassembles to text the assembler accepts and re-encodes to the
//!   exact same word. This pins the printer and the parser to each
//!   other over the full vocabulary the code generators actually emit.
//! * **snapshot** — the first instructions of the 3L-MF conditioning
//!   phase, as a fixed listing. Codegen changes that move the phase
//!   prologue must update this snapshot consciously.

use wbsn::isa::asm::assemble_text;
use wbsn::isa::{disasm, Instr};
use wbsn::kernels::{
    build_mf, build_mmd, build_rpclass, Arch, BuildOptions, BuiltApp, ClassifierParams,
    SyncApproach,
};

fn all_apps() -> Vec<BuiltApp> {
    let params = ClassifierParams::default_trained();
    let mut apps = Vec::new();
    for approach in [SyncApproach::Hardware, SyncApproach::BusyWait] {
        // Scheduled images reorder but never rewrite instructions, so
        // the roundtrip below also pins the scheduler's output.
        for schedule in [false, true] {
            let options = BuildOptions {
                approach,
                schedule,
                ..BuildOptions::default()
            };
            for arch in [Arch::SingleCore, Arch::MultiCore] {
                apps.push(build_mf(arch, &options).expect("mf builds"));
                apps.push(build_mmd(arch, &options).expect("mmd builds"));
                apps.push(build_rpclass(arch, &options, &params).expect("rpclass builds"));
            }
        }
    }
    apps
}

#[test]
fn every_kernel_instruction_roundtrips_through_text() {
    let mut roundtripped = 0usize;
    for app in all_apps() {
        for section in app.image.sections() {
            for offset in 0..section.len {
                let addr = section.base + offset as u32;
                let word = app.image.instr_word(addr);
                let instr = match Instr::decode(word) {
                    Ok(instr) => instr,
                    Err(_) => continue, // data word in a code section
                };
                let text = disasm::disassemble_word(word).expect("decodable word disassembles");
                let program = assemble_text(&text).unwrap_or_else(|e| {
                    panic!(
                        "{} {:?} {:#06x}: assembler rejects its own listing {text:?}: {e}",
                        app.name, app.arch, addr
                    )
                });
                let words = program.words().expect("reassembly encodes");
                assert_eq!(
                    words,
                    vec![word],
                    "{} {:?} {:#06x}: {text:?} reassembles to a different word ({instr:?})",
                    app.name,
                    app.arch,
                    addr
                );
                roundtripped += 1;
            }
        }
    }
    // The vocabulary check only means something if it saw real volume:
    // every benchmark image is several hundred instructions.
    assert!(
        roundtripped > 2_000,
        "only {roundtripped} instructions roundtripped — images missing?"
    );
}

#[test]
fn mf_conditioning_prologue_matches_the_golden_listing() {
    let app = build_mf(Arch::MultiCore, &BuildOptions::default()).expect("mf builds");
    let section = &app.image.sections()[0];
    assert_eq!(
        section.name, "cond",
        "3L-MF leads with the conditioning phase"
    );
    let words: Vec<u32> = (0..12.min(section.len))
        .map(|offset| app.image.instr_word(section.base + offset as u32))
        .collect();
    let listing = disasm::disassemble(&words, section.base).join("\n");
    // The phase prologue: clear r0, set the private base, read this
    // core's entry in the ATU offset table and derive the private/shared
    // base pointers. Update deliberately when codegen changes.
    let golden = "\
0x0000: li r0, 0
0x0001: li r6, 6144
0x0002: lui r2, 127
0x0003: ori r2, r2, 34
0x0004: lw r5, 0(r2)
0x0005: lui r2, 127
0x0006: ori r2, r2, 16
0x0007: add r2, r2, r5
0x0008: sw r2, 20(r6)
0x0009: lui r2, 127
0x000a: add r2, r2, r5
0x000b: sw r2, 21(r6)";
    assert_eq!(
        listing, golden,
        "3L-MF conditioning prologue drifted from the golden listing"
    );
}
