//! Static sync-protocol lint over every emitted benchmark variant.
//!
//! Every program the generators in `wbsn-kernels` emit must satisfy the
//! paper's insertion rules: balanced `SINC`/`SDEC` on every control-flow
//! path, counters inside the 8-bit hardware range, and only allocated
//! synchronization points. Running the image-level verifier over the
//! full build matrix pins the emitters to the protocol — an unbalanced
//! pair introduced in a generator fails here, not as a hang in a
//! long-running platform test.

use wbsn::core::mapping::verify::{verify_image, VerifyConfig};
use wbsn::kernels::app::BarrierStyle;
use wbsn::kernels::{
    build_mf, build_mmd, build_rpclass, Arch, BuildOptions, BuiltApp, ClassifierParams,
    SyncApproach,
};

/// Verifier configuration matching a build's platform wiring: the
/// platform's point file, with preloaded-barrier directives declared as
/// auto-reload points.
fn verify_config(app: &BuiltApp) -> VerifyConfig {
    let mut config = VerifyConfig::new(app.config.sync_points as u16);
    config.preloads = app.preloads.iter().map(|&(p, c, _)| (p, c)).collect();
    config.auto_reload = app.preloads.iter().map(|&(p, _, _)| p).collect();
    config.require_signaling = app.approach == SyncApproach::Hardware;
    config
}

fn assert_lint_clean(app: &BuiltApp, variant: &str) {
    let diags = verify_image(&app.image, &verify_config(app)).expect("image decodes");
    assert!(
        diags.is_empty(),
        "{} [{variant}] violates the sync protocol:\n{}",
        app.name,
        diags
            .iter()
            .map(|d| format!("  {d}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

fn option_matrix() -> Vec<(String, BuildOptions)> {
    let mut out = Vec::new();
    for approach in [SyncApproach::Hardware, SyncApproach::BusyWait] {
        for lockstep in [true, false] {
            for barrier in [BarrierStyle::SincSdec, BarrierStyle::Preloaded] {
                let options = BuildOptions {
                    approach,
                    lockstep,
                    barrier,
                    ..BuildOptions::default()
                };
                out.push((
                    format!("{approach:?}/lockstep={lockstep}/{barrier:?}"),
                    options,
                ));
            }
        }
    }
    out
}

#[test]
fn all_mf_variants_pass_the_static_lint() {
    assert_lint_clean(
        &build_mf(Arch::SingleCore, &BuildOptions::default()).expect("builds"),
        "SingleCore",
    );
    for (variant, options) in option_matrix() {
        let app = build_mf(Arch::MultiCore, &options).expect("builds");
        assert_lint_clean(&app, &variant);
    }
}

#[test]
fn all_mmd_variants_pass_the_static_lint() {
    assert_lint_clean(
        &build_mmd(Arch::SingleCore, &BuildOptions::default()).expect("builds"),
        "SingleCore",
    );
    for (variant, options) in option_matrix() {
        let app = build_mmd(Arch::MultiCore, &options).expect("builds");
        assert_lint_clean(&app, &variant);
    }
}

#[test]
fn all_rpclass_variants_pass_the_static_lint() {
    let params = ClassifierParams::default_trained();
    assert_lint_clean(
        &build_rpclass(Arch::SingleCore, &BuildOptions::default(), &params).expect("builds"),
        "SingleCore",
    );
    for (variant, options) in option_matrix() {
        let app = build_rpclass(Arch::MultiCore, &options, &params).expect("builds");
        assert_lint_clean(&app, &variant);
    }
}
