//! Workspace-level observability integration: the event stream, the
//! per-phase profiler and the Perfetto exporter driven by real
//! workloads, with the accounting invariants the instrumentation must
//! keep.

use wbsn::dsp::ecg::{synthesize, EcgConfig};
use wbsn::isa::{assemble_text, Linker, PhaseTable, Section};
use wbsn::kernels::{build_mf, Arch, BuildOptions, SyncApproach};
use wbsn::sim::{ObsConfig, Platform, PlatformConfig, RunExit};
use wbsn_obs::json;

/// A three-core Fig. 3-b style program: divergent branch bodies
/// re-synchronized with SINC/SDEC + SLEEP, one section per core so each
/// core runs a distinct mapping phase.
fn fig3b_image() -> wbsn::isa::LinkedImage {
    let mut linker = Linker::new();
    for (idx, body_len) in [60u32, 5, 30].into_iter().enumerate() {
        let src = format!(
            "sinc 0\n\
             li r1, {body_len}\n\
             body: addi r1, r1, -1\n\
             bne r1, r0, body\n\
             sdec 0\n\
             sleep\n\
             li r2, 1\n\
             sw r2, {stamp}(r0)\n\
             halt\n",
            stamp = 0x100 + idx,
        );
        let program = assemble_text(&src).expect("assembles");
        let name = format!("phase{idx}");
        linker.add_section(Section::in_bank(&name, program, idx));
        linker.set_entry(idx, &name);
    }
    linker.link().expect("links")
}

/// The acceptance invariant of the per-phase profiler: every active
/// cycle and every retirement the platform counts is attributed to
/// exactly one phase, so the per-core profiler totals equal the
/// `CoreStats` counters — exactly, on a full multi-core kernel.
#[test]
fn profiler_totals_match_core_stats_exactly() {
    let options = BuildOptions {
        adc_period_cycles: 16_000,
        ..BuildOptions::default()
    };
    assert_eq!(options.approach, SyncApproach::Hardware);
    let app = build_mf(Arch::MultiCore, &options).expect("mf mc builds");
    let rec = synthesize(&EcgConfig {
        fs: 500,
        duration_s: 0.5,
        pathological_fraction: 0.2,
        seed: 0xB0B0,
        ..EcgConfig::healthy_60s()
    });
    let samples = rec.leads[0].len() as u64;
    let budget = app.config.adc.start_cycle + (samples + 8) * app.config.adc.period_cycles;
    let mut platform = app.platform(rec.leads).expect("platform builds");
    platform.enable_obs(ObsConfig::full(Some(PhaseTable::from_image(&app.image))));
    platform.run(budget).expect("no faults");
    platform.finish_obs();

    let stats = platform.stats();
    let recorder = platform.obs().recorder().expect("recorder attached");
    let profiler = recorder.profiler().expect("profiler attached");
    for (core, cs) in stats.cores.iter().enumerate() {
        assert_eq!(
            profiler.active_total(core),
            cs.active_cycles,
            "core {core}: profiler active cycles must sum to CoreStats.active_cycles"
        );
    }
    let rows = profiler.rows();
    for (core, cs) in stats.cores.iter().enumerate() {
        let attributed: u64 = rows
            .iter()
            .filter(|r| r.core == core)
            .map(|r| r.counters.instructions)
            .sum();
        assert_eq!(
            attributed, cs.instructions,
            "core {core}: every retirement lands in exactly one phase"
        );
    }
    // The workload really exercised the stream: cores slept at the
    // lock-step barrier and the ADC fed samples.
    let counting = recorder.counting().expect("counting sink attached");
    let summary = counting.summary();
    assert!(summary.sleep_count > 0, "barrier sleeps were observed");
    assert!(counting.adc_samples >= samples, "ADC samples were observed");
    // Phases carry real section names, not just the unmapped bucket.
    assert!(
        rows.iter().any(|r| r.phase != wbsn_obs::UNMAPPED_PHASE),
        "{rows:?}"
    );
}

/// The Perfetto exporter emits valid Chrome `trace_event` JSON: the
/// crate's own parser accepts it, and the timeline carries complete
/// slices, instants and track metadata.
#[test]
fn trace_json_is_valid_trace_event() {
    let image = fig3b_image();
    let mut platform =
        Platform::new(PlatformConfig::multi_core(), &image).expect("platform builds");
    platform.enable_obs(ObsConfig::full(Some(PhaseTable::from_image(&image))));
    assert_eq!(platform.run(100_000).expect("runs"), RunExit::AllHalted);
    platform.finish_obs();

    let json_text = platform
        .obs()
        .recorder()
        .and_then(|r| r.trace_json())
        .expect("trace sink attached");
    let root = json::parse(&json_text).expect("exporter output parses as JSON");
    let events = root
        .get("traceEvents")
        .and_then(|v| v.as_arr())
        .expect("traceEvents array");
    assert!(!events.is_empty());

    let mut phases = Vec::new();
    for event in events {
        let obj = event.as_obj().expect("every event is an object");
        assert!(
            obj.iter().any(|(k, _)| k == "ph"),
            "every event carries a ph"
        );
        let ph = event.get("ph").and_then(|v| v.as_str()).expect("ph string");
        phases.push(ph.to_string());
        match ph {
            "X" => {
                let dur = event.get("dur").and_then(|v| v.as_num()).expect("dur");
                assert!(dur >= 0.0, "complete slices have non-negative duration");
            }
            "i" => {
                assert_eq!(event.get("s").and_then(|v| v.as_str()), Some("t"));
            }
            "M" => {}
            other => panic!("unexpected event type {other:?}"),
        }
    }
    assert!(phases.iter().any(|p| p == "X"), "phase/sleep slices");
    assert!(phases.iter().any(|p| p == "i"), "release instants");
    assert!(phases.iter().any(|p| p == "M"), "track metadata");

    // The three sections appear as named slices, and the barrier release
    // shows up as an instant on the platform track.
    assert!(json_text.contains("\"phase0\""));
    assert!(json_text.contains("\"phase1\""));
    assert!(json_text.contains("\"release p0\""));
    assert!(json_text.contains("\"wbsn platform\""));
}

/// Disabled observability stays disabled: no recorder, no events, and
/// the run result is byte-identical stats.
#[test]
fn obs_off_changes_nothing() {
    let image = fig3b_image();
    let mut with = Platform::new(PlatformConfig::multi_core(), &image).expect("builds");
    with.enable_obs(ObsConfig::full(Some(PhaseTable::from_image(&image))));
    let mut without = Platform::new(PlatformConfig::multi_core(), &image).expect("builds");
    assert!(without.obs().recorder().is_none());

    assert_eq!(with.run(100_000).expect("runs"), RunExit::AllHalted);
    assert_eq!(without.run(100_000).expect("runs"), RunExit::AllHalted);
    with.finish_obs();
    without.finish_obs();
    assert_eq!(with.stats(), without.stats(), "observation is passive");
}
