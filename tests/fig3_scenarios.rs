//! The two scenarios of the paper's Fig. 3, executed both on the
//! synchronizer unit directly and as real binaries on the full platform.

use wbsn::core::mapping::verify::{verify_image, VerifyConfig, VerifyDiag};
use wbsn::core::{CoreId, SyncPointValue, Synchronizer};
use wbsn::isa::syncflow::{self, SyncFlowDiag};
use wbsn::isa::{assemble_text, Linker, PhaseTable, Section, SyncKind};
use wbsn::sim::{ObsConfig, Platform, PlatformConfig, RunExit, SimError, WatchdogTrip};

fn core(i: usize) -> CoreId {
    CoreId::new(i).expect("test core in range")
}

/// Fig. 3-a: cores 0, 1 and 2 jointly produce data for core 4; data is
/// not yet available. The point's word must read flags {0,1,2,4} with
/// counter 3, and core 4 must resume exactly when the last producer
/// finishes.
#[test]
fn fig3a_unit_level() {
    let mut sync = Synchronizer::new(8, 1).expect("valid");
    for i in 0..3 {
        sync.submit_op(core(i), SyncKind::Inc, 0).expect("staged");
    }
    sync.submit_op(core(4), SyncKind::Nop, 0).expect("staged");
    sync.commit().expect("consistent");

    let value = sync.point_value(0).expect("point exists");
    assert_eq!(value, SyncPointValue::from_word(0b0001_0111 << 8 | 3));

    sync.request_sleep(core(4));
    sync.commit().expect("consistent");
    for i in 0..3 {
        sync.submit_op(core(i), SyncKind::Dec, 0).expect("staged");
        let outcome = sync.commit().expect("consistent");
        if i < 2 {
            assert!(outcome.woken.is_empty(), "woken too early at SDEC {i}");
        } else {
            assert!(outcome.woken.contains(core(4)), "last SDEC releases");
        }
    }
}

/// Fig. 3-b: cores 0, 1 and 2 enter a data-dependent branch; core 0
/// finishes first. The point reads flags {0,1,2} with counter 2.
#[test]
fn fig3b_unit_level() {
    let mut sync = Synchronizer::new(8, 1).expect("valid");
    for i in 0..3 {
        sync.submit_op(core(i), SyncKind::Inc, 0).expect("staged");
    }
    sync.commit().expect("consistent");
    sync.submit_op(core(0), SyncKind::Dec, 0).expect("staged");
    sync.commit().expect("consistent");

    let value = sync.point_value(0).expect("point exists");
    assert_eq!(value.flags().bits(), 0b0000_0111);
    assert_eq!(value.counter(), 2);
}

/// Fig. 3-b on the full platform: three cores take branch bodies of
/// different lengths and re-synchronize with SINC/SDEC + SLEEP; after
/// the barrier they write a completion stamp. All stamps must be
/// present, and every core must have spent time clock-gated except the
/// slowest.
#[test]
fn fig3b_on_the_platform() {
    let mut linker = Linker::new();
    for (idx, body_len) in [60u32, 5, 30].into_iter().enumerate() {
        let src = format!(
            "sinc 0\n\
             li r1, {body_len}\n\
             body: addi r1, r1, -1\n\
             bne r1, r0, body\n\
             sdec 0\n\
             sleep\n\
             li r2, 1\n\
             sw r2, {stamp}(r0)\n\
             halt\n",
            stamp = 0x100 + idx,
        );
        let program = assemble_text(&src).expect("assembles");
        let name = format!("phase{idx}");
        linker.add_section(Section::in_bank(&name, program, idx));
        linker.set_entry(idx, &name);
    }
    let image = linker.link().expect("links");
    let mut platform =
        Platform::new(PlatformConfig::multi_core(), &image).expect("platform builds");
    assert_eq!(platform.run(100_000).expect("runs"), RunExit::AllHalted);
    for idx in 0..3 {
        assert_eq!(platform.peek_dm(0x100 + idx).expect("readable"), 1);
    }
    // The fast cores waited for the slow one.
    let stats = platform.stats();
    assert!(stats.cores[1].gated_cycles > stats.cores[0].gated_cycles);
    assert_eq!(platform.synchronizer().stats().fires, 1);
}

/// Fig. 3-b gone wrong: one branch arm carries the SINC but the other
/// does not, so the lock-step group's counter diverges depending on
/// data. The static lint must flag the join — this is exactly the
/// insertion rule the paper's step 2 enforces.
#[test]
fn unbalanced_branch_program_is_rejected_by_static_lint() {
    let src = "bne r1, r0, long\n\
               sdec 0\n\
               sleep\n\
               jmp done\n\
               long: sinc 0\n\
               sdec 0\n\
               sdec 0\n\
               sleep\n\
               done: halt\n";
    let program = assemble_text(src).expect("assembles");
    let diags = syncflow::analyze(&program, &syncflow::SyncFlowConfig::with_sync_points(16));
    assert!(
        diags.iter().any(
            |d| matches!(d, SyncFlowDiag::CounterUnderflow { point: 0, .. })
                || matches!(d, SyncFlowDiag::UnbalancedBranch { point: 0, .. })
        ),
        "{diags:?}"
    );

    // The same program flagged through the linked image, with section
    // and core attribution.
    let mut linker = Linker::new();
    linker.add_section(Section::new("cond", program));
    linker.set_entry(0, "cond");
    let image = linker.link().expect("links");
    let diags = verify_image(&image, &VerifyConfig::new(16)).expect("decodes");
    assert!(
        diags.iter().any(|d| matches!(
            d,
            VerifyDiag::Flow { section, cores, .. }
                if section == "cond" && cores.contains(&0)
        )),
        "{diags:?}"
    );
}

/// An orphaned SNOP: the consumer registers on a point no producer ever
/// signals. Without the watchdog the run would end as a (misleading)
/// quiescent exit; with it, the platform reports a deadlock post-mortem
/// naming the waiting core — instead of a silent hang on hardware.
#[test]
fn orphaned_snop_trips_the_runtime_watchdog() {
    let producer = assemble_text("li r1, 2\nspin: addi r1, r1, -1\nbne r1, r0, spin\nhalt\n")
        .expect("assembles");
    // Consumer waits on point 3, but the producer never touches it.
    let consumer = assemble_text("snop 3\nsleep\nsw r0, 0x120(r0)\nhalt\n").expect("assembles");
    let mut linker = Linker::new();
    linker.add_section(Section::in_bank("producer", producer, 0));
    linker.add_section(Section::in_bank("consumer", consumer, 1));
    linker.set_entry(0, "producer");
    linker.set_entry(1, "consumer");
    let image = linker.link().expect("links");
    let mut platform =
        Platform::new(PlatformConfig::multi_core(), &image).expect("platform builds");
    platform.set_watchdog(50_000);
    platform.enable_trace(32, 0xFF);
    platform.enable_obs(ObsConfig::full(Some(PhaseTable::from_image(&image))));

    let err = platform
        .run(10_000_000)
        .expect_err("must not run to a clean exit");
    let SimError::Watchdog(pm) = err else {
        panic!("expected a watchdog post-mortem, got {err:?}");
    };
    assert_eq!(pm.trip, WatchdogTrip::Deadlock { waiting: vec![1] });
    let point3 = &pm.points[3];
    assert!(point3.value.flags().contains(core(1)), "consumer flagged");
    assert!(
        !pm.trace_tail.is_empty(),
        "post-mortem carries the trace tail"
    );
    // The observability recorder feeds the dump: the event-stream tail
    // must show the consumer registering and gating on point 3, and the
    // profiler must attribute each core's cycles to its section.
    assert!(
        !pm.obs_tail.is_empty(),
        "post-mortem carries the event tail"
    );
    assert!(
        pm.obs_tail.iter().any(|line| line.contains("core1 slept")),
        "{:?}",
        pm.obs_tail
    );
    assert!(
        pm.phase_profile
            .iter()
            .any(|row| row.core == 0 && row.phase == "producer" && row.active_cycles > 0),
        "{:?}",
        pm.phase_profile
    );
    assert!(
        pm.phase_profile
            .iter()
            .any(|row| row.core == 1 && row.phase == "consumer" && row.instructions > 0),
        "{:?}",
        pm.phase_profile
    );
    let rendered = pm.to_string();
    assert!(rendered.contains("deadlock"), "{rendered}");
    assert!(rendered.contains("core 1"), "{rendered}");
    assert!(rendered.contains("last events:"), "{rendered}");
    assert!(rendered.contains("phase attribution:"), "{rendered}");
}

/// The merge rule: several synchronization instructions issued in the
/// same cycle on the same location become one consistent modification.
#[test]
fn same_cycle_requests_merge_into_one_write() {
    let mut sync = Synchronizer::new(8, 1).expect("valid");
    for i in 0..8 {
        sync.submit_op(core(i), SyncKind::Inc, 0).expect("staged");
    }
    let outcome = sync.commit().expect("consistent");
    assert_eq!(outcome.memory_writes, 1, "one physical write");
    assert_eq!(sync.stats().merged, 7, "seven requests rode along");
    assert_eq!(sync.point_value(0).expect("point").counter(), 8);
}
