//! The two scenarios of the paper's Fig. 3, executed both on the
//! synchronizer unit directly and as real binaries on the full platform.

use wbsn::core::{CoreId, SyncPointValue, Synchronizer};
use wbsn::isa::{assemble_text, Linker, Section, SyncKind};
use wbsn::sim::{Platform, PlatformConfig, RunExit};

fn core(i: usize) -> CoreId {
    CoreId::new(i).expect("test core in range")
}

/// Fig. 3-a: cores 0, 1 and 2 jointly produce data for core 4; data is
/// not yet available. The point's word must read flags {0,1,2,4} with
/// counter 3, and core 4 must resume exactly when the last producer
/// finishes.
#[test]
fn fig3a_unit_level() {
    let mut sync = Synchronizer::new(8, 1).expect("valid");
    for i in 0..3 {
        sync.submit_op(core(i), SyncKind::Inc, 0).expect("staged");
    }
    sync.submit_op(core(4), SyncKind::Nop, 0).expect("staged");
    sync.commit().expect("consistent");

    let value = sync.point_value(0).expect("point exists");
    assert_eq!(value, SyncPointValue::from_word(0b0001_0111 << 8 | 3));

    sync.request_sleep(core(4));
    sync.commit().expect("consistent");
    for i in 0..3 {
        sync.submit_op(core(i), SyncKind::Dec, 0).expect("staged");
        let outcome = sync.commit().expect("consistent");
        if i < 2 {
            assert!(outcome.woken.is_empty(), "woken too early at SDEC {i}");
        } else {
            assert!(outcome.woken.contains(core(4)), "last SDEC releases");
        }
    }
}

/// Fig. 3-b: cores 0, 1 and 2 enter a data-dependent branch; core 0
/// finishes first. The point reads flags {0,1,2} with counter 2.
#[test]
fn fig3b_unit_level() {
    let mut sync = Synchronizer::new(8, 1).expect("valid");
    for i in 0..3 {
        sync.submit_op(core(i), SyncKind::Inc, 0).expect("staged");
    }
    sync.commit().expect("consistent");
    sync.submit_op(core(0), SyncKind::Dec, 0).expect("staged");
    sync.commit().expect("consistent");

    let value = sync.point_value(0).expect("point exists");
    assert_eq!(value.flags().bits(), 0b0000_0111);
    assert_eq!(value.counter(), 2);
}

/// Fig. 3-b on the full platform: three cores take branch bodies of
/// different lengths and re-synchronize with SINC/SDEC + SLEEP; after
/// the barrier they write a completion stamp. All stamps must be
/// present, and every core must have spent time clock-gated except the
/// slowest.
#[test]
fn fig3b_on_the_platform() {
    let mut linker = Linker::new();
    for (idx, body_len) in [60u32, 5, 30].into_iter().enumerate() {
        let src = format!(
            "sinc 0\n\
             li r1, {body_len}\n\
             body: addi r1, r1, -1\n\
             bne r1, r0, body\n\
             sdec 0\n\
             sleep\n\
             li r2, 1\n\
             sw r2, {stamp}(r0)\n\
             halt\n",
            stamp = 0x100 + idx,
        );
        let program = assemble_text(&src).expect("assembles");
        let name = format!("phase{idx}");
        linker.add_section(Section::in_bank(&name, program, idx));
        linker.set_entry(idx, &name);
    }
    let image = linker.link().expect("links");
    let mut platform =
        Platform::new(PlatformConfig::multi_core(), &image).expect("platform builds");
    assert_eq!(platform.run(100_000).expect("runs"), RunExit::AllHalted);
    for idx in 0..3 {
        assert_eq!(platform.peek_dm(0x100 + idx).expect("readable"), 1);
    }
    // The fast cores waited for the slow one.
    let stats = platform.stats();
    assert!(stats.cores[1].gated_cycles > stats.cores[0].gated_cycles);
    assert_eq!(platform.synchronizer().stats().fires, 1);
}

/// The merge rule: several synchronization instructions issued in the
/// same cycle on the same location become one consistent modification.
#[test]
fn same_cycle_requests_merge_into_one_write() {
    let mut sync = Synchronizer::new(8, 1).expect("valid");
    for i in 0..8 {
        sync.submit_op(core(i), SyncKind::Inc, 0).expect("staged");
    }
    let outcome = sync.commit().expect("consistent");
    assert_eq!(outcome.memory_writes, 1, "one physical write");
    assert_eq!(sync.stats().merged, 7, "seven requests rode along");
    assert_eq!(sync.point_value(0).expect("point").counter(), 8);
}
