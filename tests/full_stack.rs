//! Workspace-level integration: every benchmark application built,
//! mapped, linked, loaded and run end to end through the facade crate.

use wbsn::dsp::ecg::{synthesize, EcgConfig};
use wbsn::kernels::{
    build_mf, build_mmd, build_rpclass, layout, Arch, BuildOptions, BuiltApp, ClassifierParams,
    SyncApproach,
};
use wbsn::sim::Platform;

fn recording(seconds: f64, fraction: f64) -> wbsn::dsp::ecg::EcgRecording {
    synthesize(&EcgConfig {
        fs: 500,
        duration_s: seconds,
        pathological_fraction: fraction,
        seed: 0xF011,
        ..EcgConfig::healthy_60s()
    })
}

fn run(app: &BuiltApp, leads: Vec<Vec<i16>>) -> Platform {
    let samples = leads[0].len() as u64;
    let budget = app.config.adc.start_cycle + (samples + 8) * app.config.adc.period_cycles;
    let mut platform = app.platform(leads).expect("platform builds");
    platform.run(budget).expect("no faults");
    assert_eq!(platform.adc_overruns(), 0, "real time met");
    platform
}

fn generous(approach: SyncApproach) -> BuildOptions {
    BuildOptions {
        approach,
        adc_period_cycles: 16_000,
        ..BuildOptions::default()
    }
}

#[test]
fn every_benchmark_builds_and_runs_on_every_configuration() {
    let params = ClassifierParams::default_trained();
    let rec = recording(2.0, 0.3);
    let apps: Vec<BuiltApp> = vec![
        build_mf(Arch::SingleCore, &generous(SyncApproach::Hardware)).expect("mf sc"),
        build_mf(Arch::MultiCore, &generous(SyncApproach::Hardware)).expect("mf mc"),
        build_mf(Arch::MultiCore, &generous(SyncApproach::BusyWait)).expect("mf bw"),
        build_mmd(Arch::SingleCore, &generous(SyncApproach::Hardware)).expect("mmd sc"),
        build_mmd(Arch::MultiCore, &generous(SyncApproach::Hardware)).expect("mmd mc"),
        build_mmd(Arch::MultiCore, &generous(SyncApproach::BusyWait)).expect("mmd bw"),
        build_rpclass(Arch::SingleCore, &generous(SyncApproach::Hardware), &params).expect("rp sc"),
        build_rpclass(Arch::MultiCore, &generous(SyncApproach::Hardware), &params).expect("rp mc"),
        build_rpclass(Arch::MultiCore, &generous(SyncApproach::BusyWait), &params).expect("rp bw"),
    ];
    for app in &apps {
        let platform = run(app, rec.leads.clone());
        // Every configuration filtered the whole stream for lead 0.
        let count0 = platform.peek_dm(layout::LEAD_COUNT_BASE).expect("count");
        assert!(
            count0 as usize >= rec.leads[0].len() - 2,
            "{} {:?} {:?}: lead 0 produced {count0}",
            app.name,
            app.arch,
            app.approach
        );
    }
}

#[test]
fn hardware_sync_beats_busy_wait_on_active_cycles() {
    let rec = recording(2.0, 0.0);
    let hw = build_mmd(Arch::MultiCore, &generous(SyncApproach::Hardware)).expect("hw");
    let bw = build_mmd(Arch::MultiCore, &generous(SyncApproach::BusyWait)).expect("bw");
    let hw_active = run(&hw, rec.leads.clone()).stats().total_active_cycles();
    let bw_active = run(&bw, rec.leads.clone()).stats().total_active_cycles();
    assert!(
        hw_active * 3 < bw_active,
        "clock gating should cut active cycles drastically: hw={hw_active} bw={bw_active}"
    );
}

#[test]
fn mapping_methodology_reports_match_the_loaded_images() {
    let params = ClassifierParams::default_trained();
    for (app, cores, banks) in [
        (
            build_mf(Arch::MultiCore, &BuildOptions::default()).expect("mf"),
            3,
            1,
        ),
        (
            build_mmd(Arch::MultiCore, &BuildOptions::default()).expect("mmd"),
            5,
            3,
        ),
        (
            build_rpclass(Arch::MultiCore, &BuildOptions::default(), &params).expect("rp"),
            6,
            5,
        ),
    ] {
        assert_eq!(app.active_cores, cores, "{}", app.name);
        assert_eq!(app.active_im_banks(), banks, "{}", app.name);
        let plan = app.plan.as_ref().expect("multi-core builds have plans");
        assert_eq!(plan.cores_used(), cores, "{}", app.name);
        assert!(app.code_overhead_percent() < 5.0, "{}", app.name);
    }
}

#[test]
fn broadcast_ablation_reduces_merging_but_preserves_results() {
    let rec = recording(2.0, 0.0);
    let on = build_mf(Arch::MultiCore, &BuildOptions::default()).expect("on");
    let off = build_mf(
        Arch::MultiCore,
        &BuildOptions {
            broadcast: false,
            ..BuildOptions::default()
        },
    )
    .expect("off");
    let p_on = run(&on, rec.leads.clone());
    let p_off = run(&off, rec.leads.clone());
    assert!(p_on.stats().im.broadcasts > 0);
    assert_eq!(p_off.stats().im.broadcasts, 0);
    // Same outputs either way.
    for lead in 0..3 {
        let a = p_on.peek_dm(layout::out_ring(lead) + 100).expect("a");
        let b = p_off.peek_dm(layout::out_ring(lead) + 100).expect("b");
        assert_eq!(a, b, "lead {lead}");
    }
}
