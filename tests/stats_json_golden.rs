//! Golden-file coverage of the machine-readable statistics record
//! (`wbsn-stats/1`, the `wbsn-run --stats-json` payload): the simulator
//! is deterministic, so the JSON for a fixed program is byte-stable.
//! Key order, float shaping and schema are all under test — a mismatch
//! means the schema changed and consumers must be told (bump the schema
//! tag, then re-bless with `WBSN_BLESS=1 cargo test --test
//! stats_json_golden`).

use wbsn::isa::{assemble_text, Linker, Section};
use wbsn::sim::{stats_json, Platform, PlatformConfig, RunExit};
use wbsn_obs::json;

const GOLDEN_PATH: &str = "tests/golden/stats_fig3b.json";

fn fig3b_stats_json() -> String {
    let mut linker = Linker::new();
    for (idx, body_len) in [60u32, 5, 30].into_iter().enumerate() {
        let src = format!(
            "sinc 0\n\
             li r1, {body_len}\n\
             body: addi r1, r1, -1\n\
             bne r1, r0, body\n\
             sdec 0\n\
             sleep\n\
             li r2, 1\n\
             sw r2, {stamp}(r0)\n\
             halt\n",
            stamp = 0x100 + idx,
        );
        let program = assemble_text(&src).expect("assembles");
        let name = format!("phase{idx}");
        linker.add_section(Section::in_bank(&name, program, idx));
        linker.set_entry(idx, &name);
    }
    let image = linker.link().expect("links");
    let mut platform =
        Platform::new(PlatformConfig::multi_core(), &image).expect("platform builds");
    assert_eq!(platform.run(100_000).expect("runs"), RunExit::AllHalted);
    stats_json(platform.stats(), &platform.synchronizer().stats())
}

#[test]
fn stats_json_matches_the_golden_record() {
    let actual = fig3b_stats_json();
    if std::env::var_os("WBSN_BLESS").is_some() {
        std::fs::write(GOLDEN_PATH, &actual).expect("golden written");
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH).expect("golden present");
    assert_eq!(
        actual, golden,
        "stats JSON drifted from {GOLDEN_PATH}; if intended, bump the \
         schema and re-bless with WBSN_BLESS=1"
    );
}

#[test]
fn stats_json_is_parseable_and_carries_the_schema() {
    let actual = fig3b_stats_json();
    let root = json::parse(&actual).expect("valid JSON");
    assert_eq!(
        root.get("schema").and_then(|v| v.as_str()),
        Some("wbsn-stats/1")
    );
    let cores = root
        .get("cores")
        .and_then(|v| v.as_arr())
        .expect("cores array");
    assert_eq!(cores.len(), 8);
    assert!(root.get("sync").is_some(), "sync block present");
    assert!(
        root.get("cycles").and_then(|v| v.as_num()).unwrap_or(0.0) > 0.0,
        "cycle count recorded"
    );
}
